"""Cross-package integration tests: the full validation chain of DESIGN.md.

1. float model -> quantized model: bounded error, classification agreement;
2. quantized model -> mapped accelerator execution: bit-exact;
3. analytical cycle model -> stepped simulator: exact cycle agreement;
4. experiments -> paper claims (covered in tests/experiments).
"""

import numpy as np

from repro.capsnet.model import CapsuleNet
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.errors import ReproError
from repro.hw.accelerator import CapsAccAccelerator, GemmJob, gemm_cycles
from repro.hw.config import AcceleratorConfig
from repro.mapping.execute import MappedInference
from repro.mapping.shapes import full_inference_stages
from repro.perf.cycles import stage_performance


class TestFloatToQuantizedChain:
    def test_end_to_end_error_bounded(self, tiny_config, tiny_weights, tiny_images):
        fnet = CapsuleNet(tiny_config, weights=tiny_weights)
        qnet = QuantizedCapsuleNet(tiny_config, weights=tiny_weights)
        for image in tiny_images:
            fout = fnet.forward(image)
            qout = qnet.forward(image)
            assert np.max(np.abs(qout.class_caps - fout.class_capsules)) < 0.15


class TestQuantizedToHardwareChain:
    def test_mapped_execution_bit_exact(self, tiny_qnet, tiny_images):
        mapped = MappedInference(tiny_qnet)
        for image in tiny_images:
            reference = tiny_qnet.forward(image)
            result = mapped.run(image)
            assert np.array_equal(result.class_caps_raw, reference.class_caps_raw)
            assert result.total_stats.mac_count > 0


class TestAnalyticalToSteppedChain:
    def test_mapped_stage_cycles_match_analytical_model(self, tiny_qnet, tiny_images):
        """Sequential per-stage GEMM cycles from the executable lowering
        match the shape-level analytical model evaluated without overlap."""
        accel_config = AcceleratorConfig()
        mapped = MappedInference(tiny_qnet, CapsAccAccelerator(accel_config, tiny_qnet.formats))
        result = mapped.run(tiny_images[0])
        stages = {s.name: s for s in full_inference_stages(tiny_qnet.config)}
        for name in ("conv1", "primarycaps", "classcaps_fc"):
            analytical = stage_performance(accel_config, stages[name], overlap=False)
            measured = result.stage_stats[name]
            assert measured.total_cycles == analytical.gemm_cycles, name

    def test_routing_stage_cycles_match(self, tiny_qnet, tiny_images):
        accel_config = AcceleratorConfig()
        mapped = MappedInference(tiny_qnet, CapsAccAccelerator(accel_config, tiny_qnet.formats))
        result = mapped.run(tiny_images[0])
        stages = {s.name: s for s in full_inference_stages(tiny_qnet.config)}
        for name in ("sum1", "sum2", "update1", "update2"):
            analytical = stage_performance(accel_config, stages[name], overlap=False)
            assert result.stage_stats[name].total_cycles == analytical.gemm_cycles, name


class TestErrorHierarchy:
    def test_all_package_errors_catchable_as_repro_error(self):
        from repro import errors

        for name in (
            "QFormatError",
            "SaturationError",
            "ShapeError",
            "MappingError",
            "SimulationError",
            "ConfigError",
            "DataError",
        ):
            assert issubclass(getattr(errors, name), ReproError)

    def test_public_api_imports(self):
        import repro

        assert repro.CapsuleNet is not None
        assert repro.AcceleratorConfig is not None
        assert repro.CapsAccPerformanceModel is not None
        assert callable(repro.gtx1070_paper_profile)


class TestOverlapConsistency:
    def test_overlapped_cycles_reported_by_executor(self, rng):
        config = AcceleratorConfig(rows=4, cols=4)
        accel = CapsAccAccelerator(config)
        from repro.capsnet.hwops import QuantizedFormats

        fmts = QuantizedFormats()
        acc_fmt = fmts.acc(fmts.caps_data, fmts.coupling)
        job = GemmJob(
            "j",
            rng.integers(-20, 20, size=(6, 9)),
            rng.integers(-20, 20, size=(9, 5)),
            fmts.caps_data,
            fmts.coupling,
            acc_fmt,
        )
        result = accel.run_gemm(job)
        assert result.overlapped_cycles == gemm_cycles(config, 6, 9, 5, overlap=True)["total"]
        assert result.overlapped_cycles <= result.stats.total_cycles
