"""The whole stack must work on non-MNIST CapsuleNet geometries.

Every model, mapping and performance component derives from the
configuration object, so a CIFAR-like (32x32x3) or wide-class network must
run through the quantized path, the mapped accelerator (bit-exact) and the
performance/synthesis models without modification.
"""

import numpy as np
import pytest

from repro.capsnet.config import custom_capsnet_config, mnist_capsnet_config
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.capsnet.weights import pseudo_trained_weights
from repro.hw.control import compile_schedule
from repro.mapping.execute import MappedInference
from repro.mapping.shapes import full_inference_stages
from repro.perf.compare import compare_layers
from repro.perf.model import CapsAccPerformanceModel


@pytest.fixture(scope="module")
def cifar_like_config():
    """A small 3-channel, 5-class configuration (CIFAR-like geometry)."""
    return custom_capsnet_config(
        image_size=16,
        num_classes=5,
        in_channels=3,
        conv1_channels=12,
        conv1_kernel=5,
        capsule_channels=3,
        capsule_dim=4,
        primary_kernel=5,
        primary_stride=2,
        class_dim=6,
    )


class TestCustomConfigBuilder:
    def test_mnist_reproducible_via_builder(self):
        built = custom_capsnet_config(image_size=28, num_classes=10)
        assert built == mnist_capsnet_config()

    def test_cifar_like_dimensions(self, cifar_like_config):
        config = cifar_like_config
        assert config.in_channels == 3
        assert config.conv1_out_size == 12
        assert config.primary_out_size == 4
        assert config.num_primary_capsules == 4 * 4 * 3


class TestPipelineGeneralizes:
    @pytest.fixture(scope="class")
    def qnet(self, cifar_like_config):
        weights = pseudo_trained_weights(cifar_like_config, seed=5)
        return QuantizedCapsuleNet(cifar_like_config, weights=weights)

    @pytest.fixture(scope="class")
    def image(self, cifar_like_config, rng=None):
        generator = np.random.default_rng(9)
        size = cifar_like_config.image_size
        return generator.uniform(0, 1, size=(3, size, size))

    def test_quantized_forward_runs(self, qnet, image, cifar_like_config):
        out = qnet.forward(image)
        assert out.class_caps_raw.shape == (5, 6)
        assert out.saturation.rate < 0.01

    def test_mapped_execution_bit_exact(self, qnet, image):
        mapped = MappedInference(qnet)
        reference = qnet.forward(image)
        result = mapped.run(image)
        assert np.array_equal(result.class_caps_raw, reference.class_caps_raw)
        assert np.array_equal(result.coupling_raw, reference.coupling_raw)

    def test_performance_model_runs(self, cifar_like_config):
        perf = CapsAccPerformanceModel(network=cifar_like_config).run()
        assert perf.total_time_ms > 0
        layers = perf.layer_times_us()
        assert set(layers) == {"Conv1", "PrimaryCaps", "ClassCaps", "Total"}

    def test_gpu_comparison_runs(self, cifar_like_config):
        report = compare_layers(network=cifar_like_config)
        assert report.row("Total").gpu_us > 0

    def test_control_schedule_legal(self, cifar_like_config):
        program = compile_schedule(full_inference_stages(cifar_like_config))
        assert program.step("sum2").data_mux == "feedback"
