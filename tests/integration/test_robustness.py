"""Robustness and failure-injection tests.

The simulator must behave sanely at the edges of its operating envelope:
degenerate images, weights at format limits, saturating accumulations, and
misconfigured schedules must either produce well-defined clamped results or
raise package errors — never silently corrupt state.
"""

import numpy as np
import pytest

from repro.capsnet.hwops import QuantizedFormats
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.capsnet.weights import pseudo_trained_weights
from repro.errors import ReproError
from repro.hw.accelerator import CapsAccAccelerator, GemmJob
from repro.hw.config import AcceleratorConfig
from repro.mapping.execute import MappedInference

FMTS = QuantizedFormats()


class TestDegenerateImages:
    def test_all_black_image(self, tiny_qnet, tiny_config):
        image = np.zeros((tiny_config.image_size, tiny_config.image_size))
        out = tiny_qnet.forward(image)
        # Zero input with zero biases: conv output is exactly zero.
        assert np.all(out.conv1_out_raw == 0)
        assert out.prediction in range(tiny_config.classcaps.num_classes)

    def test_all_white_image(self, tiny_qnet, tiny_config):
        image = np.ones((tiny_config.image_size, tiny_config.image_size))
        out = tiny_qnet.forward(image)
        assert out.prediction in range(tiny_config.classcaps.num_classes)

    def test_out_of_range_pixels_clamped(self, tiny_qnet, tiny_config):
        image = np.full((tiny_config.image_size, tiny_config.image_size), 100.0)
        out = tiny_qnet.forward(image)
        assert np.abs(out.class_caps_raw).max() <= FMTS.caps_data.raw_max

    def test_negative_pixels_clamped_not_crash(self, tiny_qnet, tiny_config):
        image = np.full((tiny_config.image_size, tiny_config.image_size), -5.0)
        out = tiny_qnet.forward(image)
        assert out.length_sumsq_raw.shape == (tiny_config.classcaps.num_classes,)


class TestExtremeWeights:
    def test_saturating_weights_clamped_at_format_limits(self, tiny_config, tiny_images):
        weights = pseudo_trained_weights(tiny_config, seed=1)
        weights = {key: value * 100.0 for key, value in weights.items()}
        qnet = QuantizedCapsuleNet(tiny_config, weights=weights)
        # Quantization clamps the oversized weights at the format limits.
        assert qnet.raw_weights["conv1_w"].max() == FMTS.conv1_weight.raw_max
        assert qnet.raw_weights["conv1_w"].min() == FMTS.conv1_weight.raw_min
        out = qnet.forward(tiny_images[0])
        assert np.abs(out.class_caps_raw).max() <= FMTS.caps_data.raw_max

    def test_accumulator_saturation_is_counted(self, tiny_config):
        """At MNIST-like contraction depths, worst-case operands overflow
        the 25-bit accumulator and the counter must record it."""
        from repro.capsnet.hwops import SaturationCounter, quantized_matmul

        acc_fmt = FMTS.acc(FMTS.conv1_out, FMTS.primary_weight)
        depth = 20736  # the PrimaryCaps contraction length
        data = np.full((1, depth), 127, dtype=np.int64)
        weights = np.full((depth, 1), 127, dtype=np.int64)
        counter = SaturationCounter()
        out = quantized_matmul(data, weights, acc_fmt, counter, site="worst")
        assert counter.events == 1
        assert out[0, 0] == acc_fmt.raw_max

    def test_zero_weights_zero_capsules(self, tiny_config, tiny_images):
        weights = pseudo_trained_weights(tiny_config, seed=1)
        weights = {key: np.zeros_like(value) for key, value in weights.items()}
        qnet = QuantizedCapsuleNet(tiny_config, weights=weights)
        out = qnet.forward(tiny_images[0])
        assert np.all(out.class_caps_raw == 0)
        assert np.all(out.length_sumsq_raw == 0)

    def test_saturated_network_still_bit_exact_on_accelerator(
        self, tiny_config, tiny_images
    ):
        """Saturation must clamp identically in reference and hardware."""
        weights = pseudo_trained_weights(tiny_config, seed=1)
        weights["classcaps_w"] = weights["classcaps_w"] * 50.0
        qnet = QuantizedCapsuleNet(tiny_config, weights=weights)
        mapped = MappedInference(qnet)
        reference = qnet.forward(tiny_images[0])
        result = mapped.run(tiny_images[0])
        assert np.array_equal(result.u_hat_raw, reference.u_hat_raw)
        assert np.array_equal(result.class_caps_raw, reference.class_caps_raw)


class TestAcceleratorEdges:
    def test_gemm_at_accumulator_limit_clamps(self, rng):
        config = AcceleratorConfig(rows=4, cols=4)
        accel = CapsAccAccelerator(config)
        acc_fmt = FMTS.acc(FMTS.caps_data, FMTS.classcaps_weight)
        data = np.full((1, 3000), 127, dtype=np.int64)
        weights = np.full((3000, 1), 127, dtype=np.int64)
        job = GemmJob("sat", data, weights, FMTS.caps_data, FMTS.classcaps_weight, acc_fmt)
        result = accel.run_gemm(job)
        assert result.acc[0, 0] == acc_fmt.raw_max

    def test_one_by_one_array(self, rng):
        config = AcceleratorConfig(rows=1, cols=1)
        accel = CapsAccAccelerator(config)
        acc_fmt = FMTS.acc(FMTS.caps_data, FMTS.classcaps_weight)
        data = rng.integers(-50, 50, size=(5, 7))
        weights = rng.integers(-50, 50, size=(7, 2))
        job = GemmJob("1x1", data, weights, FMTS.caps_data, FMTS.classcaps_weight, acc_fmt)
        for engine in ("fast", "stepped"):
            result = accel.run_gemm(job, engine=engine)
            expected = np.clip(
                data.astype(np.int64) @ weights, acc_fmt.raw_min, acc_fmt.raw_max
            )
            assert np.array_equal(result.acc, expected)

    def test_wide_rectangular_array(self, rng):
        config = AcceleratorConfig(rows=2, cols=16)
        accel = CapsAccAccelerator(config)
        acc_fmt = FMTS.acc(FMTS.caps_data, FMTS.classcaps_weight)
        data = rng.integers(-50, 50, size=(3, 5))
        weights = rng.integers(-50, 50, size=(5, 20))
        job = GemmJob("wide", data, weights, FMTS.caps_data, FMTS.classcaps_weight, acc_fmt)
        result = accel.run_gemm(job, engine="stepped")
        expected = np.clip(
            data.astype(np.int64) @ weights, acc_fmt.raw_min, acc_fmt.raw_max
        )
        assert np.array_equal(result.acc, expected)


class TestErrorPropagation:
    def test_every_failure_is_a_repro_error(self, tiny_qnet):
        failures = []
        try:
            tiny_qnet.forward(np.zeros((3, 3)))
        except Exception as exc:  # noqa: BLE001 - asserting the type below
            failures.append(exc)
        from repro.data.synthetic import SyntheticDigits

        try:
            SyntheticDigits().generate(-1)
        except Exception as exc:  # noqa: BLE001
            failures.append(exc)
        assert failures
        assert all(isinstance(exc, ReproError) for exc in failures)

    def test_corrupt_schedule_rejected(self, rng):
        accel = CapsAccAccelerator(AcceleratorConfig(rows=4, cols=4))
        acc_fmt = FMTS.acc(FMTS.caps_data, FMTS.classcaps_weight)
        job = GemmJob(
            "bad",
            rng.integers(-5, 5, size=(2, 3)),
            rng.integers(-5, 5, size=(7, 2)),  # K mismatch
            FMTS.caps_data,
            FMTS.classcaps_weight,
            acc_fmt,
        )
        with pytest.raises(ReproError):
            accel.run_gemm(job)
