"""Unit tests for the generic LUT builders."""

import numpy as np

from repro.fixedpoint.luts import LookupTable, LookupTable2D
from repro.fixedpoint.formats import QFormat
from repro.fixedpoint.quantize import from_raw, quantize, to_raw

IN_FMT = QFormat(6, 3)
OUT_FMT = QFormat(8, 6)


class TestLookupTable:
    def test_identity_function_round_trips(self):
        # Output format must cover the input range ([-4, 3.875]) and its
        # 1/8 resolution for the identity to be exact.
        wide_out = QFormat(8, 4)
        lut = LookupTable(lambda x: x, IN_FMT, wide_out)
        codes = np.arange(IN_FMT.raw_min, IN_FMT.raw_max + 1)
        got = from_raw(lut.lookup(codes), wide_out)
        assert np.allclose(got, from_raw(codes, IN_FMT))

    def test_matches_quantized_function(self):
        lut = LookupTable(np.tanh, IN_FMT, OUT_FMT)
        codes = np.arange(IN_FMT.raw_min, IN_FMT.raw_max + 1)
        expected = quantize(np.tanh(from_raw(codes, IN_FMT)), OUT_FMT)
        assert np.array_equal(from_raw(lut.lookup(codes), OUT_FMT), expected)

    def test_negative_codes_address_correctly(self):
        lut = LookupTable(lambda x: x, IN_FMT, OUT_FMT)
        assert from_raw(lut.lookup(-1), OUT_FMT) == from_raw(-1, IN_FMT)

    def test_storage_bits(self):
        lut = LookupTable(lambda x: x, IN_FMT, OUT_FMT)
        assert lut.num_entries == 64
        assert lut.storage_bits == 64 * 8

    def test_lookup_real_convenience(self):
        lut = LookupTable(lambda x: 2 * x, IN_FMT, OUT_FMT)
        assert lut.lookup_real(0.5) == 1.0

    def test_out_of_range_address_wraps_like_bus(self):
        lut = LookupTable(lambda x: x, IN_FMT, OUT_FMT)
        # 64 wraps to address 0 on a 6-bit bus.
        assert lut.lookup(64) == lut.lookup(0)


class TestLookupTable2D:
    def test_addressing_both_inputs(self):
        lut = LookupTable2D(
            lambda a, b: a * b,
            QFormat(4, 2),
            QFormat(3, 1, signed=False),
            QFormat(8, 4),
        )
        a_raw = to_raw(0.5, QFormat(4, 2))
        b_raw = to_raw(2.0, QFormat(3, 1, signed=False))
        assert from_raw(lut.lookup(a_raw, b_raw), QFormat(8, 4)) == 1.0

    def test_storage_is_product_of_code_spaces(self):
        lut = LookupTable2D(
            lambda a, b: a + b, QFormat(6, 3), QFormat(5, 2, signed=False), OUT_FMT
        )
        assert lut.num_entries == 64 * 32
        assert lut.storage_bits == 64 * 32 * 8

    def test_vectorized_lookup(self):
        lut = LookupTable2D(
            lambda a, b: a + b, QFormat(4, 1), QFormat(4, 1, signed=False), QFormat(8, 2)
        )
        a = np.array([[1, 2], [3, 4]])
        b = np.array([[0, 1], [2, 3]])
        assert lut.lookup(a, b).shape == (2, 2)

    def test_output_saturates(self):
        lut = LookupTable2D(
            lambda a, b: a * b * 100, QFormat(4, 0), QFormat(4, 0, signed=False), QFormat(8, 0)
        )
        assert lut.lookup(7, 15) == 127
