"""Unit tests for saturating raw arithmetic."""

import numpy as np
import pytest

from repro.errors import QFormatError
from repro.fixedpoint.arith import (
    align_raw,
    check_fits,
    fx_add,
    fx_mac,
    fx_mul,
    product_format,
    requantize,
    saturate_raw,
)
from repro.fixedpoint.formats import QFormat
from repro.fixedpoint.quantize import Rounding

DATA = QFormat(8, 4)
WEIGHT = QFormat(8, 6)
ACC = QFormat(25, 10)


class TestProductFormat:
    def test_widths_add(self):
        fmt = product_format(DATA, WEIGHT)
        assert fmt.total_bits == 16
        assert fmt.frac_bits == 10

    def test_signedness_propagates(self):
        unsigned = QFormat(5, 2, signed=False)
        assert product_format(unsigned, unsigned).signed is False
        assert product_format(unsigned, DATA).signed is True


class TestMul:
    def test_exact_product(self):
        raw, fmt = fx_mul(np.array([3]), DATA, np.array([5]), WEIGHT)
        assert raw[0] == 15
        assert fmt.frac_bits == 10

    def test_real_value_consistency(self):
        a_raw, b_raw = np.array([24]), np.array([-40])
        raw, fmt = fx_mul(a_raw, DATA, b_raw, WEIGHT)
        expected = (24 / 16) * (-40 / 64)
        assert raw[0] / (1 << fmt.frac_bits) == pytest.approx(expected)


class TestAlign:
    def test_left_shift_exact(self):
        assert align_raw(np.array([3]), DATA, 10)[0] == 3 << 6

    def test_right_shift_floors(self):
        assert align_raw(np.array([-1]), ACC, 4)[0] == -1  # arithmetic shift
        assert align_raw(np.array([63]), ACC, 4)[0] == 0


class TestAdd:
    def test_aligned_addition(self):
        out = fx_add(np.array([16]), DATA, np.array([64]), WEIGHT, ACC)
        # 1.0 + 1.0 = 2.0 -> raw 2048 at frac 10
        assert out[0] == 2048

    def test_saturates_at_out_format(self):
        big = np.array([ACC.raw_max])
        out = fx_add(big, ACC, big, ACC, ACC)
        assert out[0] == ACC.raw_max

    def test_no_saturate_raises(self):
        big = np.array([ACC.raw_max])
        with pytest.raises(QFormatError):
            fx_add(big, ACC, big, ACC, ACC, saturate=False)


class TestMac:
    def test_matches_manual(self):
        acc = np.zeros(1, dtype=np.int64)
        out = fx_mac(acc, ACC, np.array([10]), DATA, np.array([20]), WEIGHT)
        assert out[0] == 200

    def test_chain_matches_dot_product(self, rng):
        data = rng.integers(-100, 100, size=20)
        weight = rng.integers(-100, 100, size=20)
        acc = np.zeros(1, dtype=np.int64)
        for d, w in zip(data, weight):
            acc = fx_mac(acc, ACC, np.array([d]), DATA, np.array([w]), WEIGHT)
        assert acc[0] == np.dot(data, weight)

    def test_saturation_at_acc_limit(self):
        acc = np.array([ACC.raw_max - 1])
        out = fx_mac(acc, ACC, np.array([127]), DATA, np.array([127]), WEIGHT)
        assert out[0] == ACC.raw_max


class TestRequantize:
    def test_nearest_rounding_positive(self):
        # 25-bit frac 10 -> 8-bit frac 4: shift 6, half = 32
        assert requantize(np.array([31]), ACC, DATA)[0] == 0
        assert requantize(np.array([32]), ACC, DATA)[0] == 1

    def test_nearest_rounding_symmetric(self):
        assert requantize(np.array([-32]), ACC, DATA)[0] == -1
        assert requantize(np.array([-31]), ACC, DATA)[0] == 0

    def test_floor_mode(self):
        assert requantize(np.array([-1]), ACC, DATA, Rounding.FLOOR)[0] == -1

    def test_zero_mode(self):
        assert requantize(np.array([-63]), ACC, DATA, Rounding.ZERO)[0] == 0

    def test_upshift_exact(self):
        narrow = QFormat(8, 2)
        wide = QFormat(16, 6)
        assert requantize(np.array([5]), narrow, wide)[0] == 80

    def test_saturates(self):
        assert requantize(np.array([ACC.raw_max]), ACC, DATA)[0] == DATA.raw_max


class TestHelpers:
    def test_saturate_raw_clamps_both_sides(self):
        out = saturate_raw(np.array([-1000, 0, 1000]), QFormat(8, 0))
        assert list(out) == [-128, 0, 127]

    def test_check_fits_passes_in_range(self):
        check_fits(np.array([0, 1]), DATA)

    def test_check_fits_raises(self):
        with pytest.raises(QFormatError):
            check_fits(np.array([1 << 20]), DATA)
