"""The deduplicated fixedpoint modules stay importable under old names.

``qformat``/``formats`` and ``lut``/``luts`` used to be parallel modules;
each pair now has one canonical module and one re-export shim.  These
tests pin the shims to the canonical objects so old import paths keep
returning the *same* classes (isinstance checks across the two paths must
never split), and assert that importing a shim warns about the
deprecation.
"""

import importlib
import warnings

import pytest

with warnings.catch_warnings():
    warnings.simplefilter("ignore", DeprecationWarning)
    from repro.fixedpoint import formats, lut, luts, qformat


def test_qformat_shim_is_canonical():
    assert qformat.QFormat is formats.QFormat


def test_lut_shim_is_canonical():
    assert lut.LookupTable is luts.LookupTable
    assert lut.LookupTable2D is luts.LookupTable2D


def test_package_exports_canonical():
    import repro.fixedpoint as fx

    assert fx.QFormat is formats.QFormat
    assert fx.LookupTable is luts.LookupTable
    assert fx.DATA8 is formats.DATA8


@pytest.mark.parametrize("shim", [qformat, lut])
def test_shims_emit_deprecation_warning(shim):
    # Module-level warnings only fire on (re)import; reload to observe one.
    with pytest.warns(DeprecationWarning, match="deprecated"):
        importlib.reload(shim)
