"""The deduplicated fixedpoint modules: one canonical home per object.

``qformat``/``lut`` were re-export shims left behind when the parallel
modules merged into ``formats``/``luts``; they shipped a
``DeprecationWarning`` for one release cycle and are now removed.  These
tests pin the canonical package surface and assert the old import paths
really are gone (a resurrected shim would silently re-split the
isinstance identity of ``QFormat``/``LookupTable`` across two paths).
"""

import importlib

import pytest

from repro.fixedpoint import formats, luts


def test_package_exports_canonical():
    import repro.fixedpoint as fx

    assert fx.QFormat is formats.QFormat
    assert fx.LookupTable is luts.LookupTable
    assert fx.LookupTable2D is luts.LookupTable2D
    assert fx.DATA8 is formats.DATA8


@pytest.mark.parametrize("name", ["repro.fixedpoint.qformat", "repro.fixedpoint.lut"])
def test_removed_shims_do_not_import(name):
    with pytest.raises(ModuleNotFoundError):
        importlib.import_module(name)
