"""Property-based tests (hypothesis) for the fixed-point substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint.arith import fx_mac, requantize, saturate_raw
from repro.fixedpoint.luts import fixed_sqrt
from repro.fixedpoint.formats import QFormat
from repro.fixedpoint.quantize import Rounding, from_raw, quantize, to_raw

DATA = QFormat(8, 4)
WEIGHT = QFormat(8, 6)
ACC = QFormat(25, 10)


def formats_strategy():
    return st.builds(
        QFormat,
        total_bits=st.integers(min_value=2, max_value=24),
        frac_bits=st.integers(min_value=-4, max_value=24),
        signed=st.booleans(),
    )


@given(fmt=formats_strategy(), value=st.floats(-1e6, 1e6, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_quantize_always_in_range(fmt, value):
    out = quantize(value, fmt)
    assert fmt.min_value - 1e-9 <= float(out) <= fmt.max_value + 1e-9


@given(fmt=formats_strategy(), value=st.floats(-1e4, 1e4, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_quantize_idempotent(fmt, value):
    once = quantize(value, fmt)
    assert float(quantize(float(once), fmt)) == float(once)


@given(
    fmt=formats_strategy(),
    rounding=st.sampled_from(list(Rounding)),
)
@settings(max_examples=100, deadline=None)
def test_grid_round_trip_all_modes(fmt, rounding):
    codes = np.arange(fmt.raw_min, min(fmt.raw_max, fmt.raw_min + 512) + 1)
    values = from_raw(codes, fmt)
    assert np.array_equal(to_raw(values, fmt, rounding=rounding), codes)


@given(
    data=st.lists(st.integers(-128, 127), min_size=1, max_size=64),
    weight=st.lists(st.integers(-128, 127), min_size=1, max_size=64),
)
@settings(max_examples=200, deadline=None)
def test_mac_chain_equals_exact_dot(data, weight):
    length = min(len(data), len(weight))
    d = np.array(data[:length])
    w = np.array(weight[:length])
    acc = np.zeros(1, dtype=np.int64)
    for i in range(length):
        acc = fx_mac(acc, ACC, d[i : i + 1], DATA, w[i : i + 1], WEIGHT)
    exact = int(np.dot(d, w))
    # With |products| <= 16129 and <= 64 terms, no saturation can occur.
    assert acc[0] == exact


@given(raw=st.integers(-(2**24), 2**24 - 1))
@settings(max_examples=300, deadline=None)
def test_requantize_error_at_most_half_ulp(raw):
    out = requantize(np.array([raw]), ACC, DATA)
    exact = raw / (1 << ACC.frac_bits)
    clipped = min(max(exact, DATA.min_value), DATA.max_value)
    assert abs(float(from_raw(out, DATA)[0]) - clipped) <= DATA.resolution / 2 + 1e-12


@given(raw=st.integers(0, 2**20))
@settings(max_examples=300, deadline=None)
def test_fixed_sqrt_nearest(raw):
    fmt_in = QFormat(21, 0, signed=False)
    fmt_out = QFormat(12, 0, signed=False)
    got = int(fixed_sqrt(np.array([raw]), fmt_in, fmt_out)[0])
    exact = np.sqrt(raw)
    assert abs(got - exact) <= 0.5 + 1e-9


@given(
    values=st.lists(st.integers(-(2**30), 2**30), min_size=1, max_size=32),
    bits=st.integers(4, 25),
)
@settings(max_examples=200, deadline=None)
def test_saturate_raw_always_within(values, bits):
    fmt = QFormat(bits, 0)
    out = saturate_raw(np.array(values), fmt)
    assert out.min() >= fmt.raw_min
    assert out.max() <= fmt.raw_max
