"""Unit tests for the concrete CapsAcc lookup tables and fixed sqrt."""


import numpy as np
import pytest

from repro.fixedpoint import formats
from repro.fixedpoint.luts import (
    build_exp_lut,
    build_square_lut,
    build_squash_lut,
    fixed_sqrt,
    lut_inventory,
    squash_gain,
)
from repro.fixedpoint.formats import QFormat
from repro.fixedpoint.quantize import from_raw, to_raw


class TestSquashGain:
    def test_zero_norm_gain_zero(self):
        assert squash_gain(0.0) == 0.0

    def test_peak_at_one(self):
        assert squash_gain(1.0) == pytest.approx(0.5)
        assert squash_gain(0.9) < 0.5
        assert squash_gain(1.1) < 0.5

    def test_matches_formula(self):
        n = np.linspace(0, 8, 33)
        assert np.allclose(squash_gain(n), n / (1 + n * n))


class TestSquashLut:
    def test_paper_bit_widths(self):
        lut = build_squash_lut()
        assert lut.a_fmt.total_bits == 6
        assert lut.b_fmt.total_bits == 5
        assert lut.out_fmt.total_bits == 8

    def test_zero_norm_maps_to_zero(self):
        lut = build_squash_lut()
        data_codes = np.arange(lut.a_fmt.raw_min, lut.a_fmt.raw_max + 1)
        assert np.all(lut.lookup(data_codes, np.zeros_like(data_codes)) == 0)

    def test_bounded_error_on_grid(self):
        lut = build_squash_lut()
        rng = np.random.default_rng(0)
        data = rng.integers(lut.a_fmt.raw_min, lut.a_fmt.raw_max + 1, size=500)
        norm = rng.integers(0, lut.b_fmt.raw_max + 1, size=500)
        exact = from_raw(data, lut.a_fmt) * squash_gain(from_raw(norm, lut.b_fmt))
        # The ROM clamps to the squash function's true range before the
        # output format clip.
        exact = np.clip(exact, -1.0, 1.0)
        exact = np.clip(exact, lut.out_fmt.min_value, lut.out_fmt.max_value)
        got = from_raw(lut.lookup(data, norm), lut.out_fmt)
        assert np.max(np.abs(got - exact)) <= lut.out_fmt.resolution / 2 + 1e-12

    def test_entries_bounded_by_one(self):
        lut = build_squash_lut()
        data = np.arange(lut.a_fmt.raw_min, lut.a_fmt.raw_max + 1)
        for norm in range(lut.b_fmt.raw_max + 1):
            out = from_raw(lut.lookup(data, np.full_like(data, norm)), lut.out_fmt)
            assert np.abs(out).max() <= 1.0 + lut.out_fmt.resolution

    def test_odd_symmetry_in_data(self):
        lut = build_squash_lut()
        norm = np.full(10, 8)
        data = np.arange(1, 11)
        plus = from_raw(lut.lookup(data, norm), lut.out_fmt)
        minus = from_raw(lut.lookup(-data, norm), lut.out_fmt)
        assert np.allclose(plus, -minus)


class TestSquareLut:
    def test_paper_bit_widths(self):
        lut = build_square_lut()
        assert lut.in_fmt.total_bits == 12
        assert lut.out_fmt.total_bits == 8

    def test_non_negative_output(self):
        lut = build_square_lut()
        codes = np.arange(lut.in_fmt.raw_min, lut.in_fmt.raw_max + 1)
        assert lut.lookup(codes).min() >= 0

    def test_small_values_exact(self):
        lut = build_square_lut()
        for value in (0.0, 0.25, 0.5, 1.0, 1.5):
            raw = to_raw(value, lut.in_fmt)
            got = from_raw(lut.lookup(raw), lut.out_fmt)
            assert got == pytest.approx(value * value, abs=lut.out_fmt.resolution)

    def test_large_values_saturate(self):
        lut = build_square_lut()
        raw = to_raw(7.0, lut.in_fmt)
        assert lut.lookup(raw) == lut.out_fmt.raw_max


class TestExpLut:
    def test_paper_bit_width(self):
        lut = build_exp_lut()
        assert lut.in_fmt.total_bits == 8
        assert lut.out_fmt.total_bits == 8

    def test_exp_zero_is_one(self):
        lut = build_exp_lut()
        assert from_raw(lut.lookup(to_raw(0.0, lut.in_fmt)), lut.out_fmt) == pytest.approx(
            1.0, abs=lut.out_fmt.resolution
        )

    def test_monotonic_on_negative_domain(self):
        lut = build_exp_lut()
        codes = np.arange(lut.in_fmt.raw_min, 1)
        outputs = lut.lookup(codes)
        assert np.all(np.diff(outputs.astype(np.int64)) >= 0)

    def test_very_negative_underflows_to_zero(self):
        lut = build_exp_lut()
        assert lut.lookup(lut.in_fmt.raw_min) == 0


class TestFixedSqrt:
    def test_exact_squares(self):
        fmt_in = QFormat(16, 0, signed=False)
        fmt_out = QFormat(8, 0, signed=False)
        values = np.array([0, 1, 4, 9, 16, 144, 255 * 255])
        roots = fixed_sqrt(values, fmt_in, fmt_out)
        assert list(roots) == [0, 1, 2, 3, 4, 12, 255]

    def test_rounds_to_nearest(self):
        fmt_in = QFormat(16, 0, signed=False)
        fmt_out = QFormat(8, 0, signed=False)
        # sqrt(8) = 2.828 -> 3; sqrt(6) = 2.449 -> 2
        assert fixed_sqrt(np.array([8]), fmt_in, fmt_out)[0] == 3
        assert fixed_sqrt(np.array([6]), fmt_in, fmt_out)[0] == 2

    def test_fractional_formats(self):
        fmt_in = QFormat(16, 6, signed=False)
        fmt_out = formats.NORM5
        value = 2.25  # sqrt = 1.5, exactly representable at frac 3
        raw = to_raw(value, fmt_in)
        assert from_raw(fixed_sqrt(raw, fmt_in, fmt_out), fmt_out) == 1.5

    def test_matches_float_sqrt_within_half_ulp(self):
        fmt_in = QFormat(14, 6, signed=False)
        fmt_out = formats.NORM5
        rng = np.random.default_rng(1)
        raw = rng.integers(0, 900, size=300)
        got = from_raw(fixed_sqrt(raw, fmt_in, fmt_out), fmt_out)
        exact = np.sqrt(from_raw(raw, fmt_in))
        clipped = np.minimum(exact, fmt_out.max_value)
        assert np.max(np.abs(got - clipped)) <= fmt_out.resolution / 2 + 1e-9

    def test_negative_input_rejected(self):
        with pytest.raises(ValueError):
            fixed_sqrt(np.array([-1]), QFormat(8, 0), formats.NORM5)

    def test_scalar_input_returns_scalar_shape(self):
        out = fixed_sqrt(4, QFormat(8, 0, signed=False), QFormat(8, 0, signed=False))
        assert out.shape == ()
        assert int(out) == 2


class TestInventory:
    def test_inventory_matches_paper_addressing(self):
        inv = lut_inventory()
        assert inv["squash"] == (2**6) * (2**5) * 8
        assert inv["square"] == (2**12) * 8
        assert inv["exp"] == (2**8) * 8
