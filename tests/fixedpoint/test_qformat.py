"""Unit tests for the Q-format specification."""

import pytest

from repro.errors import QFormatError
from repro.fixedpoint.formats import QFormat


class TestRanges:
    def test_signed_8bit_raw_range(self):
        fmt = QFormat(8, 4)
        assert fmt.raw_min == -128
        assert fmt.raw_max == 127

    def test_unsigned_raw_range(self):
        fmt = QFormat(5, 2, signed=False)
        assert fmt.raw_min == 0
        assert fmt.raw_max == 31

    def test_real_range_signed(self):
        fmt = QFormat(8, 4)
        assert fmt.min_value == -8.0
        assert fmt.max_value == pytest.approx(7.9375)

    def test_resolution(self):
        assert QFormat(8, 6).resolution == pytest.approx(1.0 / 64)

    def test_negative_frac_bits_resolution(self):
        assert QFormat(8, -2).resolution == 4.0

    def test_int_bits_accounts_for_sign(self):
        assert QFormat(8, 4).int_bits == 3
        assert QFormat(8, 4, signed=False).int_bits == 4

    def test_num_codes(self):
        assert QFormat(6, 3).num_codes == 64

    def test_25bit_accumulator_range(self):
        fmt = QFormat(25, 10)
        assert fmt.raw_max == 2**24 - 1
        assert fmt.raw_min == -(2**24)


class TestValidation:
    def test_zero_bits_rejected(self):
        with pytest.raises(QFormatError):
            QFormat(0, 0)

    def test_signed_needs_two_bits(self):
        with pytest.raises(QFormatError):
            QFormat(1, 0, signed=True)

    def test_unsigned_single_bit_allowed(self):
        fmt = QFormat(1, 0, signed=False)
        assert fmt.raw_max == 1


class TestContainsAndWrap:
    def test_contains_raw(self):
        fmt = QFormat(8, 0)
        assert fmt.contains_raw(127)
        assert fmt.contains_raw(-128)
        assert not fmt.contains_raw(128)

    def test_wrap_positive_in_range(self):
        fmt = QFormat(8, 0)
        assert fmt.wrap_raw(100) == 100

    def test_wrap_twos_complement(self):
        fmt = QFormat(8, 0)
        assert fmt.wrap_raw(255) == -1
        assert fmt.wrap_raw(128) == -128

    def test_wrap_unsigned_masks(self):
        fmt = QFormat(5, 0, signed=False)
        assert fmt.wrap_raw(33) == 1

    def test_describe_mentions_bits(self):
        text = QFormat(8, 6).describe()
        assert "8 bits" in text


class TestEquality:
    def test_frozen_dataclass_equality(self):
        assert QFormat(8, 4) == QFormat(8, 4)
        assert QFormat(8, 4) != QFormat(8, 5)

    def test_hashable(self):
        assert len({QFormat(8, 4), QFormat(8, 4), QFormat(8, 5)}) == 2
