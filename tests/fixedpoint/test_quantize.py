"""Unit tests for float <-> raw conversion."""

import numpy as np
import pytest

from repro.errors import SaturationError
from repro.fixedpoint.formats import QFormat
from repro.fixedpoint.quantize import (
    Rounding,
    from_raw,
    quantization_error_bound,
    quantize,
    to_raw,
)

FMT = QFormat(8, 4)


class TestToRaw:
    def test_exact_values(self):
        assert to_raw(1.0, FMT) == 16
        assert to_raw(-1.0, FMT) == -16

    def test_rounding_nearest_half_away(self):
        assert to_raw(1.0 / 32, FMT) == 1  # 0.5 ulp rounds away from zero
        assert to_raw(-1.0 / 32, FMT) == -1

    def test_rounding_floor(self):
        assert to_raw(0.99 / 16, FMT, rounding=Rounding.FLOOR) == 0
        assert to_raw(-0.01, FMT, rounding=Rounding.FLOOR) == -1

    def test_rounding_zero_truncates(self):
        assert to_raw(-0.05, FMT, rounding=Rounding.ZERO) == 0

    def test_saturation_clamps(self):
        assert to_raw(100.0, FMT) == FMT.raw_max
        assert to_raw(-100.0, FMT) == FMT.raw_min

    def test_saturation_disabled_raises(self):
        with pytest.raises(SaturationError):
            to_raw(100.0, FMT, saturate=False)

    def test_vectorized_shape(self):
        values = np.linspace(-1, 1, 7).reshape(7, 1)
        raw = to_raw(values, FMT)
        assert raw.shape == (7, 1)
        assert raw.dtype == np.int64

    def test_negative_frac_bits(self):
        coarse = QFormat(8, -2)
        assert to_raw(8.0, coarse) == 2


class TestFromRaw:
    def test_round_trip_exact_grid(self):
        raw = np.arange(FMT.raw_min, FMT.raw_max + 1)
        values = from_raw(raw, FMT)
        assert np.array_equal(to_raw(values, FMT), raw)

    def test_scaling(self):
        assert from_raw(16, FMT) == 1.0

    def test_negative_frac_bits(self):
        coarse = QFormat(8, -2)
        assert from_raw(2, coarse) == 8.0


class TestQuantize:
    def test_error_bound_nearest(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(FMT.min_value, FMT.max_value, size=1000)
        err = np.abs(quantize(values, FMT) - values)
        assert err.max() <= quantization_error_bound(FMT) + 1e-12

    def test_error_bound_floor(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(FMT.min_value, FMT.max_value - FMT.resolution, size=1000)
        err = np.abs(quantize(values, FMT, rounding=Rounding.FLOOR) - values)
        assert err.max() <= quantization_error_bound(FMT, Rounding.FLOOR) + 1e-12

    def test_idempotent(self):
        values = np.linspace(-2, 2, 101)
        once = quantize(values, FMT)
        assert np.array_equal(quantize(once, FMT), once)
