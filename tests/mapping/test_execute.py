"""Integration tests: the mapped accelerator execution is bit-identical to
the quantized reference (the paper's functional-compliance claim)."""

import numpy as np
import pytest

from repro.hw.accelerator import CapsAccAccelerator
from repro.hw.config import AcceleratorConfig
from repro.mapping.execute import MappedInference


@pytest.fixture(scope="module")
def mapped(tiny_qnet):
    return MappedInference(tiny_qnet)


@pytest.fixture(scope="module")
def reference_and_mapped(tiny_qnet, mapped, tiny_images):
    image = tiny_images[0]
    return tiny_qnet.forward(image), mapped.run(image)


class TestBitExactness:
    def test_conv1_bit_exact(self, reference_and_mapped):
        reference, result = reference_and_mapped
        assert np.array_equal(result.conv1_raw, reference.conv1_out_raw)

    def test_primary_capsules_bit_exact(self, reference_and_mapped):
        reference, result = reference_and_mapped
        assert np.array_equal(result.primary_raw, reference.primary_raw)

    def test_u_hat_bit_exact(self, reference_and_mapped):
        reference, result = reference_and_mapped
        assert np.array_equal(result.u_hat_raw, reference.u_hat_raw)

    def test_class_capsules_bit_exact(self, reference_and_mapped):
        reference, result = reference_and_mapped
        assert np.array_equal(result.class_caps_raw, reference.class_caps_raw)

    def test_coupling_coefficients_bit_exact(self, reference_and_mapped):
        reference, result = reference_and_mapped
        assert np.array_equal(result.coupling_raw, reference.coupling_raw)

    def test_multiple_images(self, tiny_qnet, mapped, tiny_images):
        for image in tiny_images[1:3]:
            reference = tiny_qnet.forward(image)
            result = mapped.run(image)
            assert np.array_equal(result.class_caps_raw, reference.class_caps_raw)


class TestSteppedEngine:
    def test_stepped_engine_bit_exact_on_small_array(self, tiny_qnet, tiny_images):
        """Full end-to-end inference on the clock-edge-accurate engine."""
        accel = CapsAccAccelerator(AcceleratorConfig(rows=8, cols=8), tiny_qnet.formats)
        mapped = MappedInference(tiny_qnet, accelerator=accel, engine="stepped")
        reference = tiny_qnet.forward(tiny_images[0])
        result = mapped.run(tiny_images[0])
        assert np.array_equal(result.class_caps_raw, reference.class_caps_raw)
        assert np.array_equal(result.coupling_raw, reference.coupling_raw)


class TestStatistics:
    def test_stage_stats_present(self, reference_and_mapped):
        _, result = reference_and_mapped
        for stage in ("conv1", "primarycaps", "classcaps_fc", "sum1", "update1"):
            assert stage in result.stage_stats

    def test_total_stats_aggregate(self, reference_and_mapped):
        _, result = reference_and_mapped
        total = result.total_stats
        assert total.total_cycles == sum(
            stats.total_cycles for stats in result.stage_stats.values()
        )
        assert total.mac_count > 0

    def test_sum_stages_use_feedback_after_first_iteration(self, reference_and_mapped):
        _, result = reference_and_mapped
        # Iteration 1 streams predictions from the data buffer...
        assert any(
            key.startswith("data_buffer") for key in result.stage_stats["sum1"].accesses
        )
        # ...later iterations reuse them through the feedback path.
        assert not any(
            key.startswith("data_buffer") for key in result.stage_stats["sum2"].accesses
        )

    def test_mac_counts_match_shapes(self, reference_and_mapped, tiny_config):
        from repro.mapping.shapes import classcaps_fc_stage

        _, result = reference_and_mapped
        assert (
            result.stage_stats["classcaps_fc"].mac_count
            == classcaps_fc_stage(tiny_config).macs
        )

    def test_different_array_sizes_same_results(self, tiny_qnet, tiny_images):
        small = MappedInference(
            tiny_qnet, CapsAccAccelerator(AcceleratorConfig(rows=4, cols=4), tiny_qnet.formats)
        )
        large = MappedInference(
            tiny_qnet, CapsAccAccelerator(AcceleratorConfig(rows=32, cols=32), tiny_qnet.formats)
        )
        a = small.run(tiny_images[0])
        b = large.run(tiny_images[0])
        assert np.array_equal(a.class_caps_raw, b.class_caps_raw)
        # But cycle costs differ.
        assert a.total_stats.total_cycles != b.total_stats.total_cycles
