"""Executable conv mapping policies: identical results, different cycles."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.mapping.execute import MappedInference


class TestChannelSerialExecution:
    @pytest.fixture(scope="class")
    def results(self, tiny_qnet, tiny_images):
        parallel = MappedInference(tiny_qnet, conv_policy="channel_parallel")
        serial = MappedInference(tiny_qnet, conv_policy="channel_serial")
        return parallel.run(tiny_images[0]), serial.run(tiny_images[0])

    def test_bit_identical_results(self, results):
        parallel, serial = results
        assert np.array_equal(parallel.conv1_raw, serial.conv1_raw)
        assert np.array_equal(parallel.primary_raw, serial.primary_raw)
        assert np.array_equal(parallel.class_caps_raw, serial.class_caps_raw)

    def test_serial_costs_more_cycles(self, results):
        parallel, serial = results
        assert (
            serial.stage_stats["conv1"].total_cycles
            > parallel.stage_stats["conv1"].total_cycles
        )

    def test_same_mac_count(self, results):
        parallel, serial = results
        assert (
            serial.stage_stats["conv1"].mac_count
            == parallel.stage_stats["conv1"].mac_count
        )

    def test_serial_matches_quantized_reference(self, tiny_qnet, tiny_images):
        serial = MappedInference(tiny_qnet, conv_policy="channel_serial")
        reference = tiny_qnet.forward(tiny_images[1])
        result = serial.run(tiny_images[1])
        assert np.array_equal(result.class_caps_raw, reference.class_caps_raw)

    def test_unknown_policy_rejected(self, tiny_qnet):
        with pytest.raises(ShapeError):
            MappedInference(tiny_qnet, conv_policy="diagonal")


class TestQuantizedBatchPredict:
    def test_batch_matches_singles(self, tiny_qnet, tiny_images):
        batch = tiny_qnet.predict_batch(tiny_images)
        singles = [tiny_qnet.predict(image) for image in tiny_images]
        assert list(batch) == singles
