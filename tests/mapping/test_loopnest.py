"""Unit tests for the Fig 13 loop nest."""

import pytest

from repro.errors import MappingError
from repro.mapping.loopnest import LOOP_ORDER, Loop, LoopNest, capsule_loop_nest
from repro.mapping.shapes import classcaps_fc_stage, conv_stage


class TestLoop:
    def test_valid_loop(self):
        loop = Loop("k", 256)
        assert loop.description == "output channels"

    def test_unknown_dimension_rejected(self):
        with pytest.raises(MappingError):
            Loop("z", 4)

    def test_zero_count_rejected(self):
        with pytest.raises(MappingError):
            Loop("k", 0)


class TestLoopNest:
    def test_total_macs_is_product(self):
        nest = LoopNest("t", (Loop("k", 3), Loop("i", 5), Loop("r", 7)))
        assert nest.total_macs == 105

    def test_trip_defaults_to_one(self):
        nest = LoopNest("t", (Loop("k", 3),))
        assert nest.trip("l") == 1
        assert nest.trip("k") == 3

    def test_order_enforced(self):
        with pytest.raises(MappingError):
            LoopNest("bad", (Loop("i", 2), Loop("k", 2)))  # i before k

    def test_duplicates_rejected(self):
        with pytest.raises(MappingError):
            LoopNest("bad", (Loop("k", 2), Loop("k", 3)))

    def test_canonical_order_constant(self):
        assert LOOP_ORDER == ("l", "k", "j", "i", "g", "f", "c", "r")


class TestLayerNests:
    def test_conv1_macs_match_gemm_lowering(self, mnist_config):
        nest = capsule_loop_nest(mnist_config, "conv1")
        stage = conv_stage(mnist_config, "conv1")
        assert nest.total_macs == stage.macs == 400 * 81 * 256

    def test_primarycaps_macs_match_gemm_lowering(self, mnist_config):
        nest = capsule_loop_nest(mnist_config, "primarycaps")
        stage = conv_stage(mnist_config, "primarycaps")
        assert nest.total_macs == stage.macs

    def test_classcaps_macs_match_fc_lowering(self, mnist_config):
        nest = capsule_loop_nest(mnist_config, "classcaps")
        stage = classcaps_fc_stage(mnist_config)
        assert nest.total_macs == stage.macs == 1152 * 10 * 16 * 8

    def test_tiny_config_consistency(self, tiny_config):
        for layer in ("conv1", "primarycaps", "classcaps"):
            assert capsule_loop_nest(tiny_config, layer).total_macs > 0

    def test_unknown_layer_rejected(self, mnist_config):
        with pytest.raises(MappingError):
            capsule_loop_nest(mnist_config, "decoder")
