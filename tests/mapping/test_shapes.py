"""Unit tests for the shape-level stage descriptions."""

import pytest

from repro.errors import MappingError
from repro.hw.activation import ActivationMode
from repro.mapping.shapes import (
    ActivationWork,
    GemmShape,
    classcaps_fc_stage,
    conv_stage,
    full_inference_stages,
    load_stage,
    routing_sum_stage,
    routing_stages,
    routing_update_stage,
    stage_layer,
    transfer_cycles,
)


class TestGemmShape:
    def test_macs(self):
        shape = GemmShape(m=4, k=5, n=6, count=3)
        assert shape.macs == 360

    def test_validation(self):
        with pytest.raises(MappingError):
            GemmShape(m=0, k=1, n=1)


class TestActivationWork:
    def test_validation(self):
        with pytest.raises(MappingError):
            ActivationWork(ActivationMode.RELU, n=0)
        with pytest.raises(MappingError):
            ActivationWork(ActivationMode.RELU, n=1, units=0)


class TestConvStages:
    def test_conv1_dimensions(self, mnist_config):
        stage = conv_stage(mnist_config, "conv1")
        gemm = stage.gemms[0]
        assert (gemm.m, gemm.k, gemm.n) == (400, 81, 256)
        assert stage.activations[0].mode is ActivationMode.RELU

    def test_primarycaps_dimensions(self, mnist_config):
        stage = conv_stage(mnist_config, "primarycaps")
        gemm = stage.gemms[0]
        assert (gemm.m, gemm.k, gemm.n) == (36, 9 * 9 * 256, 256)
        assert stage.activations[0].mode is ActivationMode.SQUASH
        assert stage.activations[0].groups == 1152

    def test_channel_serial_policy(self, mnist_config):
        stage = conv_stage(mnist_config, "conv1", policy="channel_serial")
        gemm = stage.gemms[0]
        assert gemm.n == 1
        assert gemm.count == 256
        assert gemm.macs == conv_stage(mnist_config, "conv1").macs

    def test_unknown_policy_rejected(self, mnist_config):
        with pytest.raises(MappingError):
            conv_stage(mnist_config, "conv1", policy="zigzag")

    def test_unknown_layer_rejected(self, mnist_config):
        with pytest.raises(MappingError):
            conv_stage(mnist_config, "classcaps")


class TestClassCapsStages:
    def test_fc_one_gemm_per_capsule(self, mnist_config):
        stage = classcaps_fc_stage(mnist_config)
        gemm = stage.gemms[0]
        assert gemm.count == 1152
        assert (gemm.m, gemm.k, gemm.n) == (1, 8, 160)
        assert stage.macs == 1474560  # every FC weight used exactly once

    def test_load_stage_words(self, mnist_config):
        stage = load_stage(mnist_config)
        assert stage.transfer_words == 1152 * 8 + 11520


class TestRoutingStages:
    def test_sum_uses_data_buffer_then_feedback(self, mnist_config):
        first = routing_sum_stage(mnist_config, 1)
        later = routing_sum_stage(mnist_config, 2)
        assert first.gemms[0].data_source == "data_buffer"
        assert later.gemms[0].data_source == "feedback"

    def test_sum_coefficients_from_routing_buffer(self, mnist_config):
        stage = routing_sum_stage(mnist_config, 1)
        assert stage.gemms[0].weight_source == "routing_buffer"

    def test_update_reuses_feedback(self, mnist_config):
        stage = routing_update_stage(mnist_config, 1)
        assert stage.gemms[0].data_source == "feedback"
        assert stage.gemms[0].m == 1152

    def test_optimized_sequence_skips_first_softmax(self, mnist_config):
        stages = routing_stages(mnist_config, optimized=True)
        names = [s.name for s in stages]
        assert names[0] == "softmax1 (skipped)"
        assert "softmax2" in names
        skipped = stages[0]
        assert not skipped.activations  # transfer only
        assert skipped.transfer_words > 0

    def test_textbook_sequence_runs_all(self, mnist_config):
        stages = routing_stages(mnist_config, optimized=False)
        softmaxes = [s for s in stages if s.name.startswith("softmax")]
        assert len(softmaxes) == 3
        assert all(s.activations for s in softmaxes)

    def test_sequence_order_matches_fig9(self, mnist_config):
        names = [s.name for s in routing_stages(mnist_config, optimized=False)]
        assert names == [
            "softmax1", "sum1", "squash1", "update1",
            "softmax2", "sum2", "squash2", "update2",
            "softmax3", "sum3", "squash3",
        ]

    def test_cross_column_activations_serialize(self, mnist_config):
        stages = routing_stages(mnist_config, optimized=False)
        for stage in stages:
            for work in stage.activations:
                assert work.units == 1


class TestFullInference:
    def test_stage_order(self, mnist_config):
        names = [s.name for s in full_inference_stages(mnist_config)]
        assert names[:4] == ["conv1", "primarycaps", "load", "classcaps_fc"]
        assert names[-1] == "squash3"

    def test_total_macs_constant_across_policies(self, mnist_config):
        parallel = sum(s.macs for s in full_inference_stages(mnist_config))
        serial = sum(
            s.macs
            for s in full_inference_stages(mnist_config, conv_policy="channel_serial")
        )
        assert parallel == serial

    def test_stage_layer_aggregation(self):
        assert stage_layer("conv1") == "Conv1"
        assert stage_layer("primarycaps") == "PrimaryCaps"
        assert stage_layer("sum2") == "ClassCaps"
        assert stage_layer("classcaps_fc") == "ClassCaps"


class TestTransferCycles:
    def test_rounds_up(self):
        assert transfer_cycles(17, 16) == 2

    def test_zero_free(self):
        assert transfer_cycles(0, 16) == 0
