"""Tests for the batched multi-image scheduler.

The key guarantees:

* batched scheduling is bit-identical, image for image, to the
  single-image executable lowering (and to the quantized golden model);
* results are invariant to how the stream is split into batches;
* the per-layer GEMM accounting agrees with the analytical performance
  model evaluated at the same batch size (shared formulas);
* both engines agree; batching strictly improves amortized cycles.
"""

import numpy as np
import pytest

from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.errors import ShapeError
from repro.hw.accelerator import CapsAccAccelerator
from repro.hw.config import AcceleratorConfig
from repro.hw.scheduler import BatchScheduler
from repro.mapping.execute import MappedInference
from repro.mapping.shapes import classcaps_fc_stage, conv_stage, routing_stages
from repro.perf.cycles import stage_performance


@pytest.fixture(scope="module")
def qnet(tiny_config, tiny_weights):
    return QuantizedCapsuleNet(tiny_config, weights=tiny_weights)


@pytest.fixture(scope="module")
def batch_result(qnet, tiny_images):
    return BatchScheduler(qnet).run_batch(tiny_images)


class TestBitExactness:
    def test_matches_mapped_inference_per_image(self, qnet, tiny_images, batch_result):
        mapped = MappedInference(qnet)
        for b, image in enumerate(tiny_images):
            single = mapped.run(image)
            assert np.array_equal(batch_result.conv1_raw[b], single.conv1_raw)
            assert np.array_equal(batch_result.primary_raw[b], single.primary_raw)
            assert np.array_equal(batch_result.u_hat_raw[b], single.u_hat_raw)
            assert np.array_equal(batch_result.class_caps_raw[b], single.class_caps_raw)
            assert np.array_equal(batch_result.coupling_raw[b], single.coupling_raw)

    def test_matches_quantized_golden_predictions(self, qnet, tiny_images, batch_result):
        assert np.array_equal(
            batch_result.predictions, qnet.predict_batch(tiny_images)
        )

    def test_batch_split_invariance(self, qnet, tiny_images, batch_result):
        scheduler = BatchScheduler(qnet)
        parts = [scheduler.run_batch(tiny_images[:2]), scheduler.run_batch(tiny_images[2:])]
        merged = np.concatenate([p.class_caps_raw for p in parts])
        assert np.array_equal(merged, batch_result.class_caps_raw)

    def test_non_optimized_routing_matches(self, tiny_config, tiny_weights, tiny_images):
        qnet = QuantizedCapsuleNet(
            tiny_config, weights=tiny_weights, optimized_routing=False
        )
        result = BatchScheduler(qnet).run_batch(tiny_images[:2])
        mapped = MappedInference(qnet)
        for b in range(2):
            single = mapped.run(tiny_images[b])
            assert np.array_equal(result.class_caps_raw[b], single.class_caps_raw)
        assert "softmax1" in result.layers

    def test_stepped_engine_agrees(self, qnet, tiny_images, batch_result):
        accel = CapsAccAccelerator(AcceleratorConfig(rows=8, cols=8), formats=qnet.formats)
        stepped = BatchScheduler(qnet, accelerator=accel, engine="stepped").run_batch(
            tiny_images[:2]
        )
        fast = BatchScheduler(
            qnet,
            accelerator=CapsAccAccelerator(
                AcceleratorConfig(rows=8, cols=8), formats=qnet.formats
            ),
        ).run_batch(tiny_images[:2])
        assert np.array_equal(stepped.class_caps_raw, fast.class_caps_raw)
        assert stepped.total_cycles == fast.total_cycles

    def test_rejects_bad_batch_shape(self, qnet, tiny_images):
        with pytest.raises(ShapeError):
            BatchScheduler(qnet).run_batch(tiny_images[0])


class TestAccounting:
    @pytest.fixture(scope="class")
    def batch(self, tiny_images):
        return len(tiny_images)

    def test_conv_layers_match_perf_model(self, qnet, batch_result, batch):
        config = BatchScheduler(qnet).accelerator.config
        for layer in ("conv1", "primarycaps"):
            stage = conv_stage(qnet.config, layer)
            perf = stage_performance(config, stage, overlap=False, batch=batch)
            report = batch_result.layers[layer]
            assert report.gemm_cycles == perf.gemm_cycles
            assert report.stats.activation_cycles == perf.activation_cycles
            assert report.stats.mac_count == stage.macs * batch

    def test_fc_layer_matches_perf_model(self, qnet, batch_result, batch):
        config = BatchScheduler(qnet).accelerator.config
        stage = classcaps_fc_stage(qnet.config)
        perf = stage_performance(config, stage, overlap=False, batch=batch)
        report = batch_result.layers["classcaps_fc"]
        assert report.gemm_cycles == perf.gemm_cycles
        assert report.jobs == qnet.config.num_primary_capsules

    def test_routing_layers_match_perf_model(self, qnet, batch_result, batch):
        config = BatchScheduler(qnet).accelerator.config
        for stage in routing_stages(qnet.config, optimized=True):
            if not stage.gemms:
                continue
            perf = stage_performance(config, stage, overlap=False, batch=batch)
            report = batch_result.layers[stage.name]
            assert report.gemm_cycles == perf.gemm_cycles

    def test_overlap_never_slower(self, batch_result):
        for report in batch_result.layers.values():
            assert report.overlapped_cycles <= report.stats.total_cycles
        assert batch_result.overlapped_cycles <= batch_result.total_cycles

    def test_batching_improves_amortized_cycles(self, qnet, tiny_images):
        scheduler = BatchScheduler(qnet)
        one = scheduler.run_batch(tiny_images[:1])
        full = scheduler.run_batch(tiny_images)
        assert full.cycles_per_image() < one.cycles_per_image()
        assert full.images_per_second(250.0) > one.images_per_second(250.0)

    def test_utilization_bounded_and_improves(self, qnet, tiny_images):
        scheduler = BatchScheduler(qnet)
        config = scheduler.accelerator.config
        one = scheduler.run_batch(tiny_images[:1])
        full = scheduler.run_batch(tiny_images)
        assert 0.0 < one.utilization(config.num_pes) <= 1.0
        assert one.utilization(config.num_pes) < full.utilization(config.num_pes) <= 1.0

    def test_total_stats_sum_layers(self, batch_result):
        assert batch_result.total_cycles == sum(
            r.stats.total_cycles for r in batch_result.layers.values()
        )
        assert batch_result.total_stats.mac_count == sum(
            r.stats.mac_count for r in batch_result.layers.values()
        )


class TestEdgeCases:
    def test_batch_of_one(self, qnet, tiny_images):
        """The degenerate batch still schedules and matches the lowering."""
        result = BatchScheduler(qnet).run_batch(tiny_images[:1])
        assert result.batch == 1
        single = MappedInference(qnet).run(tiny_images[0])
        assert np.array_equal(result.class_caps_raw[0], single.class_caps_raw)
        assert result.cycles_per_image() == result.overlapped_cycles

    def test_empty_batch_rejected(self, qnet, tiny_config):
        size = tiny_config.image_size
        empty = np.zeros((0, size, size))
        with pytest.raises(ShapeError):
            BatchScheduler(qnet).run_batch(empty)

    def test_empty_layer_list_statistics(self):
        """A result with no scheduled layers reports zeros, not crashes."""
        from repro.hw.scheduler import BatchResult, LayerReport

        result = BatchResult(
            batch=1,
            predictions=np.zeros(1, dtype=np.int64),
            conv1_raw=np.zeros(0),
            primary_raw=np.zeros(0),
            u_hat_raw=np.zeros(0),
            class_caps_raw=np.zeros(0),
            coupling_raw=np.zeros(0),
            length_sumsq_raw=np.zeros(0),
            layers={},
        )
        assert result.total_cycles == 0
        assert result.overlapped_cycles == 0
        assert result.utilization(256) == 0.0
        assert LayerReport(name="empty").utilization(256) == 0.0

    def test_batch_larger_than_fifo_depth(self, qnet, tiny_images):
        """A bounded accumulator FIFO forces M-tiling: identical results,
        strictly more cycles and weight traffic than the idealized bank."""
        ideal_accel = CapsAccAccelerator(formats=qnet.formats)
        ideal = BatchScheduler(qnet, accelerator=ideal_accel).run_batch(tiny_images)
        bounded_accel = CapsAccAccelerator(
            AcceleratorConfig(acc_fifo_depth=8), formats=qnet.formats
        )
        bounded = BatchScheduler(qnet, accelerator=bounded_accel).run_batch(tiny_images)
        assert np.array_equal(bounded.class_caps_raw, ideal.class_caps_raw)
        assert np.array_equal(bounded.predictions, ideal.predictions)
        assert bounded.total_cycles > ideal.total_cycles
        assert bounded.overlapped_cycles > ideal.overlapped_cycles
        # Every M-pass re-loads the weight tiles, so traffic grows too;
        # conv1 stacks B*M rows far beyond depth 8, so its jobs M-tile.
        assert bounded_accel.weight_buffer.reads > ideal_accel.weight_buffer.reads
        assert bounded.layers["conv1"].stats.total_cycles > (
            ideal.layers["conv1"].stats.total_cycles
        )
