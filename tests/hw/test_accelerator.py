"""Unit tests for the top-level accelerator and its cycle accounting.

The key guarantees:

* both engines ("fast" and "stepped") produce identical, reference-exact
  results;
* the sequential cycle accounting equals what the stepped engine actually
  consumes, tile by tile (validating the shared closed-form model);
* buffer access counters follow the mapping's operand sources.
"""

import numpy as np
import pytest

from repro.capsnet.hwops import QuantizedFormats
from repro.errors import MappingError, ShapeError
from repro.hw.accelerator import (
    CapsAccAccelerator,
    GemmJob,
    chunk_sizes,
    gemm_cycles,
    plan_tiling,
)
from repro.hw.config import AcceleratorConfig
from repro.hw.systolic import SystolicArray

FMTS = QuantizedFormats()
DATA = FMTS.caps_data
WEIGHT = FMTS.classcaps_weight
ACC = FMTS.acc(DATA, WEIGHT)


def make_job(rng, m, k, n, **kwargs):
    data = rng.integers(-60, 60, size=(m, k))
    weights = rng.integers(-60, 60, size=(k, n))
    return GemmJob("job", data, weights, DATA, WEIGHT, ACC, **kwargs)


class TestChunking:
    def test_chunk_sizes_exact_multiple(self):
        assert chunk_sizes(32, 16) == [16, 16]

    def test_chunk_sizes_remainder(self):
        assert chunk_sizes(81, 16) == [16, 16, 16, 16, 16, 1]

    def test_chunk_sizes_small(self):
        assert chunk_sizes(8, 16) == [8]

    def test_plan_tiling(self):
        plan = plan_tiling(AcceleratorConfig(), m=400, k=81, n=256)
        assert plan.k_chunks == 6
        assert plan.n_tiles == 16
        assert plan.tiles == 96

    def test_plan_rejects_zero(self):
        with pytest.raises(MappingError):
            plan_tiling(AcceleratorConfig(), 0, 1, 1)


class TestEngines:
    @pytest.mark.parametrize(
        "m,k,n",
        [(1, 4, 18), (9, 11, 6), (5, 20, 3), (16, 4, 4), (3, 33, 10)],
    )
    def test_fast_and_stepped_match_reference(self, rng, small_accel_config, m, k, n):
        accel = CapsAccAccelerator(small_accel_config)
        job = make_job(rng, m, k, n)
        fast = accel.run_gemm(job, engine="fast")
        stepped = accel.run_gemm(job, engine="stepped")
        reference = np.clip(
            job.data.astype(np.int64) @ job.weights, ACC.raw_min, ACC.raw_max
        )
        assert np.array_equal(fast.acc, reference)
        assert np.array_equal(stepped.acc, reference)

    def test_unknown_engine_rejected(self, rng, small_accel_config):
        accel = CapsAccAccelerator(small_accel_config)
        with pytest.raises(MappingError):
            accel.run_gemm(make_job(rng, 2, 2, 2), engine="warp")

    def test_shape_mismatch_rejected(self, small_accel_config):
        accel = CapsAccAccelerator(small_accel_config)
        job = GemmJob(
            "bad", np.zeros((2, 3), dtype=np.int64), np.zeros((4, 2), dtype=np.int64),
            DATA, WEIGHT, ACC,
        )
        with pytest.raises(ShapeError):
            accel.run_gemm(job)


class TestCycleAccounting:
    @pytest.mark.parametrize("m,k,n", [(7, 9, 5), (1, 4, 18), (20, 3, 3)])
    def test_sequential_formula_matches_stepped_execution(
        self, rng, small_accel_config, m, k, n
    ):
        """The closed-form (overlap=False) total equals real stepped cycles."""
        config = small_accel_config
        job = make_job(rng, m, k, n)
        array = SystolicArray(config, DATA, WEIGHT, ACC)
        measured = 0
        plan = plan_tiling(config, m, k, n)
        for n_tile in range(plan.n_tiles):
            for chunk_index, chunk in enumerate(chunk_sizes(k, config.rows)):
                k_lo = chunk_index * config.rows
                n_lo = n_tile * config.cols
                tile = np.zeros((config.rows, config.cols), dtype=np.int64)
                block = job.weights[k_lo : k_lo + chunk, n_lo : n_lo + config.cols]
                tile[: block.shape[0], : block.shape[1]] = block
                measured += array.load_weights(tile, active_rows=chunk)
                stream = np.zeros((m, config.rows), dtype=np.int64)
                stream[:, :chunk] = job.data[:, k_lo : k_lo + chunk]
                measured += array.run_tile(stream).cycles
        formula = gemm_cycles(config, m, k, n, overlap=False)
        assert formula["total"] == measured

    def test_overlap_never_slower(self, small_accel_config):
        for m, k, n in [(1, 4, 18), (100, 81, 256), (16, 1152, 1)]:
            seq = gemm_cycles(small_accel_config, m, k, n, overlap=False)["total"]
            ovl = gemm_cycles(small_accel_config, m, k, n, overlap=True)["total"]
            assert ovl <= seq

    def test_overlap_hides_loads_under_long_streams(self):
        config = AcceleratorConfig()
        cycles = gemm_cycles(config, m=400, k=81, n=256, overlap=True)
        # 96 tiles x 400 streaming cycles; only the first load and one
        # fill/drain are exposed.
        assert cycles["compute"] == 96 * 400
        assert cycles["weight_stall"] == 17
        assert cycles["fill_drain"] == 31

    def test_default_overlap_follows_config(self):
        config = AcceleratorConfig()
        assert (
            gemm_cycles(config, 10, 10, 10)
            == gemm_cycles(config, 10, 10, 10, overlap=True)
        )
        no_reuse = config.without_weight_reuse()
        assert (
            gemm_cycles(no_reuse, 10, 10, 10)
            == gemm_cycles(no_reuse, 10, 10, 10, overlap=False)
        )

    def test_mac_count(self, rng, small_accel_config):
        accel = CapsAccAccelerator(small_accel_config)
        result = accel.run_gemm(make_job(rng, 5, 6, 7))
        assert result.stats.mac_count == 5 * 6 * 7

    def test_utilization_bounded(self, rng, small_accel_config):
        accel = CapsAccAccelerator(small_accel_config)
        result = accel.run_gemm(make_job(rng, 32, 16, 16))
        util = result.stats.utilization(small_accel_config.num_pes)
        assert 0.0 < util <= 1.0


class TestAccessCounting:
    def test_weight_and_data_traffic(self, rng, small_accel_config):
        accel = CapsAccAccelerator(small_accel_config)
        m, k, n = 6, 8, 10  # 2 k-chunks x 3 n-tiles on a 4x4 array
        accel.run_gemm(make_job(rng, m, k, n))
        assert accel.weight_buffer.reads == k * n
        assert accel.data_buffer.reads == m * k * 3

    def test_feedback_source_costs_nothing(self, rng, small_accel_config):
        accel = CapsAccAccelerator(small_accel_config)
        job = make_job(rng, 4, 4, 4, data_source="feedback")
        accel.run_gemm(job)
        assert accel.data_buffer.reads == 0

    def test_routing_buffer_source(self, rng, small_accel_config):
        accel = CapsAccAccelerator(small_accel_config)
        job = make_job(rng, 4, 4, 4, weight_source="routing_buffer")
        accel.run_gemm(job)
        assert accel.routing_buffer.reads == 16
        assert accel.weight_buffer.reads == 0

    def test_reset_counters(self, rng, small_accel_config):
        accel = CapsAccAccelerator(small_accel_config)
        accel.run_gemm(make_job(rng, 4, 4, 4))
        accel.reset_counters()
        assert accel.data_buffer.reads == 0

    def test_stats_accesses_keyed_by_source(self, rng, small_accel_config):
        accel = CapsAccAccelerator(small_accel_config)
        result = accel.run_gemm(make_job(rng, 4, 4, 4))
        assert "weight_buffer.read" in result.stats.accesses
        assert "data_buffer.read" in result.stats.accesses
        assert "accumulator.write" in result.stats.accesses
