"""Unit tests for the control unit (Section IV-D)."""

import pytest

from repro.errors import MappingError
from repro.hw.activation import ActivationMode
from repro.hw.control import compile_schedule, signal_summary
from repro.mapping.shapes import (
    ActivationWork,
    GemmShape,
    StageShape,
    full_inference_stages,
)


@pytest.fixture(scope="module")
def program(mnist_config):
    return compile_schedule(full_inference_stages(mnist_config))


class TestFullSchedule:
    def test_compiles_every_stage(self, program, mnist_config):
        assert len(program.steps) == len(full_inference_stages(mnist_config))

    def test_conv_stages_use_buffers(self, program):
        for name in ("conv1", "primarycaps"):
            step = program.step(name)
            assert step.data_mux == "buffer"
            assert step.weight_mux == "weight_buffer"

    def test_conv_activation_selects(self, program):
        assert program.step("conv1").activation_select is ActivationMode.RELU
        assert program.step("primarycaps").activation_select is ActivationMode.SQUASH

    def test_first_sum_from_buffer_later_from_feedback(self, program):
        assert program.step("sum1").data_mux == "buffer"
        assert program.step("sum2").data_mux == "feedback"
        assert program.step("sum3").data_mux == "feedback"

    def test_routing_stages_use_routing_buffer_weights(self, program):
        for name in ("sum1", "sum2", "update1"):
            assert program.step(name).weight_mux == "routing_buffer"

    def test_routing_outputs_written_back(self, program):
        for name in ("squash1", "softmax2", "update1"):
            assert program.step(name).routing_buffer_write

    def test_skipped_softmax_has_no_activation(self, program):
        assert program.step("softmax1 (skipped)").activation_select is ActivationMode.NONE

    def test_signal_summary_shape(self, program):
        rows = signal_summary(program)
        assert len(rows) == len(program.steps)
        assert rows[0][0] == "conv1"


class TestLegalityChecks:
    def test_feedback_before_production_rejected(self):
        bad = StageShape(
            "sum1",
            gemms=(GemmShape(m=4, k=4, n=1, data_source="feedback",
                             weight_source="routing_buffer"),),
        )
        with pytest.raises(MappingError):
            compile_schedule([bad])

    def test_routing_buffer_outside_routing_rejected(self):
        bad = StageShape(
            "conv1",
            gemms=(GemmShape(m=4, k=4, n=4, weight_source="routing_buffer"),),
        )
        with pytest.raises(MappingError):
            compile_schedule([bad])

    def test_mixed_sources_in_one_stage_rejected(self):
        bad = StageShape(
            "sum1",
            gemms=(
                GemmShape(m=4, k=4, n=1, data_source="data_buffer",
                          weight_source="routing_buffer"),
                GemmShape(m=4, k=4, n=1, data_source="feedback",
                          weight_source="routing_buffer"),
            ),
        )
        with pytest.raises(MappingError):
            compile_schedule([bad])

    def test_multiple_activation_paths_rejected(self):
        bad = StageShape(
            "conv1",
            gemms=(GemmShape(m=4, k=4, n=4),),
            activations=(
                ActivationWork(ActivationMode.RELU, 1, 1),
                ActivationWork(ActivationMode.SQUASH, 4, 1),
            ),
        )
        with pytest.raises(MappingError):
            compile_schedule([bad])

    def test_textbook_schedule_also_legal(self, mnist_config):
        program = compile_schedule(
            full_inference_stages(mnist_config, optimized_routing=False)
        )
        assert program.step("softmax1").activation_select is ActivationMode.SOFTMAX

    def test_tiny_config_schedule_legal(self, tiny_config):
        program = compile_schedule(full_inference_stages(tiny_config))
        assert program.step("sum2").data_mux == "feedback"
