"""Tests for the cycle statistics container."""

import pytest

from repro.hw.stats import CycleStats


class TestAddition:
    def test_fields_sum(self):
        a = CycleStats(total_cycles=10, compute_cycles=6, mac_count=100)
        b = CycleStats(total_cycles=5, compute_cycles=3, mac_count=50)
        c = a + b
        assert c.total_cycles == 15
        assert c.compute_cycles == 9
        assert c.mac_count == 150

    def test_access_maps_merge(self):
        a = CycleStats()
        a.add_access("data_buffer.read", 10)
        b = CycleStats()
        b.add_access("data_buffer.read", 5)
        b.add_access("weight_buffer.read", 7)
        c = a + b
        assert c.accesses == {"data_buffer.read": 15, "weight_buffer.read": 7}

    def test_addition_does_not_mutate_operands(self):
        a = CycleStats()
        a.add_access("x", 1)
        b = CycleStats()
        _ = a + b
        assert a.accesses == {"x": 1}
        assert b.accesses == {}

    def test_identity_element(self):
        a = CycleStats(total_cycles=3, mac_count=9)
        c = a + CycleStats()
        assert c.total_cycles == 3
        assert c.mac_count == 9


class TestDerivedMetrics:
    def test_utilization(self):
        stats = CycleStats(total_cycles=100, mac_count=12800)
        assert stats.utilization(256) == pytest.approx(0.5)

    def test_utilization_zero_cycles(self):
        assert CycleStats().utilization(256) == 0.0

    def test_time_us(self):
        stats = CycleStats(total_cycles=250)
        assert stats.time_us(250.0) == pytest.approx(1.0)

    def test_summary_mentions_counts(self):
        stats = CycleStats(total_cycles=42, mac_count=7)
        text = stats.summary()
        assert "42 cycles" in text
        assert "7 MACs" in text
