"""Unit tests for the vectorized systolic array.

Includes the PE-equivalence test: the vectorized array must match a grid of
scalar :class:`ProcessingElement` objects cycle for cycle, bit for bit.
"""

import numpy as np
import pytest

from repro.capsnet.hwops import QuantizedFormats
from repro.errors import ShapeError
from repro.hw.config import AcceleratorConfig
from repro.hw.pe import ProcessingElement
from repro.hw.systolic import SystolicArray

FMTS = QuantizedFormats()
DATA = FMTS.caps_data
WEIGHT = FMTS.classcaps_weight
ACC = FMTS.acc(DATA, WEIGHT)


def make_array(rows=4, cols=4):
    return SystolicArray(AcceleratorConfig(rows=rows, cols=cols), DATA, WEIGHT, ACC)


class TestStep:
    def test_cycle_counter(self):
        array = make_array()
        array.step()
        array.step()
        assert array.cycle == 2

    def test_data_shifts_right(self):
        array = make_array()
        array.step(data_in=np.array([1, 2, 3, 4]))
        assert list(array.data[:, 0]) == [1, 2, 3, 4]
        array.step()
        assert list(array.data[:, 1]) == [1, 2, 3, 4]
        assert list(array.data[:, 0]) == [0, 0, 0, 0]

    def test_weights_shift_down(self):
        array = make_array()
        array.step(weight_in=np.array([5, 6, 7, 8]))
        assert list(array.weight_shift[0]) == [5, 6, 7, 8]
        array.step()
        assert list(array.weight_shift[1]) == [5, 6, 7, 8]

    def test_wrong_edge_shape_raises(self):
        array = make_array()
        with pytest.raises(ShapeError):
            array.step(data_in=np.zeros(3))

    def test_reset(self):
        array = make_array()
        array.step(data_in=np.array([1, 1, 1, 1]))
        array.reset()
        assert array.cycle == 0
        assert np.all(array.data == 0)


class TestLoadWeights:
    def test_full_tile_placement(self, rng):
        array = make_array()
        tile = rng.integers(-10, 10, size=(4, 4))
        cycles = array.load_weights(tile)
        assert cycles == 5
        assert np.array_equal(array.weight_hold, tile)

    def test_partial_tile_placement(self, rng):
        array = make_array()
        tile = np.zeros((4, 4), dtype=np.int64)
        tile[:2] = rng.integers(-10, 10, size=(2, 4))
        cycles = array.load_weights(tile, active_rows=2)
        assert cycles == 3
        assert np.array_equal(array.weight_hold, tile)

    def test_partial_tile_requires_zero_padding(self, rng):
        array = make_array()
        tile = rng.integers(1, 10, size=(4, 4))
        with pytest.raises(ShapeError):
            array.load_weights(tile, active_rows=2)

    def test_wrong_tile_shape_raises(self):
        array = make_array()
        with pytest.raises(ShapeError):
            array.load_weights(np.zeros((3, 4), dtype=np.int64))

    def test_reload_replaces_previous_tile(self, rng):
        array = make_array()
        first = rng.integers(-9, 9, size=(4, 4))
        second = rng.integers(-9, 9, size=(4, 4))
        array.load_weights(first)
        array.run_tile(rng.integers(-5, 5, size=(6, 4)))
        array.load_weights(second)
        assert np.array_equal(array.weight_hold, second)


class TestRunTile:
    def test_matches_reference_gemm(self, rng):
        array = make_array()
        tile = rng.integers(-60, 60, size=(4, 4))
        vectors = rng.integers(-60, 60, size=(10, 4))
        array.load_weights(tile)
        result = array.run_tile(vectors)
        assert np.array_equal(result.psums, array.compute_tile_reference(tile, vectors))

    def test_cycle_count_formula(self, rng):
        array = make_array()
        tile = rng.integers(-5, 5, size=(4, 4))
        array.load_weights(tile)
        result = array.run_tile(rng.integers(-5, 5, size=(7, 4)))
        assert result.cycles == 7 + 4 + 4 - 1

    def test_single_vector(self, rng):
        array = make_array()
        tile = rng.integers(-5, 5, size=(4, 4))
        vector = rng.integers(-5, 5, size=(1, 4))
        array.load_weights(tile)
        result = array.run_tile(vector)
        assert np.array_equal(result.psums, array.compute_tile_reference(tile, vector))

    def test_consecutive_tiles_independent(self, rng):
        array = make_array()
        for _ in range(3):
            tile = rng.integers(-40, 40, size=(4, 4))
            vectors = rng.integers(-40, 40, size=(5, 4))
            array.load_weights(tile)
            result = array.run_tile(vectors)
            assert np.array_equal(
                result.psums, array.compute_tile_reference(tile, vectors)
            )

    def test_rectangular_array(self, rng):
        config = AcceleratorConfig(rows=3, cols=5)
        array = SystolicArray(config, DATA, WEIGHT, ACC)
        tile = rng.integers(-20, 20, size=(3, 5))
        vectors = rng.integers(-20, 20, size=(8, 3))
        array.load_weights(tile)
        result = array.run_tile(vectors)
        assert np.array_equal(result.psums, array.compute_tile_reference(tile, vectors))

    def test_wrong_vector_width_raises(self, rng):
        array = make_array()
        array.load_weights(rng.integers(-5, 5, size=(4, 4)))
        with pytest.raises(ShapeError):
            array.run_tile(np.zeros((3, 5), dtype=np.int64))


class TestPEEquivalence:
    """The vectorized array must equal a grid of scalar PEs bit for bit."""

    def _scalar_grid_step(self, grid, data_in, weight_in, latch):
        rows = len(grid)
        cols = len(grid[0])
        # Capture current register state (pre-edge) for neighbour inputs.
        psums = [[grid[r][c].psum_reg for c in range(cols)] for r in range(rows)]
        datas = [[grid[r][c].data_reg for c in range(cols)] for r in range(rows)]
        weights = [[grid[r][c].weight1_reg for c in range(cols)] for r in range(rows)]
        bottom = []
        for r in range(rows):
            for c in range(cols):
                pe_data_in = data_in[r] if c == 0 else datas[r][c - 1]
                pe_weight_in = weight_in[c] if r == 0 else weights[r - 1][c]
                pe_psum_in = 0 if r == 0 else psums[r - 1][c]
                out = grid[r][c].step(
                    pe_data_in, pe_weight_in, pe_psum_in, latch_weight=latch
                )
                if r == rows - 1:
                    bottom.append(out.psum_out)
        return np.array(bottom, dtype=np.int64)

    def test_random_stimulus_equivalence(self, rng):
        rows = cols = 3
        config = AcceleratorConfig(rows=rows, cols=cols)
        array = SystolicArray(config, DATA, WEIGHT, ACC)
        grid = [
            [ProcessingElement(DATA, WEIGHT, ACC) for _ in range(cols)]
            for _ in range(rows)
        ]
        for cycle in range(60):
            data_in = rng.integers(-100, 100, size=rows)
            weight_in = rng.integers(-100, 100, size=cols)
            latch = bool(rng.integers(0, 4) == 0)
            vec_bottom = array.step(
                data_in=data_in, weight_in=weight_in, latch_weights=latch
            )
            scalar_bottom = self._scalar_grid_step(grid, data_in, weight_in, latch)
            assert np.array_equal(vec_bottom, scalar_bottom), f"cycle {cycle}"
            # Full register-plane equivalence, not just the outputs.
            for r in range(rows):
                for c in range(cols):
                    assert array.data[r, c] == grid[r][c].data_reg
                    assert array.psum[r, c] == grid[r][c].psum_reg
                    assert array.weight_shift[r, c] == grid[r][c].weight1_reg
                    assert array.weight_hold[r, c] == grid[r][c].weight2_reg
