"""Unit tests for the scalar processing element."""

import pytest

from repro.capsnet.hwops import QuantizedFormats
from repro.hw.pe import ProcessingElement

FMTS = QuantizedFormats()
DATA = FMTS.caps_data
WEIGHT = FMTS.classcaps_weight
ACC = FMTS.acc(DATA, WEIGHT)


@pytest.fixture
def pe():
    return ProcessingElement(DATA, WEIGHT, ACC)


class TestDatapath:
    def test_initial_state_zero(self, pe):
        assert pe.data_reg == 0
        assert pe.psum_reg == 0

    def test_mac_uses_registered_data(self, pe):
        # Cycle 1: present data; multiply still sees the old (zero) data.
        pe.weight1_reg = 0
        pe.weight2_reg = 3
        out1 = pe.step(data_in=5, weight_in=0, psum_in=0)
        assert out1.psum_out == 0
        # Cycle 2: the registered data (5) multiplies the held weight (3).
        out2 = pe.step(data_in=0, weight_in=0, psum_in=0)
        assert out2.psum_out == 15

    def test_psum_in_added(self, pe):
        pe.data_reg = 4
        pe.weight2_reg = 2
        out = pe.step(data_in=0, weight_in=0, psum_in=100)
        assert out.psum_out == 108

    def test_weight_shift_chain(self, pe):
        out = pe.step(data_in=0, weight_in=7, psum_in=0)
        assert out.weight_out == 7
        assert pe.weight1_reg == 7
        assert pe.weight2_reg == 0  # not latched yet

    def test_latch_copies_shift_register(self, pe):
        pe.step(data_in=0, weight_in=9, psum_in=0)
        pe.step(data_in=0, weight_in=0, psum_in=0, latch_weight=True)
        assert pe.weight2_reg == 9

    def test_latch_uses_pre_shift_value(self, pe):
        pe.step(data_in=0, weight_in=9, psum_in=0)
        # Latch while simultaneously shifting in a new weight: the hold
        # register must capture the OLD shift value.
        pe.step(data_in=0, weight_in=5, psum_in=0, latch_weight=True)
        assert pe.weight2_reg == 9
        assert pe.weight1_reg == 5

    def test_data_passes_right(self, pe):
        out = pe.step(data_in=11, weight_in=0, psum_in=0)
        assert out.data_out == 11


class TestSaturation:
    def test_psum_saturates_at_25_bits(self, pe):
        pe.data_reg = 127
        pe.weight2_reg = 127
        out = pe.step(data_in=0, weight_in=0, psum_in=ACC.raw_max - 1)
        assert out.psum_out == ACC.raw_max

    def test_data_in_clamped(self, pe):
        pe.step(data_in=1000, weight_in=0, psum_in=0)
        assert pe.data_reg == DATA.raw_max

    def test_negative_saturation(self, pe):
        pe.data_reg = -128
        pe.weight2_reg = 127
        out = pe.step(data_in=0, weight_in=0, psum_in=ACC.raw_min + 1)
        assert out.psum_out == ACC.raw_min


class TestReset:
    def test_reset_clears_registers(self, pe):
        pe.step(data_in=3, weight_in=4, psum_in=0)
        pe.reset()
        assert pe.data_reg == 0
        assert pe.weight1_reg == 0
        assert pe.weight2_reg == 0
        assert pe.psum_reg == 0
