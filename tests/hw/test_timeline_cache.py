"""Memoized op timelines and stream schedules stay bit-identical."""

import pytest

from repro.hw.pipeline import (
    cached_stream_timing,
    clear_timeline_caches,
    job_ops,
    simulate_stream,
    timeline_cache_stats,
)
from repro.hw.scheduler import (
    PipelinedStreamScheduler,
    clear_traced_ops_cache,
)
from repro.perf.stream import AnalyticStreamCost, clear_analytic_ops_cache


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_timeline_caches()
    clear_traced_ops_cache()
    clear_analytic_ops_cache()
    yield
    clear_timeline_caches()
    clear_traced_ops_cache()
    clear_analytic_ops_cache()


def timings_equal(a, b):
    assert len(a.batches) == len(b.batches)
    for batch_a, batch_b in zip(a.batches, b.batches):
        assert batch_a == batch_b
    return True


class TestJobOpsCache:
    def test_repeated_calls_share_the_expansion(self, tiny_qnet):
        from repro.hw.accelerator import CapsAccAccelerator, plan_tiling

        accelerator = CapsAccAccelerator(formats=tiny_qnet.formats)
        config = accelerator.config
        plan = plan_tiling(config, 8, 12, 10)
        first = job_ops(config, plan, groups=2, layer="conv1")
        second = job_ops(config, plan, groups=2, layer="conv1")
        assert second is first  # one shared expansion
        assert job_ops(config, plan, groups=3, layer="conv1") is not first
        assert timeline_cache_stats()["job_ops"] == 2

    def test_clear_resets(self, tiny_qnet):
        from repro.hw.accelerator import CapsAccAccelerator, plan_tiling

        accelerator = CapsAccAccelerator(formats=tiny_qnet.formats)
        plan = plan_tiling(accelerator.config, 4, 4, 4)
        job_ops(accelerator.config, plan)
        clear_timeline_caches()
        assert timeline_cache_stats()["job_ops"] == 0


class TestStreamTimingCache:
    def test_cached_timing_is_bit_identical_to_direct_simulation(self, tiny_qnet):
        scheduler = PipelinedStreamScheduler(tiny_qnet)
        ops = [scheduler.batch_ops(size) for size in (2, 2, 1)]
        direct = simulate_stream(ops, [2, 2, 1])
        cached = cached_stream_timing(ops, [2, 2, 1])
        assert timings_equal(direct, cached)
        # A repeat is the same object — bit-identity by construction.
        assert cached_stream_timing(ops, [2, 2, 1]) is cached

    def test_probe_timing_matches_pr3_scheduler_output(self, tiny_qnet):
        """Memoized timelines reproduce the PR 3 stream scheduler exactly."""
        sizes = [2] * 7
        warm = PipelinedStreamScheduler(tiny_qnet)
        memoized = warm.probe_timing(sizes)
        clear_timeline_caches()
        clear_traced_ops_cache()
        cold_scheduler = PipelinedStreamScheduler(tiny_qnet)
        cold = simulate_stream(
            [cold_scheduler.batch_ops(size) for size in sizes],
            sizes,
            window=cold_scheduler.window,
            prestage_depth=cold_scheduler.prestage_depth,
        )
        assert timings_equal(cold, memoized)
        assert cold.steady_marginal_cycles == memoized.steady_marginal_cycles

    def test_schedulers_share_traced_ops(self, tiny_qnet):
        first = PipelinedStreamScheduler(tiny_qnet)
        ops = first.batch_ops(2)
        second = PipelinedStreamScheduler(tiny_qnet)
        assert second.batch_ops(2) is ops  # no second engine probe

    def test_run_stream_outputs_unchanged_by_caching(self, tiny_qnet, tiny_images):
        from repro.hw.scheduler import BatchScheduler

        pipelined = PipelinedStreamScheduler(tiny_qnet)
        stream = pipelined.run_stream([tiny_images[:2], tiny_images[2:4]])
        reference = BatchScheduler(tiny_qnet)
        for result, images in zip(
            stream.results, [tiny_images[:2], tiny_images[2:4]]
        ):
            expected = reference.run_batch(images)
            assert (result.predictions == expected.predictions).all()
            assert result.overlapped_cycles == expected.overlapped_cycles
        # The same stream again returns identical (cached) timing.
        again = pipelined.run_stream([tiny_images[:2], tiny_images[2:4]])
        assert timings_equal(stream.timing, again.timing)


class TestAnalyticOpsCache:
    def test_instances_share_batch_ops(self, tiny_config):
        first = AnalyticStreamCost(network=tiny_config)
        ops = first.batch_ops(4)
        # A different window shares the ops (ops are window-independent).
        second = AnalyticStreamCost(network=tiny_config, window=3)
        assert second.batch_ops(4) is ops

    def test_steady_cycles_survive_cache_clears(self, tiny_config):
        cost = AnalyticStreamCost(network=tiny_config)
        steady = cost.steady_cycles(2)
        clear_timeline_caches()
        clear_analytic_ops_cache()
        assert AnalyticStreamCost(network=tiny_config).steady_cycles(2) == steady
