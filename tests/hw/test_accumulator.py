"""Unit tests for the FIFO accumulator bank."""

import numpy as np
import pytest

from repro.capsnet.hwops import QuantizedFormats
from repro.errors import ShapeError, SimulationError
from repro.hw.accumulator import AccumulatorBank

ACC = QuantizedFormats().acc(QuantizedFormats().caps_data, QuantizedFormats().coupling)


@pytest.fixture
def bank():
    return AccumulatorBank(cols=4, depth=16, acc_fmt=ACC)


class TestAccumulate:
    def test_store_then_drain(self, bank, rng):
        psums = rng.integers(-100, 100, size=(8, 4))
        bank.accumulate(psums, first_chunk=True)
        assert np.array_equal(bank.drain(), psums)

    def test_chunk_summation(self, bank, rng):
        a = rng.integers(-100, 100, size=(8, 4))
        b = rng.integers(-100, 100, size=(8, 4))
        bank.accumulate(a, first_chunk=True)
        bank.accumulate(b, first_chunk=False)
        assert np.array_equal(bank.drain(), a + b)

    def test_first_chunk_resets(self, bank, rng):
        a = rng.integers(-10, 10, size=(4, 4))
        bank.accumulate(a, first_chunk=True)
        bank.drain()
        b = rng.integers(-10, 10, size=(4, 4))
        bank.accumulate(b, first_chunk=True)
        assert np.array_equal(bank.drain(), b)

    def test_saturating_addition(self, bank):
        near_max = np.full((2, 4), ACC.raw_max - 5, dtype=np.int64)
        bank.accumulate(near_max, first_chunk=True)
        bank.accumulate(near_max, first_chunk=False)
        assert np.all(bank.drain() == ACC.raw_max)

    def test_occupancy(self, bank, rng):
        assert bank.occupancy == 0
        bank.accumulate(rng.integers(-5, 5, size=(6, 4)), first_chunk=True)
        assert bank.occupancy == 6


class TestErrors:
    def test_depth_overflow_raises(self, bank, rng):
        with pytest.raises(SimulationError):
            bank.accumulate(rng.integers(-5, 5, size=(17, 4)), first_chunk=True)

    def test_wrong_cols_raises(self, bank, rng):
        with pytest.raises(ShapeError):
            bank.accumulate(rng.integers(-5, 5, size=(4, 3)), first_chunk=True)

    def test_add_before_store_raises(self, bank, rng):
        with pytest.raises(SimulationError):
            bank.accumulate(rng.integers(-5, 5, size=(4, 4)), first_chunk=False)

    def test_drain_empty_raises(self, bank):
        with pytest.raises(SimulationError):
            bank.drain()

    def test_invalid_construction(self):
        with pytest.raises(ShapeError):
            AccumulatorBank(cols=0, depth=4, acc_fmt=ACC)


class TestCounters:
    def test_write_and_add_counts(self, bank, rng):
        a = rng.integers(-5, 5, size=(8, 4))
        bank.accumulate(a, first_chunk=True)
        bank.accumulate(a, first_chunk=False)
        assert bank.write_count == 64
        assert bank.add_count == 32
