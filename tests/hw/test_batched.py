"""Equivalence tests for the batched / grouped GEMM execution paths.

The guarantees:

* a batched job is bit-identical to ``B`` independent single-image runs,
  on both engines;
* the closed-form batched cycle accounting equals what the stepped engine
  actually consumes for the stacked stream, tile by tile;
* batching amortizes weight-tile loads: cycles and weight traffic are
  strictly below ``B`` independent runs;
* the chunked saturating matmul (including its no-saturation BLAS fast
  path) matches the pure-int64 per-chunk reference even when values clip
  mid-accumulation.
"""

import numpy as np
import pytest

from repro.capsnet.hwops import QuantizedFormats, chunked_saturating_matmul
from repro.errors import ShapeError
from repro.fixedpoint.formats import QFormat
from repro.hw.accelerator import (
    BatchedGemmJob,
    CapsAccAccelerator,
    GemmJob,
    GroupedGemmJob,
    batched_gemm_cycles,
    chunk_sizes,
    gemm_cycles,
    plan_tiling,
)
from repro.hw.systolic import SystolicArray

FMTS = QuantizedFormats()
DATA = FMTS.caps_data
WEIGHT = FMTS.classcaps_weight
ACC = FMTS.acc(DATA, WEIGHT)


def reference_chunked(data, weights, acc_fmt, rows):
    """Pure-int64 per-chunk clipped accumulation (the array's order)."""
    data = np.asarray(data, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.int64)
    k = data.shape[-1]
    acc = np.zeros(data.shape[:-1] + weights.shape[-1:], dtype=np.int64)
    for lo in range(0, k, rows):
        hi = min(lo + rows, k)
        partial = data[..., :, lo:hi] @ weights[..., lo:hi, :]
        np.clip(partial, acc_fmt.raw_min, acc_fmt.raw_max, out=partial)
        acc += partial
        np.clip(acc, acc_fmt.raw_min, acc_fmt.raw_max, out=acc)
    return acc


def make_batched_job(rng, batch, m, k, n, **kwargs):
    data = rng.integers(-60, 60, size=(batch, m, k))
    weights = rng.integers(-60, 60, size=(k, n))
    return BatchedGemmJob("batched", data, weights, DATA, WEIGHT, ACC, **kwargs)


class TestChunkedSaturatingMatmul:
    @pytest.mark.parametrize("shape", [(5, 9, 7), (3, 4, 33, 6), (1, 1, 1)])
    def test_matches_reference_without_saturation(self, rng, shape):
        # data is (..., M, K); weights (K, N) broadcast across leading axes
        data = rng.integers(-60, 60, size=shape)
        weights = rng.integers(-60, 60, size=(shape[-1], 5))
        out = chunked_saturating_matmul(data, weights, ACC, 4)
        assert np.array_equal(out, reference_chunked(data, weights, ACC, 4))

    def test_matches_reference_with_saturation(self, rng):
        """Large magnitudes force mid-accumulation clipping; the fast path
        must bow out and the chunked path must clip in array order."""
        acc_fmt = QFormat(12, 0)  # tiny accumulator: clips constantly
        data = rng.integers(-120, 120, size=(6, 40))
        weights = rng.integers(-120, 120, size=(40, 3))
        out = chunked_saturating_matmul(data, weights, acc_fmt, 4)
        assert np.array_equal(out, reference_chunked(data, weights, acc_fmt, 4))
        # sanity: saturation genuinely occurred, so the plain product differs
        assert not np.array_equal(out, data @ weights)

    def test_saturating_case_matches_stepped_engine(self, rng, small_accel_config):
        """The stepped systolic array is ground truth for clipping order."""
        acc_fmt = QFormat(16, 0)
        data = rng.integers(-128, 127, size=(5, 13))
        weights = rng.integers(-128, 127, size=(13, 4))
        accel = CapsAccAccelerator(small_accel_config)
        job = GemmJob("sat", data, weights, QFormat(8, 0), QFormat(8, 0), acc_fmt)
        fast = accel.run_gemm(job, engine="fast")
        stepped = accel.run_gemm(job, engine="stepped")
        assert np.array_equal(fast.acc, stepped.acc)

    def test_unsigned_accumulator_clips_from_below(self):
        """The fast path must respect raw_min too: with an unsigned
        accumulator a negative partial clips to 0 mid-accumulation."""
        acc_fmt = QFormat(8, 0, signed=False)
        data = np.array([[-3, 2]], dtype=np.int64)
        weights = np.array([[4], [1]], dtype=np.int64)
        out = chunked_saturating_matmul(data, weights, acc_fmt, 1)
        assert np.array_equal(out, reference_chunked(data, weights, acc_fmt, 1))
        assert out[0, 0] == 2  # -12 clips to 0, then +2

    def test_grouped_weights_broadcast(self, rng):
        data = rng.integers(-60, 60, size=(4, 3, 9))
        weights = rng.integers(-60, 60, size=(4, 9, 2))
        out = chunked_saturating_matmul(data, weights, ACC, 4)
        for g in range(4):
            assert np.array_equal(
                out[g], reference_chunked(data[g], weights[g], ACC, 4)
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            chunked_saturating_matmul(
                np.zeros((2, 3), dtype=np.int64), np.zeros((4, 2), dtype=np.int64), ACC, 4
            )


class TestBatchedGemm:
    @pytest.mark.parametrize("batch,m,k,n", [(1, 4, 5, 6), (3, 5, 9, 7), (4, 1, 8, 18)])
    def test_matches_independent_single_runs(
        self, rng, small_accel_config, batch, m, k, n
    ):
        accel = CapsAccAccelerator(small_accel_config)
        job = make_batched_job(rng, batch, m, k, n)
        batched = accel.run_batched_gemm(job, engine="fast")
        assert batched.acc.shape == (batch, m, n)
        for b in range(batch):
            single = accel.run_gemm(
                GemmJob("single", job.data[b], job.weights, DATA, WEIGHT, ACC)
            )
            assert np.array_equal(batched.acc[b], single.acc)

    def test_engines_agree(self, rng, small_accel_config):
        accel = CapsAccAccelerator(small_accel_config)
        job = make_batched_job(rng, 3, 4, 9, 6)
        fast = accel.run_batched_gemm(job, engine="fast")
        stepped = accel.run_batched_gemm(job, engine="stepped")
        assert np.array_equal(fast.acc, stepped.acc)
        assert fast.stats.total_cycles == stepped.stats.total_cycles

    @pytest.mark.parametrize("batch,m,k,n", [(2, 3, 9, 5), (3, 2, 4, 18)])
    def test_closed_form_matches_stepped_execution(
        self, rng, small_accel_config, batch, m, k, n
    ):
        """Sequential batched accounting equals real stepped cycles for the
        stacked ``(B*M, K)`` stream, tile by tile."""
        config = small_accel_config
        job = make_batched_job(rng, batch, m, k, n)
        stacked = job.data.reshape(batch * m, k)
        array = SystolicArray(config, DATA, WEIGHT, ACC)
        measured = 0
        plan = plan_tiling(config, batch * m, k, n)
        for n_tile in range(plan.n_tiles):
            for chunk_index, chunk in enumerate(chunk_sizes(k, config.rows)):
                k_lo = chunk_index * config.rows
                n_lo = n_tile * config.cols
                tile = np.zeros((config.rows, config.cols), dtype=np.int64)
                block = job.weights[k_lo : k_lo + chunk, n_lo : n_lo + config.cols]
                tile[: block.shape[0], : block.shape[1]] = block
                measured += array.load_weights(tile, active_rows=chunk)
                stream = np.zeros((batch * m, config.rows), dtype=np.int64)
                stream[:, :chunk] = stacked[:, k_lo : k_lo + chunk]
                measured += array.run_tile(stream).cycles
        formula = batched_gemm_cycles(config, batch, m, k, n, overlap=False)
        assert formula["total"] == measured
        accel = CapsAccAccelerator(config)
        result = accel.run_batched_gemm(job)
        assert result.stats.total_cycles == measured

    def test_batching_amortizes_tile_loads(self, rng, small_accel_config):
        """A batch costs strictly less than B independent runs — in cycles
        (fewer exposed loads/drains) and in weight-buffer traffic."""
        accel = CapsAccAccelerator(small_accel_config)
        batch, m, k, n = 4, 3, 9, 6
        job = make_batched_job(rng, batch, m, k, n)
        accel.reset_counters()
        batched = accel.run_batched_gemm(job)
        batched_weight_reads = accel.weight_buffer.reads
        single = gemm_cycles(small_accel_config, m, k, n, overlap=False)["total"]
        assert batched.stats.total_cycles < batch * single
        assert batched_weight_reads == k * n  # once per batch, not per image
        single_ovl = gemm_cycles(small_accel_config, m, k, n, overlap=True)["total"]
        assert batched.overlapped_cycles < batch * single_ovl

    def test_mac_count_scales_with_batch(self, rng, small_accel_config):
        accel = CapsAccAccelerator(small_accel_config)
        result = accel.run_batched_gemm(make_batched_job(rng, 3, 4, 5, 6))
        assert result.stats.mac_count == 3 * 4 * 5 * 6
        assert result.batch == 3

    def test_bad_shapes_rejected(self, rng, small_accel_config):
        accel = CapsAccAccelerator(small_accel_config)
        job = BatchedGemmJob(
            "bad",
            np.zeros((2, 3, 4), dtype=np.int64),
            np.zeros((5, 2), dtype=np.int64),
            DATA,
            WEIGHT,
            ACC,
        )
        with pytest.raises(ShapeError):
            accel.run_batched_gemm(job)

    def test_zero_batch_rejected(self, small_accel_config):
        from repro.errors import MappingError

        with pytest.raises(MappingError):
            batched_gemm_cycles(small_accel_config, 0, 2, 2, 2)


class TestFifoDepth:
    """A bounded accumulator FIFO forces M-tiling on long streams."""

    def test_plan_splits_m_passes(self, small_accel_config):
        from dataclasses import replace

        bounded = replace(small_accel_config, acc_fifo_depth=5)
        plan = plan_tiling(bounded, 12, 9, 6)
        assert plan.m_passes == (5, 5, 2)
        assert plan.total_tile_loads == 3 * plan.tiles
        ideal = plan_tiling(small_accel_config, 12, 9, 6)
        assert ideal.m_passes == (12,)
        assert ideal.total_tile_loads == ideal.tiles

    def test_deep_fifo_matches_idealized_cycles(self, small_accel_config):
        from dataclasses import replace

        deep = replace(small_accel_config, acc_fifo_depth=12)
        for overlap in (False, True):
            assert gemm_cycles(deep, 12, 9, 6, overlap=overlap) == gemm_cycles(
                small_accel_config, 12, 9, 6, overlap=overlap
            )

    def test_bounded_fifo_costs_more(self, small_accel_config):
        from dataclasses import replace

        bounded = replace(small_accel_config, acc_fifo_depth=5)
        for overlap in (False, True):
            assert (
                gemm_cycles(bounded, 12, 9, 6, overlap=overlap)["total"]
                > gemm_cycles(small_accel_config, 12, 9, 6, overlap=overlap)["total"]
            )
        # Compute cycles are work, not overhead: they never change.
        assert (
            gemm_cycles(bounded, 12, 9, 6, overlap=False)["compute"]
            == gemm_cycles(small_accel_config, 12, 9, 6, overlap=False)["compute"]
        )

    def test_engines_bit_identical_with_bounded_fifo(self, rng, small_accel_config):
        from dataclasses import replace

        bounded = replace(small_accel_config, acc_fifo_depth=5)
        accel = CapsAccAccelerator(bounded)
        job = make_batched_job(rng, 3, 4, 9, 6)  # B*M = 12 > depth 5
        fast = accel.run_batched_gemm(job, engine="fast")
        stepped = accel.run_batched_gemm(job, engine="stepped")
        assert np.array_equal(fast.acc, stepped.acc)
        assert fast.stats.total_cycles == stepped.stats.total_cycles
        ideal = CapsAccAccelerator(small_accel_config).run_batched_gemm(job)
        assert np.array_equal(fast.acc, ideal.acc)

    def test_weight_traffic_scales_with_passes(self, rng, small_accel_config):
        from dataclasses import replace

        bounded = replace(small_accel_config, acc_fifo_depth=5)
        accel = CapsAccAccelerator(bounded)
        accel.reset_counters()
        accel.run_batched_gemm(make_batched_job(rng, 3, 4, 9, 6))
        assert accel.weight_buffer.reads == 3 * 9 * 6  # three M-passes

    def test_invalid_depth_rejected(self):
        from repro.errors import ConfigError
        from repro.hw.config import AcceleratorConfig

        with pytest.raises(ConfigError):
            AcceleratorConfig(acc_fifo_depth=0)


class TestGroupedGemm:
    def test_matches_independent_runs_and_sums_stats(self, rng, small_accel_config):
        accel = CapsAccAccelerator(small_accel_config)
        groups, m, k, n = 5, 3, 9, 4
        data = rng.integers(-60, 60, size=(groups, m, k))
        weights = rng.integers(-60, 60, size=(groups, k, n))
        job = GroupedGemmJob("grp", data, weights, DATA, WEIGHT, ACC)
        grouped = accel.run_grouped_gemm(job)
        total = 0
        for g in range(groups):
            single = accel.run_gemm(
                GemmJob("one", data[g], weights[g], DATA, WEIGHT, ACC)
            )
            assert np.array_equal(grouped.acc[g], single.acc)
            total += single.stats.total_cycles
        assert grouped.stats.total_cycles == total
        assert grouped.stats.mac_count == groups * m * k * n

    def test_engines_agree(self, rng, small_accel_config):
        accel = CapsAccAccelerator(small_accel_config)
        data = rng.integers(-60, 60, size=(3, 2, 7))
        weights = rng.integers(-60, 60, size=(3, 7, 5))
        job = GroupedGemmJob("grp", data, weights, DATA, WEIGHT, ACC)
        fast = accel.run_grouped_gemm(job, engine="fast")
        stepped = accel.run_grouped_gemm(job, engine="stepped")
        assert np.array_equal(fast.acc, stepped.acc)

    def test_no_cross_group_weight_amortization(self, rng, small_accel_config):
        accel = CapsAccAccelerator(small_accel_config)
        groups, m, k, n = 3, 2, 5, 4
        data = rng.integers(-60, 60, size=(groups, m, k))
        weights = rng.integers(-60, 60, size=(groups, k, n))
        accel.reset_counters()
        accel.run_grouped_gemm(GroupedGemmJob("grp", data, weights, DATA, WEIGHT, ACC))
        assert accel.weight_buffer.reads == groups * k * n

    def test_bad_shapes_rejected(self, rng, small_accel_config):
        accel = CapsAccAccelerator(small_accel_config)
        job = GroupedGemmJob(
            "bad",
            np.zeros((2, 3, 4), dtype=np.int64),
            np.zeros((3, 4, 2), dtype=np.int64),
            DATA,
            WEIGHT,
            ACC,
        )
        with pytest.raises(ShapeError):
            accel.run_grouped_gemm(job)
