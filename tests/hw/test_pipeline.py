"""Stream-level cross-batch pipelining: timing bounds and bit-exactness.

The key guarantees:

* outputs of ``PipelinedStreamScheduler`` are bit-identical to scheduling
  every batch standalone with ``BatchScheduler`` (only timing differs);
* pipelined timing never beats the compute-only lower bound, and the
  whole-stream makespan never exceeds the per-batch double-buffered sum;
* the steady-state marginal is stable across stream lengths;
* edge cases hold: batch size 1, single-layer (one-job) schedules,
  heterogeneous consecutive batch sizes, bounded ``acc_fifo_depth``.
"""

import numpy as np
import pytest

from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.errors import ConfigError, ShapeError
from repro.hw.accelerator import CapsAccAccelerator, gemm_cycles, plan_tiling
from repro.hw.config import AcceleratorConfig
from repro.hw.pipeline import (
    PipelineOp,
    activation_op,
    job_ops,
    simulate_stream,
    stream_op_spans,
)
from repro.hw.scheduler import BatchScheduler, PipelinedStreamScheduler


@pytest.fixture(scope="module")
def qnet(tiny_config, tiny_weights):
    return QuantizedCapsuleNet(tiny_config, weights=tiny_weights)


def stream_compute_cycles(scheduler: BatchScheduler, image_size: int, sizes) -> int:
    total = 0
    for size in sizes:
        probe = np.zeros((size, image_size, image_size))
        total += scheduler.run_batch(probe).total_stats.compute_cycles
    return total


class TestPipelineOps:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigError):
            PipelineOp(kind="dma", cycles=1)

    def test_rejects_negative_cycles(self):
        with pytest.raises(ConfigError):
            PipelineOp(kind="tile", cycles=-1)

    def test_job_ops_match_tiling_plan(self):
        config = AcceleratorConfig(rows=4, cols=4)
        plan = plan_tiling(config, m=6, k=10, n=9)
        ops = job_ops(config, plan)
        # K splits into chunks of 4,4,2 -> loads 5,5,3; N into 3 tiles.
        assert len(ops) == plan.tiles
        assert sum(op.load for op in ops) == (5 + 5 + 3) * 3
        # Streams cover M per tile; the last tile of the pass carries the
        # exposed fill/drain (rows + cols - 1).
        assert sum(op.cycles for op in ops) == plan.tiles * 6 + (4 + 4 - 1)
        assert not any(op.constrained for op in ops)

    def test_dynamic_weights_constrain_only_first_tile(self):
        config = AcceleratorConfig(rows=4, cols=4)
        plan = plan_tiling(config, m=2, k=8, n=1)
        ops = job_ops(config, plan, groups=3, weight_source="routing_buffer")
        assert ops[0].constrained
        assert not any(op.constrained for op in ops[1:])

    def test_bounded_fifo_adds_m_passes(self):
        config = AcceleratorConfig(rows=4, cols=4, acc_fifo_depth=2)
        plan = plan_tiling(config, m=5, k=4, n=4)
        assert plan.m_passes == (2, 2, 1)
        ops = job_ops(config, plan)
        assert len(ops) == plan.total_tile_loads
        # One exposed drain per M-pass.
        drain = config.rows + config.cols - 1
        assert sum(op.cycles for op in ops) == 5 * plan.tiles + drain * 3


class TestSimulateStream:
    def test_single_tile(self):
        timing = simulate_stream([[PipelineOp(kind="tile", cycles=10, load=3)]])
        assert timing.finish_cycles == 13
        assert timing.batches[0].start_cycle == 0

    def test_loads_hide_under_streams(self):
        # Three identical tiles: only the first load is exposed.
        ops = [PipelineOp(kind="tile", cycles=10, load=3) for _ in range(3)]
        timing = simulate_stream([ops])
        assert timing.finish_cycles == 3 + 3 * 10

    def test_load_bound_job_is_port_paced(self):
        ops = [PipelineOp(kind="tile", cycles=2, load=10) for _ in range(4)]
        timing = simulate_stream([ops])
        # The port is the bottleneck: 4 loads of 10 plus the last stream.
        assert timing.finish_cycles == 4 * 10 + 2

    def test_constrained_load_waits_for_producer(self):
        ops = [
            PipelineOp(kind="tile", cycles=10, load=3),
            activation_op(20),
            PipelineOp(kind="tile", cycles=5, load=3, constrained=True),
        ]
        timing = simulate_stream([ops])
        # The constrained load may only start after the activation ends.
        assert timing.finish_cycles == (3 + 10) + 20 + 3 + 5

    def test_prestage_depth_limits_lookahead(self):
        ops = [PipelineOp(kind="tile", cycles=2, load=2) for _ in range(6)]
        shallow = simulate_stream([list(ops)], prestage_depth=1)
        deep = simulate_stream([list(ops)], prestage_depth=4)
        assert deep.finish_cycles <= shallow.finish_cycles

    def test_validates_window_and_depth(self):
        ops = [[PipelineOp(kind="tile", cycles=1, load=1)]]
        with pytest.raises(ConfigError):
            simulate_stream(ops, window=0)
        with pytest.raises(ConfigError):
            simulate_stream(ops, prestage_depth=0)
        with pytest.raises(ConfigError):
            simulate_stream(ops, images_per_batch=[1, 2])

    def test_single_layer_schedule_across_batches(self):
        """A one-job network still pipelines: later batches hide their
        first load under the predecessor's stream."""
        config = AcceleratorConfig(rows=4, cols=4)
        plan = plan_tiling(config, m=16, k=8, n=4)
        ops = job_ops(config, plan)
        single = gemm_cycles(config, 16, 8, 4, overlap=True)["total"]
        timing = simulate_stream([list(ops) for _ in range(4)])
        compute = sum(op.cycles for op in ops)
        assert timing.finish_cycles <= 4 * single
        assert timing.steady_marginal_cycles >= compute - (config.rows + config.cols - 1)
        for batch in timing.batches:
            assert batch.finish_cycle >= batch.start_cycle


class TestStreamScheduler:
    def test_outputs_bit_identical_to_batch_scheduler(self, qnet, tiny_images):
        reference = BatchScheduler(qnet)
        pipelined = PipelinedStreamScheduler(qnet)
        batches = [tiny_images[:2], tiny_images[2:]]
        stream = pipelined.run_stream(batches)
        for images, result in zip(batches, stream.results):
            expected = reference.run_batch(images)
            np.testing.assert_array_equal(result.predictions, expected.predictions)
            np.testing.assert_array_equal(result.class_caps_raw, expected.class_caps_raw)
            np.testing.assert_array_equal(result.u_hat_raw, expected.u_hat_raw)
            np.testing.assert_array_equal(result.conv1_raw, expected.conv1_raw)

    def test_never_beats_compute_lower_bound(self, qnet, tiny_images):
        pipelined = PipelinedStreamScheduler(qnet)
        stream = pipelined.run_stream([tiny_images[:2], tiny_images[2:], tiny_images[:2]])
        compute = sum(r.total_stats.compute_cycles for r in stream.results)
        assert stream.timing.finish_cycles >= compute
        macs = sum(r.total_stats.mac_count for r in stream.results)
        num_pes = pipelined.accelerator.config.num_pes
        assert stream.timing.finish_cycles >= macs / num_pes

    def test_never_worse_than_double_buffered_sum(self, qnet, tiny_images):
        pipelined = PipelinedStreamScheduler(qnet)
        stream = pipelined.run_stream([tiny_images[:2], tiny_images[2:], tiny_images])
        assert stream.timing.finish_cycles <= stream.overlapped_cycles
        assert stream.pipelined_speedup() >= 1.0

    def test_steady_marginal_stable_across_stream_lengths(self, qnet):
        pipelined = PipelinedStreamScheduler(qnet)
        for batch in (2, 8):
            values = {
                length: pipelined.probe_timing([batch] * length).steady_marginal_cycles
                for length in (6, 7, 9, 12)
            }
            assert len(set(values.values())) == 1, values

    def test_steady_averages_period_two_oscillation(self, qnet):
        """On some shapes the two in-flight batches alternate roles, so
        settled marginals oscillate with period two; the steady state is
        their average, not whichever phase the probe length lands on."""
        pipelined = PipelinedStreamScheduler(qnet)
        timing = pipelined.probe_timing([8] * 9)
        # The implementation averages an even window of settled marginals
        # (whole periods), excluding the three fill batches and the tail.
        window = (len(timing.batches) - 4) & ~1
        settled = [b.marginal_cycles for b in timing.batches[-1 - window : -1]]
        assert timing.steady_marginal_cycles == round(sum(settled) / window)
        assert min(settled) <= timing.steady_marginal_cycles <= max(settled)

    def test_steady_marginal_at_least_per_batch_compute(self, qnet):
        pipelined = PipelinedStreamScheduler(qnet)
        size = qnet.config.image_size
        compute = BatchScheduler(qnet).run_batch(
            np.zeros((2, size, size))
        ).total_stats.compute_cycles
        assert pipelined.steady_state_cycles(2) >= compute

    def test_batch_size_one_stream(self, qnet, tiny_images):
        reference = BatchScheduler(qnet)
        pipelined = PipelinedStreamScheduler(qnet)
        batches = [tiny_images[i : i + 1] for i in range(3)]
        stream = pipelined.run_stream(batches)
        over = sum(r.overlapped_cycles for r in stream.results)
        assert stream.timing.finish_cycles <= over
        for images, result in zip(batches, stream.results):
            expected = reference.run_batch(images)
            np.testing.assert_array_equal(result.predictions, expected.predictions)

    def test_heterogeneous_batch_sizes(self, qnet, tiny_images):
        reference = BatchScheduler(qnet)
        pipelined = PipelinedStreamScheduler(qnet)
        batches = [tiny_images[:3], tiny_images[:1], tiny_images]
        stream = pipelined.run_stream(batches)
        assert [b.images for b in stream.timing.batches] == [3, 1, 4]
        assert stream.total_images == 8
        compute = sum(r.total_stats.compute_cycles for r in stream.results)
        assert compute <= stream.timing.finish_cycles <= stream.overlapped_cycles
        for images, result in zip(batches, stream.results):
            expected = reference.run_batch(images)
            np.testing.assert_array_equal(result.predictions, expected.predictions)

    def test_bounded_acc_fifo_depth(self, qnet, tiny_images):
        """Pipelining must respect the M-pass structure a bounded
        accumulator FIFO forces: exact outputs, and timing between the
        compute bound and the (re-tiled) double-buffered sum."""
        config = AcceleratorConfig(acc_fifo_depth=3)
        accelerator = CapsAccAccelerator(config, formats=qnet.formats)
        reference = BatchScheduler(
            qnet, accelerator=CapsAccAccelerator(config, formats=qnet.formats)
        )
        pipelined = PipelinedStreamScheduler(qnet, accelerator=accelerator)
        batches = [tiny_images[:2], tiny_images[2:]]
        stream = pipelined.run_stream(batches)
        compute = sum(r.total_stats.compute_cycles for r in stream.results)
        assert compute <= stream.timing.finish_cycles <= stream.overlapped_cycles
        for images, result in zip(batches, stream.results):
            expected = reference.run_batch(images)
            np.testing.assert_array_equal(result.predictions, expected.predictions)
            np.testing.assert_array_equal(result.class_caps_raw, expected.class_caps_raw)

    def test_window_one_limits_overlap(self, qnet):
        serialized = PipelinedStreamScheduler(qnet, window=1)
        pipelined = PipelinedStreamScheduler(qnet, window=2)
        lone = serialized.probe_timing([2]).finish_cycles
        timing = serialized.probe_timing([2] * 3)
        # With one batch in flight only the trailing activation passes can
        # overlap the successor's tiles; a second in-flight batch strictly
        # beats that.
        assert lone < timing.steady_marginal_cycles + 100
        assert timing.finish_cycles <= 3 * lone
        assert pipelined.probe_timing([2] * 3).finish_cycles < timing.finish_cycles

    def test_empty_stream_rejected(self, qnet):
        with pytest.raises(ShapeError):
            PipelinedStreamScheduler(qnet).run_stream([])

    def test_probe_rejects_bad_batch_size(self, qnet):
        with pytest.raises(ShapeError):
            PipelinedStreamScheduler(qnet).batch_ops(0)

    def test_stepped_engine_matches_fast_outputs(self, qnet, tiny_images):
        fast = PipelinedStreamScheduler(qnet, engine="fast")
        stepped = PipelinedStreamScheduler(qnet, engine="stepped")
        a = fast.run_stream([tiny_images[:1]])
        b = stepped.run_stream([tiny_images[:1]])
        np.testing.assert_array_equal(a.predictions, b.predictions)
        assert a.timing.finish_cycles == b.timing.finish_cycles


class TestStreamOpSpans:
    """The op-span recorder behind the observability drill-down lane."""

    def test_spans_match_untraced_timing(self, qnet):
        scheduler = PipelinedStreamScheduler(qnet)
        per_batch = [scheduler.batch_ops(2) for _ in range(3)]
        baseline = simulate_stream(
            [list(ops) for ops in per_batch], [2, 2, 2]
        )
        timing, spans = stream_op_spans(
            [list(ops) for ops in per_batch], [2, 2, 2]
        )
        # Recording is observational: identical timing either way.
        assert timing.finish_cycles == baseline.finish_cycles
        assert [b.start_cycle for b in timing.batches] == [
            b.start_cycle for b in baseline.batches
        ]
        assert len(spans) == sum(len(ops) for ops in per_batch)

    def test_span_shapes(self, qnet):
        scheduler = PipelinedStreamScheduler(qnet)
        ops = scheduler.batch_ops(1)
        timing, spans = stream_op_spans([list(ops)], [1])
        assert {span.kind for span in spans} <= {"tile", "act"}
        for span in spans:
            assert span.end_cycle > span.start_cycle >= 0
            assert span.batch == 0
            if span.kind == "tile":
                assert span.load_end_cycle >= span.load_start_cycle >= 0
                # The load feeds the stream: it never ends after the
                # stream it stages for begins.
                assert span.load_end_cycle <= span.start_cycle
        assert max(span.end_cycle for span in spans) == timing.finish_cycles

    def test_load_bound_spans_paced_by_port(self):
        ops = [PipelineOp(kind="tile", cycles=2, load=10) for _ in range(4)]
        _, spans = stream_op_spans([ops])
        load_spans = sorted(
            (s.load_start_cycle, s.load_end_cycle) for s in spans
        )
        for (_, prev_end), (start, _) in zip(load_spans, load_spans[1:]):
            assert start >= prev_end  # one weight port, no overlap
