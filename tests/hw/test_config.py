"""Unit tests for the accelerator configuration."""

import pytest

from repro.errors import ConfigError
from repro.hw.config import AcceleratorConfig, paper_config


class TestDefaults:
    def test_paper_table2_values(self):
        config = paper_config()
        assert config.rows == 16
        assert config.cols == 16
        assert config.clock_mhz == 250.0
        assert config.data_bits == 8
        assert config.acc_bits == 25
        assert config.onchip_memory_mb == 8.0
        assert config.voltage_v == 1.05
        assert config.technology_nm == 32

    def test_num_pes(self):
        assert paper_config().num_pes == 256

    def test_cycle_time(self):
        assert paper_config().cycle_ns == pytest.approx(4.0)

    def test_peak_throughput(self):
        assert paper_config().peak_macs_per_second == pytest.approx(64e9)


class TestConversions:
    def test_cycles_to_us(self):
        assert paper_config().cycles_to_us(250) == pytest.approx(1.0)

    def test_cycles_to_ms(self):
        assert paper_config().cycles_to_ms(250000) == pytest.approx(1.0)


class TestVariants:
    def test_with_array(self):
        small = paper_config().with_array(8, 4)
        assert small.rows == 8
        assert small.cols == 4
        assert paper_config().rows == 16  # original untouched

    def test_without_weight_reuse(self):
        variant = paper_config().without_weight_reuse()
        assert not variant.weight_double_buffer
        assert paper_config().weight_double_buffer


class TestValidation:
    def test_rejects_zero_rows(self):
        with pytest.raises(ConfigError):
            AcceleratorConfig(rows=0)

    def test_rejects_bad_clock(self):
        with pytest.raises(ConfigError):
            AcceleratorConfig(clock_mhz=0)

    def test_rejects_narrow_accumulator(self):
        with pytest.raises(ConfigError):
            AcceleratorConfig(data_bits=8, weight_bits=8, acc_bits=15)

    def test_rejects_zero_bus(self):
        with pytest.raises(ConfigError):
            AcceleratorConfig(data_bus_words=0)
