"""Unit tests for buffers and memory models."""

import pytest

from repro.errors import SimulationError
from repro.hw.buffers import Buffer, MemoryModel


class TestBuffer:
    @pytest.fixture
    def buffer(self):
        return Buffer("data_buffer", size_kb=64, word_bits=8, bandwidth_words=16)

    def test_capacity(self, buffer):
        assert buffer.capacity_words == 64 * 1024

    def test_read_cycles_rounds_up(self, buffer):
        assert buffer.read_cycles(16) == 1
        assert buffer.read_cycles(17) == 2

    def test_counters_accumulate(self, buffer):
        buffer.read_cycles(100)
        buffer.write_cycles(50)
        assert buffer.reads == 100
        assert buffer.writes == 50

    def test_reset_counters(self, buffer):
        buffer.read_cycles(10)
        buffer.reset_counters()
        assert buffer.reads == 0

    def test_negative_words_rejected(self, buffer):
        with pytest.raises(SimulationError):
            buffer.read_cycles(-1)

    def test_wide_words_capacity(self):
        wide = Buffer("acc", size_kb=1, word_bits=25, bandwidth_words=4)
        assert wide.capacity_words == 1024 * 8 // 25


class TestMemoryModel:
    @pytest.fixture
    def memory(self):
        return MemoryModel("weight_memory", size_mb=8)

    def test_capacity(self, memory):
        assert memory.capacity_bytes == 8 * 1024 * 1024

    def test_fits_paper_weights(self, memory):
        from repro.capsnet.params import total_weight_bytes

        assert memory.fits(total_weight_bytes())

    def test_traffic_by_consumer(self, memory):
        memory.read(100, consumer="conv1")
        memory.read(50, consumer="conv1")
        memory.write(25, consumer="routing")
        assert memory.traffic == {"conv1": 150, "routing": 25}
        assert memory.reads == 150
        assert memory.writes == 25
