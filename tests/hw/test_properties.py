"""Property-based tests (hypothesis) for the hardware simulator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capsnet.hwops import QuantizedFormats
from repro.hw.accelerator import CapsAccAccelerator, GemmJob, gemm_cycles
from repro.hw.config import AcceleratorConfig
from repro.hw.systolic import SystolicArray

FMTS = QuantizedFormats()
DATA = FMTS.caps_data
WEIGHT = FMTS.classcaps_weight
ACC = FMTS.acc(DATA, WEIGHT)


@st.composite
def gemm_instances(draw):
    """Random small GEMM instances with safe (non-saturating) values."""
    m = draw(st.integers(1, 12))
    k = draw(st.integers(1, 12))
    n = draw(st.integers(1, 12))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    data = rng.integers(-100, 100, size=(m, k))
    weights = rng.integers(-100, 100, size=(k, n))
    return data, weights


@given(instance=gemm_instances())
@settings(max_examples=40, deadline=None)
def test_stepped_gemm_always_matches_reference(instance):
    data, weights = instance
    config = AcceleratorConfig(rows=4, cols=4)
    accel = CapsAccAccelerator(config)
    job = GemmJob("prop", data, weights, DATA, WEIGHT, ACC)
    result = accel.run_gemm(job, engine="stepped")
    expected = np.clip(data.astype(np.int64) @ weights, ACC.raw_min, ACC.raw_max)
    assert np.array_equal(result.acc, expected)


@given(instance=gemm_instances())
@settings(max_examples=100, deadline=None)
def test_fast_gemm_always_matches_reference(instance):
    data, weights = instance
    config = AcceleratorConfig(rows=4, cols=4)
    accel = CapsAccAccelerator(config)
    job = GemmJob("prop", data, weights, DATA, WEIGHT, ACC)
    result = accel.run_gemm(job, engine="fast")
    expected = np.clip(data.astype(np.int64) @ weights, ACC.raw_min, ACC.raw_max)
    assert np.array_equal(result.acc, expected)


@given(
    m=st.integers(1, 500),
    k=st.integers(1, 500),
    n=st.integers(1, 500),
)
@settings(max_examples=150, deadline=None)
def test_cycle_model_invariants(m, k, n):
    config = AcceleratorConfig()
    sequential = gemm_cycles(config, m, k, n, overlap=False)
    overlapped = gemm_cycles(config, m, k, n, overlap=True)
    # Overlap never hurts, compute term is identical, totals exceed compute.
    assert overlapped["total"] <= sequential["total"]
    assert overlapped["compute"] == sequential["compute"]
    assert sequential["total"] >= sequential["compute"]
    # The array can at most do rows*cols useful MACs per cycle.
    assert m * k * n <= sequential["total"] * config.num_pes


@given(
    m=st.integers(1, 200),
    k=st.integers(1, 200),
    n=st.integers(1, 200),
    grow=st.sampled_from(["m", "k", "n"]),
)
@settings(max_examples=100, deadline=None)
def test_cycles_monotone_in_every_dimension(m, k, n, grow):
    config = AcceleratorConfig()
    base = gemm_cycles(config, m, k, n, overlap=True)["total"]
    grown = {
        "m": (m + 1, k, n),
        "k": (m, k + 1, n),
        "n": (m, k, n + 1),
    }[grow]
    bigger = gemm_cycles(config, *grown, overlap=True)["total"]
    assert bigger >= base


@given(
    seed=st.integers(0, 2**31 - 1),
    rows=st.integers(2, 6),
    cols=st.integers(2, 6),
)
@settings(max_examples=30, deadline=None)
def test_tile_pass_matches_reference_any_geometry(seed, rows, cols):
    rng = np.random.default_rng(seed)
    config = AcceleratorConfig(rows=rows, cols=cols)
    array = SystolicArray(config, DATA, WEIGHT, ACC)
    tile = rng.integers(-80, 80, size=(rows, cols))
    vectors = rng.integers(-80, 80, size=(rng.integers(1, 9), rows))
    array.load_weights(tile)
    result = array.run_tile(vectors)
    assert np.array_equal(result.psums, array.compute_tile_reference(tile, vectors))
    assert result.cycles == vectors.shape[0] + rows + cols - 1
