"""Tests for the on-chip weight-memory layout."""

import pytest

from repro.errors import ConfigError, MappingError
from repro.hw.config import AcceleratorConfig
from repro.hw.layout import WeightMemoryLayout


@pytest.fixture(scope="module")
def layout(mnist_config):
    return WeightMemoryLayout(mnist_config)


class TestLayout:
    def test_all_tensors_present(self, layout):
        assert set(layout.regions) == {
            "conv1_w", "conv1_b", "primary_w", "primary_b", "classcaps_w"
        }

    def test_region_sizes_match_counts(self, layout, mnist_config):
        assert layout.region("conv1_w").size_bytes == mnist_config.conv1.weight_count
        assert layout.region("classcaps_w").size_bytes == mnist_config.classcaps_weight_count

    def test_regions_disjoint(self, layout):
        assert layout.no_overlaps()

    def test_regions_aligned(self, layout):
        for region in layout.regions.values():
            assert region.offset % layout.alignment == 0

    def test_fits_paper_8mb(self, layout):
        """The paper's Section III-A observation."""
        assert layout.fits()
        assert 0.7 < layout.utilization < 0.9  # ~6.5 MB of 8 MB

    def test_contains(self, layout):
        region = layout.region("primary_w")
        assert region.contains(region.offset)
        assert not region.contains(region.end)

    def test_16bit_weights_do_not_fit(self, mnist_config):
        wide = WeightMemoryLayout(mnist_config, bytes_per_weight=2)
        assert not wide.fits()

    def test_tiny_config_tiny_footprint(self, tiny_config):
        layout = WeightMemoryLayout(tiny_config)
        assert layout.utilization < 0.01


class TestAddressGeneration:
    def test_tile_addresses_cover_region(self, layout):
        region = layout.region("conv1_w")
        addresses = layout.tile_addresses("conv1_w", tile_bytes=4096)
        assert addresses[0] == region.offset
        assert addresses[-1] < region.end
        assert len(addresses) == -(-region.size_bytes // 4096)

    def test_tile_addresses_monotone(self, layout):
        addresses = layout.tile_addresses("classcaps_w", tile_bytes=1024)
        assert addresses == sorted(addresses)

    def test_prefetch_cycles(self, layout, mnist_config):
        cycles = layout.prefetch_cycles("classcaps_w")
        assert cycles == -(-mnist_config.classcaps_weight_count // 16)

    def test_unknown_tensor_rejected(self, layout):
        with pytest.raises(MappingError):
            layout.region("decoder_w")
        with pytest.raises(MappingError):
            layout.tile_addresses("conv1_w", 0)


class TestValidation:
    def test_alignment_must_be_power_of_two(self, mnist_config):
        with pytest.raises(ConfigError):
            WeightMemoryLayout(mnist_config, alignment=48)

    def test_small_memory_configuration(self, mnist_config):
        small = AcceleratorConfig(onchip_memory_mb=1.0)
        layout = WeightMemoryLayout(mnist_config, accelerator=small)
        assert not layout.fits()
