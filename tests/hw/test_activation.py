"""Unit tests for the activation unit and its latency model."""

import numpy as np
import pytest

from repro.capsnet.hwops import QuantizedFormats, hw_norm, hw_softmax, hw_squash
from repro.errors import SimulationError
from repro.fixedpoint.quantize import to_raw
from repro.hw.activation import (
    ActivationMode,
    ActivationUnit,
    activation_latency,
    batched_activation_latency,
)


@pytest.fixture(scope="module")
def unit():
    return ActivationUnit(QuantizedFormats())


class TestLatencies:
    def test_paper_latency_rules(self):
        assert activation_latency(ActivationMode.RELU, 16) == 1
        assert activation_latency(ActivationMode.NORM, 16) == 17
        assert activation_latency(ActivationMode.SQUASH, 16) == 18
        assert activation_latency(ActivationMode.SOFTMAX, 16) == 32

    def test_none_mode_free(self):
        assert activation_latency(ActivationMode.NONE, 8) == 0

    def test_empty_array_rejected(self):
        with pytest.raises(SimulationError):
            activation_latency(ActivationMode.RELU, 0)

    def test_batched_distributes_over_units(self):
        # 32 groups of softmax(n=10) over 16 units: 2 per unit x 20 cycles.
        assert batched_activation_latency(ActivationMode.SOFTMAX, 10, 32, 16) == 40

    def test_batched_single_unit_serializes(self):
        assert batched_activation_latency(ActivationMode.SQUASH, 16, 10, 1) == 180

    def test_batched_validates(self):
        with pytest.raises(SimulationError):
            batched_activation_latency(ActivationMode.RELU, 1, 1, 0)

    def test_unit_method_delegates(self, unit):
        assert unit.batched_latency(ActivationMode.NORM, 8, 4, 2) == 2 * 9


class TestArithmetic:
    def test_relu_requantizes(self, unit):
        fmts = unit.formats
        acc_fmt = fmts.acc(fmts.input, fmts.conv1_weight)
        acc = np.array([-(1 << 12), 0, 1 << 12])
        out = unit.relu(acc, acc_fmt, fmts.conv1_out)
        assert out[0] == 0
        assert out[2] > 0

    def test_passthrough_keeps_sign(self, unit):
        fmts = unit.formats
        acc_fmt = fmts.acc(fmts.caps_data, fmts.caps_data)
        out = unit.passthrough(np.array([-(1 << 10)]), acc_fmt, fmts.logits)
        assert out[0] < 0

    def test_squash_matches_hwops(self, unit, rng):
        fmts = unit.formats
        vec = to_raw(rng.uniform(-1, 1, size=(5, 8)), fmts.primary_preact)
        expected = hw_squash(vec, fmts.primary_preact, unit.luts, fmts)
        assert np.array_equal(unit.squash(vec, fmts.primary_preact), expected)

    def test_norm_matches_hwops(self, unit, rng):
        fmts = unit.formats
        vec = to_raw(rng.uniform(-1, 1, size=(5, 8)), fmts.caps_data)
        expected = hw_norm(vec, fmts.caps_data, unit.luts, fmts)
        got = unit.norm(vec, fmts.caps_data)
        assert np.array_equal(got[0], expected[0])
        assert np.array_equal(got[1], expected[1])

    def test_softmax_matches_hwops(self, unit, rng):
        fmts = unit.formats
        logits = rng.integers(-50, 50, size=(6, 10))
        expected = hw_softmax(logits, unit.luts, fmts, axis=1)
        assert np.array_equal(unit.softmax(logits, axis=1), expected)

    def test_shares_caller_luts(self):
        fmts = QuantizedFormats()
        from repro.capsnet.hwops import HardwareLuts

        luts = HardwareLuts.build(fmts)
        unit = ActivationUnit(fmts, luts)
        assert unit.luts is luts
