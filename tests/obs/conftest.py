"""Shared serving fixtures for the observability tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import AnalyticBatchCost, ServerConfig, poisson_trace, uniform_trace


@pytest.fixture(scope="module")
def tiny_cost(tiny_config):
    """Cheap analytic cost model — no engine probes in these tests."""
    return AnalyticBatchCost(network=tiny_config)


@pytest.fixture(scope="module")
def server(tiny_cost):
    """Two arrays, classic fifo batching: exercises placement + waits."""
    return ServerConfig.from_policy(
        "fifo",
        tiny_cost,
        max_batch=8,
        max_wait_us=2000.0,
        arrays=2,
        network_name="tiny",
    )


@pytest.fixture(scope="module")
def busy_trace():
    """Poisson load: full and partial batches, some coalescing timeouts."""
    return poisson_trace(
        rate_rps=3000.0, count=120, rng=np.random.default_rng(11)
    )


@pytest.fixture(scope="module")
def burst_trace():
    """Saturating burst ending in a partial batch: guarantees a timeout."""
    return uniform_trace(rate_rps=80000.0, count=30)
