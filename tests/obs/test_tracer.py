"""Tracer contract: observes everything, steers nothing.

The core invariants of :mod:`repro.obs.tracer`:

* **Decision identity** — a run with a tracer attached makes exactly
  the decisions of a run without one (tracers are write-only).
* **Well-formedness** — the recorded stream has balanced per-array
  compute spans, one arrival and one terminal event per request, and
  ordered lifecycle phases, under plain and stacked dispatch alike.
* **Derived views** — busy spans, per-array utilization (pinned to the
  report's own pool accounting), and per-request lifecycles.
* **Fast-path guard** — the streaming path bypasses the instrumented
  core, so tracer + streaming raises instead of silently dropping
  events.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigError
from repro.obs import (
    EVENT_KINDS,
    NULL_TRACER,
    MultiTracer,
    RecordingTracer,
    Tracer,
    combine_tracers,
    well_formed_errors,
)
from repro.obs.tracer import ARRIVE, COMPLETE, SHED, TIMEOUT
from repro.serve import (
    ServerConfig,
    ServingSimulator,
    StreamingSink,
    decision_diffs,
    replay_virtual,
    uniform_trace,
)


def test_null_tracer_is_disabled_and_inert(server, busy_trace):
    assert NULL_TRACER.enabled is False
    # The hooks exist and do nothing — the hot path only checks .enabled.
    NULL_TRACER.request_arrived(0.0, 0, "", math.inf)
    NULL_TRACER.coalescing_timeout(0.0)


def test_tracer_does_not_change_decisions(server, busy_trace):
    base = ServingSimulator(busy_trace, server=server).run()
    tracer = RecordingTracer()
    traced = ServingSimulator(busy_trace, server=server, tracer=tracer).run()
    assert decision_diffs(base, traced) == []
    assert len(tracer.events) > 0


def test_stream_is_well_formed(server, busy_trace):
    tracer = RecordingTracer()
    report = ServingSimulator(busy_trace, server=server, tracer=tracer).run()
    assert well_formed_errors(tracer) == []
    kinds = {event.kind for event in tracer.events}
    assert kinds <= set(EVENT_KINDS)
    completes = [e for e in tracer.events if e.kind == COMPLETE]
    assert len(completes) == report.completed


def test_stream_well_formed_under_stacked_dispatch(tiny_cost):
    """greedy-backlog on a heterogeneous pool stacks batches behind the
    busy fast array rather than take the idle slow one: compute spans
    carry future start times, and the stream must still balance."""
    from repro.hw.config import AcceleratorConfig

    accel = AcceleratorConfig()
    server = ServerConfig.from_policy(
        "fifo",
        tiny_cost,
        max_batch=4,
        max_wait_us=1000.0,
        dispatch="greedy-backlog",
        network_name="tiny",
        array_configs=(accel.with_array(16, 16), accel.with_array(4, 4)),
    )
    tracer = RecordingTracer()
    ServingSimulator(
        uniform_trace(rate_rps=2_000_000.0, count=60), server=server, tracer=tracer
    ).run()
    assert well_formed_errors(tracer) == []
    assert any(batch.stacked for batch in tracer.batches)


def test_timeout_fires_on_trailing_partial_batch(server, burst_trace):
    tracer = RecordingTracer()
    ServingSimulator(burst_trace, server=server, tracer=tracer).run()
    assert tracer.timeouts >= 1
    assert any(e.kind == TIMEOUT for e in tracer.events)


def test_busy_spans_and_utilization_match_report(server, busy_trace):
    tracer = RecordingTracer()
    report = ServingSimulator(busy_trace, server=server, tracer=tracer).run()
    spans = tracer.busy_spans()
    assert len(spans) == report.batch_count
    assert all(done > start for _, start, done in spans)
    derived = tracer.array_utilization(report.makespan_us, arrays=server.arrays)
    expected = report.array_utilization()
    assert set(derived) == set(expected)
    for array, value in expected.items():
        assert derived[array] == pytest.approx(value, rel=1e-9)


def test_request_lifecycles_cover_every_arrival(server, busy_trace):
    tracer = RecordingTracer()
    report = ServingSimulator(busy_trace, server=server, tracer=tracer).run()
    lifecycles = tracer.request_lifecycles()
    assert len(lifecycles) == report.offered
    for events in lifecycles.values():
        assert events[0].kind == ARRIVE
        assert events[-1].kind in (COMPLETE, SHED)


def test_sheds_traced_under_queue_limit(tiny_cost, burst_trace):
    server = ServerConfig.from_policy(
        "fifo",
        tiny_cost,
        max_batch=8,
        max_wait_us=2000.0,
        queue_limit=4,
        network_name="tiny",
    )
    tracer = RecordingTracer()
    report = ServingSimulator(burst_trace, server=server, tracer=tracer).run()
    assert report.shed_count > 0
    assert sum(1 for e in tracer.events if e.kind == SHED) == report.shed_count
    assert well_formed_errors(tracer) == []


def test_fault_events_keep_the_stream_well_formed(server, busy_trace):
    """Crashes, retries and quarantine windows stay within the grammar:
    a retried request re-dispatches but still ends in exactly one
    terminal event."""
    from dataclasses import replace

    from repro.obs.tracer import FAILED, RETRY
    from repro.serve import FaultPlan

    faulted = replace(
        server, fault_plan=FaultPlan(crash_batches=(1, 3), seed=3)
    )
    tracer = RecordingTracer()
    report = ServingSimulator(busy_trace, server=faulted, tracer=tracer).run()
    assert report.faults["crashes"] >= 2
    assert well_formed_errors(tracer) == []
    retried = {e.request for e in tracer.events if e.kind == RETRY}
    assert retried
    terminal_kinds = (COMPLETE, SHED, FAILED)
    for index in retried:
        events = [e for e in tracer.events if e.request == index]
        terminals = [e for e in events if e.kind in terminal_kinds]
        assert len(terminals) == 1
        assert events[-1].kind in terminal_kinds


def test_replay_virtual_emits_identical_stream(server, busy_trace):
    """The live engine in virtual time sees the same events as the sim."""
    sim_tracer = RecordingTracer()
    ServingSimulator(busy_trace, server=server, tracer=sim_tracer).run()
    live_tracer = RecordingTracer()
    replay_virtual(server, busy_trace, tracer=live_tracer)
    assert well_formed_errors(live_tracer) == []
    sim_rows = sorted(tuple(sorted(e.to_dict().items())) for e in sim_tracer.events)
    live_rows = sorted(tuple(sorted(e.to_dict().items())) for e in live_tracer.events)
    assert sim_rows == live_rows


def test_fast_path_rejects_tracer(server, busy_trace):
    simulator = ServingSimulator(
        busy_trace, server=server, tracer=RecordingTracer()
    )
    with pytest.raises(ConfigError, match="recording path"):
        simulator.run(record_requests=False)
    with pytest.raises(ConfigError, match="recording path"):
        simulator.run(sink=StreamingSink())


def test_fast_path_still_fine_without_tracer(server, busy_trace):
    report = ServingSimulator(busy_trace, server=server).run(
        record_requests=False
    )
    assert report.completed > 0


def test_combine_tracers_folds_and_filters():
    recording = RecordingTracer()
    assert combine_tracers(None, None) is NULL_TRACER
    assert combine_tracers(None, NULL_TRACER) is NULL_TRACER
    assert combine_tracers(recording, None) is recording
    both = combine_tracers(recording, RecordingTracer())
    assert isinstance(both, MultiTracer)
    assert both.enabled


def test_multi_tracer_fans_out(server, busy_trace):
    first, second = RecordingTracer(), RecordingTracer()
    tracer = combine_tracers(first, second)
    ServingSimulator(busy_trace, server=server, tracer=tracer).run()
    assert len(first.events) == len(second.events) > 0
    assert well_formed_errors(first) == []


def test_custom_null_subclass_stays_disabled():
    class Probe(Tracer):
        pass

    assert Probe().enabled is False
