"""Timeline export: Chrome trace-event JSON, span logs, schema identity.

The exported payload must be loadable Chrome trace-event / Perfetto
JSON: named per-array lanes, one complete ("X") span per batch and per
request wait, flow arrows ("s"/"f") from arrival to dispatch, instants
for sheds and coalescing timeouts, and an optional op-level drill-down
lane from the memoized pipelined schedule (paper Fig. 11).  The key
cross-driver property: the simulator and the live engine export
*schema-identical* files for equivalent runs — same event shapes, same
lanes, same argument keys — checked via :func:`repro.obs.trace_schema`
down at the unit level here and through the real CLI front-ends in
``test_cli_trace_out_schema_identity``.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.obs import (
    RecordingTracer,
    build_chrome_trace,
    chrome_trace_events,
    export_trace,
    pipeline_op_lane,
    trace_schema,
    write_span_log,
)
from repro.obs.export import PIPELINE_PID, SERVING_PID
from repro.obs.tracer import EVENT_KINDS
from repro.serve import (
    ScheduledBatchCost,
    ServerConfig,
    ServingSimulator,
    replay_virtual,
)


@pytest.fixture(scope="module")
def traced_run(server, busy_trace):
    tracer = RecordingTracer()
    report = ServingSimulator(busy_trace, server=server, tracer=tracer).run()
    return tracer, report


def test_chrome_trace_round_trips_through_json(traced_run):
    tracer, _ = traced_run
    payload = build_chrome_trace(tracer)
    restored = json.loads(json.dumps(payload))
    assert restored == payload
    assert restored["displayTimeUnit"] == "ms"
    assert isinstance(restored["traceEvents"], list)


def test_chrome_trace_event_shapes(traced_run):
    tracer, report = traced_run
    payload = build_chrome_trace(tracer)
    events = payload["traceEvents"]
    phases = {event["ph"] for event in events}
    assert phases <= {"M", "X", "s", "f", "i"}
    # One lane per array plus the requests lane, all named.
    names = {
        event["args"]["name"]
        for event in events
        if event["ph"] == "M" and event["name"] == "thread_name"
    }
    assert "requests" in names
    assert {"array 0", "array 1"} <= names
    # One complete span per batch on its array lane.
    batch_spans = [
        e for e in events if e["ph"] == "X" and e.get("cat") == "batch"
    ]
    assert len(batch_spans) == report.batch_count
    assert all(span["dur"] > 0 for span in batch_spans)
    # Every served request gets a flow arrow from arrival to dispatch.
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    assert len(starts) == len(finishes) == report.completed
    assert {e["id"] for e in starts} == {e["id"] for e in finishes}


def test_chrome_trace_sorted_by_timestamp(traced_run):
    tracer, _ = traced_run
    events = build_chrome_trace(tracer)["traceEvents"]
    timestamps = [event["ts"] for event in events]
    assert timestamps == sorted(timestamps)


def test_span_log_jsonl(tmp_path, traced_run):
    tracer, _ = traced_run
    path = tmp_path / "spans.jsonl"
    count = write_span_log(tracer, str(path))
    lines = path.read_text().strip().splitlines()
    assert len(lines) == count == len(tracer.events)
    kinds = {json.loads(line)["kind"] for line in lines}
    assert kinds <= set(EVENT_KINDS)


def test_export_trace_dispatches_on_extension(tmp_path, traced_run):
    tracer, _ = traced_run
    chrome = tmp_path / "t.json"
    spans = tmp_path / "t.jsonl"
    export_trace(tracer, str(chrome))
    export_trace(tracer, str(spans))
    assert "traceEvents" in json.loads(chrome.read_text())
    assert json.loads(spans.read_text().splitlines()[0])["kind"]


def test_schema_identity_sim_vs_virtual_replay(server, busy_trace):
    sim_tracer = RecordingTracer()
    ServingSimulator(busy_trace, server=server, tracer=sim_tracer).run()
    live_tracer = RecordingTracer()
    replay_virtual(server, busy_trace, tracer=live_tracer)
    sim_schema = trace_schema(build_chrome_trace(sim_tracer))
    live_schema = trace_schema(build_chrome_trace(live_tracer))
    assert sim_schema == live_schema


def test_op_lane_present_only_for_pipelined_cost(tiny_config):
    pipelined = ScheduledBatchCost(network=tiny_config, pipeline=True)
    lane = pipeline_op_lane(pipelined, batch_size=2, batches=2)
    assert lane
    assert all(event["pid"] == PIPELINE_PID for event in lane)
    categories = {event.get("cat") for event in lane if event["ph"] == "X"}
    assert {"op", "load"} <= categories

    cold = ScheduledBatchCost(network=tiny_config, pipeline=False)
    with pytest.raises(ConfigError):
        pipeline_op_lane(cold, batch_size=2)


def test_op_lane_changes_schema_but_not_serving_lanes(traced_run, tiny_config):
    tracer, _ = traced_run
    plain = build_chrome_trace(tracer)
    pipelined = ScheduledBatchCost(network=tiny_config, pipeline=True)
    lane = pipeline_op_lane(pipelined, batch_size=2, batches=2)
    augmented = build_chrome_trace(tracer, op_lane=lane)
    plain_schema = trace_schema(plain)
    augmented_schema = trace_schema(augmented)
    assert plain_schema < augmented_schema
    serving = {
        event["pid"] for event in plain["traceEvents"] if event["ph"] != "M"
    }
    assert serving == {SERVING_PID}


def test_chrome_events_only_need_completed_batches(server, busy_trace):
    # chrome_trace_events on a fresh tracer: no events, no crash.
    assert chrome_trace_events(RecordingTracer()) != []  # metadata only
    tracer = RecordingTracer()
    ServingSimulator(busy_trace, server=server, tracer=tracer).run()
    assert len(chrome_trace_events(tracer)) > len(tracer.events) // 2


def test_cli_trace_out_schema_identity(tmp_path):
    """The acceptance gate: `repro serve-sim --trace-out` and `repro
    serve --trace-out` on the same trace emit schema-identical Perfetto
    files (same shapes, lanes, and arg keys; values differ)."""
    from repro.cli import main

    sim_path = tmp_path / "sim.trace.json"
    live_path = tmp_path / "live.trace.json"
    common = [
        "--network",
        "tiny",
        "--trace",
        "uniform",
        "--rate",
        "50000",
        "--requests",
        "30",
        "--max-batch",
        "8",
        "--seed",
        "3",
    ]
    assert main(["serve-sim", *common, "--trace-out", str(sim_path)]) == 0
    assert main(["serve", *common, "--trace-out", str(live_path)]) == 0
    sim_payload = json.loads(sim_path.read_text())
    live_payload = json.loads(live_path.read_text())
    assert trace_schema(sim_payload) == trace_schema(live_payload)
    for payload in (sim_payload, live_payload):
        kinds = {event["ph"] for event in payload["traceEvents"]}
        assert {"M", "X", "s", "f", "i"} <= kinds


def test_cli_fast_plus_trace_out_is_an_error(tmp_path, capsys):
    from repro.cli import main

    code = main(
        [
            "serve-sim",
            "--network",
            "tiny",
            "--requests",
            "16",
            "--fast",
            "--trace-out",
            str(tmp_path / "t.json"),
        ]
    )
    assert code == 2
    assert "recording path" in capsys.readouterr().err
