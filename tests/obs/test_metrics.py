"""Metrics layer: registry, windowed rollups, serving adapter, HTTP.

:class:`~repro.obs.ServingMetrics` is itself a tracer, so the counters
here are driven by real simulated runs through the same hook surface as
the recorders — and the totals must agree with the run's own report.
The exposition is Prometheus text format; the scrape endpoint is a
bare asyncio server the live runtime can host next to its load.
"""

from __future__ import annotations

import asyncio
import math

import pytest

from repro.errors import ConfigError
from repro.obs import (
    MetricsRegistry,
    RecordingTracer,
    ServingMetrics,
    WindowedLatency,
    combine_tracers,
    serve_metrics,
)
from repro.serve import ServerConfig, ServingSimulator


def test_registry_renders_prometheus_text():
    registry = MetricsRegistry()
    requests = registry.counter("demo_requests_total", "Requests seen")
    depth = registry.gauge("demo_depth", "Queue depth")
    requests.inc(tenant="a")
    requests.inc(2, tenant="b")
    depth.set(3)
    text = registry.render()
    assert "# HELP demo_requests_total Requests seen" in text
    assert "# TYPE demo_requests_total counter" in text
    assert 'demo_requests_total{tenant="a"} 1' in text
    assert 'demo_requests_total{tenant="b"} 2' in text
    assert "# TYPE demo_depth gauge" in text
    assert "demo_depth 3" in text


def test_registry_rejects_type_conflicts():
    registry = MetricsRegistry()
    registry.counter("demo_total")
    with pytest.raises(ConfigError):
        registry.gauge("demo_total")
    # Re-registering at the same type returns the same family.
    assert registry.counter("demo_total") is registry.counter("demo_total")


def test_windowed_latency_rolls_windows():
    window = WindowedLatency(window_us=1000.0, bin_us=10.0)
    for ts in range(0, 900, 100):
        window.observe(float(ts), 200.0)
    partial = window.latest()
    assert partial["count"] == 9
    assert partial["p50_us"] == pytest.approx(200.0, rel=0.1)
    # Crossing the boundary closes the full first window and the empty
    # gap window behind it — an idle second is a real (empty) rollup.
    window.observe(2500.0, 400.0)
    assert [w["count"] for w in window.windows] == [9, 0]
    assert window.windows[0]["end_us"] == 1000.0
    window.observe(3500.0, 400.0)
    assert window.latest()["count"] == 1
    assert window.latest()["p50_us"] == pytest.approx(400.0, rel=0.1)


def test_windowed_latency_rejects_bad_window():
    with pytest.raises(ConfigError):
        WindowedLatency(window_us=0.0)
    with pytest.raises(ConfigError):
        WindowedLatency(window_us=math.inf)


def test_serving_metrics_counts_match_report(server, busy_trace):
    metrics = ServingMetrics()
    report = ServingSimulator(busy_trace, server=server, tracer=metrics).run()
    offered = sum(metrics.offered.samples.values())
    completed = sum(metrics.completed.samples.values())
    batches = sum(metrics.batches.samples.values())
    assert offered == report.offered
    assert completed == report.completed
    assert batches == report.batch_count
    sizes = {
        int(key[0][1]): int(value)
        for key, value in metrics.batch_size.samples.items()
    }
    assert sizes == report.batch_size_histogram()


def test_serving_metrics_sample_sets_gauges(server, busy_trace):
    metrics = ServingMetrics()
    report = ServingSimulator(busy_trace, server=server, tracer=metrics).run()
    busy = {
        array: value * report.makespan_us
        for array, value in report.array_utilization().items()
    }
    metrics.sample(
        queue_depth=0, inflight=0, busy_us=busy, elapsed_us=report.makespan_us
    )
    text = metrics.render()
    assert 'serve_array_utilization{array="0"}' in text
    assert "serve_latency_p50_us" in text
    assert "serve_queue_depth 0" in text
    window = metrics.latency.latest()
    assert window is not None and window["count"] > 0


def test_serving_metrics_combines_with_recorder(server, busy_trace):
    recorder = RecordingTracer()
    metrics = ServingMetrics()
    tracer = combine_tracers(recorder, metrics)
    report = ServingSimulator(busy_trace, server=server, tracer=tracer).run()
    assert len(recorder.events) > 0
    assert sum(metrics.completed.samples.values()) == report.completed


def test_serving_metrics_tracks_deadline_misses(tiny_cost, burst_trace):
    server = ServerConfig.from_policy(
        "fifo",
        tiny_cost,
        max_batch=8,
        max_wait_us=2000.0,
        deadline_us=100.0,  # hopeless SLA: every completion misses
        network_name="tiny",
    )
    metrics = ServingMetrics()
    report = ServingSimulator(burst_trace, server=server, tracer=metrics).run()
    missed = sum(metrics.deadline_missed.samples.values())
    assert missed > 0
    assert missed <= report.completed


def test_live_runtime_snapshots_metrics(tiny_config, tiny_cost, busy_trace):
    """The runtime's periodic snapshot task + final flush populate the
    sampled gauges without the test calling sample() itself."""
    from repro.serve import ServingRuntime
    from repro.serve.workers import PredictedExecutor

    server = ServerConfig.from_policy(
        "fifo",
        tiny_cost,
        max_batch=8,
        max_wait_us=2000.0,
        arrays=2,
        network_name="tiny",
    )
    recorder = RecordingTracer()
    metrics = ServingMetrics()

    async def scenario():
        runtime = ServingRuntime(
            server,
            executor=PredictedExecutor(tiny_config.image_size),
            tracer=recorder,
            metrics=metrics,
            metrics_interval_s=0.01,
        )
        await runtime.run_load(busy_trace)
        await runtime.drain()
        report = runtime.report()
        await runtime.stop()
        return report

    report = asyncio.run(scenario())
    text = metrics.render()
    assert sum(metrics.completed.samples.values()) == report.completed
    assert len(recorder.events) > 0
    assert 'serve_array_utilization{array="0"}' in text
    assert "serve_queue_depth 0" in text  # final flush after the drain


def test_runtime_rejects_bad_metrics_interval(tiny_config, tiny_cost):
    from repro.serve import ServingRuntime
    from repro.serve.workers import PredictedExecutor

    server = ServerConfig.from_policy("fifo", tiny_cost, network_name="tiny")
    with pytest.raises(ConfigError):
        ServingRuntime(
            server,
            executor=PredictedExecutor(tiny_config.image_size),
            metrics=ServingMetrics(),
            metrics_interval_s=0.0,
        )


def test_metrics_http_endpoint(server, busy_trace):
    metrics = ServingMetrics()
    ServingSimulator(busy_trace, server=server, tracer=metrics).run()
    metrics.sample(queue_depth=0, inflight=0)

    async def scrape() -> bytes:
        http = await serve_metrics(metrics, "127.0.0.1", 0)
        port = http.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(b"GET /metrics HTTP/1.0\r\n\r\n")
        await writer.drain()
        response = await reader.read()
        writer.close()
        http.close()
        await http.wait_closed()
        return response

    response = asyncio.run(scrape())
    assert response.startswith(b"HTTP/1.0 200 OK")
    assert b"text/plain" in response
    assert b"serve_requests_offered_total" in response
