"""Unit tests for the layer objects."""

import numpy as np
import pytest

from repro.capsnet.layers import ClassCapsLayer, Conv1Layer, PrimaryCapsLayer
from repro.capsnet.ops import squash
from repro.errors import ShapeError


class TestConv1Layer:
    def test_forward_shape(self, tiny_config, tiny_weights, tiny_images):
        layer = Conv1Layer(tiny_config.conv1, tiny_weights["conv1_w"], tiny_weights["conv1_b"])
        out = layer.forward(tiny_images[0][np.newaxis])
        size = tiny_config.conv1_out_size
        assert out.shape == (tiny_config.conv1.out_channels, size, size)

    def test_relu_applied(self, tiny_config, tiny_weights, tiny_images):
        layer = Conv1Layer(tiny_config.conv1, tiny_weights["conv1_w"], tiny_weights["conv1_b"])
        out = layer.forward(tiny_images[0][np.newaxis])
        assert out.min() >= 0.0

    def test_shape_validation(self, tiny_config, tiny_weights):
        with pytest.raises(ShapeError):
            Conv1Layer(tiny_config.conv1, tiny_weights["conv1_w"][:, :, :1, :], tiny_weights["conv1_b"])
        with pytest.raises(ShapeError):
            Conv1Layer(tiny_config.conv1, tiny_weights["conv1_w"], tiny_weights["conv1_b"][:-1])


class TestPrimaryCapsLayer:
    @pytest.fixture
    def layer(self, tiny_config, tiny_weights):
        return PrimaryCapsLayer(
            tiny_config.primary, tiny_weights["primary_w"], tiny_weights["primary_b"]
        )

    @pytest.fixture
    def conv1_out(self, tiny_config, tiny_weights, tiny_images):
        conv1 = Conv1Layer(tiny_config.conv1, tiny_weights["conv1_w"], tiny_weights["conv1_b"])
        return conv1.forward(tiny_images[0][np.newaxis])

    def test_capsule_shape(self, layer, conv1_out, tiny_config):
        caps = layer.forward(conv1_out)
        assert caps.shape == (
            tiny_config.num_primary_capsules,
            tiny_config.primary.capsule_dim,
        )

    def test_capsules_squashed(self, layer, conv1_out):
        caps = layer.forward(conv1_out)
        assert np.all(np.linalg.norm(caps, axis=-1) < 1.0)

    def test_grouping_channel_major(self, layer, tiny_config):
        # Synthetic conv output where channel c has constant value c lets us
        # verify the (h, w, capsule_channel, dim) grouping order.
        out_size = tiny_config.primary_out_size
        channels = tiny_config.primary.conv_out_channels
        conv_out = np.arange(channels, dtype=np.float64)[:, np.newaxis, np.newaxis]
        conv_out = np.broadcast_to(conv_out, (channels, out_size, out_size)).copy()
        grouped = layer.group_capsules(conv_out)
        dim = tiny_config.primary.capsule_dim
        # First capsule at (0,0) is capsule-channel 0 -> conv channels 0..dim-1.
        assert list(grouped[0]) == list(range(dim))
        # Second capsule at (0,0) is capsule-channel 1 -> next dim channels.
        assert list(grouped[1]) == list(range(dim, 2 * dim))

    def test_forward_equals_manual_pipeline(self, layer, conv1_out):
        manual = squash(layer.group_capsules(layer.conv_forward(conv1_out)), axis=-1)
        assert np.allclose(layer.forward(conv1_out), manual)

    def test_group_rejects_wrong_channels(self, layer, tiny_config):
        with pytest.raises(ShapeError):
            layer.group_capsules(np.zeros((3, 2, 2)))


class TestClassCapsLayer:
    @pytest.fixture
    def layer(self, tiny_config, tiny_weights):
        return ClassCapsLayer(
            tiny_config.classcaps,
            tiny_weights["classcaps_w"],
            num_in_capsules=tiny_config.num_primary_capsules,
            in_dim=tiny_config.primary.capsule_dim,
        )

    def test_prediction_shape(self, layer, tiny_config, rng):
        u = rng.standard_normal(
            (tiny_config.num_primary_capsules, tiny_config.primary.capsule_dim)
        )
        u_hat = layer.predictions(u)
        assert u_hat.shape == (
            tiny_config.num_primary_capsules,
            tiny_config.classcaps.num_classes,
            tiny_config.classcaps.out_dim,
        )

    def test_predictions_are_per_pair_matvecs(self, layer, tiny_config, rng):
        u = rng.standard_normal(
            (tiny_config.num_primary_capsules, tiny_config.primary.capsule_dim)
        )
        u_hat = layer.predictions(u)
        i, j = 3, 1
        assert np.allclose(u_hat[i, j], layer.weight[i, j] @ u[i])

    def test_forward_runs_routing(self, layer, tiny_config, rng):
        u = rng.standard_normal(
            (tiny_config.num_primary_capsules, tiny_config.primary.capsule_dim)
        )
        result = layer.forward(u)
        assert result.v.shape == (
            tiny_config.classcaps.num_classes,
            tiny_config.classcaps.out_dim,
        )

    def test_input_shape_validated(self, layer):
        with pytest.raises(ShapeError):
            layer.predictions(np.zeros((3, 3)))

    def test_weight_shape_validated(self, tiny_config, tiny_weights):
        with pytest.raises(ShapeError):
            ClassCapsLayer(
                tiny_config.classcaps,
                tiny_weights["classcaps_w"],
                num_in_capsules=5,
                in_dim=tiny_config.primary.capsule_dim,
            )
