"""Unit tests for the lightweight ClassCaps trainer."""

import numpy as np
import pytest

from repro.capsnet.train import (
    evaluate_classcaps,
    extract_primary_features,
    train_classcaps,
    train_on_dataset,
)
from repro.capsnet.weights import pseudo_trained_weights
from repro.data.synthetic import SyntheticDigits
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def train_data(tiny_config):
    generator = SyntheticDigits(size=tiny_config.image_size, seed=21)
    return generator.generate(60, classes=(0, 1, 2))


@pytest.fixture(scope="module")
def features(tiny_config, train_data):
    weights = pseudo_trained_weights(tiny_config, seed=2019)
    return extract_primary_features(tiny_config, weights, train_data.images)


class TestFeatureExtraction:
    def test_shape(self, tiny_config, features, train_data):
        assert features.shape == (
            len(train_data),
            tiny_config.num_primary_capsules,
            tiny_config.primary.capsule_dim,
        )

    def test_features_squashed(self, features):
        assert np.all(np.linalg.norm(features, axis=-1) < 1.0)


class TestTraining:
    def test_loss_decreases(self, tiny_config, features, train_data):
        result = train_classcaps(
            tiny_config, features, train_data.labels, epochs=8, seed=3
        )
        assert result.loss_history[-1] < result.loss_history[0]

    def test_reaches_reasonable_train_accuracy(self, tiny_config, features, train_data):
        result = train_classcaps(
            tiny_config, features, train_data.labels, epochs=15, learning_rate=0.1, seed=3
        )
        # Frozen random conv features cap the achievable accuracy; well
        # above the 1/3 chance level is what this smoke test guards.
        assert result.train_accuracy >= 0.7

    def test_beats_untrained_weights(self, tiny_config, features, train_data, rng):
        result = train_classcaps(
            tiny_config, features, train_data.labels, epochs=12, seed=3
        )
        scale = 1.0 / np.sqrt(tiny_config.primary.capsule_dim)
        random_w = scale * rng.standard_normal(result.weights["classcaps_w"].shape)
        random_acc = evaluate_classcaps(tiny_config, random_w, features, train_data.labels)
        assert result.train_accuracy > random_acc

    def test_weights_bounded_for_quantization(self, tiny_config, features, train_data):
        result = train_classcaps(
            tiny_config, features, train_data.labels, epochs=5, seed=3, max_weight=1.5
        )
        assert np.abs(result.weights["classcaps_w"]).max() <= 1.5

    def test_feature_shape_validated(self, tiny_config, train_data):
        with pytest.raises(ConfigError):
            train_classcaps(
                tiny_config, np.zeros((10, 3, 3)), train_data.labels[:10], epochs=1
            )


class TestTrainOnDataset:
    def test_returns_complete_weight_dict(self, tiny_config, train_data):
        weights, result = train_on_dataset(tiny_config, train_data, epochs=3)
        assert set(weights) >= {"conv1_w", "conv1_b", "primary_w", "primary_b", "classcaps_w"}
        assert len(result.loss_history) == 3
