"""Unit tests for weight generation and persistence."""

import numpy as np
import pytest

from repro.capsnet.weights import (
    WEIGHT_KEYS,
    load_weights,
    pseudo_trained_weights,
    save_weights,
    validate_weights,
    weight_shapes,
)
from repro.errors import ShapeError


class TestShapes:
    def test_all_keys_present(self, tiny_config):
        shapes = weight_shapes(tiny_config)
        assert set(shapes) == set(WEIGHT_KEYS)

    def test_mnist_classcaps_shape(self, mnist_config):
        shapes = weight_shapes(mnist_config)
        assert shapes["classcaps_w"] == (1152, 10, 16, 8)

    def test_generated_weights_match_shapes(self, tiny_config):
        weights = pseudo_trained_weights(tiny_config)
        for key, shape in weight_shapes(tiny_config).items():
            assert weights[key].shape == shape


class TestGeneration:
    def test_deterministic_by_seed(self, tiny_config):
        a = pseudo_trained_weights(tiny_config, seed=7)
        b = pseudo_trained_weights(tiny_config, seed=7)
        for key in WEIGHT_KEYS:
            assert np.array_equal(a[key], b[key])

    def test_different_seeds_differ(self, tiny_config):
        a = pseudo_trained_weights(tiny_config, seed=7)
        b = pseudo_trained_weights(tiny_config, seed=8)
        assert not np.array_equal(a["conv1_w"], b["conv1_w"])

    def test_biases_zero(self, tiny_config):
        weights = pseudo_trained_weights(tiny_config)
        assert np.all(weights["conv1_b"] == 0)
        assert np.all(weights["primary_b"] == 0)

    def test_fan_in_scaling_bounds_magnitude(self, mnist_config):
        weights = pseudo_trained_weights(mnist_config)
        # Weights should comfortably fit the 8-bit Q(8,6) range of +-2.
        assert np.abs(weights["conv1_w"]).max() < 2.0
        assert np.abs(weights["primary_w"]).max() < 2.0


class TestValidation:
    def test_missing_key_raises(self, tiny_config, tiny_weights):
        broken = dict(tiny_weights)
        del broken["primary_w"]
        with pytest.raises(ShapeError):
            validate_weights(tiny_config, broken)

    def test_wrong_shape_raises(self, tiny_config, tiny_weights):
        broken = dict(tiny_weights)
        broken["classcaps_w"] = broken["classcaps_w"][:2]
        with pytest.raises(ShapeError):
            validate_weights(tiny_config, broken)

    def test_valid_passes(self, tiny_config, tiny_weights):
        validate_weights(tiny_config, tiny_weights)


class TestPersistence:
    def test_round_trip(self, tiny_config, tiny_weights, tmp_path):
        path = tmp_path / "weights.npz"
        save_weights(path, tiny_weights)
        loaded = load_weights(path, config=tiny_config)
        for key in WEIGHT_KEYS:
            assert np.array_equal(loaded[key], tiny_weights[key])

    def test_load_validates_when_config_given(self, mnist_config, tiny_weights, tmp_path):
        path = tmp_path / "weights.npz"
        save_weights(path, tiny_weights)
        with pytest.raises(ShapeError):
            load_weights(path, config=mnist_config)
