"""Unit tests for the 8-bit quantized CapsuleNet."""

import numpy as np
import pytest

from repro.capsnet.model import CapsuleNet
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.errors import ShapeError


class TestForward:
    def test_runs_and_shapes(self, tiny_qnet, tiny_config, tiny_images):
        out = tiny_qnet.forward(tiny_images[0])
        assert out.class_caps_raw.shape == (
            tiny_config.classcaps.num_classes,
            tiny_config.classcaps.out_dim,
        )
        assert out.coupling_raw.shape == (
            tiny_config.num_primary_capsules,
            tiny_config.classcaps.num_classes,
        )
        assert out.length_sumsq_raw.shape == (tiny_config.classcaps.num_classes,)

    def test_deterministic(self, tiny_qnet, tiny_images):
        a = tiny_qnet.forward(tiny_images[0])
        b = tiny_qnet.forward(tiny_images[0])
        assert np.array_equal(a.class_caps_raw, b.class_caps_raw)

    def test_no_saturation_on_typical_input(self, tiny_qnet, tiny_images):
        out = tiny_qnet.forward(tiny_images[0])
        assert out.saturation.rate < 0.001

    def test_wrong_image_shape_raises(self, tiny_qnet):
        with pytest.raises(ShapeError):
            tiny_qnet.forward(np.zeros((7, 7)))

    def test_class_caps_real_view_in_range(self, tiny_qnet, tiny_images):
        caps = tiny_qnet.forward(tiny_images[0]).class_caps
        assert np.abs(caps).max() <= tiny_qnet.formats.caps_data.max_value


class TestAgainstFloat:
    def test_class_capsules_close_to_float(self, tiny_config, tiny_weights, tiny_qnet, tiny_images):
        fnet = CapsuleNet(tiny_config, weights=tiny_weights)
        for image in tiny_images[:2]:
            fout = fnet.forward(image)
            qout = tiny_qnet.forward(image)
            assert np.max(np.abs(qout.class_caps - fout.class_capsules)) < 0.12

    def test_primary_capsules_close_to_float(self, tiny_config, tiny_weights, tiny_qnet, tiny_images):
        fnet = CapsuleNet(tiny_config, weights=tiny_weights)
        fout = fnet.forward(tiny_images[0])
        qout = tiny_qnet.forward(tiny_images[0])
        assert np.max(np.abs(qout.primary_capsules - fout.primary_capsules)) < 0.1

    def test_predictions_mostly_agree(self, tiny_config, tiny_weights, tiny_qnet, tiny_images):
        fnet = CapsuleNet(tiny_config, weights=tiny_weights)
        agreements = [
            fnet.predict(image) == tiny_qnet.predict(image) for image in tiny_images
        ]
        assert sum(agreements) >= len(tiny_images) - 1


class TestRoutingOptimization:
    def test_optimized_equals_textbook_bitexact(self, tiny_config, tiny_weights, tiny_images):
        optimized = QuantizedCapsuleNet(tiny_config, weights=tiny_weights, optimized_routing=True)
        textbook = QuantizedCapsuleNet(tiny_config, weights=tiny_weights, optimized_routing=False)
        a = optimized.forward(tiny_images[0])
        b = textbook.forward(tiny_images[0])
        assert np.array_equal(a.class_caps_raw, b.class_caps_raw)
        assert np.array_equal(a.coupling_raw, b.coupling_raw)

    def test_uniform_code_matches_hw_softmax_of_zeros(self, tiny_qnet):
        num_out = tiny_qnet.config.classcaps.num_classes
        code = tiny_qnet._uniform_coupling_code(num_out)
        from repro.capsnet.hwops import hw_softmax

        zeros = np.zeros((1, num_out), dtype=np.int64)
        reference = hw_softmax(zeros, tiny_qnet.luts, tiny_qnet.formats, axis=1)
        assert np.all(reference == code)


class TestWeightQuantization:
    def test_raw_weights_within_format(self, tiny_qnet):
        fmts = tiny_qnet.formats
        assert np.abs(tiny_qnet.raw_weights["conv1_w"]).max() <= fmts.conv1_weight.raw_max
        assert np.abs(tiny_qnet.raw_weights["classcaps_w"]).max() <= fmts.classcaps_weight.raw_max

    def test_quantization_error_bounded(self, tiny_config, tiny_weights, tiny_qnet):
        fmts = tiny_qnet.formats
        from repro.fixedpoint.quantize import from_raw

        got = from_raw(tiny_qnet.raw_weights["conv1_w"], fmts.conv1_weight)
        clipped = np.clip(
            tiny_weights["conv1_w"], fmts.conv1_weight.min_value, fmts.conv1_weight.max_value
        )
        assert np.max(np.abs(got - clipped)) <= fmts.conv1_weight.resolution / 2 + 1e-12
