"""Unit tests for the Table I accounting."""

import pytest

from repro.capsnet.params import (
    PAPER_TABLE1,
    layer_statistics,
    parameter_breakdown,
    total_weight_bytes,
)


class TestLayerStatistics:
    @pytest.fixture(scope="class")
    def stats(self):
        return {s.name: s for s in layer_statistics()}

    def test_four_rows(self, stats):
        assert set(stats) == {"Conv1", "PrimaryCaps", "ClassCaps", "Coupling Coeff"}

    def test_conv1_matches_paper_exactly(self, stats):
        row = stats["Conv1"]
        assert row.inputs == 784
        assert row.parameters == 20992
        assert row.outputs == 102400

    def test_primarycaps_parameters_match_paper(self, stats):
        assert stats["PrimaryCaps"].parameters == PAPER_TABLE1["PrimaryCaps"]["parameters"]

    def test_primarycaps_output_is_corrected(self, stats):
        # The paper prints 102400; the stride-2 architecture gives 9216.
        assert stats["PrimaryCaps"].outputs == 9216
        assert PAPER_TABLE1["PrimaryCaps"]["outputs"] == 102400

    def test_classcaps_matches_paper(self, stats):
        row = stats["ClassCaps"]
        assert row.parameters == 1474560
        assert row.outputs == 160

    def test_coupling_matches_paper(self, stats):
        row = stats["Coupling Coeff"]
        assert row.parameters == 11520
        assert row.inputs == 160
        assert row.outputs == 160

    def test_io_chaining(self, stats):
        assert stats["PrimaryCaps"].inputs == stats["Conv1"].outputs
        assert stats["ClassCaps"].inputs == stats["PrimaryCaps"].outputs

    def test_as_row_format(self, stats):
        assert stats["Conv1"].as_row() == ("Conv1", 784, 20992, 102400)


class TestBreakdown:
    def test_fractions_sum_to_one(self):
        breakdown = parameter_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_paper_fig5_fractions(self):
        breakdown = parameter_breakdown()
        assert breakdown["Conv1"] < 0.01
        assert breakdown["PrimaryCaps"] == pytest.approx(0.78, abs=0.005)
        assert breakdown["ClassCaps"] == pytest.approx(0.22, abs=0.005)
        assert breakdown["Coupling Coeff"] < 0.01


class TestWeightStorage:
    def test_fits_paper_8mb_claim(self):
        assert total_weight_bytes() <= 8 * 1024 * 1024

    def test_8bit_size_about_6_5_mb(self):
        mb = total_weight_bytes() / (1024 * 1024)
        assert 6.0 < mb < 7.0

    def test_scales_with_bit_width(self):
        assert total_weight_bytes(bits_per_weight=16) == 2 * total_weight_bytes()
