"""Unit tests for the bit-accurate quantized operators."""

import numpy as np
import pytest

from repro.capsnet.hwops import (
    HardwareLuts,
    QuantizedFormats,
    SaturationCounter,
    hw_norm,
    hw_relu,
    hw_softmax,
    hw_squash,
    quantized_conv2d,
    quantized_matmul,
)
from repro.capsnet.ops import conv2d, softmax, squash
from repro.fixedpoint.quantize import from_raw, to_raw


@pytest.fixture(scope="module")
def fmts():
    return QuantizedFormats()


@pytest.fixture(scope="module")
def luts(fmts):
    return HardwareLuts.build(fmts)


class TestQuantizedMatmul:
    def test_matches_int_matmul(self, fmts, rng):
        acc_fmt = fmts.acc(fmts.caps_data, fmts.classcaps_weight)
        a = rng.integers(-100, 100, size=(5, 7))
        b = rng.integers(-100, 100, size=(7, 3))
        out = quantized_matmul(a, b, acc_fmt)
        assert np.array_equal(out, a @ b)

    def test_saturation_counted(self, fmts, rng):
        acc_fmt = fmts.acc(fmts.caps_data, fmts.classcaps_weight)
        a = np.full((1, 4000), 127, dtype=np.int64)
        b = np.full((4000, 1), 127, dtype=np.int64)
        counter = SaturationCounter()
        out = quantized_matmul(a, b, acc_fmt, counter, site="big")
        assert out[0, 0] == acc_fmt.raw_max
        assert counter.events == 1
        assert counter.sites["big"] == 1

    def test_counter_rate(self):
        counter = SaturationCounter()
        counter.record("x", np.array([0, 1, 10**9]), QuantizedFormats().logits)
        assert counter.rate == pytest.approx(1 / 3)


class TestQuantizedConv:
    def test_matches_float_conv_on_grid(self, fmts, rng):
        # Values on the exact fixed-point grid convolve identically.
        x = from_raw(rng.integers(-50, 50, size=(2, 6, 6)), fmts.conv1_out)
        w = from_raw(rng.integers(-30, 30, size=(3, 2, 3, 3)), fmts.primary_weight)
        acc_fmt = fmts.acc(fmts.conv1_out, fmts.primary_weight)
        raw_out = quantized_conv2d(
            to_raw(x, fmts.conv1_out),
            to_raw(w, fmts.primary_weight),
            None,
            stride=1,
            acc_fmt=acc_fmt,
        )
        expected = conv2d(x, w, None, stride=1)
        assert np.allclose(from_raw(raw_out, acc_fmt), expected)

    def test_bias_in_acc_format(self, fmts, rng):
        acc_fmt = fmts.acc(fmts.conv1_out, fmts.primary_weight)
        x_raw = rng.integers(-20, 20, size=(1, 4, 4))
        w_raw = rng.integers(-20, 20, size=(2, 1, 3, 3))
        bias_raw = np.array([100, -100])
        with_bias = quantized_conv2d(x_raw, w_raw, bias_raw, 1, acc_fmt)
        without = quantized_conv2d(x_raw, w_raw, None, 1, acc_fmt)
        assert np.array_equal(with_bias - without, np.broadcast_to(
            bias_raw[:, np.newaxis, np.newaxis], with_bias.shape))


class TestHwRelu:
    def test_zeroes_negative_codes(self):
        assert list(hw_relu(np.array([-5, 0, 5]))) == [0, 0, 5]


class TestHwNorm:
    def test_norm_close_to_float(self, fmts, luts, rng):
        vec = rng.uniform(-1.5, 1.5, size=(20, 8))
        vec_raw = to_raw(vec, fmts.primary_preact)
        norm_raw, _ = hw_norm(vec_raw, fmts.primary_preact, luts, fmts)
        got = from_raw(norm_raw, fmts.norm)
        exact = np.linalg.norm(from_raw(vec_raw, fmts.primary_preact), axis=-1)
        exact = np.minimum(exact, fmts.norm.max_value)
        assert np.max(np.abs(got - exact)) < 0.2

    def test_zero_vector(self, fmts, luts):
        vec_raw = np.zeros((1, 16), dtype=np.int64)
        norm_raw, sumsq = hw_norm(vec_raw, fmts.primary_preact, luts, fmts)
        assert norm_raw[0] == 0
        assert sumsq[0] == 0

    def test_sumsq_monotonic_in_magnitude(self, fmts, luts):
        small = to_raw(np.full((1, 4), 0.25), fmts.caps_data)
        large = to_raw(np.full((1, 4), 0.75), fmts.caps_data)
        _, sumsq_small = hw_norm(small, fmts.caps_data, luts, fmts)
        _, sumsq_large = hw_norm(large, fmts.caps_data, luts, fmts)
        assert sumsq_large[0] > sumsq_small[0]


class TestHwSquash:
    def test_close_to_float_squash(self, fmts, luts, rng):
        vec = rng.uniform(-1.0, 1.0, size=(30, 8))
        vec_raw = to_raw(vec, fmts.primary_preact)
        out_raw = hw_squash(vec_raw, fmts.primary_preact, luts, fmts)
        got = from_raw(out_raw, fmts.caps_data)
        exact = squash(from_raw(vec_raw, fmts.primary_preact), axis=-1)
        assert np.max(np.abs(got - exact)) < 0.15

    def test_output_bounded(self, fmts, luts, rng):
        vec_raw = to_raw(rng.uniform(-6, 6, size=(50, 16)), fmts.primary_preact)
        out = from_raw(
            hw_squash(vec_raw, fmts.primary_preact, luts, fmts), fmts.caps_data
        )
        # Squashed components stay strictly inside (-1, 1) up to quantization.
        assert np.abs(out).max() <= 1.0 + fmts.caps_data.resolution

    def test_zero_maps_to_zero(self, fmts, luts):
        out = hw_squash(np.zeros((2, 8), dtype=np.int64), fmts.primary_preact, luts, fmts)
        assert np.all(out == 0)


class TestHwSoftmax:
    def test_rows_sum_close_to_one(self, fmts, luts, rng):
        logits_raw = rng.integers(-60, 60, size=(40, 10))
        c_raw = hw_softmax(logits_raw, luts, fmts, axis=1)
        sums = from_raw(c_raw, fmts.coupling).sum(axis=1)
        assert np.max(np.abs(sums - 1.0)) < 0.08

    def test_uniform_for_zero_logits(self, fmts, luts):
        c_raw = hw_softmax(np.zeros((3, 8), dtype=np.int64), luts, fmts, axis=1)
        expected = round((1 / 8) * (1 << fmts.coupling.frac_bits))
        assert np.all(np.abs(c_raw - expected) <= 1)

    def test_close_to_float_softmax(self, fmts, luts, rng):
        logits = rng.uniform(-3, 3, size=(20, 10))
        logits_raw = to_raw(logits, fmts.logits)
        got = from_raw(hw_softmax(logits_raw, luts, fmts, axis=1), fmts.coupling)
        exact = softmax(from_raw(logits_raw, fmts.logits), axis=1)
        assert np.max(np.abs(got - exact)) < 0.08

    def test_shift_invariance(self, fmts, luts):
        logits = np.array([[0, 16, 32]], dtype=np.int64)
        shifted = logits + 40
        assert np.array_equal(
            hw_softmax(logits, luts, fmts, axis=1),
            hw_softmax(shifted, luts, fmts, axis=1),
        )


class TestFormats:
    def test_acc_format_alignment(self, fmts):
        acc = fmts.acc(fmts.input, fmts.conv1_weight)
        assert acc.total_bits == 25
        assert acc.frac_bits == fmts.input.frac_bits + fmts.conv1_weight.frac_bits

    def test_paper_bit_widths(self, fmts):
        assert fmts.input.total_bits == 8
        assert fmts.caps_data.total_bits == 8
        assert fmts.squash_in.total_bits == 6
        assert fmts.norm.total_bits == 5
        assert fmts.square_in.total_bits == 12
        assert fmts.logits.total_bits == 8
        assert fmts.acc_bits == 25
