"""Unit tests for routing-by-agreement and the CapsAcc optimization."""

import numpy as np
import pytest

from repro.capsnet.ops import softmax, squash
from repro.capsnet.routing import (
    RoutingStep,
    routing_by_agreement,
    routing_step_sequence,
)
from repro.errors import ShapeError


@pytest.fixture
def u_hat(rng):
    return rng.standard_normal((12, 4, 6))


class TestAlgorithm:
    def test_output_shapes(self, u_hat):
        result = routing_by_agreement(u_hat, 3)
        assert result.v.shape == (4, 6)
        assert result.c.shape == (12, 4)
        assert result.b.shape == (12, 4)

    def test_single_iteration_is_uniform_average(self, u_hat):
        result = routing_by_agreement(u_hat, 1)
        s = u_hat.mean(axis=0) * 1.0  # uniform c = 1/4... over inputs
        expected = squash(np.einsum("ij,ijd->jd", np.full((12, 4), 0.25), u_hat))
        assert np.allclose(result.v, expected)
        assert np.allclose(result.c, 0.25)

    def test_coupling_rows_sum_to_one(self, u_hat):
        result = routing_by_agreement(u_hat, 3)
        assert np.allclose(result.c.sum(axis=1), 1.0)

    def test_outputs_squashed(self, u_hat):
        result = routing_by_agreement(u_hat, 3)
        assert np.all(np.linalg.norm(result.v, axis=-1) < 1.0)

    def test_history_lengths(self, u_hat):
        result = routing_by_agreement(u_hat, 3)
        assert len(result.s_history) == 3
        assert len(result.v_history) == 3

    def test_agreement_increases_coupling(self, rng):
        # One input capsule perfectly aligned with output 0's consensus
        # should end with higher coupling to output 0 than a random one.
        num_in, num_out, dim = 20, 3, 4
        u_hat = rng.standard_normal((num_in, num_out, dim)) * 0.1
        aligned = np.zeros((num_out, dim))
        aligned[0, 0] = 1.0
        for i in range(10):
            u_hat[i] = aligned  # strong consensus for output 0
        result = routing_by_agreement(u_hat, 3)
        assert result.c[:10, 0].mean() > result.c[10:, 0].mean()


class TestOptimization:
    def test_optimized_identical_to_textbook(self, u_hat):
        plain = routing_by_agreement(u_hat, 3, optimized=False)
        optimized = routing_by_agreement(u_hat, 3, optimized=True)
        assert np.allclose(plain.v, optimized.v)
        assert np.allclose(plain.c, optimized.c)
        assert np.allclose(plain.b, optimized.b)

    def test_optimized_identical_for_any_iterations(self, u_hat):
        for iterations in (1, 2, 4):
            plain = routing_by_agreement(u_hat, iterations, optimized=False)
            optimized = routing_by_agreement(u_hat, iterations, optimized=True)
            assert np.allclose(plain.v, optimized.v)

    def test_first_softmax_marked_skipped(self, u_hat):
        result = routing_by_agreement(u_hat, 3, optimized=True)
        first = result.steps[0]
        assert first.name == "softmax"
        assert first.skipped

    def test_textbook_runs_all_softmaxes(self, u_hat):
        result = routing_by_agreement(u_hat, 3, optimized=False)
        softmaxes = [s for s in result.steps if s.name == "softmax"]
        assert len(softmaxes) == 3
        assert not any(s.skipped for s in softmaxes)

    def test_softmax_of_zeros_is_uniform(self):
        # The identity the optimization relies on.
        assert np.allclose(softmax(np.zeros((5, 7)), axis=1), 1.0 / 7)


class TestStepTrace:
    def test_step_count(self, u_hat):
        result = routing_by_agreement(u_hat, 3)
        # 3 softmax + 3 sum + 3 squash + 2 update
        assert len(result.steps) == 11

    def test_no_update_after_last_iteration(self, u_hat):
        result = routing_by_agreement(u_hat, 3)
        assert result.steps[-1].name == "squash"

    def test_step_order_within_iteration(self, u_hat):
        result = routing_by_agreement(u_hat, 2)
        names = [s.name for s in result.steps]
        assert names == ["softmax", "sum", "squash", "update", "softmax", "sum", "squash"]


class TestStepSequence:
    def test_paper_fig9_labels(self):
        labels = routing_step_sequence(3, optimized=False)
        assert labels == [
            "Softmax1", "Sum1", "Squash1", "Update1",
            "Softmax2", "Sum2", "Squash2", "Update2",
            "Softmax3", "Sum3", "Squash3",
        ]

    def test_optimized_marks_first_softmax(self):
        labels = routing_step_sequence(3, optimized=True)
        assert labels[0] == "Softmax1 (skipped)"
        assert labels[4] == "Softmax2"


class TestValidation:
    def test_rejects_wrong_rank(self):
        with pytest.raises(ShapeError):
            routing_by_agreement(np.zeros((3, 4)), 3)

    def test_rejects_zero_iterations(self):
        with pytest.raises(ShapeError):
            routing_by_agreement(np.zeros((3, 4, 5)), 0)

    def test_routing_step_dataclass(self):
        step = RoutingStep("sum", 2)
        assert not step.skipped
