"""Unit tests for the numerical building blocks."""

import numpy as np
import pytest

from repro.capsnet.ops import (
    capsule_lengths,
    conv2d,
    im2col,
    margin_loss,
    relu,
    softmax,
    squash,
    squash_scalar,
    squash_scalar_derivative,
)
from repro.errors import ShapeError


class TestIm2col:
    def test_patch_count_and_width(self):
        x = np.arange(2 * 6 * 6, dtype=np.float64).reshape(2, 6, 6)
        patches = im2col(x, kernel_size=3, stride=1)
        assert patches.shape == (16, 18)

    def test_stride_two(self):
        x = np.zeros((1, 8, 8))
        assert im2col(x, 3, 2).shape == (9, 9)

    def test_first_patch_contents(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 4, 4)
        patches = im2col(x, 2, 1)
        assert list(patches[0]) == [0, 1, 4, 5]

    def test_row_major_output_order(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 4, 4)
        patches = im2col(x, 2, 1)
        # Second patch shifts one column right.
        assert list(patches[1]) == [1, 2, 5, 6]

    def test_integer_dtype_preserved(self):
        x = np.arange(16, dtype=np.int64).reshape(1, 4, 4)
        assert im2col(x, 2, 1).dtype == np.int64

    def test_rejects_wrong_rank(self):
        with pytest.raises(ShapeError):
            im2col(np.zeros((4, 4)), 2, 1)

    def test_rejects_kernel_larger_than_input(self):
        with pytest.raises(ShapeError):
            im2col(np.zeros((1, 3, 3)), 5, 1)


class TestConv2d:
    def test_identity_kernel(self):
        x = np.arange(9, dtype=np.float64).reshape(1, 3, 3)
        w = np.zeros((1, 1, 1, 1))
        w[0, 0, 0, 0] = 1.0
        out = conv2d(x, w, None, stride=1)
        assert np.array_equal(out, x)

    def test_matches_naive_convolution(self, rng):
        x = rng.standard_normal((3, 7, 7))
        w = rng.standard_normal((4, 3, 3, 3))
        b = rng.standard_normal(4)
        out = conv2d(x, w, b, stride=2)
        assert out.shape == (4, 3, 3)
        # Naive reference at one output position.
        patch = x[:, 2:5, 2:5]
        expected = np.sum(patch * w[1]) + b[1]
        assert out[1, 1, 1] == pytest.approx(expected)

    def test_bias_optional(self, rng):
        x = rng.standard_normal((1, 5, 5))
        w = rng.standard_normal((2, 1, 3, 3))
        no_bias = conv2d(x, w, None, 1)
        with_bias = conv2d(x, w, np.array([1.0, -1.0]), 1)
        assert np.allclose(with_bias[0], no_bias[0] + 1.0)
        assert np.allclose(with_bias[1], no_bias[1] - 1.0)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ShapeError):
            conv2d(np.zeros((2, 5, 5)), np.zeros((1, 3, 3, 3)), None, 1)

    def test_non_square_kernel_raises(self):
        with pytest.raises(ShapeError):
            conv2d(np.zeros((1, 5, 5)), np.zeros((1, 1, 3, 2)), None, 1)


class TestRelu:
    def test_clamps_negative(self):
        assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])


class TestSquash:
    def test_zero_vector_maps_to_zero(self):
        assert np.allclose(squash(np.zeros((3, 4))), 0.0)

    def test_output_norm_below_one(self, rng):
        s = rng.standard_normal((50, 8)) * 5
        v = squash(s)
        assert np.all(np.linalg.norm(v, axis=-1) < 1.0)

    def test_norm_formula(self):
        s = np.array([[3.0, 4.0]])  # norm 5
        v = squash(s)
        assert np.linalg.norm(v) == pytest.approx(25 / 26, rel=1e-6)

    def test_preserves_direction(self, rng):
        s = rng.standard_normal((10, 4))
        v = squash(s)
        cos = np.sum(s * v, axis=-1) / (
            np.linalg.norm(s, axis=-1) * np.linalg.norm(v, axis=-1)
        )
        assert np.allclose(cos, 1.0)

    def test_axis_argument(self, rng):
        s = rng.standard_normal((4, 6))
        assert np.allclose(squash(s, axis=0), squash(s.T, axis=1).T)


class TestScalarSquash:
    def test_monotone_non_negative(self):
        x = np.linspace(0, 6, 100)
        y = squash_scalar(x)
        assert np.all(np.diff(y) > 0)
        assert np.all(y < 1.0)

    def test_derivative_peak_location(self):
        x = np.linspace(0.01, 3, 20000)
        dy = squash_scalar_derivative(x)
        peak_x = x[np.argmax(dy)]
        assert peak_x == pytest.approx(1 / np.sqrt(3), abs=1e-3)

    def test_derivative_peak_value_matches_paper(self):
        peak = squash_scalar_derivative(1 / np.sqrt(3))
        assert peak == pytest.approx(0.6495, abs=1e-4)

    def test_derivative_is_gradient(self):
        x = np.linspace(0.1, 4, 1000)
        numeric = np.gradient(squash_scalar(x), x)
        # np.gradient is first-order at the endpoints; compare the interior.
        assert np.allclose(
            squash_scalar_derivative(x)[1:-1], numeric[1:-1], atol=1e-3
        )


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.standard_normal((7, 5))
        assert np.allclose(softmax(x, axis=1).sum(axis=1), 1.0)

    def test_uniform_on_constant_rows(self):
        out = softmax(np.zeros((3, 4)), axis=1)
        assert np.allclose(out, 0.25)

    def test_shift_invariance(self, rng):
        x = rng.standard_normal(6)
        assert np.allclose(softmax(x), softmax(x + 100.0))

    def test_large_values_stable(self):
        out = softmax(np.array([1000.0, 1000.0]))
        assert np.allclose(out, 0.5)


class TestLengthsAndLoss:
    def test_capsule_lengths(self):
        v = np.array([[3.0, 4.0], [0.0, 0.0]])
        assert np.allclose(capsule_lengths(v), [5.0, 0.0])

    def test_margin_loss_zero_when_perfect(self):
        lengths = np.array([0.05, 0.95, 0.0])
        assert margin_loss(lengths, target=1) == 0.0

    def test_margin_loss_penalizes_absent_class(self):
        lengths = np.array([0.95, 0.95])
        assert margin_loss(lengths, target=0) > 0.0

    def test_margin_loss_penalizes_weak_target(self):
        lengths = np.array([0.1, 0.0])
        loss = margin_loss(lengths, target=0)
        assert loss == pytest.approx((0.9 - 0.1) ** 2)

    def test_lambda_downweights_absent(self):
        lengths = np.array([0.9, 0.5])
        full = margin_loss(lengths, target=0, lam=1.0)
        half = margin_loss(lengths, target=0, lam=0.5)
        assert half == pytest.approx(full / 2)
