"""Bit-identity of the batch-vectorized quantized forward pass.

`BatchedQuantizedForward` promises *exact* raw-tensor equality with the
per-image golden model `QuantizedCapsuleNet.forward` — not approximate
agreement.  These tests hold it to that, layer by layer, in both routing
variants, plus shape validation and determinism.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.capsnet.batched import BatchedQuantizedForward
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.data.synthetic import SyntheticDigits
from repro.errors import ShapeError

# forward_raw key -> QuantizedOutput attribute carrying the same tensor.
STAGES = [
    ("conv1_out", "conv1_out_raw"),
    ("primary", "primary_raw"),
    ("u_hat", "u_hat_raw"),
    ("class_caps", "class_caps_raw"),
    ("length_sumsq", "length_sumsq_raw"),
]


@pytest.fixture(scope="module")
def batch_images(tiny_config):
    generator = SyntheticDigits(size=tiny_config.image_size, seed=11)
    return generator.generate(6).images


class TestLayerwiseEquality:
    def test_every_stage_matches_per_image_forward(self, tiny_qnet, batch_images):
        batched = BatchedQuantizedForward(tiny_qnet)
        out = batched.forward_raw(batch_images)
        for i, image in enumerate(batch_images):
            golden = tiny_qnet.forward(image)
            for batch_key, golden_attr in STAGES:
                np.testing.assert_array_equal(
                    out[batch_key][i],
                    getattr(golden, golden_attr),
                    err_msg=f"stage {batch_key!r} diverged at image {i}",
                )
            assert int(out["predictions"][i]) == golden.prediction

    def test_textbook_routing_matches_too(self, tiny_config, tiny_weights, batch_images):
        qnet = QuantizedCapsuleNet(
            tiny_config, weights=tiny_weights, optimized_routing=False
        )
        out = BatchedQuantizedForward(qnet).forward_raw(batch_images)
        for i, image in enumerate(batch_images):
            golden = qnet.forward(image)
            np.testing.assert_array_equal(
                out["class_caps"][i], golden.class_caps_raw
            )
            assert int(out["predictions"][i]) == golden.prediction

    def test_predict_matches_predict_batch(self, tiny_qnet, batch_images):
        batched = BatchedQuantizedForward(tiny_qnet)
        np.testing.assert_array_equal(
            batched.predict(batch_images), tiny_qnet.predict_batch(batch_images)
        )

    def test_channel_axis_optional(self, tiny_qnet, batch_images):
        batched = BatchedQuantizedForward(tiny_qnet)
        with_channel = batch_images[:, np.newaxis, :, :]
        np.testing.assert_array_equal(
            batched.predict(with_channel), batched.predict(batch_images)
        )


class TestValidationAndDeterminism:
    def test_wrong_image_shape_rejected(self, tiny_qnet, batch_images):
        batched = BatchedQuantizedForward(tiny_qnet)
        with pytest.raises(ShapeError):
            batched.forward_raw(batch_images[:, :-1, :])
        with pytest.raises(ShapeError):
            batched.forward_raw(batch_images[:, np.newaxis, :-2, :-2])

    def test_batch_of_one_matches_larger_batch(self, tiny_qnet, batch_images):
        batched = BatchedQuantizedForward(tiny_qnet)
        whole = batched.forward_raw(batch_images)
        solo = batched.forward_raw(batch_images[:1])
        for key, _ in STAGES:
            np.testing.assert_array_equal(solo[key][0], whole[key][0])

    def test_repeated_runs_are_deterministic(self, tiny_qnet, batch_images):
        batched = BatchedQuantizedForward(tiny_qnet)
        first = batched.forward_raw(batch_images)
        second = batched.forward_raw(batch_images)
        for key, _ in STAGES:
            np.testing.assert_array_equal(first[key], second[key])
