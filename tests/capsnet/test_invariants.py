"""Property-based tests (hypothesis) for CapsuleNet invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capsnet.hwops import HardwareLuts, QuantizedFormats, hw_softmax, hw_squash
from repro.capsnet.ops import margin_loss, softmax, squash
from repro.capsnet.routing import routing_by_agreement
from repro.fixedpoint.quantize import from_raw

FMTS = QuantizedFormats()
LUTS = HardwareLuts.build(FMTS)


def arrays(shape_strategy, lo=-5.0, hi=5.0):
    return shape_strategy.flatmap(
        lambda shape: st.integers(0, 2**31 - 1).map(
            lambda seed: np.random.default_rng(seed).uniform(lo, hi, size=shape)
        )
    )


@given(s=arrays(st.tuples(st.integers(1, 20), st.integers(1, 16))))
@settings(max_examples=100, deadline=None)
def test_squash_norm_strictly_below_one(s):
    norms = np.linalg.norm(squash(s), axis=-1)
    assert np.all(norms < 1.0)


@given(s=arrays(st.tuples(st.integers(1, 20), st.integers(2, 16))))
@settings(max_examples=100, deadline=None)
def test_squash_monotone_in_input_norm(s):
    """Scaling the input up never shrinks the squashed norm."""
    small = np.linalg.norm(squash(s), axis=-1)
    large = np.linalg.norm(squash(2.0 * s), axis=-1)
    assert np.all(large >= small - 1e-12)


@given(x=arrays(st.tuples(st.integers(1, 10), st.integers(2, 12))))
@settings(max_examples=100, deadline=None)
def test_softmax_is_probability_distribution(x):
    out = softmax(x, axis=1)
    assert np.all(out > 0)
    assert np.allclose(out.sum(axis=1), 1.0)


@given(
    seed=st.integers(0, 2**31 - 1),
    num_in=st.integers(2, 20),
    num_out=st.integers(2, 6),
    dim=st.integers(2, 8),
    iterations=st.integers(1, 4),
)
@settings(max_examples=60, deadline=None)
def test_routing_invariants(seed, num_in, num_out, dim, iterations):
    rng = np.random.default_rng(seed)
    u_hat = rng.standard_normal((num_in, num_out, dim))
    result = routing_by_agreement(u_hat, iterations)
    # Coupling coefficients are a distribution over output capsules.
    assert np.allclose(result.c.sum(axis=1), 1.0)
    assert np.all(result.c >= 0)
    # Outputs are squashed.
    assert np.all(np.linalg.norm(result.v, axis=-1) < 1.0)
    # Optimized variant is always identical.
    optimized = routing_by_agreement(u_hat, iterations, optimized=True)
    assert np.allclose(result.v, optimized.v)


@given(
    seed=st.integers(0, 2**31 - 1),
    rows=st.integers(1, 20),
    cols=st.integers(2, 12),
)
@settings(max_examples=60, deadline=None)
def test_hw_softmax_rows_near_one(seed, rows, cols):
    rng = np.random.default_rng(seed)
    logits = rng.integers(-100, 100, size=(rows, cols))
    c = from_raw(hw_softmax(logits, LUTS, FMTS, axis=1), FMTS.coupling)
    assert np.all(np.abs(c.sum(axis=1) - 1.0) < 0.1)
    assert np.all(c >= 0)


@given(
    seed=st.integers(0, 2**31 - 1),
    groups=st.integers(1, 10),
    dim=st.integers(2, 16),
)
@settings(max_examples=60, deadline=None)
def test_hw_squash_bounded(seed, groups, dim):
    rng = np.random.default_rng(seed)
    vec = rng.integers(-128, 128, size=(groups, dim))
    out = from_raw(hw_squash(vec, FMTS.primary_preact, LUTS, FMTS), FMTS.caps_data)
    assert np.all(np.abs(out) <= 1.0 + FMTS.caps_data.resolution)


@given(
    seed=st.integers(0, 2**31 - 1),
    classes=st.integers(2, 10),
)
@settings(max_examples=100, deadline=None)
def test_margin_loss_non_negative_and_zero_at_ideal(seed, classes):
    rng = np.random.default_rng(seed)
    lengths = rng.uniform(0, 1, size=classes)
    target = int(rng.integers(0, classes))
    assert margin_loss(lengths, target) >= 0.0
    ideal = np.full(classes, 0.05)
    ideal[target] = 0.95
    assert margin_loss(ideal, target) == 0.0
