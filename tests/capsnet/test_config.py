"""Unit tests for the CapsuleNet configuration."""

import pytest

from repro.capsnet.config import (
    CapsNetConfig,
    ClassCapsSpec,
    ConvLayerSpec,
    PrimaryCapsSpec,
    conv_output_size,
    mnist_capsnet_config,
    tiny_capsnet_config,
)
from repro.errors import ConfigError


class TestConvOutputSize:
    def test_stride_one(self):
        assert conv_output_size(28, 9, 1) == 20

    def test_stride_two(self):
        assert conv_output_size(20, 9, 2) == 6

    def test_kernel_equals_input(self):
        assert conv_output_size(9, 9, 1) == 1

    def test_too_small_raises(self):
        with pytest.raises(ConfigError):
            conv_output_size(5, 9, 1)


class TestMnistConfig:
    def test_paper_fig1_dimensions(self, mnist_config):
        assert mnist_config.image_size == 28
        assert mnist_config.conv1.out_channels == 256
        assert mnist_config.conv1.kernel_size == 9
        assert mnist_config.primary.capsule_channels == 32
        assert mnist_config.primary.capsule_dim == 8
        assert mnist_config.classcaps.num_classes == 10
        assert mnist_config.classcaps.out_dim == 16

    def test_derived_spatial_sizes(self, mnist_config):
        assert mnist_config.conv1_out_size == 20
        assert mnist_config.primary_out_size == 6

    def test_primary_capsule_count(self, mnist_config):
        assert mnist_config.num_primary_capsules == 6 * 6 * 32 == 1152

    def test_paper_parameter_counts(self, mnist_config):
        assert mnist_config.conv1.parameter_count == 20992
        assert mnist_config.primary.parameter_count == 5308672
        assert mnist_config.classcaps_weight_count == 1474560
        assert mnist_config.coupling_coefficient_count == 11520

    def test_io_counts(self, mnist_config):
        assert mnist_config.input_count == 784
        assert mnist_config.output_count == 160

    def test_total_parameters(self, mnist_config):
        assert mnist_config.total_parameter_count == 20992 + 5308672 + 1474560


class TestTinyConfig:
    def test_structurally_consistent(self, tiny_config):
        assert tiny_config.conv1_out_size == 8
        assert tiny_config.primary_out_size == 2
        assert tiny_config.num_primary_capsules == 2 * 2 * 2

    def test_distinct_from_mnist(self, tiny_config, mnist_config):
        assert tiny_config.total_parameter_count < mnist_config.total_parameter_count


class TestValidation:
    def test_channel_mismatch_conv1(self):
        conv1 = ConvLayerSpec(in_channels=3, out_channels=8, kernel_size=3)
        primary = PrimaryCapsSpec(in_channels=8, capsule_channels=2, capsule_dim=4, kernel_size=3)
        with pytest.raises(ConfigError):
            CapsNetConfig(
                image_size=12,
                in_channels=1,
                conv1=conv1,
                primary=primary,
                classcaps=ClassCapsSpec(3, 6),
            )

    def test_channel_mismatch_primary(self):
        conv1 = ConvLayerSpec(in_channels=1, out_channels=8, kernel_size=3)
        primary = PrimaryCapsSpec(in_channels=16, capsule_channels=2, capsule_dim=4, kernel_size=3)
        with pytest.raises(ConfigError):
            CapsNetConfig(
                image_size=12,
                in_channels=1,
                conv1=conv1,
                primary=primary,
                classcaps=ClassCapsSpec(3, 6),
            )

    def test_negative_dimensions_rejected(self):
        with pytest.raises(ConfigError):
            ConvLayerSpec(in_channels=0, out_channels=8, kernel_size=3)
        with pytest.raises(ConfigError):
            ClassCapsSpec(num_classes=3, out_dim=6, routing_iterations=0)

    def test_configs_are_frozen(self):
        config = tiny_capsnet_config()
        with pytest.raises(AttributeError):
            config.image_size = 99


class TestPrimarySpec:
    def test_conv_out_channels(self):
        spec = PrimaryCapsSpec(in_channels=4, capsule_channels=3, capsule_dim=5, kernel_size=3)
        assert spec.conv_out_channels == 15

    def test_mnist_conv_channels(self):
        assert mnist_capsnet_config().primary.conv_out_channels == 256
