"""Unit tests for the complete CapsuleNet model."""

import numpy as np
import pytest

from repro.capsnet.model import CapsuleNet
from repro.errors import ShapeError


@pytest.fixture(scope="module")
def net(tiny_config, tiny_weights):
    return CapsuleNet(tiny_config, weights=tiny_weights)


class TestForward:
    def test_output_shapes(self, net, tiny_config, tiny_images):
        out = net.forward(tiny_images[0])
        assert out.class_capsules.shape == (
            tiny_config.classcaps.num_classes,
            tiny_config.classcaps.out_dim,
        )
        assert out.lengths.shape == (tiny_config.classcaps.num_classes,)
        assert out.u_hat.shape == (
            tiny_config.num_primary_capsules,
            tiny_config.classcaps.num_classes,
            tiny_config.classcaps.out_dim,
        )

    def test_accepts_2d_image(self, net, tiny_images):
        assert net.forward(tiny_images[0]).prediction in range(3)

    def test_deterministic(self, net, tiny_images):
        a = net.forward(tiny_images[0])
        b = net.forward(tiny_images[0])
        assert np.array_equal(a.lengths, b.lengths)

    def test_lengths_below_one(self, net, tiny_images):
        out = net.forward(tiny_images[0])
        assert np.all(out.lengths < 1.0)

    def test_prediction_is_argmax(self, net, tiny_images):
        out = net.forward(tiny_images[1])
        assert out.prediction == int(np.argmax(out.lengths))

    def test_wrong_image_size_raises(self, net):
        with pytest.raises(ShapeError):
            net.forward(np.zeros((5, 5)))

    def test_batch_prediction(self, net, tiny_images):
        preds = net.predict_batch(tiny_images)
        assert preds.shape == (len(tiny_images),)
        singles = [net.predict(img) for img in tiny_images]
        assert list(preds) == singles


class TestRoutingVariants:
    def test_optimized_routing_same_outputs(self, tiny_config, tiny_weights, tiny_images):
        plain = CapsuleNet(tiny_config, weights=tiny_weights, optimized_routing=False)
        optimized = CapsuleNet(tiny_config, weights=tiny_weights, optimized_routing=True)
        a = plain.forward(tiny_images[0])
        b = optimized.forward(tiny_images[0])
        assert np.allclose(a.class_capsules, b.class_capsules)
        assert a.prediction == b.prediction

    def test_trace_differs(self, tiny_config, tiny_weights, tiny_images):
        optimized = CapsuleNet(tiny_config, weights=tiny_weights, optimized_routing=True)
        out = optimized.forward(tiny_images[0])
        assert out.routing.steps[0].skipped


class TestConstruction:
    def test_default_weights_generated(self, tiny_config):
        net = CapsuleNet(tiny_config)
        assert net.weights["conv1_w"].shape[0] == tiny_config.conv1.out_channels

    def test_default_config_is_mnist(self):
        net = CapsuleNet()
        assert net.config.image_size == 28
        assert net.config.num_primary_capsules == 1152

    def test_invalid_weights_rejected(self, tiny_config, tiny_weights):
        broken = dict(tiny_weights)
        broken["conv1_b"] = np.zeros(3)
        with pytest.raises(ShapeError):
            CapsuleNet(tiny_config, weights=broken)
