"""Unit tests for power and energy estimation."""

import pytest

from repro.hw.config import AcceleratorConfig
from repro.hw.stats import CycleStats
from repro.synthesis.components import synthesize_components
from repro.synthesis.power import (
    average_power_mw,
    component_power_mw,
    energy_per_inference_uj,
    total_power_mw,
)


@pytest.fixture(scope="module")
def components():
    return synthesize_components(AcceleratorConfig())


class TestPowerFromArea:
    def test_total_near_paper_202mw(self, components):
        total = total_power_mw(components)
        assert 160 < total < 240

    def test_voltage_scaling_quadratic(self, components):
        nominal = total_power_mw(components, voltage_v=1.05)
        reduced = total_power_mw(components, voltage_v=1.05 / 2)
        assert reduced == pytest.approx(nominal / 4)

    def test_clock_scaling_linear(self, components):
        nominal = total_power_mw(components, clock_mhz=250)
        halved = total_power_mw(components, clock_mhz=125)
        assert halved == pytest.approx(nominal / 2)

    def test_per_component_keys(self, components):
        power = component_power_mw(components)
        assert set(power) == {c.name for c in components}

    def test_data_buffer_dominates(self, components):
        power = component_power_mw(components)
        assert power["Data Buffer"] == max(power.values())


class TestEnergyFromActivity:
    def test_mac_energy_counted(self):
        stats = CycleStats(mac_count=1_000_000)
        energy = energy_per_inference_uj(stats)
        assert energy["mac"] == pytest.approx(0.9)  # 1e6 x 0.9 pJ = 0.9 uJ

    def test_buffer_energy_by_category(self):
        stats = CycleStats()
        stats.add_access("data_buffer.read", 1_000_000)
        stats.add_access("routing_buffer.write", 500_000)
        energy = energy_per_inference_uj(stats)
        assert energy["data_buffer"] == pytest.approx(1.2)
        assert energy["routing_buffer"] == pytest.approx(0.6)

    def test_average_power(self):
        config = AcceleratorConfig()
        stats = CycleStats(total_cycles=250_000, mac_count=100_000_000)
        # 100M MACs x 0.9 pJ = 90 uJ over 1 ms -> 90 mW.
        assert average_power_mw(stats, config) == pytest.approx(90.0)

    def test_zero_cycles_zero_power(self):
        assert average_power_mw(CycleStats(), AcceleratorConfig()) == 0.0
