"""Unit tests for structural area estimates."""

import pytest

from repro.hw.config import AcceleratorConfig
from repro.perf.calibration import PAPER_TABLE3
from repro.synthesis.components import (
    accumulator_area,
    activation_area,
    buffer_area,
    control_area,
    pe_gates,
    synthesize_components,
    systolic_array_area,
    total_area_mm2,
)


@pytest.fixture(scope="module")
def config():
    return AcceleratorConfig()


class TestPEModel:
    def test_pe_gate_count_plausible(self, config):
        gates = pe_gates(config)
        # 8x8 multiplier dominates; hundreds-to-low-thousands of gates.
        assert 500 < gates < 2000

    def test_wider_datapath_more_gates(self, config):
        wide = AcceleratorConfig(data_bits=16, weight_bits=16, acc_bits=41)
        assert pe_gates(wide) > pe_gates(config)


class TestComponentAreas:
    def test_systolic_array_near_paper(self, config):
        area = systolic_array_area(config).area_um2
        paper = PAPER_TABLE3["Systolic Array"]["area_um2"]
        assert abs(area - paper) / paper < 0.15

    def test_accumulator_near_paper(self, config):
        area = accumulator_area(config).area_um2
        paper = PAPER_TABLE3["Accumulator"]["area_um2"]
        assert abs(area - paper) / paper < 0.30

    def test_activation_near_paper(self, config):
        area = activation_area(config).area_um2
        paper = PAPER_TABLE3["Activation"]["area_um2"]
        assert abs(area - paper) / paper < 0.30

    def test_buffers_near_paper(self, config):
        for name, size in (
            ("Data Buffer", config.data_buffer_kb),
            ("Routing Buffer", config.routing_buffer_kb),
            ("Weight Buffer", config.weight_buffer_kb),
        ):
            area = buffer_area(name, size).area_um2
            paper = PAPER_TABLE3[name]["area_um2"]
            assert abs(area - paper) / paper < 0.20, name

    def test_control_near_paper(self, config):
        area = control_area(config).area_um2
        paper = PAPER_TABLE3["Other"]["area_um2"]
        assert abs(area - paper) / paper < 0.30

    def test_component_list_matches_table3(self, config):
        names = [c.name for c in synthesize_components(config)]
        assert names == list(PAPER_TABLE3)


class TestScalingBehaviour:
    def test_array_area_scales_quadratically(self, config):
        base = systolic_array_area(config).area_um2
        double = systolic_array_area(config.with_array(32, 32)).area_um2
        assert double == pytest.approx(4 * base, rel=0.01)

    def test_buffer_area_linear_in_size(self):
        assert buffer_area("b", 128).area_um2 == pytest.approx(
            2 * buffer_area("b", 64).area_um2
        )

    def test_total_area_near_paper_2_9mm2(self, config):
        total = total_area_mm2(synthesize_components(config))
        assert 2.3 < total < 3.3
