"""Unit tests for the synthesis reports (Tables II/III, Fig 18)."""

import pytest

from repro.hw.config import AcceleratorConfig
from repro.perf.calibration import (
    PAPER_AREA_BREAKDOWN_PCT,
    PAPER_TABLE2,
    PAPER_TABLE3,
)
from repro.synthesis.report import SynthesisReport


@pytest.fixture(scope="module")
def report():
    return SynthesisReport()


class TestTable2:
    def test_fixed_parameters_match_paper_exactly(self, report):
        table = report.table2()
        assert table["technology_nm"] == PAPER_TABLE2["technology_nm"]
        assert table["voltage_v"] == PAPER_TABLE2["voltage_v"]
        assert table["clock_mhz"] == PAPER_TABLE2["clock_mhz"]
        assert table["bit_width"] == PAPER_TABLE2["bit_width"]
        assert table["onchip_memory_mb"] == PAPER_TABLE2["onchip_memory_mb"]

    def test_area_within_paper_band(self, report):
        assert report.table2()["area_mm2"] == pytest.approx(
            PAPER_TABLE2["area_mm2"], rel=0.2
        )

    def test_power_within_paper_band(self, report):
        assert report.table2()["power_mw"] == pytest.approx(
            PAPER_TABLE2["power_mw"], rel=0.2
        )


class TestTable3:
    def test_rows_in_paper_order(self, report):
        names = [row[0] for row in report.table3()]
        assert names == list(PAPER_TABLE3)

    def test_every_component_within_30pct_of_paper(self, report):
        for name, area, power in report.table3():
            paper = PAPER_TABLE3[name]
            assert abs(area - paper["area_um2"]) / paper["area_um2"] < 0.30, name
            assert abs(power - paper["power_mw"]) / paper["power_mw"] < 0.30, name

    def test_compare_rows_include_paper(self, report):
        rows = report.compare_table3()
        assert all(row["paper_area_um2"] for row in rows)


class TestFig18:
    def test_breakdowns_sum_to_one(self, report):
        assert sum(report.area_breakdown().values()) == pytest.approx(1.0)
        assert sum(report.power_breakdown().values()) == pytest.approx(1.0)

    def test_area_fractions_near_paper(self, report):
        for name, fraction in report.area_breakdown().items():
            paper_pct = PAPER_AREA_BREAKDOWN_PCT[name]
            assert abs(fraction * 100 - paper_pct) < 4.0, name

    def test_data_buffer_dominates(self, report):
        breakdown = report.area_breakdown()
        assert breakdown["Data Buffer"] == max(breakdown.values())

    def test_array_about_quarter(self, report):
        assert 0.18 < report.area_breakdown()["Systolic Array"] < 0.30


class TestConfigurationSensitivity:
    def test_bigger_array_more_area(self):
        base = SynthesisReport().table2()["area_mm2"]
        big = SynthesisReport(config=AcceleratorConfig().with_array(32, 32))
        assert big.table2()["area_mm2"] > base

    def test_bigger_buffers_more_power(self):
        base = SynthesisReport().table2()["power_mw"]
        big = SynthesisReport(config=AcceleratorConfig(data_buffer_kb=512.0))
        assert big.table2()["power_mw"] > base
