"""Unit tests for technology parameters and gate models."""

import pytest

from repro.errors import ConfigError
from repro.synthesis.tech import (
    TECH_32NM,
    adder_gates,
    multiplier_gates,
    mux_gates,
    register_gates,
    scaled_technology,
)


class TestTech32nm:
    def test_matches_paper_operating_point(self):
        assert TECH_32NM.node_nm == 32
        assert TECH_32NM.nominal_voltage_v == pytest.approx(1.05)
        assert TECH_32NM.nominal_clock_mhz == pytest.approx(250.0)

    def test_density_lookup(self):
        assert TECH_32NM.density("sram") > 0

    def test_unknown_kind_raises(self):
        with pytest.raises(ConfigError):
            TECH_32NM.density("photonic")

    def test_access_energy_lookup(self):
        assert TECH_32NM.access_energy("mac") > 0
        with pytest.raises(ConfigError):
            TECH_32NM.access_energy("teleport")


class TestScaling:
    def test_smaller_node_smaller_area(self):
        scaled = scaled_technology(16)
        assert scaled.gate_area_um2 == pytest.approx(TECH_32NM.gate_area_um2 / 4)
        assert scaled.sram_bit_area_um2 < TECH_32NM.sram_bit_area_um2

    def test_energy_scales_linearly(self):
        scaled = scaled_technology(16)
        assert scaled.energy_pj["mac"] == pytest.approx(TECH_32NM.energy_pj["mac"] / 2)

    def test_larger_node(self):
        scaled = scaled_technology(64)
        assert scaled.gate_area_um2 == pytest.approx(TECH_32NM.gate_area_um2 * 4)

    def test_implausible_node_rejected(self):
        with pytest.raises(ConfigError):
            scaled_technology(1)


class TestGateModels:
    def test_multiplier_grows_with_width(self):
        assert multiplier_gates(8, 8) == 8 * 8 * 7
        assert multiplier_gates(16, 16) > multiplier_gates(8, 8)

    def test_adder_linear(self):
        assert adder_gates(25) == 175

    def test_register_linear(self):
        assert register_gates(8) == 40

    def test_mux_scales_with_ways(self):
        assert mux_gates(8, ways=4) == 3 * mux_gates(8, ways=2)
