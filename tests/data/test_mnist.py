"""Unit tests for the idx loader and dataset dispatch."""

import gzip
import struct

import numpy as np
import pytest

from repro.data.mnist import MNIST_FILES, load_dataset, load_mnist_idx
from repro.errors import DataError


def _write_idx_images(path, images: np.ndarray) -> None:
    count, height, width = images.shape
    with open(path, "wb") as handle:
        handle.write(struct.pack(">IIII", 0x00000803, count, height, width))
        handle.write(images.astype(np.uint8).tobytes())


def _write_idx_labels(path, labels: np.ndarray) -> None:
    with open(path, "wb") as handle:
        handle.write(struct.pack(">II", 0x00000801, len(labels)))
        handle.write(labels.astype(np.uint8).tobytes())


@pytest.fixture
def mnist_dir(tmp_path, rng):
    images = rng.integers(0, 256, size=(10, 28, 28)).astype(np.uint8)
    labels = (np.arange(10) % 10).astype(np.uint8)
    _write_idx_images(tmp_path / MNIST_FILES["train_images"], images)
    _write_idx_labels(tmp_path / MNIST_FILES["train_labels"], labels)
    _write_idx_images(tmp_path / MNIST_FILES["test_images"], images[:4])
    _write_idx_labels(tmp_path / MNIST_FILES["test_labels"], labels[:4])
    return tmp_path


class TestIdxLoader:
    def test_loads_train_and_test(self, mnist_dir):
        train, test = load_mnist_idx(mnist_dir)
        assert len(train) == 10
        assert len(test) == 4
        assert train.name == "mnist"

    def test_images_normalized(self, mnist_dir):
        train, _ = load_mnist_idx(mnist_dir)
        assert train.images.max() <= 1.0
        assert train.images.min() >= 0.0

    def test_gzip_variant(self, tmp_path, rng):
        images = rng.integers(0, 256, size=(3, 28, 28)).astype(np.uint8)
        labels = np.array([1, 2, 3], dtype=np.uint8)
        for key, writer, data in (
            ("train_images", _write_idx_images, images),
            ("train_labels", _write_idx_labels, labels),
            ("test_images", _write_idx_images, images),
            ("test_labels", _write_idx_labels, labels),
        ):
            plain = tmp_path / MNIST_FILES[key]
            writer(plain, data)
            with open(plain, "rb") as src, gzip.open(
                str(plain) + ".gz", "wb"
            ) as dst:
                dst.write(src.read())
            plain.unlink()
        train, test = load_mnist_idx(tmp_path)
        assert len(train) == 3

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(DataError):
            load_mnist_idx(tmp_path / "nope")

    def test_truncated_payload_raises(self, tmp_path):
        path = tmp_path / MNIST_FILES["train_images"]
        with open(path, "wb") as handle:
            handle.write(struct.pack(">IIII", 0x00000803, 10, 28, 28))
            handle.write(b"\x00" * 100)  # far too short
        with pytest.raises(DataError):
            load_mnist_idx(tmp_path)


class TestLoadDataset:
    def test_prefers_real_mnist(self, mnist_dir):
        train, test = load_dataset(mnist_dir=mnist_dir)
        assert train.name == "mnist"

    def test_falls_back_to_synthetic(self, tmp_path):
        train, test = load_dataset(mnist_dir=tmp_path / "missing", train_count=30, test_count=10)
        assert train.name == "synthetic"
        assert len(train) == 30
        assert len(test) == 10

    def test_synthetic_fallback_deterministic(self, tmp_path):
        a, _ = load_dataset(mnist_dir=tmp_path / "missing", train_count=10, test_count=5, seed=9)
        b, _ = load_dataset(mnist_dir=tmp_path / "missing", train_count=10, test_count=5, seed=9)
        assert np.array_equal(a.images, b.images)
