"""Unit tests for the dataset container."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.errors import DataError


@pytest.fixture
def dataset(rng):
    images = rng.uniform(0, 1, size=(20, 12, 12))
    labels = np.arange(20) % 4
    return Dataset(images, labels, name="test")


class TestConstruction:
    def test_basic_properties(self, dataset):
        assert len(dataset) == 20
        assert dataset.image_size == 12
        assert dataset.num_classes == 4

    def test_rejects_wrong_rank(self, rng):
        with pytest.raises(DataError):
            Dataset(rng.uniform(size=(5, 4)), np.zeros(5, dtype=np.int64), "bad")

    def test_rejects_label_mismatch(self, rng):
        with pytest.raises(DataError):
            Dataset(rng.uniform(size=(5, 4, 4)), np.zeros(4, dtype=np.int64), "bad")


class TestOperations:
    def test_take(self, dataset):
        subset = dataset.take(5)
        assert len(subset) == 5
        assert np.array_equal(subset.images, dataset.images[:5])

    def test_split_sizes(self, dataset):
        train, test = dataset.split(0.75, seed=1)
        assert len(train) == 15
        assert len(test) == 5

    def test_split_is_partition(self, dataset):
        train, test = dataset.split(0.5, seed=2)
        combined = np.concatenate([train.images, test.images])
        assert combined.shape[0] == len(dataset)
        # Every original image appears exactly once.
        original = {img.tobytes() for img in dataset.images}
        split_set = {img.tobytes() for img in combined}
        assert original == split_set

    def test_split_deterministic(self, dataset):
        a_train, _ = dataset.split(0.5, seed=3)
        b_train, _ = dataset.split(0.5, seed=3)
        assert np.array_equal(a_train.images, b_train.images)

    def test_split_validates_fraction(self, dataset):
        with pytest.raises(DataError):
            dataset.split(1.5)
        with pytest.raises(DataError):
            dataset.split(0.0)
