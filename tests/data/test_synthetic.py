"""Unit tests for the synthetic digit generator."""

import numpy as np
import pytest

from repro.data.synthetic import DIGIT_STROKES, SyntheticDigits, render_digit
from repro.errors import DataError


class TestRenderDigit:
    def test_all_ten_digits_render(self):
        for digit in range(10):
            image = render_digit(digit)
            assert image.shape == (28, 28)
            assert image.max() <= 1.0
            assert image.min() >= 0.0

    def test_canonical_render_deterministic(self):
        assert np.array_equal(render_digit(3), render_digit(3))

    def test_has_ink(self):
        for digit in range(10):
            assert render_digit(digit).sum() > 5.0

    def test_digits_are_distinct(self):
        images = [render_digit(d).ravel() for d in range(10)]
        for a in range(10):
            for b in range(a + 1, 10):
                distance = np.linalg.norm(images[a] - images[b])
                assert distance > 1.0, f"digits {a} and {b} too similar"

    def test_jitter_changes_image(self):
        rng = np.random.default_rng(0)
        canonical = render_digit(5)
        jittered = render_digit(5, rng=rng)
        assert not np.array_equal(canonical, jittered)

    def test_zero_jitter_is_canonical(self):
        rng = np.random.default_rng(0)
        assert np.array_equal(render_digit(5, rng=rng, jitter=0.0), render_digit(5))

    def test_custom_size(self):
        assert render_digit(7, size=16).shape == (16, 16)

    def test_unknown_digit_raises(self):
        with pytest.raises(DataError):
            render_digit(11)

    def test_stroke_table_complete(self):
        assert set(DIGIT_STROKES) == set(range(10))


class TestSyntheticDigits:
    def test_generate_counts_and_labels(self):
        dataset = SyntheticDigits(seed=1).generate(25)
        assert len(dataset) == 25
        assert dataset.images.shape == (25, 28, 28)
        assert set(dataset.labels) == set(range(10))

    def test_class_filter(self):
        dataset = SyntheticDigits(seed=1).generate(12, classes=(3, 7))
        assert set(dataset.labels) == {3, 7}

    def test_uniform_class_cycling(self):
        dataset = SyntheticDigits(seed=1).generate(20, classes=(0, 1))
        assert np.count_nonzero(dataset.labels == 0) == 10

    def test_deterministic_by_seed(self):
        a = SyntheticDigits(seed=5).generate(6)
        b = SyntheticDigits(seed=5).generate(6)
        assert np.array_equal(a.images, b.images)

    def test_different_seeds_differ(self):
        a = SyntheticDigits(seed=5).generate(6)
        b = SyntheticDigits(seed=6).generate(6)
        assert not np.array_equal(a.images, b.images)

    def test_values_in_unit_range(self):
        dataset = SyntheticDigits(seed=2).generate(10)
        assert dataset.images.min() >= 0.0
        assert dataset.images.max() <= 1.0

    def test_rejects_tiny_canvas(self):
        with pytest.raises(DataError):
            SyntheticDigits(size=8)

    def test_rejects_zero_count(self):
        with pytest.raises(DataError):
            SyntheticDigits().generate(0)

    def test_samples_of_same_class_vary(self):
        dataset = SyntheticDigits(seed=3).generate(20, classes=(4,))
        assert not np.array_equal(dataset.images[0], dataset.images[1])
