"""Golden bit-identity for every zoo network, and zoo registry behavior."""

from __future__ import annotations

import pytest

from repro.compiler.golden import check_network
from repro.compiler.zoo import as_compiled, get_network, zoo_names
from repro.errors import ConfigError
from tests.compiler.conftest import zoo_images


class TestRegistry:
    def test_zoo_has_required_breadth(self):
        names = zoo_names()
        assert "mnist" in names  # the paper network
        assert "mnist-res" in names and "tiny-res" in names  # residual variants
        assert "cifar" in names  # CIFAR/SVHN-shape capsule network
        assert "mlp" in names and "cnn" in names  # non-capsule baselines

    def test_unknown_network_raises(self):
        with pytest.raises(ConfigError, match="unknown zoo network"):
            get_network("resnet152")

    def test_networks_are_cached(self):
        assert get_network("tiny") is get_network("tiny")

    def test_as_compiled_accepts_names_and_networks(self, tiny_qnet):
        net = get_network("mlp")
        assert as_compiled("mlp") is net
        assert as_compiled(net) is net
        assert as_compiled(tiny_qnet).qnet is tiny_qnet


class TestGoldenEquivalence:
    """Every zoo network's compiled stream matches graph interpretation."""

    @pytest.mark.parametrize("name", [n for n in zoo_names() if n not in ("mnist", "mnist-res", "cifar")])
    def test_small_networks_match_golden(self, name):
        summary = check_network(name, zoo_images(name, count=3))
        assert summary["images"] == 3
        assert summary["outputs_checked"] > 0

    @pytest.mark.parametrize("name", ["mnist", "mnist-res", "cifar"])
    def test_full_size_networks_match_golden(self, name):
        summary = check_network(name, zoo_images(name, count=1))
        assert summary["images"] == 1
        assert summary["outputs_checked"] > 0
