"""Shared fixtures for the compiler test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler.zoo import compile_qnet, get_network
from repro.data.synthetic import SyntheticDigits


@pytest.fixture(scope="session")
def tiny_compiled(tiny_qnet):
    """The tiny CapsNet compiled into a servable network."""
    return compile_qnet(tiny_qnet, name="tiny")


def zoo_images(name: str, count: int = 3) -> np.ndarray:
    """Synthetic input images matching a zoo network's input shape."""
    shape = get_network(name).input_shape
    images = SyntheticDigits(size=shape[-1], seed=11).generate(count).images
    if shape[0] != 1:
        images = np.repeat(images[:, np.newaxis], shape[0], axis=1)
    return images
