"""ISA structure, listings, and program JSON round-trip."""

from __future__ import annotations

import pytest

from repro.compiler.isa import ARRAY_OPCODES, Opcode, program_from_json
from repro.compiler.lower import compile_graph
from repro.compiler.zoo import mlp_graph, mnist_capsnet_graph
from repro.errors import CompileError


@pytest.fixture(scope="module")
def mnist_program():
    return compile_graph(mnist_capsnet_graph())


class TestProgramStructure:
    def test_compiles_to_nonempty_stream(self, mnist_program):
        assert mnist_program.num_instructions > 0
        assert mnist_program.gemm_instructions()

    def test_gemm_instructions_are_array_work(self, mnist_program):
        for instr in mnist_program.gemm_instructions():
            assert instr.opcode in ARRAY_OPCODES

    def test_weight_tile_reuse_is_explicit(self, mnist_program):
        grouped = [
            instr
            for instr in mnist_program.instructions
            if instr.opcode is Opcode.GROUPED_GEMM
        ]
        # Routing iterations reuse staged weight tiles and feed partial
        # sums straight back without a buffer round-trip.
        assert {i.attrs["weight_source"] for i in grouped} == {"routing_buffer"}
        assert "feedback" in {i.attrs["data_source"] for i in grouped}

    def test_stores_cover_graph_outputs(self, mnist_program):
        aliases = {
            instr.attrs["alias"]
            for instr in mnist_program.instructions
            if instr.opcode is Opcode.STORE
        }
        assert "predictions" in aliases

    def test_text_listing_is_line_per_instruction(self, mnist_program):
        lines = mnist_program.text().splitlines()
        assert len(lines) >= mnist_program.num_instructions
        assert any("GEMM" in line for line in lines)


class TestJsonRoundTrip:
    @pytest.mark.parametrize("graph_fn", [mnist_capsnet_graph, mlp_graph], ids=["mnist", "mlp"])
    def test_round_trip_preserves_instructions(self, graph_fn):
        program = compile_graph(graph_fn())
        restored = program_from_json(program.to_json())
        assert restored.name == program.name
        assert restored.instructions == program.instructions
        assert restored.text() == program.text()

    def test_round_trip_is_stable(self, mnist_program):
        text = mnist_program.to_json()
        assert program_from_json(text).to_json() == text

    def test_invalid_json_raises(self):
        with pytest.raises(CompileError, match="malformed"):
            program_from_json("{not json")

    def test_malformed_document_raises(self):
        with pytest.raises(CompileError, match="malformed"):
            program_from_json('{"name": "x"}')

    def test_unknown_opcode_raises(self):
        doc = '{"name": "x", "instructions": [{"opcode": "warp_drive"}]}'
        with pytest.raises(CompileError):
            program_from_json(doc)
