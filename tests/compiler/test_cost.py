"""Closed-form program pricing must equal actually-executed accounting."""

from __future__ import annotations

import pytest

from repro.compiler.cost import (
    program_batch_cycles,
    program_events,
    program_ops,
    program_stats,
    program_steady_cycles,
    program_stream_timing,
)
from repro.compiler.zoo import get_network
from repro.hw.scheduler import BatchScheduler, PipelinedStreamScheduler, trace_ops
from tests.compiler.conftest import zoo_images


@pytest.fixture(scope="module", params=["tiny", "mlp"])
def priced(request, tiny_qnet):
    """One traced execution per network to price against."""
    name = request.param
    network = get_network(name) if name != "tiny" else tiny_qnet
    scheduler = BatchScheduler(network)
    scheduler.trace = []
    images = zoo_images(name, count=3)
    result = scheduler.run_batch(images)
    return scheduler, result, scheduler.trace


class TestClosedFormPricing:
    def test_events_match_recorded_trace(self, priced):
        scheduler, result, trace = priced
        events = program_events(
            scheduler.accelerator.config, scheduler.compiled.program, result.batch
        )
        assert events == trace

    def test_batch_cycles_match_execution(self, priced):
        scheduler, result, _ = priced
        cycles = program_batch_cycles(
            scheduler.accelerator.config, scheduler.compiled.program, result.batch
        )
        assert cycles["sequential"] == result.total_cycles
        assert cycles["overlapped"] == result.overlapped_cycles

    def test_stats_match_execution(self, priced):
        scheduler, result, _ = priced
        stats = program_stats(
            scheduler.accelerator.config, scheduler.compiled.program, result.batch
        )
        assert stats == result.total_stats

    def test_ops_match_trace_expansion(self, priced):
        scheduler, result, trace = priced
        config = scheduler.accelerator.config
        assert program_ops(config, scheduler.compiled.program, result.batch) == trace_ops(
            config, trace
        )

    def test_stream_timing_matches_pipelined_probe(self, priced):
        scheduler, result, _ = priced
        pipelined = PipelinedStreamScheduler(scheduler.compiled)
        sizes = [result.batch] * 7
        timing = program_stream_timing(
            pipelined.accelerator.config, scheduler.compiled.program, sizes
        )
        assert timing == pipelined.probe_timing(sizes)
        assert program_steady_cycles(
            pipelined.accelerator.config, scheduler.compiled.program, result.batch
        ) == pipelined.steady_state_cycles(result.batch)
