"""Compiled streams must not drift from the legacy hand lowering.

``LegacyBatchScheduler`` is the frozen reference: the compiled MNIST
stream must reproduce its outputs, per-layer accounting, double-buffered
cycle totals and trace event sequence exactly — and the pipelined
scheduler must price compiled streams identically to the legacy trace
expansion.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.data.synthetic import SyntheticDigits
from repro.hw.legacy_scheduler import LegacyBatchScheduler
from repro.hw.pipeline import cached_stream_timing
from repro.hw.scheduler import BatchScheduler, PipelinedStreamScheduler, trace_ops

RAW_FIELDS = (
    "predictions",
    "conv1_raw",
    "primary_raw",
    "u_hat_raw",
    "class_caps_raw",
    "coupling_raw",
    "length_sumsq_raw",
)


def assert_no_drift(qnet, images):
    legacy = LegacyBatchScheduler(qnet)
    legacy.trace = []
    compiled = BatchScheduler(qnet)
    compiled.trace = []

    want = legacy.run_batch(images)
    got = compiled.run_batch(images)

    for field in RAW_FIELDS:
        np.testing.assert_array_equal(
            getattr(got, field), getattr(want, field), err_msg=field
        )
    assert list(got.layers) == list(want.layers)
    for name, report in want.layers.items():
        assert got.layers[name].stats == report.stats, name
        assert got.layers[name].overlapped_cycles == report.overlapped_cycles, name
        assert got.layers[name].jobs == report.jobs, name
    assert got.total_cycles == want.total_cycles
    assert got.overlapped_cycles == want.overlapped_cycles
    assert compiled.trace == legacy.trace
    return legacy.trace


class TestTinyDrift:
    def test_batched_execution_bit_identical(self, tiny_qnet, tiny_images):
        assert_no_drift(tiny_qnet, tiny_images[:3])

    def test_non_optimized_routing_bit_identical(self, tiny_config, tiny_weights, tiny_images):
        qnet = QuantizedCapsuleNet(
            tiny_config, weights=tiny_weights, optimized_routing=False
        )
        assert_no_drift(qnet, tiny_images[:2])

    def test_pipelined_timing_matches_legacy_trace(self, tiny_qnet, tiny_images):
        legacy = LegacyBatchScheduler(tiny_qnet)
        legacy.trace = []
        legacy.run_batch(tiny_images[:2])

        pipelined = PipelinedStreamScheduler(tiny_qnet)
        sizes = [2] * 7
        ops = trace_ops(pipelined.accelerator.config, legacy.trace)
        want = cached_stream_timing(
            [ops] * len(sizes),
            list(sizes),
            window=pipelined.window,
            prestage_depth=pipelined.prestage_depth,
        )
        assert pipelined.probe_timing(sizes) == want


class TestMnistDrift:
    @pytest.fixture(scope="class")
    def mnist_qnet(self, mnist_config):
        return QuantizedCapsuleNet(mnist_config)

    def test_paper_network_bit_identical(self, mnist_qnet):
        images = SyntheticDigits(size=mnist_qnet.config.image_size, seed=5).generate(2).images
        assert_no_drift(mnist_qnet, images)
