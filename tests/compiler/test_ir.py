"""IR validation, topological sort, and JSON round-trip."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.ir import (
    Graph,
    GraphBuilder,
    OpNode,
    TensorNode,
    graph_from_json,
)
from repro.compiler.zoo import capsnet_graph, mlp_graph, mnist_capsnet_graph
from repro.errors import GraphError
from repro.fixedpoint.formats import QFormat

F8 = QFormat(8, 4)


def chain_graph() -> Graph:
    """A minimal valid graph: input -> relu -> relu."""
    b = GraphBuilder("chain")
    x = b.input("x", (4, 3), F8)
    y = b.op("relu", x, F8, name="r1")
    z = b.op("relu", y, F8, name="r2")
    b.output("out", z)
    return b.build()


class TestBuilder:
    def test_builder_validates_on_build(self):
        graph = chain_graph()
        assert [op.name for op in graph.topo_sort()] == ["r1", "r2"]

    def test_builder_infers_shapes(self):
        graph = chain_graph()
        assert graph.tensors["r2"].shape == (4, 3)

    def test_builder_rejects_shape_violation(self):
        b = GraphBuilder("bad")
        x = b.input("x", (4, 3), F8)
        with pytest.raises(GraphError):
            b.op("reshape", x, F8, name="r", shape=(5, 5))

    def test_builder_rejects_bad_transpose_perm(self):
        b = GraphBuilder("bad")
        x = b.input("x", (4, 3), F8)
        with pytest.raises(GraphError):
            b.op("transpose", x, F8, name="t", perm=(0, 2, 1))


class TestValidation:
    def test_cycle_raises(self):
        graph = Graph(name="loop")
        graph.tensors["a"] = TensorNode("a", (2, 2), F8)
        graph.tensors["b"] = TensorNode("b", (2, 2), F8)
        graph.ops = [
            OpNode(name="fwd", kind="relu", inputs=("a",), outputs=("b",)),
            OpNode(name="bwd", kind="relu", inputs=("b",), outputs=("a",)),
        ]
        with pytest.raises(GraphError, match="cycle"):
            graph.topo_sort()
        with pytest.raises(GraphError, match="cycle"):
            graph.validate()

    def test_dangling_input_raises(self):
        graph = chain_graph()
        graph.tensors["ghost"] = TensorNode("ghost", (4, 3), F8)
        graph.ops[0].inputs = ("ghost",)
        with pytest.raises(GraphError, match="dangling"):
            graph.validate()

    def test_unknown_tensor_raises(self):
        graph = chain_graph()
        graph.ops[0].inputs = ("missing",)
        with pytest.raises(GraphError, match="unknown tensor"):
            graph.validate()

    def test_unknown_op_kind_raises(self):
        graph = chain_graph()
        graph.ops[0].kind = "conv9d"
        with pytest.raises(GraphError, match="unknown op kind"):
            graph.validate()

    def test_duplicate_op_name_raises(self):
        graph = chain_graph()
        graph.ops[1].name = "r1"
        with pytest.raises(GraphError, match="duplicate"):
            graph.validate()

    def test_wrong_arity_raises(self):
        graph = chain_graph()
        graph.ops[0].inputs = ("x", "x")
        with pytest.raises(GraphError, match="input"):
            graph.validate()

    def test_declared_shape_mismatch_raises(self):
        graph = chain_graph()
        graph.tensors["r2"] = TensorNode("r2", (9, 9), F8)
        with pytest.raises(GraphError, match="declared"):
            graph.validate()

    def test_unknown_param_raises(self):
        graph = chain_graph()
        graph.ops[0].attrs = {"weight": "nope"}
        with pytest.raises(GraphError, match="unknown param"):
            graph.validate()

    def test_output_alias_must_resolve(self):
        graph = chain_graph()
        graph.outputs["out"] = "missing"
        with pytest.raises(GraphError, match="output"):
            graph.validate()

    def test_zero_routing_iterations_raises(self):
        with pytest.raises(GraphError, match="iteration"):
            b = GraphBuilder("bad")
            caps = b.input("caps", (8, 4), F8)
            b.param("w", (8, 2, 6, 4), F8)
            u = b.op("caps_gemm", caps, F8, name="fc", weight="w")
            b.op("route", u, (F8, F8), name="route", iterations=0, optimized=True)


@st.composite
def permuted_chains(draw):
    """A valid linear chain of elementwise ops, ops listed in random order."""
    n = draw(st.integers(min_value=1, max_value=6))
    kinds = draw(st.lists(st.sampled_from(["relu", "requant", "squash"]), min_size=n, max_size=n))
    order = draw(st.permutations(list(range(n))))
    return kinds, order


class TestTopoSort:
    @given(chain=permuted_chains())
    @settings(max_examples=40, deadline=None)
    def test_topo_sort_is_dependency_ordered(self, chain):
        kinds, order = chain
        graph = Graph(name="perm")
        graph.tensors["t0"] = TensorNode("t0", (3, 2), F8)
        graph.inputs = ("t0",)
        ops = [
            OpNode(name=f"op{i}", kind=kind, inputs=(f"t{i}",), outputs=(f"t{i + 1}",))
            for i, kind in enumerate(kinds)
        ]
        for i in range(len(kinds)):
            graph.tensors[f"t{i + 1}"] = TensorNode(f"t{i + 1}", (3, 2), F8)
        graph.ops = [ops[i] for i in order]  # scrambled listing order
        graph.outputs = {"out": f"t{len(kinds)}"}
        graph.validate()
        sorted_names = [op.name for op in graph.topo_sort()]
        assert sorted_names == [f"op{i}" for i in range(len(kinds))]


class TestJsonRoundTrip:
    @pytest.mark.parametrize(
        "graph",
        [mnist_capsnet_graph(), mlp_graph()],
        ids=["mnist", "mlp"],
    )
    def test_round_trip_preserves_structure(self, graph):
        restored = graph_from_json(graph.to_json())
        restored.validate()
        assert restored.name == graph.name
        assert restored.inputs == graph.inputs
        assert restored.outputs == graph.outputs
        assert restored.tensors == graph.tensors
        assert restored.params == graph.params
        assert restored.ops == graph.ops

    def test_round_trip_is_stable(self, tiny_config):
        graph = capsnet_graph(tiny_config)
        text = graph.to_json()
        assert graph_from_json(text).to_json() == text

    def test_invalid_json_raises(self):
        with pytest.raises(GraphError, match="invalid graph JSON"):
            graph_from_json("{not json")

    def test_malformed_document_raises(self):
        with pytest.raises(GraphError, match="malformed"):
            graph_from_json('{"name": "x"}')
