"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.capsnet.config import mnist_capsnet_config, tiny_capsnet_config
from repro.capsnet.hwops import HardwareLuts, QuantizedFormats
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.capsnet.weights import pseudo_trained_weights
from repro.data.synthetic import SyntheticDigits
from repro.hw.config import AcceleratorConfig


@pytest.fixture(scope="session")
def tiny_config():
    """The scaled-down CapsuleNet used by most functional tests."""
    return tiny_capsnet_config()


@pytest.fixture(scope="session")
def mnist_config():
    """The paper's MNIST CapsuleNet configuration."""
    return mnist_capsnet_config()


@pytest.fixture(scope="session")
def tiny_weights(tiny_config):
    """Deterministic weights for the tiny network."""
    return pseudo_trained_weights(tiny_config, seed=2019)


@pytest.fixture(scope="session")
def tiny_images(tiny_config):
    """A few synthetic digit images matching the tiny network's input."""
    generator = SyntheticDigits(size=tiny_config.image_size, seed=3)
    return generator.generate(4, classes=(0, 1, 2)).images


@pytest.fixture(scope="session")
def default_formats():
    """The shipped quantized format configuration."""
    return QuantizedFormats()


@pytest.fixture(scope="session")
def hardware_luts(default_formats):
    """The three activation ROMs (expensive to build, shared per session)."""
    return HardwareLuts.build(default_formats)


@pytest.fixture(scope="session")
def tiny_qnet(tiny_config, tiny_weights):
    """A quantized tiny network (session-scoped; treat as read-only)."""
    return QuantizedCapsuleNet(tiny_config, weights=tiny_weights)


@pytest.fixture
def small_accel_config():
    """A 4x4 accelerator configuration for cycle-stepped tests."""
    return AcceleratorConfig(rows=4, cols=4)


@pytest.fixture
def rng():
    """Deterministic random generator for per-test data."""
    return np.random.default_rng(12345)
