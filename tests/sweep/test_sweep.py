"""Design-space sweep engine: grids, tiers, fan-out, artifacts, CLI."""

import csv
import json

import pytest

from repro import cli
from repro.errors import ConfigError
from repro.sweep import SweepSpec, expand_grid, run_sweep


class TestExpandGrid:
    def test_cartesian_product_first_axis_outermost(self):
        points = expand_grid({"a": (1, 2), "b": ("x", "y")})
        assert points == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_empty_grid_is_one_point(self):
        assert expand_grid({}) == [{}]

    def test_rejects_empty_axis(self):
        with pytest.raises(ConfigError):
            expand_grid({"a": ()})
        with pytest.raises(ConfigError):
            expand_grid({"a": 5})


class TestSweepSpec:
    def test_rejects_unknown_tier(self):
        with pytest.raises(ConfigError):
            SweepSpec(tier="quantum")

    def test_rejects_axis_outside_tier(self):
        with pytest.raises(ConfigError):
            SweepSpec(tier="analytic", axes={"policy": ("fifo",)})
        # ...but the serving tier accepts policy axes.
        SweepSpec(tier="serving", axes={"policy": ("fifo",)})

    def test_rejects_bad_network(self):
        with pytest.raises(ConfigError):
            SweepSpec(network="imagenet")


class TestAnalyticTier:
    @pytest.fixture(scope="class")
    def result(self):
        spec = SweepSpec(
            tier="analytic",
            network="tiny",
            axes={"array": (4, 8), "window": (1, 2), "batch": (1,)},
        )
        return run_sweep(spec)

    def test_row_per_point(self, result):
        assert len(result.rows) == 4
        assert [(r["array"], r["window"]) for r in result.rows] == [
            (4, 1),
            (4, 2),
            (8, 1),
            (8, 2),
        ]

    def test_metrics_are_sane(self, result):
        for row in result.rows:
            assert row["steady_cycles_per_image"] > 0
            assert row["images_per_s"] > 0
            assert row["cold_cycles"] >= row["steady_cycles_per_image"]
            assert row["pipeline_speedup"] > 0.9
            assert row["area_mm2"] > 0
            assert row["power_mw"] > 0

    def test_wider_window_never_slower(self, result):
        # The ROADMAP sweep's qualitative expectation: window 2 overlaps
        # batches that window 1 serializes.
        for array in (4, 8):
            one = next(
                r for r in result.rows if r["array"] == array and r["window"] == 1
            )
            two = next(
                r for r in result.rows if r["array"] == array and r["window"] == 2
            )
            assert two["steady_cycles_per_image"] <= one["steady_cycles_per_image"]

    def test_best_and_artifacts(self, result, tmp_path):
        best = result.best("images_per_s")
        assert best["images_per_s"] == max(r["images_per_s"] for r in result.rows)
        json_path = tmp_path / "sweep.json"
        result.write_json(json_path)
        document = json.loads(json_path.read_text())
        assert document["points"] == 4
        assert document["rows"][0]["array"] == 4
        csv_path = tmp_path / "sweep.csv"
        result.write_csv(csv_path)
        with csv_path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4
        assert rows[0]["array"] == "4"

    def test_table_labels_arrays(self, result):
        table = result.format_table()
        assert "4x4" in table and "8x8" in table


class TestServingTier:
    def test_policy_axis_runs_fast_simulator(self):
        spec = SweepSpec(
            tier="serving",
            network="tiny",
            axes={"policy": ("fifo", "deadline")},
            requests=300,
            deadline_ms=0.1,
            max_wait_us=50.0,
        )
        result = run_sweep(spec)
        assert len(result.rows) == 2
        by_policy = {row["policy"]: row for row in result.rows}
        assert by_policy["fifo"]["throughput_rps"] > 0
        assert by_policy["deadline"]["shed_rate"] >= 0.0
        assert by_policy["fifo"]["p99_us"] >= by_policy["fifo"]["p50_us"]


class TestNetworkAxis:
    def test_network_axis_sweeps_zoo_entries(self):
        spec = SweepSpec(
            tier="analytic",
            axes={"network": ("tiny", "mlp"), "array": (8,)},
            synthesis=False,
        )
        result = run_sweep(spec)
        assert [row["network"] for row in result.rows] == ["tiny", "mlp"]
        for row in result.rows:
            assert row["steady_cycles_per_image"] > 0
        assert "network" in result.format_table()

    def test_network_axis_rejects_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown network"):
            SweepSpec(axes={"network": ("tiny", "alexnet")})

    def test_serving_tier_network_axis(self):
        spec = SweepSpec(
            tier="serving",
            axes={"network": ("tiny", "tiny-res")},
            requests=100,
        )
        result = run_sweep(spec)
        assert [row["network"] for row in result.rows] == ["tiny", "tiny-res"]
        for row in result.rows:
            assert row["throughput_rps"] > 0

    def test_cli_multiple_networks(self, capsys):
        assert (
            cli.main(["sweep", "--smoke", "--network", "tiny", "mlp", "--array", "8"])
            == 0
        )
        out = capsys.readouterr().out
        assert "mlp" in out and "tiny" in out


class TestProcessFanOut:
    def test_parallel_rows_match_serial(self):
        spec = SweepSpec(
            tier="analytic",
            network="tiny",
            axes={"array": (4, 8), "prestage_depth": (1, 4)},
            synthesis=False,
        )
        serial = run_sweep(spec, processes=1)
        parallel = run_sweep(spec, processes=2)
        assert parallel.rows == serial.rows


class TestSweepCli:
    def test_smoke_writes_artifact(self, tmp_path, capsys):
        path = tmp_path / "sweep-smoke.json"
        assert cli.main(["sweep", "--smoke", "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "4x4" in out and "8x8" in out
        document = json.loads(path.read_text())
        assert document["points"] == len(document["rows"]) > 0

    def test_serving_tier_cli(self, capsys):
        assert (
            cli.main(
                [
                    "sweep",
                    "--tier",
                    "serving",
                    "--smoke",
                    "--array",
                    "4",
                    "--policy",
                    "fifo",
                    "--requests",
                    "200",
                ]
            )
            == 0
        )
        assert "req/s" in capsys.readouterr().out

    def test_bad_axis_is_a_config_error(self, capsys):
        # batch is analytic-only; the serving tier must reject it.
        assert (
            cli.main(["sweep", "--tier", "serving", "--batch", "2", "--smoke"]) == 2
        )
        assert "sweep:" in capsys.readouterr().err
