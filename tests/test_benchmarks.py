"""Smoke the benchmark scripts' new surfaces (trace replay, scale)."""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.serve import load_trace_file

REPO = Path(__file__).resolve().parent.parent
SAMPLE_TRACE = REPO / "benchmarks" / "traces" / "sample-trace.jsonl"


def run_bench(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(REPO / "benchmarks" / script), *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


class TestSampleTrace:
    def test_checked_in_sample_parses_with_deadlines(self):
        trace = load_trace_file(SAMPLE_TRACE)
        assert trace.count == 240
        assert trace.deadlines_us is not None
        finite = np.isfinite(trace.deadlines_us)
        assert 0 < finite.sum() < trace.count  # some requests carry no SLA
        assert (trace.deadlines_us[finite] > trace.times_us[finite]).all()


class TestBenchPolicies:
    def test_trace_file_replay(self, tmp_path, tiny_config):
        # A tiny-scale replay log: saturating arrivals, each with its own
        # absolute deadline, a few without.
        from repro.serve import AnalyticBatchCost

        cost = AnalyticBatchCost(network=tiny_config)
        capacity = cost.config.clock_mhz * 1e6 / cost.batch_cycles(1)
        rng = np.random.default_rng(4)
        times = np.cumsum(rng.exponential(1e6 / (2.5 * capacity), size=48))
        lines = []
        for index, arrival in enumerate(times):
            entry = {"arrival_us": float(arrival)}
            if index % 5:
                entry["deadline_us"] = float(arrival) + 100.0
            lines.append(json.dumps(entry))
        trace_path = tmp_path / "trace.jsonl"
        trace_path.write_text("\n".join(lines) + "\n")

        out_path = tmp_path / "out.json"
        proc = run_bench(
            "bench_policies.py",
            "--network",
            "tiny",
            "--deadline-ms",
            "0.1",
            "--max-wait-us",
            "50",
            "--fast",
            "--trace-file",
            str(trace_path),
            "--json",
            str(out_path),
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(out_path.read_text())
        assert report["requests"] == 48
        assert report["trace"].startswith("replay:")
        assert report["trace_file"] == str(trace_path)
        # The per-request SLAs were honored: the deadline policy sheds
        # and the fifo policy records misses against them.
        assert {row["policy"] for row in report["results"]} == {
            "fifo",
            "deadline",
            "greedy",
        }


class TestBenchScale:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        out_path = tmp_path_factory.mktemp("scale") / "scale.json"
        proc = run_bench(
            "bench_scale.py",
            "--smoke",
            "--requests",
            "4000",
            "--repeats",
            "1",
            "--json",
            str(out_path),
        )
        assert proc.returncode == 0, proc.stderr
        return json.loads(out_path.read_text())

    def test_equivalence_audit(self, report):
        headline = report["headline"]
        assert headline["counts_identical"] == 1.0
        assert headline["percentile_diff_within_bin"] == 1.0
        assert headline["max_percentile_diff_us"] <= report["latency_bin_us"]

    def test_fast_path_is_faster(self, report):
        assert report["headline"]["wall_speedup"] > 1.0
        assert report["headline"]["fast_wall_rps"] > (
            report["headline"]["record_wall_rps"]
        )


class TestBenchCompiler:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        out_path = tmp_path_factory.mktemp("compiler") / "compiler.json"
        proc = run_bench(
            "bench_compiler.py",
            "--smoke",
            "--compile-repeats",
            "1",
            "--json",
            str(out_path),
        )
        assert proc.returncode == 0, proc.stderr
        return json.loads(out_path.read_text())

    def test_whole_zoo_compiles(self, report):
        assert report["headline"]["zoo_networks"] == len(report["zoo"])
        for row in report["zoo"]:
            assert row["instructions"] > 0
            assert row["steady_cycles_per_image"] > 0

    def test_drift_gates_hold_exactly(self, report):
        headline = report["headline"]
        assert headline["compiled_vs_legacy_cycle_ratio"] == 1.0
        assert headline["closed_form_vs_legacy_cycle_ratio"] == 1.0
        assert headline["predictions_identical"] == 1.0

    def test_baseline_guard_passes(self, report, tmp_path):
        artifact = tmp_path / "bench-compiler-smoke.json"
        artifact.write_text(json.dumps(report))
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO / "benchmarks" / "check_perf_regression.py"),
                str(artifact),
                str(REPO / "benchmarks" / "baselines" / "bench-compiler-smoke.json"),
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
