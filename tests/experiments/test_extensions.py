"""Tests for the extension experiments (motivation, energy, batching)."""

import pytest

from repro.experiments import batching, energy, motivation


class TestMotivation:
    @pytest.fixture(scope="class")
    def result(self):
        return motivation.run()

    def test_conv_layers_compute_bound(self, result):
        """Paper observation 1: inference is compute-intensive."""
        assert result.compute_bound_layers["Conv1"]
        assert result.compute_bound_layers["PrimaryCaps"]

    def test_parameters_fit_onchip(self, result):
        """Paper observation 3: 8 MB suffices for every parameter."""
        assert result.fits_onchip
        assert 6.0 < result.weight_megabytes < 7.0

    def test_network_intensity_above_ridge(self, result):
        assert result.network_point.arithmetic_intensity > result.ridge_intensity

    def test_report_renders(self, result):
        text = motivation.format_report(result)
        assert "compute" in text
        assert "8 MB" in text


class TestEnergy:
    @pytest.fixture(scope="class")
    def result(self):
        return energy.run()

    def test_bottomup_within_topdown_envelope(self, result):
        assert result.consistent

    def test_macs_dominate_dynamic_energy(self, result):
        assert result.bottomup_energy_uj["mac"] == max(
            result.bottomup_energy_uj.values()
        )

    def test_plausible_magnitudes(self, result):
        # ~200M MACs at ~1 pJ each plus traffic: hundreds of microjoules.
        assert 50 < result.bottomup_total_uj < 1000
        assert 200 < result.topdown_energy_uj < 2000

    def test_report_renders(self, result):
        assert "uJ" in energy.format_report(result)


class TestBatching:
    @pytest.fixture(scope="class")
    def result(self):
        return batching.run()

    def test_capsacc_wins_at_batch_one(self, result):
        """The paper's regime: batch-1 latency-critical inference."""
        assert result.capsacc_images_per_s > result.gpu_images_per_s[1]

    def test_gpu_throughput_monotone_in_batch(self, result):
        values = [result.gpu_images_per_s[b] for b in result.batch_sizes]
        assert values == sorted(values)

    def test_crossover_exists_and_beyond_embedded_batches(self, result):
        crossover = result.crossover_batch
        assert crossover is not None
        assert crossover >= 8

    def test_report_renders(self, result):
        assert "crossover" in batching.format_report(result).lower()


class TestPolicyComparison:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.capsnet.config import tiny_capsnet_config

        return batching.policy_comparison(
            config=tiny_capsnet_config(),
            requests=64,
            deadline_ms=0.05,
            max_wait_us=50.0,
        )

    def test_one_row_per_policy(self, result):
        assert [row["policy"] for row in result.rows] == [
            "fifo",
            "deadline",
            "greedy",
        ]

    def test_deadline_policy_bounds_p99_at_saturation(self, result):
        """The acceptance shape on closed-form costs: the SLA-aware policy
        sheds or early-launches instead of blowing p99."""
        fifo, deadline = result.row("fifo"), result.row("deadline")
        assert deadline["p99_us"] < fifo["p99_us"]
        assert deadline["deadline_miss_rate"] <= fifo["deadline_miss_rate"]

    def test_report_renders(self, result):
        text = batching.format_policy_report(result)
        assert "policy" in text and "p99" in text and "shed" in text


class TestOracleAdmissionStudy:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.capsnet.config import tiny_capsnet_config

        return batching.oracle_admission_study(
            config=tiny_capsnet_config(),
            requests=64,
            deadline_ms=0.1,
            max_wait_us=50.0,
            slacks_us=(0.0, 20.0, 50.0),
        )

    def test_one_row_per_slack_plus_oracle(self, result):
        assert [row["label"] for row in result.rows] == [
            "slack=0us",
            "slack=20us",
            "slack=50us",
            "oracle",
        ]

    def test_every_row_served_the_same_trace(self, result):
        offered = {row["offered"] for row in result.rows}
        assert offered == {64}

    def test_oracle_reaches_a_missless_fixed_point(self, result):
        oracle = result.row("oracle")
        assert result.oracle_converged
        assert oracle["deadline_miss_rate"] == 0.0
        assert 1 <= result.oracle_iterations <= 8

    def test_zero_iteration_budget_rejected(self):
        from repro.capsnet.config import tiny_capsnet_config
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            batching.oracle_admission_study(
                config=tiny_capsnet_config(), max_iterations=0
            )

    def test_goodput_accounts_shed_and_missed(self, result):
        for row in result.rows:
            assert row["goodput_rps"] >= 0.0
            assert 0.0 <= row["shed_rate"] <= 1.0
            # Goodput is normalized by the offered window, so it can
            # never exceed the offered rate.
            assert row["goodput_rps"] <= result.offered_rps + 1e-9

    def test_report_renders(self, result):
        text = batching.format_admission_report(result)
        assert "oracle" in text and "goodput" in text and "slack=0us" in text
