"""Smoke tests for the experiment runner."""

import pytest

from repro.experiments import runner


class TestRunAll:
    @pytest.fixture(scope="class")
    def suite(self):
        # Skip the training-based and sweep-heavy parts for speed; the
        # artifact drivers themselves all execute.
        return runner.run_all(include_accuracy=False, include_ablations=False)

    def test_every_standard_driver_ran(self, suite):
        for key in runner.STANDARD_DRIVERS:
            assert key in suite.results
            assert key in suite.reports

    def test_report_text_concatenates(self, suite):
        text = suite.report_text()
        assert "Table I" in text
        assert "Fig 16" in text
        assert "Fig 18" in text
        assert "Batching" in text

    def test_driver_count_covers_paper_artifacts(self):
        paper_artifacts = {
            "table1", "table2", "table3",
            "fig3", "fig5", "fig8", "fig9", "fig16", "fig17", "fig18",
        }
        assert paper_artifacts <= set(runner.STANDARD_DRIVERS)
