"""Tests for the ablation studies."""


from repro.experiments import ablations


class TestRoutingOptimization:
    def test_optimized_is_faster(self):
        result = ablations.routing_optimization()
        assert result.ratio("optimized (skip softmax1)", "textbook") < 1.0

    def test_saving_is_one_softmax_pass(self, mnist_config):
        result = ablations.routing_optimization(mnist_config)
        optimized = result.variants["optimized (skip softmax1)"]
        textbook = result.variants["textbook"]
        saved_ms = textbook - optimized
        # One softmax pass over 1152 rows of 10 costs ~23k cycles ~ 0.09 ms
        # (minus the replacement transfer), so the saving is small but real.
        assert 0.01 < saved_ms < 0.2


class TestWeightDoubleBuffering:
    def test_double_buffering_faster(self):
        result = ablations.weight_double_buffering()
        assert (
            result.variants["double-buffered (Weight2)"]
            < result.variants["single-buffered"]
        )

    def test_single_buffer_hurts_a_lot(self):
        """PrimaryCaps loads 20736 K-rows of weights; stalling on every
        load roughly doubles the layer."""
        result = ablations.weight_double_buffering()
        ratio = result.variants["single-buffered"] / result.variants[
            "double-buffered (Weight2)"
        ]
        assert ratio > 1.5


class TestArraySweep:
    def test_monotone_in_array_size(self):
        result = ablations.array_size_sweep()
        times = [result.variants[f"{s}x{s}"] for s in (4, 8, 16, 32)]
        assert times == sorted(times, reverse=True)

    def test_scaling_efficiency_decays(self):
        """Going 16->32 quadruples PEs but cannot quadruple speed (fill,
        activation and transfer terms do not scale)."""
        result = ablations.array_size_sweep()
        speedup = result.variants["16x16"] / result.variants["32x32"]
        assert 1.5 < speedup < 4.0


class TestConvPolicy:
    def test_serial_much_slower(self):
        result = ablations.conv_mapping_policy()
        assert result.variants["channel_serial"] > 5 * result.variants["channel_parallel"]


class TestBitwidth:
    def test_area_grows_with_width(self):
        result = ablations.bitwidth_sweep()
        areas = [result.variants[f"{w}b"] for w in (4, 6, 8, 12, 16)]
        assert areas == sorted(areas)


class TestSquashLutPrecision:
    def test_error_decreases_with_bits(self):
        result = ablations.squash_lut_precision()
        errors = [result.variants[f"{b}b data"] for b in (4, 5, 6, 7, 8)]
        assert errors[0] > errors[-1]

    def test_paper_choice_is_at_knee(self):
        """6 bits is within 2x of the 8-bit error — the paper's cheap spot."""
        result = ablations.squash_lut_precision()
        assert result.variants["6b data"] < 2.5 * result.variants["8b data"]


class TestRunner:
    def test_run_all_and_format(self):
        results = ablations.run_all()
        assert len(results) == 6
        text = ablations.format_report(results)
        assert "routing-optimization" in text
        assert "bit-width" in text
