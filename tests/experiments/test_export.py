"""Tests for the artifact export module."""

import csv
import json

import pytest

from repro.experiments import export


class TestIndividualExports:
    def test_table1_csv(self, tmp_path):
        path = export.export_table1(tmp_path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4
        conv1 = next(row for row in rows if row["layer"] == "Conv1")
        assert conv1["parameters"] == "20992"
        assert conv1["paper_parameters"] == "20992"

    def test_fig3_csv_has_curve(self, tmp_path):
        path = export.export_fig3(tmp_path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) > 1000
        assert {"x", "squash", "derivative"} <= set(rows[0])

    def test_fig16_csv_speedups(self, tmp_path):
        path = export.export_fig16(tmp_path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        total = next(row for row in rows if row["layer"] == "Total")
        assert float(total["speedup"]) > 1.0

    def test_fig18_fractions_sum(self, tmp_path):
        path = export.export_fig18(tmp_path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert sum(float(row["area_fraction"]) for row in rows) == pytest.approx(1.0)


class TestExportAll:
    @pytest.fixture(scope="class")
    def manifest(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("artifacts")
        return directory, export.export_all(directory)

    def test_every_artifact_written(self, manifest):
        directory, paths = manifest
        for artifact in export.EXPORTERS:
            assert artifact in paths
            assert (directory / f"{artifact}.csv").exists()

    def test_manifest_json(self, manifest):
        directory, _ = manifest
        with open(directory / "manifest.json") as handle:
            data = json.load(handle)
        assert set(data["artifacts"]) == set(export.EXPORTERS)

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "out"
        export.export_all(target)
        assert (target / "manifest.json").exists()
