"""Tests for the command-line interface."""

import pytest

from repro import cli


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["--version"])
        assert excinfo.value.code == 0


class TestListCommand:
    def test_lists_artifacts(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "fig16" in out
        assert "all" in out


class TestRunCommand:
    def test_run_single_artifact(self, capsys):
        assert cli.main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_run_multiple_artifacts(self, capsys):
        assert cli.main(["run", "fig5", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Fig 5" in out
        assert "Table II" in out

    def test_unknown_artifact_fails(self, capsys):
        assert cli.main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err


class TestSweepCommand:
    def test_sweep_prints_rows(self, capsys):
        assert cli.main(["sweep", "--array", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "4x4" in out
        assert "8x8" in out


class TestSimulateCommand:
    def test_batched_simulation_reports_throughput(self, capsys):
        assert cli.main(
            ["simulate", "--network", "tiny", "--batch-size", "4", "--images", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "batch size 4" in out
        assert "images/s" in out
        assert "classcaps_fc" in out
        assert "util" in out

    def test_batch_size_one_works(self, capsys):
        assert cli.main(
            ["simulate", "--network", "tiny", "--batch-size", "1", "--images", "2"]
        ) == 0
        assert "batch size 1" in capsys.readouterr().out

    def test_rejects_non_positive_batch(self, capsys):
        assert cli.main(["simulate", "--network", "tiny", "--batch-size", "0"]) == 2
        assert "positive" in capsys.readouterr().err

    def test_stepped_engine_accepted(self, capsys):
        assert cli.main(
            [
                "simulate",
                "--network",
                "tiny",
                "--batch-size",
                "2",
                "--images",
                "2",
                "--engine",
                "stepped",
            ]
        ) == 0
        assert "stepped engine" in capsys.readouterr().out

    def test_pipelined_stream_simulation(self, capsys):
        assert cli.main(
            [
                "simulate",
                "--network",
                "tiny",
                "--batch-size",
                "2",
                "--images",
                "8",
                "--pipeline",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Pipelined stream simulation" in out
        assert "steady-state" in out
        assert "Stream speedup" in out


class TestServeSimPolicies:
    BASE = ["serve-sim", "--network", "tiny", "--cost", "analytic"]

    def test_deadline_policy_reports_shedding(self, capsys):
        assert cli.main(
            self.BASE
            + [
                "--policy",
                "deadline",
                "--deadline-ms",
                "0.05",
                "--rate",
                "40000",
                "--requests",
                "48",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "deadline" in out
        assert "shed" in out

    def test_greedy_policy_runs(self, capsys):
        assert cli.main(
            self.BASE + ["--policy", "greedy", "--requests", "16"]
        ) == 0
        assert "greedy" in capsys.readouterr().out

    def test_heterogeneous_array_sizes(self, capsys):
        assert cli.main(
            self.BASE
            + ["--array-sizes", "16", "8", "--requests", "16", "--rate", "20000"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 array(s)" in out

    def test_multi_tenant(self, capsys):
        assert cli.main(
            self.BASE
            + [
                "--rate",
                "9000",
                "--requests",
                "24",
                "--tenant",
                "name=a",
                "--tenant",
                "name=b,weight=2,deadline-ms=5",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "tenant a" in out
        assert "tenant b" in out

    def test_bad_tenant_spec_fails(self, capsys):
        assert cli.main(self.BASE + ["--tenant", "rate=100"]) == 2
        assert "name=" in capsys.readouterr().err

    def test_zero_deadline_fails(self, capsys):
        assert cli.main(self.BASE + ["--deadline-ms", "0"]) == 2
        assert "deadline-ms" in capsys.readouterr().err

    def test_bad_tenant_number_fails(self, capsys):
        assert cli.main(self.BASE + ["--tenant", "name=a,rate=abc"]) == 2
        assert "rate" in capsys.readouterr().err

    def test_tenant_with_execute_fails(self, capsys):
        assert (
            cli.main(
                ["serve-sim", "--network", "tiny", "--tenant", "name=a", "--execute"]
            )
            == 2
        )
        assert "single-tenant" in capsys.readouterr().err

    def test_queue_limit_sheds(self, capsys):
        assert cli.main(
            self.BASE
            + ["--queue-limit", "0", "--requests", "8", "--rate", "1000"]
        ) == 0
        out = capsys.readouterr().out
        assert "shed 8/8" in out


class TestInfoCommand:
    def test_info_summarizes(self, capsys):
        assert cli.main(["info"]) == 0
        out = capsys.readouterr().out
        assert "CapsuleNet" in out
        assert "16x16" in out


class TestServeCommand:
    """The live `serve` front-end and its shared flag surface."""

    def subparser(self, name):
        parser = cli.build_parser()
        actions = {
            action.dest: action
            for sub in parser._subparsers._group_actions
            for action in [sub.choices[name]]
            for action in action._actions
        }
        return actions

    def test_serve_and_serve_sim_share_the_server_flags(self):
        """One flag definition, two commands — no drift, ever.

        Every server-shape flag registered by ``add_server_arguments``
        must exist on BOTH subcommands with identical defaults and
        choices (``--network`` defaults intentionally differ: the live
        command serves the tiny network by default).
        """
        shared_dests = [
            "max_batch",
            "max_wait_us",
            "policy",
            "deadline_ms",
            "dispatch",
            "queue_limit",
            "arrays",
            "array_sizes",
            "network",
            "pipeline",
            "fifo_depth",
        ]
        sim_actions = self.subparser("serve-sim")
        live_actions = self.subparser("serve")
        for dest in shared_dests:
            assert dest in sim_actions, f"serve-sim lost --{dest}"
            assert dest in live_actions, f"serve lost --{dest}"
            sim_action, live_action = sim_actions[dest], live_actions[dest]
            assert sim_action.option_strings == live_action.option_strings
            assert sim_action.choices == live_action.choices
            if dest != "network":
                assert sim_action.default == live_action.default, dest
        assert sim_actions["network"].default == "mnist"
        assert live_actions["network"].default == "tiny"

    def test_replay_virtual_matches_simulator(self, capsys):
        assert (
            cli.main(
                [
                    "serve",
                    "--replay-virtual",
                    "--requests",
                    "64",
                    "--rate",
                    "4000",
                    "--max-batch",
                    "8",
                ]
            )
            == 0
        )
        assert "decision-for-decision" in capsys.readouterr().out

    def test_live_serve_smoke(self, capsys):
        assert (
            cli.main(
                [
                    "serve",
                    "--requests",
                    "64",
                    "--rate",
                    "20000",
                    "--max-batch",
                    "16",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "live" in out
        assert "req/s" in out

    def test_live_serve_rejects_pipeline(self, capsys):
        assert cli.main(["serve", "--pipeline", "--requests", "8"]) == 2
        assert "pipeline" in capsys.readouterr().err


class TestCompileCommand:
    def test_compiles_zoo_network(self, capsys):
        assert cli.main(["compile", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "GEMM" in out
        assert "cycles" in out

    def test_checks_golden_equivalence(self, capsys):
        assert cli.main(["compile", "tiny", "--check", "--check-images", "2"]) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_json_dump_round_trips(self, tmp_path, capsys):
        from repro.compiler import program_from_json

        path = tmp_path / "tiny.json"
        assert cli.main(["compile", "tiny", "--json", str(path)]) == 0
        program = program_from_json(path.read_text())
        assert program.num_instructions > 0

    def test_compiles_graph_file(self, tmp_path, capsys):
        from repro.compiler import mlp_graph

        path = tmp_path / "mlp-graph.json"
        path.write_text(mlp_graph().to_json())
        assert cli.main(["compile", "--graph", str(path)]) == 0
        assert "GEMM" in capsys.readouterr().out

    def test_graph_file_cannot_be_checked(self, tmp_path, capsys):
        from repro.compiler import mlp_graph

        path = tmp_path / "mlp-graph.json"
        path.write_text(mlp_graph().to_json())
        assert cli.main(["compile", "--graph", str(path), "--check"]) == 2
        assert "golden" in capsys.readouterr().err

    def test_requires_exactly_one_source(self, capsys):
        assert cli.main(["compile"]) == 2
        capsys.readouterr()

    def test_malformed_graph_file_fails(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert cli.main(["compile", "--graph", str(path)]) == 2
        assert capsys.readouterr().err

    def test_serve_sim_accepts_zoo_network(self, capsys):
        assert (
            cli.main(
                [
                    "serve-sim",
                    "--network",
                    "mlp",
                    "--requests",
                    "8",
                    "--rate",
                    "2000",
                ]
            )
            == 0
        )
        assert "req/s" in capsys.readouterr().out
