"""Tests for the command-line interface."""

import pytest

from repro import cli


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["--version"])
        assert excinfo.value.code == 0


class TestListCommand:
    def test_lists_artifacts(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "fig16" in out
        assert "all" in out


class TestRunCommand:
    def test_run_single_artifact(self, capsys):
        assert cli.main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_run_multiple_artifacts(self, capsys):
        assert cli.main(["run", "fig5", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Fig 5" in out
        assert "Table II" in out

    def test_unknown_artifact_fails(self, capsys):
        assert cli.main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err


class TestSweepCommand:
    def test_sweep_prints_rows(self, capsys):
        assert cli.main(["sweep", "--array", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "4x4" in out
        assert "8x8" in out


class TestSimulateCommand:
    def test_batched_simulation_reports_throughput(self, capsys):
        assert cli.main(
            ["simulate", "--network", "tiny", "--batch-size", "4", "--images", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "batch size 4" in out
        assert "images/s" in out
        assert "classcaps_fc" in out
        assert "util" in out

    def test_batch_size_one_works(self, capsys):
        assert cli.main(
            ["simulate", "--network", "tiny", "--batch-size", "1", "--images", "2"]
        ) == 0
        assert "batch size 1" in capsys.readouterr().out

    def test_rejects_non_positive_batch(self, capsys):
        assert cli.main(["simulate", "--network", "tiny", "--batch-size", "0"]) == 2
        assert "positive" in capsys.readouterr().err

    def test_stepped_engine_accepted(self, capsys):
        assert cli.main(
            [
                "simulate",
                "--network",
                "tiny",
                "--batch-size",
                "2",
                "--images",
                "2",
                "--engine",
                "stepped",
            ]
        ) == 0
        assert "stepped engine" in capsys.readouterr().out

    def test_pipelined_stream_simulation(self, capsys):
        assert cli.main(
            [
                "simulate",
                "--network",
                "tiny",
                "--batch-size",
                "2",
                "--images",
                "8",
                "--pipeline",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Pipelined stream simulation" in out
        assert "steady-state" in out
        assert "Stream speedup" in out


class TestServeSimPolicies:
    BASE = ["serve-sim", "--network", "tiny", "--cost", "analytic"]

    def test_deadline_policy_reports_shedding(self, capsys):
        assert cli.main(
            self.BASE
            + [
                "--policy",
                "deadline",
                "--deadline-ms",
                "0.05",
                "--rate",
                "40000",
                "--requests",
                "48",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "deadline" in out
        assert "shed" in out

    def test_greedy_policy_runs(self, capsys):
        assert cli.main(
            self.BASE + ["--policy", "greedy", "--requests", "16"]
        ) == 0
        assert "greedy" in capsys.readouterr().out

    def test_heterogeneous_array_sizes(self, capsys):
        assert cli.main(
            self.BASE
            + ["--array-sizes", "16", "8", "--requests", "16", "--rate", "20000"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 array(s)" in out

    def test_multi_tenant(self, capsys):
        assert cli.main(
            self.BASE
            + [
                "--rate",
                "9000",
                "--requests",
                "24",
                "--tenant",
                "name=a",
                "--tenant",
                "name=b,weight=2,deadline-ms=5",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "tenant a" in out
        assert "tenant b" in out

    def test_bad_tenant_spec_fails(self, capsys):
        assert cli.main(self.BASE + ["--tenant", "rate=100"]) == 2
        assert "name=" in capsys.readouterr().err

    def test_zero_deadline_fails(self, capsys):
        assert cli.main(self.BASE + ["--deadline-ms", "0"]) == 2
        assert "deadline-ms" in capsys.readouterr().err

    def test_bad_tenant_number_fails(self, capsys):
        assert cli.main(self.BASE + ["--tenant", "name=a,rate=abc"]) == 2
        assert "rate" in capsys.readouterr().err

    def test_tenant_with_execute_fails(self, capsys):
        assert (
            cli.main(
                ["serve-sim", "--network", "tiny", "--tenant", "name=a", "--execute"]
            )
            == 2
        )
        assert "single-tenant" in capsys.readouterr().err

    def test_queue_limit_sheds(self, capsys):
        assert cli.main(
            self.BASE
            + ["--queue-limit", "0", "--requests", "8", "--rate", "1000"]
        ) == 0
        out = capsys.readouterr().out
        assert "shed 8/8" in out


class TestInfoCommand:
    def test_info_summarizes(self, capsys):
        assert cli.main(["info"]) == 0
        out = capsys.readouterr().out
        assert "CapsuleNet" in out
        assert "16x16" in out
