"""Tests for the command-line interface."""

import pytest

from repro import cli


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["--version"])
        assert excinfo.value.code == 0


class TestListCommand:
    def test_lists_artifacts(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "fig16" in out
        assert "all" in out


class TestRunCommand:
    def test_run_single_artifact(self, capsys):
        assert cli.main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_run_multiple_artifacts(self, capsys):
        assert cli.main(["run", "fig5", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Fig 5" in out
        assert "Table II" in out

    def test_unknown_artifact_fails(self, capsys):
        assert cli.main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err


class TestSweepCommand:
    def test_sweep_prints_rows(self, capsys):
        assert cli.main(["sweep", "--array", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "4x4" in out
        assert "8x8" in out


class TestSimulateCommand:
    def test_batched_simulation_reports_throughput(self, capsys):
        assert cli.main(
            ["simulate", "--network", "tiny", "--batch-size", "4", "--images", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "batch size 4" in out
        assert "images/s" in out
        assert "classcaps_fc" in out
        assert "util" in out

    def test_batch_size_one_works(self, capsys):
        assert cli.main(
            ["simulate", "--network", "tiny", "--batch-size", "1", "--images", "2"]
        ) == 0
        assert "batch size 1" in capsys.readouterr().out

    def test_rejects_non_positive_batch(self, capsys):
        assert cli.main(["simulate", "--network", "tiny", "--batch-size", "0"]) == 2
        assert "positive" in capsys.readouterr().err

    def test_stepped_engine_accepted(self, capsys):
        assert cli.main(
            [
                "simulate",
                "--network",
                "tiny",
                "--batch-size",
                "2",
                "--images",
                "2",
                "--engine",
                "stepped",
            ]
        ) == 0
        assert "stepped engine" in capsys.readouterr().out

    def test_pipelined_stream_simulation(self, capsys):
        assert cli.main(
            [
                "simulate",
                "--network",
                "tiny",
                "--batch-size",
                "2",
                "--images",
                "8",
                "--pipeline",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Pipelined stream simulation" in out
        assert "steady-state" in out
        assert "Stream speedup" in out


class TestInfoCommand:
    def test_info_summarizes(self, capsys):
        assert cli.main(["info"]) == 0
        out = capsys.readouterr().out
        assert "CapsuleNet" in out
        assert "16x16" in out
