"""Tests for the shared report formatting helpers."""

import math

from repro.experiments.common import format_table, log_bar_chart, percent, ratio_label


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [(1, 2), (30, 4)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_column_widths_fit_widest_cell(self):
        text = format_table(["x"], [("short",), ("much-longer-cell",)])
        header, rule, *rows = text.splitlines()
        assert len(rule) >= len("much-longer-cell")

    def test_float_formatting(self):
        text = format_table(["v"], [(3.14159,), (0.0001234,), (12345.6,)])
        assert "3.142" in text
        assert "0.000123" in text
        assert "1.23e+04" in text

    def test_zero_renders_as_zero(self):
        assert "0" in format_table(["v"], [(0.0,)])


class TestLogBarChart:
    def test_bar_lengths_follow_log_scale(self):
        chart = log_bar_chart({"small": 1.0, "mid": 10.0, "big": 100.0}, "ms", width=40)
        lines = chart.splitlines()
        lengths = [line.count("#") for line in lines]
        assert lengths[0] < lengths[1] < lengths[2]
        # Log scale: the two decades give equally spaced bars.
        assert math.isclose(lengths[1] - lengths[0], lengths[2] - lengths[1], abs_tol=1)

    def test_minimum_one_hash_for_positive(self):
        chart = log_bar_chart({"a": 1.0, "b": 1e6}, "us")
        assert chart.splitlines()[0].count("#") >= 1

    def test_zero_values_get_empty_bar(self):
        chart = log_bar_chart({"zero": 0.0, "one": 1.0}, "us")
        assert chart.splitlines()[0].count("#") == 0

    def test_all_equal_values(self):
        chart = log_bar_chart({"a": 5.0, "b": 5.0}, "us")
        assert "(no data)" not in chart

    def test_empty_input(self):
        assert log_bar_chart({}, "us") == "(no data)"


class TestLabels:
    def test_percent_paper_style(self):
        assert percent(0.005) == "<1%"
        assert percent(0.78) == "78%"
        assert percent(0.216) == "22%"

    def test_ratio_label_faster(self):
        assert ratio_label(6.0) == "6x faster"
        assert ratio_label(12.14) == "12x faster"

    def test_ratio_label_slower_matches_paper_phrasing(self):
        # The paper annotates Conv1 as "46% slower".
        assert ratio_label(1 / 1.46) == "46% slower"

    def test_ratio_label_unity(self):
        assert ratio_label(1.0) == "1x faster"
