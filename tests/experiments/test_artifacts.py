"""Tests for the per-artifact experiment drivers (reproduction claims)."""

import numpy as np
import pytest

from repro.experiments import (
    fig3,
    fig5,
    fig8,
    fig9,
    fig16,
    fig17,
    fig18,
    table1,
    table2,
    table3,
)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run()

    def test_parameters_match_paper(self, result):
        assert all(result.parameter_matches.values())

    def test_weights_fit_8mb(self, result):
        assert result.weight_megabytes < 8.0

    def test_report_mentions_paper_values(self, result):
        text = table1.format_report(result)
        assert "5308672" in text.replace(",", "")
        assert "8 MB" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3.run()

    def test_numeric_peak_matches_analytic(self, result):
        assert result.peak_x == pytest.approx(result.analytic_peak_x, abs=2e-3)
        assert result.peak_y == pytest.approx(result.analytic_peak_y, abs=1e-4)

    def test_peak_matches_paper_annotation(self, result):
        paper_x, paper_y = result.paper_peak
        assert result.peak_x == pytest.approx(paper_x, abs=2e-3)
        assert result.peak_y == pytest.approx(paper_y, abs=1e-3)

    def test_squash_curve_bounded(self, result):
        assert np.all(result.squash >= 0)
        assert np.all(result.squash < 1)

    def test_lut_error_small(self, result):
        assert result.lut_max_error < 0.05

    def test_report_renders(self, result):
        assert "0.577" in fig3.format_report(result)


class TestFig5:
    def test_labels_match_paper(self):
        result = fig5.run()
        assert result.matches_paper
        assert result.label("PrimaryCaps") == "78%"
        assert result.label("Conv1") == "<1%"

    def test_report_renders(self):
        assert "78%" in fig5.format_report(fig5.run())


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8.run()

    def test_classcaps_dominates(self, result):
        """Paper: ClassCaps ~10x slower than the conv layers on the GPU."""
        assert 5.0 < result.classcaps_dominance < 20.0

    def test_layer_ordering(self, result):
        assert result.layer_ms["ClassCaps"] > result.layer_ms["PrimaryCaps"]
        assert result.layer_ms["PrimaryCaps"] > result.layer_ms["Conv1"]

    def test_total_in_tens_of_ms(self, result):
        assert 5.0 < result.total_ms < 60.0

    def test_report_renders(self, result):
        assert "ClassCaps" in fig8.format_report(result)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9.run()

    def test_squash_is_dominant_step(self, result):
        assert result.dominant_step.startswith("Squash")

    def test_all_iterations_present(self, result):
        for label in ("Softmax1", "Sum2", "Squash3", "Update2"):
            assert label in result.step_us

    def test_report_renders(self, result):
        assert "Squash" in fig9.format_report(result)


class TestFig16:
    @pytest.fixture(scope="class")
    def result(self):
        return fig16.run()

    def test_classcaps_and_total_directions_match(self, result):
        assert result.directions["ClassCaps"]
        assert result.directions["Total"]

    def test_report_renders(self, result):
        text = fig16.format_report(result)
        assert "Fig 16" in text
        assert "faster" in text


class TestFig17:
    @pytest.fixture(scope="class")
    def result(self):
        return fig17.run()

    def test_fc_direction_matches(self, result):
        assert result.directions["FC"]

    def test_sum_and_update_directions_match(self, result):
        for label in ("Sum1", "Sum2", "Sum3", "Update1", "Update2"):
            assert result.directions[label], label

    def test_report_mentions_skip(self, result):
        assert "skipped" in fig17.format_report(result)


class TestSynthesisArtifacts:
    def test_table2_rows(self):
        result = table2.run()
        params = {row["parameter"] for row in result.rows}
        assert "area_mm2" in params
        assert "power_mw" in params

    def test_table3_error_bound(self):
        result = table3.run()
        assert result.max_relative_error() < 0.30

    def test_fig18_buffers_dominate(self):
        result = fig18.run()
        assert result.buffers_dominate()

    def test_reports_render(self):
        assert "Table II" in table2.format_report(table2.run())
        assert "Table III" in table3.format_report(table3.run())
        assert "Fig 18" in fig18.format_report(fig18.run())
