"""Unit tests for the roofline model."""

import pytest

from repro.errors import ConfigError
from repro.hw.config import AcceleratorConfig
from repro.perf.roofline import (
    RooflineMachine,
    RooflinePoint,
    capsacc_machine,
    layer_roofline_points,
    network_roofline_point,
)


class TestRooflinePoint:
    def test_intensity(self):
        point = RooflinePoint("p", operations=1000, bytes_moved=100)
        assert point.arithmetic_intensity == 10.0

    def test_zero_bytes_infinite_intensity(self):
        assert RooflinePoint("p", 10, 0).arithmetic_intensity == float("inf")


class TestRooflineMachine:
    @pytest.fixture
    def machine(self):
        return RooflineMachine("m", peak_ops_per_s=1e9, bandwidth_bytes_per_s=1e8)

    def test_ridge(self, machine):
        assert machine.ridge_intensity == 10.0

    def test_attainable_below_ridge(self, machine):
        assert machine.attainable_ops_per_s(5.0) == 5e8

    def test_attainable_above_ridge_is_peak(self, machine):
        assert machine.attainable_ops_per_s(100.0) == 1e9

    def test_time_memory_bound(self, machine):
        point = RooflinePoint("p", operations=1e8, bytes_moved=1e8)  # intensity 1
        assert machine.time_s(point) == pytest.approx(1.0)

    def test_time_compute_bound(self, machine):
        point = RooflinePoint("p", operations=1e9, bytes_moved=1e6)
        assert machine.time_s(point) == pytest.approx(1.0)

    def test_compute_bound_classification(self, machine):
        assert machine.is_compute_bound(RooflinePoint("p", 1e9, 1e6))
        assert not machine.is_compute_bound(RooflinePoint("p", 1e6, 1e6))

    def test_negative_intensity_rejected(self, machine):
        with pytest.raises(ConfigError):
            machine.attainable_ops_per_s(-1.0)

    def test_invalid_ceilings_rejected(self):
        with pytest.raises(ConfigError):
            RooflineMachine("bad", 0, 1)


class TestCapsAccMachine:
    def test_peak_is_pe_count_times_clock(self):
        machine = capsacc_machine(AcceleratorConfig())
        assert machine.peak_ops_per_s == pytest.approx(256 * 250e6)

    def test_ridge_at_8_ops_per_byte(self):
        machine = capsacc_machine(AcceleratorConfig())
        assert machine.ridge_intensity == pytest.approx(8.0)


class TestNetworkPoints:
    def test_layer_names(self, mnist_config):
        names = [p.name for p in layer_roofline_points(mnist_config)]
        assert names == ["Conv1", "PrimaryCaps", "ClassCaps"]

    def test_mac_counts_match_known_values(self, mnist_config):
        points = {p.name: p for p in layer_roofline_points(mnist_config)}
        assert points["Conv1"].operations == 400 * 81 * 256
        assert points["PrimaryCaps"].operations == 36 * (9 * 9 * 256) * 256

    def test_conv_layers_compute_bound_on_capsacc(self, mnist_config):
        machine = capsacc_machine(AcceleratorConfig())
        points = {p.name: p for p in layer_roofline_points(mnist_config)}
        assert machine.is_compute_bound(points["Conv1"])
        assert machine.is_compute_bound(points["PrimaryCaps"])

    def test_classcaps_memory_bound(self, mnist_config):
        """Every ClassCaps weight is used once: intensity near 1 op/byte."""
        machine = capsacc_machine(AcceleratorConfig())
        points = {p.name: p for p in layer_roofline_points(mnist_config)}
        assert not machine.is_compute_bound(points["ClassCaps"])

    def test_network_point_sums_layers(self, mnist_config):
        layers = layer_roofline_points(mnist_config)
        network = network_roofline_point(mnist_config)
        assert network.operations == sum(p.operations for p in layers)
        assert network.bytes_moved == sum(p.bytes_moved for p in layers)
