"""Unit tests for the GPU workload extraction."""

import pytest

from repro.perf.kernels import CapsNetGpuWorkload, ImplementationProfile


@pytest.fixture(scope="module")
def workload(mnist_config):
    return CapsNetGpuWorkload(mnist_config)


class TestLayerKernels:
    def test_conv1_flops(self, workload):
        conv = workload.conv1_kernels()[0]
        assert conv.flops == 2 * 400 * 81 * 256

    def test_primarycaps_flops(self, workload):
        conv = workload.primarycaps_kernels()[0]
        assert conv.flops == 2 * 36 * (9 * 9 * 256) * 256

    def test_layer_keys(self, workload):
        layers = workload.layer_kernels()
        assert set(layers) == {"Conv1", "PrimaryCaps", "ClassCaps"}

    def test_classcaps_aggregates_routing(self, workload):
        layers = workload.layer_kernels()
        step_count = sum(
            len(kernels) for kernels in workload.routing_step_kernels().values()
        )
        assert len(layers["ClassCaps"]) == step_count


class TestRoutingSteps:
    def test_step_labels_follow_fig9(self, workload):
        labels = list(workload.routing_step_kernels())
        assert labels[:2] == ["Load", "FC"]
        assert "Squash3" in labels
        assert "Update3" not in labels  # no update after the last iteration

    def test_gpu_runs_textbook_routing(self, workload):
        # The GPU baseline does not apply the CapsAcc softmax skip.
        assert "Softmax1" in workload.routing_step_kernels()

    def test_fc_uses_every_weight_once(self, workload, mnist_config):
        fc = workload.fc_kernels()
        bmm = [k for k in fc if k.kind == "gemm"][0]
        assert bmm.flops == 2 * mnist_config.classcaps_weight_count

    def test_squash_loops_over_capsules(self, workload, mnist_config):
        kernels = workload.squash_kernels(1)
        expected = mnist_config.classcaps.num_classes * 4
        assert len(kernels) == expected

    def test_vectorized_squash_profile(self, mnist_config):
        impl = ImplementationProfile(squash_loop_over_capsules=False)
        workload = CapsNetGpuWorkload(mnist_config, impl=impl)
        assert len(workload.squash_kernels(1)) == impl.ops_per_squash

    def test_tiny_config_scales(self, tiny_config):
        workload = CapsNetGpuWorkload(tiny_config)
        labels = list(workload.routing_step_kernels())
        assert "Squash3" in labels
        conv = workload.conv1_kernels()[0]
        assert conv.flops == 2 * 64 * 25 * 8
