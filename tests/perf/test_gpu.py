"""Unit tests for the GPU device model."""

import pytest

from repro.errors import ConfigError
from repro.perf.gpu import (
    GpuDeviceProfile,
    GpuKernel,
    GpuModel,
    gtx1070_ideal_profile,
    gtx1070_paper_profile,
)


class TestKernelTiming:
    @pytest.fixture
    def model(self):
        return GpuModel(gtx1070_paper_profile())

    def test_overhead_dominates_tiny_kernels(self, model):
        tiny = GpuKernel("tiny", "elementwise", flops=100, bytes=400)
        assert model.kernel_time_s(tiny) == pytest.approx(
            model.profile.op_overhead_s, rel=0.01
        )

    def test_compute_bound_kernel(self, model):
        big = GpuKernel("big", "gemm", flops=1e12, bytes=1e6)
        expected = 1e12 / (model.profile.peak_flops * 0.10)
        assert model.kernel_time_s(big) == pytest.approx(
            model.profile.op_overhead_s + expected
        )

    def test_memory_bound_kernel(self, model):
        streaming = GpuKernel("copy", "elementwise", flops=1e3, bytes=1e9)
        expected = 1e9 / model.profile.memory_bandwidth
        assert model.kernel_time_s(streaming) == pytest.approx(
            model.profile.op_overhead_s + expected
        )

    def test_count_multiplies(self, model):
        one = GpuKernel("k", "elementwise", flops=10, bytes=10, count=1)
        ten = GpuKernel("k", "elementwise", flops=10, bytes=10, count=10)
        assert model.kernel_time_s(ten) == pytest.approx(10 * model.kernel_time_s(one))

    def test_sequence_is_sum(self, model):
        kernels = [
            GpuKernel("a", "elementwise", flops=10, bytes=10),
            GpuKernel("b", "reduce", flops=10, bytes=10),
        ]
        total = model.sequence_time_s(kernels)
        assert total == pytest.approx(sum(model.kernel_time_s(k) for k in kernels))

    def test_unknown_kind_raises(self, model):
        with pytest.raises(ConfigError):
            model.kernel_time_s(GpuKernel("x", "quantum", flops=1, bytes=1))


class TestProfiles:
    def test_paper_profile_parameters(self):
        profile = gtx1070_paper_profile()
        assert profile.peak_flops == pytest.approx(6.5e12)
        assert profile.memory_bandwidth == pytest.approx(256e9)
        assert profile.op_overhead_s > 1e-5

    def test_ideal_profile_is_faster(self):
        kernel = GpuKernel("k", "gemm", flops=1e9, bytes=1e6)
        paper = GpuModel(gtx1070_paper_profile()).kernel_time_s(kernel)
        ideal = GpuModel(gtx1070_ideal_profile()).kernel_time_s(kernel)
        assert ideal < paper

    def test_custom_profile(self):
        profile = GpuDeviceProfile(
            name="test",
            peak_flops=1e12,
            memory_bandwidth=1e11,
            op_overhead_s=0.0,
            efficiency={"gemm": 1.0},
        )
        model = GpuModel(profile)
        kernel = GpuKernel("k", "gemm", flops=1e12, bytes=0)
        assert model.kernel_time_s(kernel) == pytest.approx(1.0)
