"""Unit tests for the end-to-end CapsAcc performance model."""

import pytest

from repro.hw.config import AcceleratorConfig
from repro.perf.model import CapsAccPerformanceModel


@pytest.fixture(scope="module")
def model(mnist_config):
    return CapsAccPerformanceModel(network=mnist_config)


@pytest.fixture(scope="module")
def perf(model):
    return model.run()


class TestInferencePerformance:
    def test_total_in_expected_band(self, perf):
        # The PrimaryCaps layer alone needs >= 191M MACs / 256 PEs ~ 2.99 ms
        # at 250 MHz; the full network lands in single-digit milliseconds.
        assert 3.0 < perf.total_time_ms < 10.0

    def test_layer_aggregation_sums_to_total(self, perf):
        layers = perf.layer_times_us()
        partial = layers["Conv1"] + layers["PrimaryCaps"] + layers["ClassCaps"]
        assert layers["Total"] == pytest.approx(partial)
        assert layers["Total"] == pytest.approx(perf.total_time_ms * 1e3)

    def test_primarycaps_dominates_compute(self, perf):
        layers = perf.layer_times_us()
        assert layers["PrimaryCaps"] > layers["Conv1"]
        assert layers["PrimaryCaps"] > layers["ClassCaps"]

    def test_primarycaps_near_compute_bound(self, perf, mnist_config):
        layers = perf.layer_times_us()
        macs = 36 * (9 * 9 * 256) * 256
        bound_us = macs / 256 / 250.0  # MACs / PEs / MHz
        assert layers["PrimaryCaps"] >= bound_us
        assert layers["PrimaryCaps"] < 1.1 * bound_us

    def test_stage_times_ordered(self, perf):
        names = list(perf.stage_times_us())
        assert names[0] == "conv1"
        assert names[-1] == "squash3"

    def test_utilization_sensible(self, perf):
        assert 0.5 < perf.utilization() <= 1.0


class TestRoutingStepTimes:
    def test_labels(self, model):
        steps = model.routing_step_times_us()
        assert list(steps)[:4] == ["Load", "FC", "Softmax1", "Sum1"]
        assert "Squash3" in steps

    def test_optimization_makes_softmax1_cheap(self, mnist_config):
        optimized = CapsAccPerformanceModel(network=mnist_config, optimized_routing=True)
        textbook = CapsAccPerformanceModel(network=mnist_config, optimized_routing=False)
        assert (
            optimized.routing_step_times_us()["Softmax1"]
            < textbook.routing_step_times_us()["Softmax1"] / 5
        )

    def test_later_softmaxes_unaffected(self, mnist_config):
        optimized = CapsAccPerformanceModel(network=mnist_config, optimized_routing=True)
        textbook = CapsAccPerformanceModel(network=mnist_config, optimized_routing=False)
        assert optimized.routing_step_times_us()["Softmax2"] == pytest.approx(
            textbook.routing_step_times_us()["Softmax2"]
        )


class TestConfigurationEffects:
    def test_larger_array_faster(self, mnist_config):
        base = CapsAccPerformanceModel(network=mnist_config).run().total_time_ms
        big = CapsAccPerformanceModel(
            accelerator=AcceleratorConfig().with_array(32, 32), network=mnist_config
        ).run().total_time_ms
        assert big < base

    def test_no_double_buffer_slower(self, mnist_config):
        base = CapsAccPerformanceModel(network=mnist_config).run().total_time_ms
        slow = CapsAccPerformanceModel(
            accelerator=AcceleratorConfig().without_weight_reuse(),
            network=mnist_config,
        ).run().total_time_ms
        assert slow > base

    def test_channel_serial_conv_slower(self, mnist_config):
        parallel = CapsAccPerformanceModel(network=mnist_config)
        serial = CapsAccPerformanceModel(
            network=mnist_config, conv_policy="channel_serial"
        )
        clock = parallel.accelerator.clock_mhz
        assert serial.conv_stage_perf("conv1").time_us(clock) > parallel.conv_stage_perf(
            "conv1"
        ).time_us(clock)

    def test_tiny_network_much_faster(self, tiny_config, mnist_config):
        tiny = CapsAccPerformanceModel(network=tiny_config).run().total_time_ms
        full = CapsAccPerformanceModel(network=mnist_config).run().total_time_ms
        assert tiny < full / 50
