"""Tests for batch support in the analytical performance model."""

import pytest

from repro.errors import MappingError
from repro.hw.config import AcceleratorConfig
from repro.mapping.shapes import (
    batch_stage,
    classcaps_fc_stage,
    conv_stage,
    routing_sum_stage,
    routing_update_stage,
)
from repro.perf.model import CapsAccPerformanceModel


class TestBatchStage:
    def test_weight_shared_stages_stack_into_stream(self, mnist_config):
        stage = conv_stage(mnist_config, "conv1")
        batched = batch_stage(stage, 8)
        assert batched.gemms[0].m == stage.gemms[0].m * 8
        assert batched.gemms[0].count == stage.gemms[0].count
        assert batched.activations[0].groups == stage.activations[0].groups * 8
        fc = classcaps_fc_stage(mnist_config)
        batched_fc = batch_stage(fc, 4)
        assert batched_fc.gemms[0].m == 4
        assert batched_fc.gemms[0].count == fc.gemms[0].count

    def test_per_image_weight_stages_replicate(self, mnist_config):
        for stage in (
            routing_sum_stage(mnist_config, 1),
            routing_update_stage(mnist_config, 1),
        ):
            assert not stage.gemms[0].weight_shared
            batched = batch_stage(stage, 8)
            assert batched.gemms[0].count == stage.gemms[0].count * 8
            assert batched.gemms[0].m == stage.gemms[0].m

    def test_macs_scale_linearly(self, mnist_config):
        stage = conv_stage(mnist_config, "primarycaps")
        assert batch_stage(stage, 8).macs == stage.macs * 8

    def test_transfers_scale_linearly(self, mnist_config):
        from repro.mapping.shapes import load_stage

        stage = load_stage(mnist_config)
        assert batch_stage(stage, 3).transfer_words == stage.transfer_words * 3

    def test_batch_one_is_identity(self, mnist_config):
        stage = conv_stage(mnist_config, "conv1")
        assert batch_stage(stage, 1) is stage

    def test_rejects_non_positive_batch(self, mnist_config):
        with pytest.raises(MappingError):
            batch_stage(conv_stage(mnist_config, "conv1"), 0)


class TestBatchedModel:
    def test_batch_one_unchanged(self, mnist_config):
        model = CapsAccPerformanceModel(network=mnist_config)
        assert model.run().total_cycles == model.run(batch=1).total_cycles

    def test_batching_amortizes_cycles_per_image(self, mnist_config):
        model = CapsAccPerformanceModel(network=mnist_config)
        single = model.run(batch=1)
        batched = model.run(batch=8)
        assert batched.batch == 8
        assert batched.cycles_per_image < single.cycles_per_image
        assert batched.images_per_second > single.images_per_second

    def test_fc_stage_dominates_the_amortization(self, mnist_config):
        """The load-bound FC stage (M=1) shrinks ~Bx per image; streaming-
        bound conv stages barely move — the DESCNet/CapStore observation
        that scheduling, not the PE array, decides throughput."""
        model = CapsAccPerformanceModel(network=mnist_config)
        single = {s.name: s.cycles for s in model.run(batch=1).stages}
        batched = {s.name: s.cycles for s in model.run(batch=8).stages}
        assert batched["classcaps_fc"] < 2 * single["classcaps_fc"]
        assert batched["conv1"] < 8.1 * single["conv1"]
        # routing has per-image weights: exactly linear
        assert batched["sum1"] == 8 * single["sum1"]

    def test_utilization_improves_with_batch(self, mnist_config):
        model = CapsAccPerformanceModel(network=mnist_config)
        assert model.run(batch=8).utilization() > model.run(batch=1).utilization()

    def test_batched_model_scales_with_array(self, mnist_config):
        small = CapsAccPerformanceModel(
            accelerator=AcceleratorConfig(rows=8, cols=8), network=mnist_config
        ).run(batch=4)
        large = CapsAccPerformanceModel(
            accelerator=AcceleratorConfig(rows=32, cols=32), network=mnist_config
        ).run(batch=4)
        assert large.total_cycles < small.total_cycles
