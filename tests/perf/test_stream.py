"""AnalyticStreamCost: closed form vs scheduler-traced stream timing."""

import pytest

from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.errors import ConfigError
from repro.hw.config import AcceleratorConfig
from repro.hw.scheduler import PipelinedStreamScheduler
from repro.perf.stream import (
    PROBE_STREAM_LENGTH,
    AnalyticStreamCost,
    stream_crosscheck,
)


@pytest.fixture(scope="module")
def qnet(tiny_config, tiny_weights):
    return QuantizedCapsuleNet(tiny_config, weights=tiny_weights)


class TestAnalyticStreamCost:
    def test_crosschecks_within_two_percent(self, qnet, tiny_config):
        scheduled = PipelinedStreamScheduler(qnet)
        analytic = AnalyticStreamCost(network=tiny_config)
        report = stream_crosscheck(scheduled, analytic, batch_sizes=(1, 2, 4, 8))
        for values in report.values():
            assert values["rel_error"] <= 0.02

    def test_crosschecks_with_bounded_fifo(self, qnet, tiny_config):
        config = AcceleratorConfig(acc_fifo_depth=4)
        from repro.hw.accelerator import CapsAccAccelerator

        scheduled = PipelinedStreamScheduler(
            qnet, accelerator=CapsAccAccelerator(config, formats=qnet.formats)
        )
        analytic = AnalyticStreamCost(network=tiny_config, accel_config=config)
        report = stream_crosscheck(scheduled, analytic, batch_sizes=(1, 4))
        for values in report.values():
            assert values["rel_error"] <= 0.02

    def test_steady_at_most_cold(self, tiny_config):
        analytic = AnalyticStreamCost(network=tiny_config)
        for batch in (1, 2, 8):
            assert analytic.steady_cycles(batch) <= analytic.cold_cycles(batch)

    def test_cycles_per_image_improves_with_batch(self, tiny_config):
        analytic = AnalyticStreamCost(network=tiny_config)
        assert analytic.cycles_per_image(8) < analytic.cycles_per_image(1)

    def test_memoized(self, tiny_config):
        analytic = AnalyticStreamCost(network=tiny_config)
        first = analytic.steady_cycles(2)
        assert analytic.steady_cycles(2) == first
        assert 2 in analytic._steady_memo

    def test_probe_stream_long_enough_to_converge(self, tiny_config):
        analytic = AnalyticStreamCost(network=tiny_config)
        for batch in (2, 8):
            longer = analytic.stream_timing([batch] * (PROBE_STREAM_LENGTH + 4))
            assert analytic.steady_cycles(batch) == longer.steady_marginal_cycles

    def test_rejects_bad_batch(self, tiny_config):
        with pytest.raises(ConfigError):
            AnalyticStreamCost(network=tiny_config).batch_ops(0)

    def test_crosscheck_raises_beyond_tolerance(self, qnet, tiny_config):
        scheduled = PipelinedStreamScheduler(qnet)
        analytic = AnalyticStreamCost(network=tiny_config)
        with pytest.raises(ConfigError):
            stream_crosscheck(scheduled, analytic, batch_sizes=(1,), rel_tol=1e-9)
