"""Unit tests for the CapsAcc-vs-GPU comparisons (Fig 16/17 shape checks).

These tests pin the *reproduction claims*: orderings, winners and rough
factors that must hold for the repo to count as reproducing the paper.
"""

import pytest

from repro.perf.compare import SpeedupRow, compare_layers, compare_routing_steps


@pytest.fixture(scope="module")
def layer_report():
    return compare_layers()


@pytest.fixture(scope="module")
def step_report():
    return compare_routing_steps()


class TestSpeedupRow:
    def test_speedup_computation(self):
        row = SpeedupRow("x", gpu_us=100.0, capsacc_us=25.0)
        assert row.speedup == 4.0

    def test_direction_check(self):
        fast = SpeedupRow("x", 100.0, 25.0, paper_speedup=3.0)
        assert fast.direction_matches_paper
        slow = SpeedupRow("x", 100.0, 200.0, paper_speedup=3.0)
        assert not slow.direction_matches_paper

    def test_report_lookup(self, layer_report):
        assert layer_report.row("Total").name == "Total"
        with pytest.raises(KeyError):
            layer_report.row("Pooling")


class TestFig16Claims:
    def test_classcaps_speedup_near_paper_12x(self, layer_report):
        """Paper: ClassCaps 12x faster on CapsAcc."""
        speedup = layer_report.row("ClassCaps").speedup
        assert 8.0 < speedup < 20.0

    def test_total_speedup_near_paper_6x(self, layer_report):
        """Paper: overall 6x faster; we land in the same small-integer band."""
        speedup = layer_report.row("Total").speedup
        assert 3.0 < speedup < 9.0

    def test_gpu_classcaps_dominates_gpu_total(self, layer_report):
        gpu_classcaps = layer_report.row("ClassCaps").gpu_us
        gpu_total = layer_report.row("Total").gpu_us
        assert gpu_classcaps > 0.6 * gpu_total

    def test_primarycaps_roughly_comparable(self, layer_report):
        """The paper's Fig 16 shows PrimaryCaps nearly even between targets."""
        speedup = layer_report.row("PrimaryCaps").speedup
        assert 0.5 < speedup < 2.5


class TestFig17Claims:
    def test_sum_speedup_matches_paper_3x(self, step_report):
        for label in ("Sum1", "Sum2", "Sum3"):
            assert 1.5 < step_report.row(label).speedup < 6.0

    def test_update_speedup_matches_paper_6x(self, step_report):
        for label in ("Update1", "Update2"):
            assert 3.0 < step_report.row(label).speedup < 12.0

    def test_fc_crossover_gpu_wins(self, step_report):
        """Paper: FC is 14% slower on CapsAcc — the GPU wins this step."""
        assert step_report.row("FC").speedup < 1.0

    def test_squash_is_dominant_win(self, step_report):
        """Paper: squash 172x — the largest per-step speedup by far."""
        squash = step_report.row("Squash1").speedup
        others = [
            row.speedup
            for row in step_report.rows
            if not row.name.startswith("Squash")
        ]
        assert squash > 100.0
        assert squash > 3 * max(others)

    def test_squash_dominates_gpu_steps(self, step_report):
        gpu_squash = step_report.row("Squash1").gpu_us
        for label in ("Sum1", "Update1", "FC", "Load"):
            assert gpu_squash > step_report.row(label).gpu_us

    def test_softmax_speedup_small_multiple(self, step_report):
        """Paper: softmax 3x (for the non-skipped iterations)."""
        for label in ("Softmax2", "Softmax3"):
            assert 2.0 < step_report.row(label).speedup < 10.0

    def test_optimized_softmax1_much_faster(self, step_report):
        """The skipped first softmax shows the routing optimization."""
        assert step_report.row("Softmax1").speedup > step_report.row("Softmax2").speedup


class TestReportStructure:
    def test_layer_rows_complete(self, layer_report):
        assert [row.name for row in layer_report.rows] == [
            "Conv1",
            "PrimaryCaps",
            "ClassCaps",
            "Total",
        ]

    def test_step_rows_complete(self, step_report):
        names = [row.name for row in step_report.rows]
        assert names[0] == "Load"
        assert len(names) == 13  # Load, FC, 3x(softmax,sum,squash) + 2 updates

    def test_as_table_shape(self, layer_report):
        table = layer_report.as_table()
        assert len(table) == 4
        assert len(table[0]) == 5
