"""Unit tests for the analytical stage cycle model."""

import pytest

from repro.hw.activation import ActivationMode
from repro.hw.config import AcceleratorConfig
from repro.mapping.shapes import (
    ActivationWork,
    GemmShape,
    StageShape,
    classcaps_fc_stage,
    conv_stage,
    load_stage,
)
from repro.perf.cycles import (
    peak_gemm_cycles,
    stage_accesses,
    stage_performance,
)


@pytest.fixture(scope="module")
def config():
    return AcceleratorConfig()


class TestStagePerformance:
    def test_gemm_only_stage(self, config):
        stage = StageShape("s", gemms=(GemmShape(m=100, k=16, n=16),))
        perf = stage_performance(config, stage)
        assert perf.gemm_cycles > 0
        assert perf.activation_cycles == 0
        assert perf.cycles == perf.gemm_cycles

    def test_count_multiplies(self, config):
        single = StageShape("s", gemms=(GemmShape(m=10, k=16, n=16),))
        triple = StageShape("s", gemms=(GemmShape(m=10, k=16, n=16, count=3),))
        assert (
            stage_performance(config, triple).gemm_cycles
            == 3 * stage_performance(config, single).gemm_cycles
        )

    def test_activation_uses_units(self, config):
        parallel = StageShape(
            "s", activations=(ActivationWork(ActivationMode.SQUASH, 8, 32),)
        )
        serial = StageShape(
            "s", activations=(ActivationWork(ActivationMode.SQUASH, 8, 32, units=1),)
        )
        assert (
            stage_performance(config, serial).activation_cycles
            == 16 * stage_performance(config, parallel).activation_cycles
        )

    def test_transfer_cycles(self, config):
        stage = StageShape("s", transfer_words=160)
        assert stage_performance(config, stage).transfer_cycles == 10

    def test_time_conversion(self, config):
        stage = StageShape("s", transfer_words=16 * 250)
        perf = stage_performance(config, stage)
        assert perf.time_us(config.clock_mhz) == pytest.approx(1.0)

    def test_utilization_bounds(self, config, mnist_config):
        perf = stage_performance(config, conv_stage(mnist_config, "primarycaps"))
        util = perf.utilization(config.num_pes)
        assert 0.5 < util <= 1.0  # big conv keeps the array mostly busy

    def test_conv1_mnist_cycles(self, config, mnist_config):
        perf = stage_performance(config, conv_stage(mnist_config, "conv1"))
        lower = peak_gemm_cycles(config, perf.macs)
        assert perf.cycles >= lower
        # Known value for the default mapping: 96 tiles x 400 + overheads.
        assert perf.gemm_cycles == 96 * 400 + 17 + 31

    def test_fc_stage_weight_bound(self, config, mnist_config):
        perf = stage_performance(config, classcaps_fc_stage(mnist_config))
        # The FC stage must at least ingest every weight over the 16-wide
        # weight port: 1,474,560 / 16 cycles.
        assert perf.cycles >= 1474560 // 16

    def test_load_stage_pure_transfer(self, config, mnist_config):
        perf = stage_performance(config, load_stage(mnist_config))
        assert perf.gemm_cycles == 0
        assert perf.cycles == perf.transfer_cycles


class TestStageAccesses:
    def test_conv_stage_traffic(self, config, mnist_config):
        stage = conv_stage(mnist_config, "conv1")
        stats = stage_accesses(stage, config)
        assert stats.accesses["weight_buffer.read"] == 81 * 256
        assert stats.accesses["data_buffer.read"] == 400 * 81 * 16
        assert stats.mac_count == stage.macs

    def test_feedback_sources_free(self, config, mnist_config):
        from repro.mapping.shapes import routing_update_stage

        stage = routing_update_stage(mnist_config, 1)
        stats = stage_accesses(stage, config)
        assert "data_buffer.read" not in stats.accesses
        assert "routing_buffer.read" in stats.accesses
