"""Cross-tenant warm hand-offs and the process-wide probe cache."""

import pytest

from repro.hw.pipeline import cached_stream_timing
from repro.serve import (
    AnalyticBatchCost,
    ScheduledBatchCost,
    ServerConfig,
    ServingSimulator,
    TenantSpec,
    clear_probe_cache,
    probe_cache_size,
    uniform_trace,
)
from repro.serve.costs import PAIR_PROBE_PREFIX, PAIR_PROBE_SUFFIX


@pytest.fixture(scope="module")
def tiny_pipe(tiny_config):
    return AnalyticBatchCost(network=tiny_config, pipeline=True)


@pytest.fixture(scope="module")
def mnist_pipe(mnist_config):
    return AnalyticBatchCost(network=mnist_config, pipeline=True)


class TestCrossNetworkWarmCost:
    def test_cross_pair_probes_the_actual_predecessor_ops(
        self, tiny_pipe, mnist_pipe
    ):
        """The hand-off marginal comes from a mixed two-model stream."""
        size, prev = 2, 4
        cross = tiny_pipe.warm_batch_cycles(size, prev, prev_cost=mnist_pipe)
        timing = cached_stream_timing(
            [mnist_pipe.pipeline_ops(prev)] * PAIR_PROBE_PREFIX
            + [tiny_pipe.pipeline_ops(size)] * PAIR_PROBE_SUFFIX,
            [prev] * PAIR_PROBE_PREFIX + [size] * PAIR_PROBE_SUFFIX,
            window=tiny_pipe.window,
            prestage_depth=tiny_pipe.prestage_depth,
        )
        expected = min(
            timing.batches[PAIR_PROBE_PREFIX].marginal_cycles,
            tiny_pipe.batch_cycles(size),
        )
        assert cross == expected
        assert cross <= tiny_pipe.batch_cycles(size)
        assert tiny_pipe.drain_saved_cycles(size, prev, prev_cost=mnist_pipe) == (
            tiny_pipe.batch_cycles(size) - cross
        )

    def test_cross_pair_differs_from_own_pair_cost(self, tiny_pipe, mnist_pipe):
        # A large predecessor network covers the receiver's prestage very
        # differently from the receiver's own 4-batch — the PR 4
        # assumption the cross probe replaces.
        own = tiny_pipe.warm_batch_cycles(2, 4)
        cross = tiny_pipe.warm_batch_cycles(2, 4, prev_cost=mnist_pipe)
        assert cross != own

    def test_same_network_prev_cost_falls_back_to_own_pair(
        self, tiny_pipe, tiny_config
    ):
        twin = AnalyticBatchCost(network=tiny_config, pipeline=True)
        assert tiny_pipe.warm_batch_cycles(2, 4, prev_cost=twin) == (
            tiny_pipe.warm_batch_cycles(2, 4)
        )
        assert tiny_pipe.warm_batch_cycles(2, 4, prev_cost=tiny_pipe) == (
            tiny_pipe.warm_batch_cycles(2, 4)
        )

    def test_unpipelined_predecessor_falls_back(self, tiny_pipe, mnist_config):
        plain = AnalyticBatchCost(network=mnist_config)  # no pipeline ops
        assert tiny_pipe.warm_batch_cycles(2, 4, prev_cost=plain) == (
            tiny_pipe.warm_batch_cycles(2, 4)
        )

    def test_scheduled_model_supports_cross_pairs(self, tiny_qnet, tiny_pipe):
        scheduled = ScheduledBatchCost(qnet=tiny_qnet, pipeline=True)
        # Scheduled receiver, analytic predecessor of a different network:
        # the op model is network-agnostic, so mixing model kinds works.
        from repro.capsnet.config import mnist_capsnet_config

        prev = AnalyticBatchCost(network=mnist_capsnet_config(), pipeline=True)
        cross = scheduled.warm_batch_cycles(1, 2, prev_cost=prev)
        assert 0 < cross <= scheduled.batch_cycles(1)


class TestCrossTenantServing:
    def test_two_shape_tenants_share_one_array(self, tiny_pipe, mnist_pipe):
        """Regression: warm hand-offs across tenants price the real pair.

        Two tenants with different network shapes alternate on a single
        pipelined array; every warm batch whose predecessor belongs to
        the *other* tenant must be charged the cross-network pair cost,
        not the receiving tenant's own pair cost.
        """
        # Deterministic alternation: both tenants offer evenly-spaced
        # requests, far faster than service, so the single array runs
        # back to back and hand-offs alternate between the networks.
        tenants = [
            TenantSpec(name="tiny", trace=uniform_trace(200000.0, 30)),
            TenantSpec(name="mnist", trace=uniform_trace(200000.0, 30), cost=mnist_pipe),
        ]
        server = ServerConfig(
            cost=tiny_pipe,
            arrays=1,
            pipeline=True,
        )
        report = ServingSimulator(server=server, tenants=tenants).run()
        models = {"tiny": tiny_pipe, "mnist": mnist_pipe}
        cross_handoffs = 0
        for previous, batch in zip(report.batches, report.batches[1:]):
            if not batch.warm:
                continue
            receiver = models[batch.tenant]
            prev_model = models[previous.tenant]
            expected = receiver.warm_batch_cycles(
                batch.size, previous.size, prev_cost=prev_model
            )
            assert batch.cycles == expected
            if previous.tenant != batch.tenant:
                cross_handoffs += 1
                # And the charge differs from the PR 4 assumption
                # whenever the networks' pair costs differ.
                own = receiver.warm_batch_cycles(batch.size, previous.size)
                if own != expected:
                    assert batch.cycles != own
        assert cross_handoffs > 0  # the scenario really exercised it

    def test_streaming_path_matches_record_path_across_tenants(
        self, tiny_pipe, mnist_pipe
    ):
        tenants = [
            TenantSpec(name="tiny", trace=uniform_trace(150000.0, 25)),
            TenantSpec(name="mnist", trace=uniform_trace(150000.0, 25), cost=mnist_pipe),
        ]
        server = ServerConfig(cost=tiny_pipe, arrays=1, pipeline=True)
        simulator = ServingSimulator(server=server, tenants=tenants)
        record = simulator.run()
        fast = simulator.run(record_requests=False)
        assert fast.warm_batches == record.warm_batches
        assert fast.makespan_us == record.makespan_us
        assert fast.batch_size_histogram() == record.batch_size_histogram()


class TestProbeCache:
    def test_probe_results_persist_across_model_instances(self, tiny_qnet):
        clear_probe_cache()
        first = ScheduledBatchCost(qnet=tiny_qnet, pipeline=True)
        cold = first.batch_cycles(2)
        warm = first.warm_batch_cycles(2)
        cached = probe_cache_size()
        assert cached >= 2

        # A rebuilt model with identical parameters must answer from the
        # cache without ever touching the execution engine.
        second = ScheduledBatchCost(qnet=tiny_qnet, pipeline=True)

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("engine probe ran despite a cache hit")

        second.scheduler.run_batch = boom
        second._stream.probe_batch = boom
        assert second.batch_cycles(2) == cold
        assert second.warm_batch_cycles(2) == warm
        assert probe_cache_size() == cached

    def test_clear_probe_cache(self, tiny_config):
        clear_probe_cache()
        AnalyticBatchCost(network=tiny_config).batch_cycles(1)
        assert probe_cache_size() == 1
        clear_probe_cache()
        assert probe_cache_size() == 0
