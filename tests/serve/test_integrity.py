"""Integrity layer: ABFT detection, canaries, degraded admission, pricing.

Covers :mod:`repro.serve.integrity` and the corruption paths woven
through the executor, the cost models, and both serving drivers: the
property that the ABFT column checksums detect *every* in-envelope bit
flip across zoo networks (hypothesis-driven), the equally important
non-property that output-target flips sail through (undetected path ==
no-check config), deterministic canary streams, the degraded-mode
admission policy, the streaming fast path's refusal of armed integrity,
the check-overhead pricing knob, and sim-vs-replay decision and
counter identity under corruption plans.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.serve import (
    CHECK_MODES,
    AnalyticBatchCost,
    CorruptionSpec,
    DegradedModeAdmission,
    DetectedCorruptionError,
    FaultPlan,
    IntegrityPolicy,
    ServerConfig,
    ServingSimulator,
    decision_diffs,
    poisson_trace,
    replay_virtual,
)
from repro.serve.integrity import (
    CanaryStream,
    apply_corruption,
    batch_fingerprint,
    checksums_match,
    column_checksums,
    output_checksums,
)
from repro.serve.workers import CompiledStreamExecutor


# ---- fixtures ------------------------------------------------------------

#: Zoo entries the property tests sweep: a capsule network and a
#: conventional baseline, both small enough for per-example execution.
PROPERTY_NETWORKS = ("tiny", "mlp")

_EXECUTORS: dict[str, CompiledStreamExecutor] = {}


def executor_for(name: str) -> CompiledStreamExecutor:
    if name not in _EXECUTORS:
        _EXECUTORS[name] = CompiledStreamExecutor(name)
    return _EXECUTORS[name]


def images_for(executor: CompiledStreamExecutor, count: int = 2) -> np.ndarray:
    size = executor.image_size
    rng = np.random.default_rng(42)
    return rng.random((count, size, size))


@pytest.fixture(scope="module")
def tiny_cost(tiny_config):
    return AnalyticBatchCost(network=tiny_config)


def integrity_server(cost, plan=None, integrity=None, **overrides):
    settings = dict(
        max_batch=8, max_wait_us=2000.0, arrays=2, network_name="tiny"
    )
    settings.update(overrides)
    return ServerConfig.from_policy(
        "fifo", cost, fault_plan=plan, integrity=integrity, **settings
    )


def saturating_trace(count=200, seed=7):
    return poisson_trace(
        rate_rps=5000.0, count=count, rng=np.random.default_rng(seed)
    )


# ---- policy / spec validation --------------------------------------------


class TestIntegrityPolicy:
    def test_mode_validation(self):
        with pytest.raises(ConfigError):
            IntegrityPolicy(mode="paranoid")
        with pytest.raises(ConfigError):
            IntegrityPolicy(canary_every=-1)

    def test_mode_semantics(self):
        off = IntegrityPolicy()
        assert not off.enabled and not off.checks and not off.canary
        checks = IntegrityPolicy(mode="checksum")
        assert checks.enabled and checks.checks and not checks.canary
        full = IntegrityPolicy(mode="checksum+canary")
        assert full.canary and full.canary_every > 0  # default period

    def test_detects_is_deterministic_per_target(self):
        policy = IntegrityPolicy(mode="checksum")
        assert policy.detects("weight")
        assert policy.detects("accumulator")
        assert not policy.detects("output")
        assert not IntegrityPolicy().detects("weight")


# ---- ABFT numerics properties --------------------------------------------


class TestApplyCorruption:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        bits=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=50, deadline=None)
    def test_flip_is_single_element_and_bounded(self, seed, bits):
        clean = np.arange(24, dtype=np.int64).reshape(4, 6)
        spec = CorruptionSpec(target="weight", bits=bits, seed=seed)
        corrupted = apply_corruption(clean, spec)
        delta = corrupted - clean
        assert np.count_nonzero(delta) == 1
        assert 0 < abs(int(delta.sum())) <= 0xFFFF
        # Same seed, same flip: corruption is bit-reproducible.
        assert np.array_equal(corrupted, apply_corruption(clean, spec))

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_column_checksums_always_see_the_flip(self, seed):
        clean = np.arange(30, dtype=np.int64).reshape(5, 6)
        corrupted = apply_corruption(
            clean, CorruptionSpec(target="weight", bits=1, seed=seed)
        )
        assert not checksums_match(
            column_checksums(corrupted), column_checksums(clean)
        )
        assert not checksums_match(
            output_checksums(corrupted), output_checksums(clean)
        )

    def test_fingerprint_is_order_sensitive(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        b = np.array([3, 2, 1], dtype=np.int64)
        assert batch_fingerprint(a) != batch_fingerprint(b)
        assert batch_fingerprint(a) == batch_fingerprint(a.copy())


class TestStreamExecutorABFT:
    """The live detection path: corrupted numerics through real GEMMs."""

    @pytest.mark.parametrize("network", PROPERTY_NETWORKS)
    @pytest.mark.parametrize("target", ["weight", "accumulator"])
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_checksums_detect_any_single_bit_flip(self, network, target, seed):
        executor = executor_for(network)
        spec = CorruptionSpec(target=target, bits=1, seed=seed)
        with pytest.raises(DetectedCorruptionError):
            executor.execute_corrupt(
                0, images_for(executor), spec, verify=True
            )

    @pytest.mark.parametrize("network", PROPERTY_NETWORKS)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_output_flips_sail_through_checks(self, network, seed):
        # The undetected path serves exactly what the no-check config
        # serves: verification changes nothing for out-of-envelope flips.
        executor = executor_for(network)
        spec = CorruptionSpec(target="output", bits=4, seed=seed)
        unchecked = executor.execute_corrupt(
            0, images_for(executor), spec, verify=False
        )
        checked = executor.execute_corrupt(
            0, images_for(executor), spec, verify=True
        )
        assert np.array_equal(unchecked, checked)

    @pytest.mark.parametrize("network", PROPERTY_NETWORKS)
    def test_unverified_corruption_completes(self, network):
        # Without checks a corrupted batch completes and returns
        # predictions shaped like a clean run — silent by design.
        executor = executor_for(network)
        images = images_for(executor)
        spec = CorruptionSpec(target="weight", bits=16, seed=99)
        corrupted = executor.execute_corrupt(0, images, spec, verify=False)
        clean = executor.execute(0, images)
        assert corrupted.shape == clean.shape

    def test_no_corruption_is_bitwise_clean(self):
        executor = executor_for("tiny")
        images = images_for(executor)
        baseline = executor.execute(0, images)
        verified = executor._executor.run_batch(
            images[:, np.newaxis] if executor.channels != 1 else images,
            corruption=None,
            verify_checksums=True,
        ).predictions
        assert np.array_equal(baseline, verified)


# ---- canary stream -------------------------------------------------------


class TestCanaryStream:
    def test_probes_fire_on_placement_period(self):
        plan = FaultPlan(corrupt_rate=0.5, seed=3)
        policy = IntegrityPolicy(mode="checksum+canary", canary_every=4)
        stream = CanaryStream(plan, policy, arrays=2)
        stats = type("S", (), {"canaries": 0, "canary_detected": 0})()
        tracer = type("T", (), {"enabled": False})()
        for i in range(12):
            stream.on_placement(0, float(i), stats, tracer)
        assert stats.canaries == 3  # every 4th of 12 placements

    def test_detection_stream_is_seed_deterministic(self):
        plan = FaultPlan(corrupt_rate=0.5, seed=3)
        policy = IntegrityPolicy(mode="checksum+canary", canary_every=2)
        outcomes = []
        for _ in range(2):
            stream = CanaryStream(plan, policy, arrays=1)
            stats = type("S", (), {"canaries": 0, "canary_detected": 0})()
            tracer = type("T", (), {"enabled": False})()
            for i in range(40):
                stream.on_placement(0, float(i), stats, tracer)
            outcomes.append((stats.canaries, stats.canary_detected))
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][1] > 0


# ---- degraded-mode admission ---------------------------------------------


class _Pool:
    def __init__(self, quarantined=()):
        self._quarantined = list(quarantined)

    def quarantined_ids(self):
        return list(self._quarantined)


class _Stats:
    def __init__(self, detected=0, canary_detected=0):
        self.detected = detected
        self.canary_detected = canary_detected


class TestDegradedModeAdmission:
    def test_validation(self):
        with pytest.raises(ConfigError):
            DegradedModeAdmission(queue_limit=-1)
        with pytest.raises(ConfigError):
            DegradedModeAdmission(queue_limit=4, degraded_limit=8)
        with pytest.raises(ConfigError):
            DegradedModeAdmission(hold_us=-1.0)

    def test_healthy_pool_uses_full_limit(self):
        policy = DegradedModeAdmission(queue_limit=4, degraded_limit=1)
        queue = [object()] * 3
        assert policy.admit(None, 0.0, queue, _Pool())
        assert not policy.admit(None, 0.0, [object()] * 4, _Pool())

    def test_quarantine_tightens_the_limit(self):
        policy = DegradedModeAdmission(queue_limit=4, degraded_limit=1)
        queue = [object()] * 2
        assert policy.admit(None, 0.0, queue, _Pool())
        assert not policy.admit(None, 0.0, queue, _Pool(quarantined=[0]))

    def test_detections_open_a_hold_window(self):
        policy = DegradedModeAdmission(
            queue_limit=4, degraded_limit=1, hold_us=100.0
        )
        stats = _Stats()
        policy.bind_faults(stats)
        queue = [object()] * 2
        assert policy.admit(None, 0.0, queue, _Pool())
        stats.detected = 1  # new detection: degraded until 10 + 100
        assert not policy.admit(None, 10.0, queue, _Pool())
        assert not policy.admit(None, 100.0, queue, _Pool())
        assert policy.admit(None, 120.0, queue, _Pool())  # window passed

    def test_registered_in_the_policy_registry(self):
        from repro.serve import ADMISSION_POLICIES

        assert ADMISSION_POLICIES["degraded"] is DegradedModeAdmission

    def test_degraded_sim_sheds_under_detections(self, tiny_cost):
        plan = FaultPlan(corrupt_rate=0.3, seed=5)
        server = integrity_server(tiny_cost, plan, integrity="checksum")
        server.admission = DegradedModeAdmission(
            queue_limit=64, degraded_limit=0, hold_us=1e9
        )
        report = ServingSimulator(saturating_trace(), server=server).run()
        assert report.faults["detected"] > 0
        assert report.shed_count > 0  # post-detection arrivals shed


# ---- serving-path detection ----------------------------------------------


class TestSimulatedCorruption:
    def test_unchecked_corruption_is_served_silently(self, tiny_cost):
        plan = FaultPlan(corrupt_rate=0.2, seed=5)
        report = ServingSimulator(
            saturating_trace(), server=integrity_server(tiny_cost, plan)
        ).run()
        faults = report.faults
        assert faults["corruptions"] > 0
        assert faults["detected"] == 0
        assert faults["corrupted_served"] > 0
        assert report.goodput == 1.0  # silent: nothing fails

    def test_checksum_mode_serves_zero_corrupted(self, tiny_cost):
        cost = AnalyticBatchCost(network="tiny", integrity="checksum")
        plan = FaultPlan(corrupt_rate=0.2, seed=5)
        report = ServingSimulator(
            saturating_trace(),
            server=integrity_server(cost, plan, integrity="checksum"),
        ).run()
        faults = report.faults
        assert faults["corruptions"] > 0
        assert faults["detected"] == faults["corruptions"]
        assert faults["corrupted_served"] == 0
        assert faults["retries"] > 0  # detections feed the retry machinery

    def test_output_target_evades_checksums(self, tiny_cost):
        cost = AnalyticBatchCost(network="tiny", integrity="checksum")
        plan = FaultPlan(
            corrupt_rate=0.2, corrupt_target="output", seed=5
        )
        report = ServingSimulator(
            saturating_trace(),
            server=integrity_server(cost, plan, integrity="checksum"),
        ).run()
        faults = report.faults
        assert faults["corruptions"] > 0
        assert faults["detected"] == 0
        assert faults["corrupted_served"] > 0

    def test_canary_mode_probes_and_detects(self, tiny_cost):
        cost = AnalyticBatchCost(network="tiny", integrity="checksum+canary")
        plan = FaultPlan(corrupt_rate=0.3, seed=5)
        report = ServingSimulator(
            saturating_trace(),
            server=integrity_server(
                cost,
                plan,
                integrity=IntegrityPolicy(
                    mode="checksum+canary", canary_every=2
                ),
            ),
        ).run()
        faults = report.faults
        assert faults["canaries"] > 0
        assert faults["canary_detected"] > 0

    def test_crash_dominates_corruption(self, tiny_cost):
        # A batch the plan both crashes and corrupts crashes; the
        # corruption counters never double-count it.
        plan = FaultPlan(crash_rate=1.0, corrupt_rate=1.0, max_crashes=None, seed=5)
        report = ServingSimulator(
            saturating_trace(count=40),
            server=integrity_server(
                tiny_cost, plan, retry=None
            ),
        ).run()
        assert report.faults["corruptions"] == 0

    def test_streaming_fast_path_refuses_integrity(self, tiny_cost):
        simulator = ServingSimulator(
            saturating_trace(count=40),
            server=integrity_server(tiny_cost, integrity="checksum"),
        )
        with pytest.raises(ConfigError):
            simulator.run(record_requests=False)

    def test_correlated_group_takes_members_down_together(self, tiny_cost):
        plan = FaultPlan(failure_groups=(((0, 1), 0.0, 3000.0),), seed=5)
        report = ServingSimulator(
            saturating_trace(), server=integrity_server(tiny_cost, plan)
        ).run()
        faults = report.faults
        assert faults["correlated"] > 0
        assert faults["correlated"] == faults["crashes"]
        crashed_arrays = {b.array for b in report.batches if b.crashed}
        assert crashed_arrays == {0, 1}


class TestSimLiveIntegrityIdentity:
    @pytest.mark.parametrize(
        ("plan", "mode"),
        [
            (FaultPlan(corrupt_rate=0.15, seed=11), "none"),
            (FaultPlan(corrupt_rate=0.15, seed=11), "checksum"),
            (FaultPlan(corrupt_batches=(1, 5), seed=3), "checksum"),
            (
                FaultPlan(corrupt_rate=0.1, corrupt_target="output", seed=7),
                "checksum",
            ),
            (FaultPlan(corrupt_rate=0.2, seed=9), "checksum+canary"),
            (
                FaultPlan(
                    crash_rate=0.05,
                    corrupt_rate=0.1,
                    failure_groups=(((0, 1), 500.0, 1500.0),),
                    seed=13,
                ),
                "checksum",
            ),
        ],
        ids=[
            "rate-none",
            "rate-checksum",
            "ordinals",
            "output-evades",
            "canary",
            "mixed-correlated",
        ],
    )
    def test_replay_matches_simulator(self, tiny_cost, plan, mode):
        integrity = mode if mode != "none" else None
        trace = saturating_trace()
        sim = ServingSimulator(
            trace, server=integrity_server(tiny_cost, plan, integrity)
        ).run()
        live = replay_virtual(
            integrity_server(tiny_cost, plan, integrity), trace
        )
        assert decision_diffs(sim, live) == []
        # Identity extends to every fault/detection counter.
        assert sim.faults == live.faults

    def test_deterministic_rerun_with_corruption(self, tiny_cost):
        plan = FaultPlan(corrupt_rate=0.2, seed=17)
        reports = [
            ServingSimulator(
                saturating_trace(),
                server=integrity_server(tiny_cost, plan, "checksum"),
            ).run()
            for _ in range(2)
        ]
        first, second = (r.to_dict() for r in reports)
        for report in (first, second):
            report.pop("wall_seconds"), report.pop("wall_rps")
        assert first == second


# ---- cost pricing --------------------------------------------------------


class TestIntegrityPricing:
    def test_checksum_mode_prices_higher(self):
        plain = AnalyticBatchCost(network="tiny")
        checked = AnalyticBatchCost(network="tiny", integrity="checksum")
        for batch in (1, 4, 8):
            assert checked.batch_cycles(batch) > plain.batch_cycles(batch)
            assert checked.integrity_cycles(batch) > 0
            assert plain.integrity_cycles(batch) == 0

    def test_overhead_scales_with_batch(self):
        checked = AnalyticBatchCost(network="tiny", integrity="checksum")
        assert checked.integrity_cycles(8) > checked.integrity_cycles(1)

    def test_signature_distinguishes_modes(self):
        plain = AnalyticBatchCost(network="tiny")
        checked = AnalyticBatchCost(network="tiny", integrity="checksum")
        assert plain.signature() != checked.signature()

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigError):
            AnalyticBatchCost(network="tiny", integrity="everything")

    def test_perf_model_path_cannot_price_checks(self, tiny_config):
        # The closed-form CapsNet path has no instruction stream to
        # checksum; integrity pricing demands a compiled network.
        with pytest.raises(ConfigError):
            AnalyticBatchCost(network=tiny_config, integrity="checksum")

    def test_overhead_within_ceiling_on_mnist(self):
        plain = AnalyticBatchCost(network="mnist")
        checked = AnalyticBatchCost(network="mnist", integrity="checksum")
        ratio = checked.batch_cycles(8) / plain.batch_cycles(8)
        assert 1.0 < ratio <= 1.10

    def test_server_config_normalizes_mode_strings(self):
        cost = AnalyticBatchCost(network="tiny", integrity="checksum")
        server = ServerConfig(cost=cost, integrity="checksum")
        assert isinstance(server.integrity, IntegrityPolicy)
        assert server.integrity.checks
        assert "integrity" in server.describe()
        assert server.policy_json()["integrity"] == "checksum"
