"""The explicit-sink API is the same machine as the legacy run() flags."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serve import (
    AnalyticBatchCost,
    RecordingSink,
    ServerConfig,
    ServingSimulator,
    StreamingSink,
    poisson_trace,
)

BIN_US = 25.0

# Host-timing fields legitimately differ between two identical runs.
WALL_KEYS = ("wall_seconds", "wall_rps")


def virtual_dict(report):
    data = report.to_dict()
    for key in WALL_KEYS:
        data.pop(key, None)
    return data


@pytest.fixture(scope="module")
def tiny_cost(tiny_config):
    return AnalyticBatchCost(network=tiny_config)


@pytest.fixture(scope="module")
def trace():
    rng = np.random.default_rng(41)
    return poisson_trace(rate_rps=3000.0, count=300, rng=rng)


def make_server(cost):
    return ServerConfig.from_policy(
        "deadline", cost, arrays=2, deadline_us=8000.0, max_batch=8
    )


class TestExplicitSinks:
    def test_recording_sink_matches_default_run(self, tiny_cost, trace):
        default = ServingSimulator(trace, server=make_server(tiny_cost)).run()
        sink = RecordingSink()
        explicit = ServingSimulator(trace, server=make_server(tiny_cost)).run(
            sink=sink
        )
        assert virtual_dict(explicit) == virtual_dict(default)
        # The report is assembled from the caller's sink, not a copy.
        assert len(sink.requests) == default.offered
        assert len(sink.batches) == default.batch_count

    def test_streaming_sink_matches_streaming_flag(self, tiny_cost, trace):
        flagged = ServingSimulator(trace, server=make_server(tiny_cost)).run(
            record_requests=False, latency_bin_us=BIN_US
        )
        explicit = ServingSimulator(trace, server=make_server(tiny_cost)).run(
            sink=StreamingSink(bin_us=BIN_US)
        )
        assert virtual_dict(explicit) == virtual_dict(flagged)

    def test_streaming_sink_carries_its_own_bin_width(self, tiny_cost, trace):
        explicit = ServingSimulator(trace, server=make_server(tiny_cost)).run(
            # latency_bin_us must be ignored when a sink is passed.
            record_requests=False,
            latency_bin_us=999.0,
            sink=StreamingSink(bin_us=BIN_US),
        )
        assert explicit.streaming.components["total"].bin_us == BIN_US

    def test_log_kind_sink_bounds_percentile_error_relatively(
        self, tiny_cost, trace
    ):
        exact = ServingSimulator(trace, server=make_server(tiny_cost)).run()
        logged = ServingSimulator(trace, server=make_server(tiny_cost)).run(
            sink=StreamingSink(bin_us=10.0, kind="log", subbins=64)
        )
        assert logged.completed == exact.completed
        exact_summary = exact.latency_summary()["total"]
        log_summary = logged.latency_summary()["total"]
        for key in ("p50_us", "p95_us", "p99_us"):
            reference = exact_summary[key]
            tolerance = max(10.0, reference / 64)
            assert abs(log_summary[key] - reference) <= tolerance, key

    def test_unknown_sink_rejected(self, tiny_cost, trace):
        class NotASink:
            pass

        with pytest.raises(ConfigError, match="sink"):
            ServingSimulator(trace, server=make_server(tiny_cost)).run(
                sink=NotASink()
            )
