"""Live serving runtime: decision identity, the asyncio path, failure modes.

Three layers under test, mirroring :mod:`repro.serve.runtime`:

* :class:`MeasuredBatchCost` — the calibrated live cost model's
  interpolation, validation, and cost-protocol conformance.
* :func:`replay_virtual` — the deterministic CI gate: driving the
  runtime engine over a trace in virtual time must reproduce the
  simulator's decisions *exactly*, policy by policy.
* :class:`ServingRuntime` — real asyncio runs on the in-process engine:
  correct predictions, shutdown drain, backpressure sheds, worker
  crashes, the JSONL socket, and the process worker pool.
"""

import asyncio
import json
import math
import time

import numpy as np
import pytest

from repro.capsnet.batched import BatchedQuantizedForward
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.data.synthetic import SyntheticDigits
from repro.errors import ConfigError
from repro.hw.config import AcceleratorConfig
from repro.serve import (
    AnalyticBatchCost,
    MeasuredBatchCost,
    RequestShedError,
    ServerConfig,
    ServingRuntime,
    ServingSimulator,
    TenantSpec,
    WorkerCrashError,
    decision_diffs,
    decisions_identical,
    poisson_trace,
    replay_virtual,
)
from repro.serve.workers import (
    InlineEngineExecutor,
    PredictedExecutor,
    ProcessWorkerPool,
)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture(scope="module")
def tiny_cost(tiny_config):
    return AnalyticBatchCost(network=tiny_config)


@pytest.fixture(scope="module")
def live_images(tiny_config):
    generator = SyntheticDigits(size=tiny_config.image_size, seed=23)
    return generator.generate(64).images


@pytest.fixture(scope="module")
def offline_predictions(tiny_config, tiny_weights, live_images):
    qnet = QuantizedCapsuleNet(tiny_config, weights=tiny_weights)
    return BatchedQuantizedForward(qnet).predict(live_images)


def live_server(cost, **overrides):
    settings = dict(
        max_batch=8, max_wait_us=2000.0, arrays=1, network_name="tiny"
    )
    settings.update(overrides)
    return ServerConfig.from_policy("fifo", cost, **settings)


class TestMeasuredBatchCost:
    def test_interpolates_between_points(self):
        cost = MeasuredBatchCost(
            AcceleratorConfig(), [(1, 100.0), (8, 400.0), (16, 600.0)]
        )
        assert cost.predict_us(1) == 100.0
        assert cost.predict_us(8) == 400.0
        # Midway along the 8..16 segment.
        assert cost.predict_us(12) == pytest.approx(500.0)

    def test_extrapolates_from_nearest_segment(self):
        cost = MeasuredBatchCost(AcceleratorConfig(), [(8, 400.0), (16, 600.0)])
        assert cost.predict_us(32) == pytest.approx(600.0 + 16 * 25.0)
        assert cost.predict_us(4) == pytest.approx(400.0 - 4 * 25.0)

    def test_single_point_scales_proportionally(self):
        cost = MeasuredBatchCost(AcceleratorConfig(), [(8, 400.0)])
        assert cost.predict_us(16) == pytest.approx(800.0)
        assert cost.predict_us(2) == pytest.approx(100.0)

    def test_cycles_quantization_and_warm_equals_cold(self):
        config = AcceleratorConfig()
        cost = MeasuredBatchCost(config, [(1, 0.0001), (8, 250.0)])
        assert cost.batch_cycles(1) == 1  # floor: never zero cycles
        expected = int(round(cost.predict_us(8) * config.clock_mhz))
        assert cost.batch_cycles(8) == expected
        assert cost.warm_batch_cycles(8, prev_size=8) == cost.batch_cycles(8)
        assert cost.drain_saved_cycles(8, prev_size=8) == 0
        assert cost.pipeline is False
        assert cost.accounting == "measured"

    def test_rejects_bad_calibration_points(self):
        with pytest.raises(ConfigError):
            MeasuredBatchCost(AcceleratorConfig(), [])
        with pytest.raises(ConfigError):
            MeasuredBatchCost(AcceleratorConfig(), [(8, 100.0), (8, 200.0)])
        with pytest.raises(ConfigError):
            MeasuredBatchCost(AcceleratorConfig(), [(8, -5.0)])
        with pytest.raises(ConfigError):
            MeasuredBatchCost(AcceleratorConfig(), [(8, math.inf)])

    def test_calibrate_skips_sizes_beyond_the_image_set(self, tiny_config):
        executor = PredictedExecutor(tiny_config.image_size)
        images = np.zeros((4, tiny_config.image_size, tiny_config.image_size))
        cost = MeasuredBatchCost.calibrate(executor, images, sizes=(1, 2, 4, 8))
        assert [size for size, _ in cost.points] == [1, 2, 4]

    def test_from_report_requires_batches(self, tiny_cost):
        from repro.serve.runtime import RuntimeEngine

        empty = RuntimeEngine(live_server(tiny_cost)).build_report()
        assert empty.batch_count == 0
        with pytest.raises(ConfigError):
            MeasuredBatchCost.from_report(empty)


SERVER_SHAPES = [
    dict(policy="fifo", arrays=1),
    dict(policy="fifo", arrays=2, dispatch="round-robin"),
    dict(policy="deadline", arrays=2, deadline_us=9000.0),
    dict(policy="greedy", arrays=3, dispatch="greedy"),
    dict(policy="fifo", arrays=2, dispatch="greedy-backlog", queue_limit=64),
]


class TestReplayVirtual:
    @pytest.mark.parametrize(
        "shape", SERVER_SHAPES, ids=lambda s: f"{s['policy']}-{s.get('dispatch')}"
    )
    def test_decisions_match_the_simulator(self, tiny_cost, shape):
        shape = dict(shape)
        policy = shape.pop("policy")
        server = ServerConfig.from_policy(
            policy, tiny_cost, max_batch=8, network_name="tiny", **shape
        )
        trace = poisson_trace(
            rate_rps=5000.0, count=400, rng=np.random.default_rng(97)
        )
        sim = ServingSimulator(trace, server=server).run()
        live = replay_virtual(server, trace)
        assert decisions_identical(sim, live), decision_diffs(sim, live)
        # Identity extends past decisions into the latency decomposition.
        for sim_req, live_req in zip(sim.requests, live.requests):
            assert live_req.dispatch_us == sim_req.dispatch_us
            assert live_req.done_us == sim_req.done_us
            assert live_req.batching_us == sim_req.batching_us
            assert live_req.queueing_us == sim_req.queueing_us

    def test_multi_tenant_replay_matches(self, tiny_cost):
        rng = np.random.default_rng(13)
        tenants = [
            TenantSpec(
                name="a", trace=poisson_trace(rate_rps=2000.0, count=150, rng=rng)
            ),
            TenantSpec(
                name="b",
                trace=poisson_trace(rate_rps=1000.0, count=100, rng=rng),
                deadline_us=15000.0,
            ),
        ]
        server = live_server(tiny_cost, arrays=2)
        sim = ServingSimulator(tenants=tenants, server=server).run()
        live = replay_virtual(server, tenants=tenants)
        assert decisions_identical(sim, live), decision_diffs(sim, live)

    def test_trace_and_tenants_are_exclusive(self, tiny_cost):
        trace = poisson_trace(
            rate_rps=100.0, count=5, rng=np.random.default_rng(1)
        )
        with pytest.raises(ConfigError):
            replay_virtual(live_server(tiny_cost))
        with pytest.raises(ConfigError):
            replay_virtual(
                live_server(tiny_cost),
                trace,
                tenants=[TenantSpec(name="x", trace=trace)],
            )


class FailingExecutor:
    """Executor that dies on its first batch (crash-path fixture)."""

    def __init__(self, image_size: int) -> None:
        self.image_size = image_size

    def execute(self, array, images):
        raise RuntimeError("engine exploded")

    def close(self):
        pass


class SlowExecutor(PredictedExecutor):
    """Instant predictions after a real delay (queue-buildup fixture)."""

    def __init__(self, image_size: int, delay_s: float) -> None:
        super().__init__(image_size)
        self.delay_s = delay_s

    def execute(self, array, images):
        time.sleep(self.delay_s)
        return super().execute(array, images)


class TestServingRuntimeLive:
    def test_submissions_return_engine_predictions(
        self, tiny_config, tiny_cost, live_images, offline_predictions
    ):
        async def scenario():
            runtime = ServingRuntime(
                live_server(tiny_cost),
                executor=InlineEngineExecutor(tiny_config),
            )
            try:
                results = await asyncio.gather(
                    *(runtime.submit(image) for image in live_images)
                )
            finally:
                await runtime.stop()
            return results, runtime.report()

        results, report = asyncio.run(scenario())
        np.testing.assert_array_equal(results, offline_predictions)
        assert report.offered == len(live_images)
        assert report.completed == len(live_images)
        assert report.shed_count == 0
        assert sum(batch.size for batch in report.batches) == len(live_images)
        for request in report.served:
            assert request.done_us >= request.dispatch_us >= request.arrival_us

    def test_stop_flushes_a_waiting_remainder(self, tiny_config, tiny_cost):
        # Three requests, batch cap 8, a coalescing window far longer
        # than the test: only the shutdown drain's force-flush can
        # dispatch them.
        server = live_server(tiny_cost, max_batch=8, max_wait_us=30_000_000.0)

        async def scenario():
            runtime = ServingRuntime(
                server, executor=PredictedExecutor(tiny_config.image_size)
            )
            image = np.zeros((tiny_config.image_size, tiny_config.image_size))
            tasks = [
                asyncio.ensure_future(runtime.submit(image)) for _ in range(3)
            ]
            await asyncio.sleep(0.01)
            assert runtime.engine.queue_depth() == 3
            await runtime.stop()
            return await asyncio.gather(*tasks), runtime.report()

        results, report = asyncio.run(scenario())
        assert results == [-1, -1, -1]
        assert report.batch_count == 1
        assert report.batches[0].size == 3

    def test_queue_limit_sheds_under_load(self, tiny_config, tiny_cost):
        server = live_server(
            tiny_cost, max_batch=1, max_wait_us=0.0, queue_limit=2
        )

        async def scenario():
            runtime = ServingRuntime(
                server,
                executor=SlowExecutor(tiny_config.image_size, delay_s=0.05),
            )
            image = np.zeros((tiny_config.image_size, tiny_config.image_size))
            outcomes = await asyncio.gather(
                *(runtime.submit(image) for _ in range(8)),
                return_exceptions=True,
            )
            await runtime.stop()
            return outcomes, runtime.report()

        outcomes, report = asyncio.run(scenario())
        sheds = [o for o in outcomes if isinstance(o, RequestShedError)]
        served = [o for o in outcomes if o == -1]
        assert sheds and served
        assert len(sheds) + len(served) == 8
        assert report.shed_count == len(sheds)
        assert report.completed == len(served)

    def test_worker_crash_fails_only_after_retry_budget(
        self, tiny_config, tiny_cost
    ):
        # A permanently-failing executor exhausts every request's retry
        # budget; the waiters then see WorkerCrashError — but the
        # runtime itself stays healthy (no sticky failure), so drain and
        # stop complete normally.
        server = live_server(tiny_cost, max_batch=4, max_wait_us=0.0)

        async def scenario():
            runtime = ServingRuntime(
                server, executor=FailingExecutor(tiny_config.image_size)
            )
            image = np.zeros((tiny_config.image_size, tiny_config.image_size))
            outcomes = await asyncio.gather(
                *(runtime.submit(image) for _ in range(4)),
                return_exceptions=True,
            )
            await runtime.drain()  # crashes are contained, not sticky
            report = runtime.report()
            await runtime.stop()
            return outcomes, report

        outcomes, report = asyncio.run(scenario())
        assert outcomes
        assert all(isinstance(o, WorkerCrashError) for o in outcomes)
        cause = outcomes[0].__cause__
        assert isinstance(cause, RuntimeError)
        assert report.failed_count == 4
        faults = report.faults
        # Default budget is 3 attempts: two retry rounds per request
        # before the terminal failure.
        assert faults["failed"] == 4
        assert faults["retries"] == 8
        assert faults["crashes"] >= 3

    def test_crash_fails_only_its_own_batch(self, tiny_config, tiny_cost):
        # Two arrays, one crash: the crashed batch's members retry and
        # complete; waiters on the other array never see an error.
        server = live_server(
            tiny_cost, max_batch=4, max_wait_us=0.0, arrays=2
        )

        class CrashOnceExecutor(PredictedExecutor):
            def __init__(self, image_size: int) -> None:
                super().__init__(image_size)
                self.crashed = False

            def execute(self, array, images):
                if array == 0 and not self.crashed:
                    self.crashed = True
                    raise RuntimeError("array 0 died once")
                return super().execute(array, images)

        async def scenario():
            runtime = ServingRuntime(
                server, executor=CrashOnceExecutor(tiny_config.image_size)
            )
            image = np.zeros((tiny_config.image_size, tiny_config.image_size))
            outcomes = await asyncio.gather(
                *(runtime.submit(image) for _ in range(8)),
                return_exceptions=True,
            )
            # Let the quarantine's timed readmission (recovery_us) fire.
            await asyncio.sleep(0.05)
            report = runtime.report()
            await runtime.stop()
            return outcomes, report

        outcomes, report = asyncio.run(scenario())
        assert outcomes == [-1] * 8
        assert report.completed == 8
        assert report.failed_count == 0
        faults = report.faults
        assert faults["crashes"] == 1
        # Exactly the crashed batch's members retried — nobody else.
        assert 1 <= faults["retries"] <= 4
        assert faults["failed"] == 0
        # The crashed array was quarantined and readmitted.
        assert faults["quarantines"] == 1
        assert faults["recoveries"] == 1
        crashed = [b for b in report.batches if b.crashed]
        assert len(crashed) == 1
        assert crashed[0].array == 0

    def test_injected_plan_completes_all_requests_live(
        self, tiny_config, tiny_cost
    ):
        # The seeded plan drives crashes through the real asyncio path:
        # every request still completes, and the fault counters match
        # the plan's two ordinals.
        from repro.serve import FaultPlan

        server = live_server(
            tiny_cost,
            max_batch=4,
            max_wait_us=0.0,
            arrays=2,
            fault_plan=FaultPlan(crash_batches=(0, 2), seed=3),
        )

        async def scenario():
            runtime = ServingRuntime(
                server, executor=PredictedExecutor(tiny_config.image_size)
            )
            image = np.zeros((tiny_config.image_size, tiny_config.image_size))
            outcomes = await asyncio.gather(
                *(runtime.submit(image) for _ in range(12)),
                return_exceptions=True,
            )
            report = runtime.report()
            await runtime.stop()
            return outcomes, report

        outcomes, report = asyncio.run(scenario())
        assert outcomes == [-1] * 12
        assert report.completed == 12
        assert report.shed_count == 0
        assert report.failed_count == 0
        assert report.goodput == 1.0
        faults = report.faults
        assert faults["crashes"] == 2
        assert faults["injected"] == 2
        assert faults["recoveries"] == faults["quarantines"]

    def test_socket_roundtrip(self, tiny_config, tiny_cost, live_images):
        qnet = QuantizedCapsuleNet(tiny_config)
        expected = BatchedQuantizedForward(qnet).predict(live_images[:3])

        async def scenario():
            runtime = ServingRuntime(
                live_server(tiny_cost, max_wait_us=500.0),
                executor=InlineEngineExecutor(tiny_config),
            )
            server = await runtime.serve_socket()
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            replies = []
            for i, image in enumerate(live_images[:3]):
                writer.write(
                    (json.dumps({"id": i, "image": image.tolist()}) + "\n").encode()
                )
                await writer.drain()
                replies.append(json.loads(await reader.readline()))
            writer.write(b'{"id": 99}\n')  # no image: malformed
            await writer.drain()
            bad = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            await runtime.stop()
            return replies, bad

        replies, bad = asyncio.run(scenario())
        for i, reply in enumerate(replies):
            assert reply["id"] == i
            assert reply["prediction"] == int(expected[i])
        assert "bad request" in bad["error"]

    def test_runtime_rejects_reuse_after_stop(self, tiny_config, tiny_cost):
        async def scenario():
            runtime = ServingRuntime(
                live_server(tiny_cost),
                executor=PredictedExecutor(tiny_config.image_size),
            )
            await runtime.stop()
            image = np.zeros((tiny_config.image_size, tiny_config.image_size))
            with pytest.raises(ConfigError):
                await runtime.submit(image)

        asyncio.run(scenario())


class TestProcessWorkerPool:
    def test_matches_inline_and_survives_a_crash(
        self, tiny_config, live_images, offline_predictions
    ):
        pool = ProcessWorkerPool(tiny_config, arrays=1, max_batch=8)
        try:
            predictions = pool.execute(0, live_images[:8])
            np.testing.assert_array_equal(predictions, offline_predictions[:8])
            pool.crash(0)
            with pytest.raises(WorkerCrashError):
                pool.execute(0, live_images[:8])
            # A respawned, health-probed worker serves again.
            pool.respawn(0)
            predictions = pool.execute(0, live_images[:8])
            np.testing.assert_array_equal(predictions, offline_predictions[:8])
        finally:
            pool.close()

    def test_crash_then_close_shuts_down_cleanly(self, tiny_config):
        # Closing a pool whose worker already died must not hang or
        # leak the shared-memory segments.
        pool = ProcessWorkerPool(tiny_config, arrays=1, max_batch=4)
        pool.crash(0)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ConfigError):
            pool.respawn(0)
