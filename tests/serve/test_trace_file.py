"""Trace-file replay: JSONL/CSV parsing, sorting, validation, CLI."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serve.trace import load_trace_file


class TestJsonl:
    def test_bare_numbers(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("100\n50.5\n\n200\n")
        trace = load_trace_file(path)
        assert trace.name == "replay:trace.jsonl"
        np.testing.assert_allclose(trace.times_us, [50.5, 100.0, 200.0])

    def test_objects_with_arrival_key(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"arrival_us": 300, "user": "a"}\n'
            '{"time_us": 100}\n'
            '{"timestamp_us": 200}\n'
        )
        np.testing.assert_allclose(
            load_trace_file(path).times_us, [100.0, 200.0, 300.0]
        )

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("100\nnot json\n")
        with pytest.raises(ConfigError, match="trace.jsonl:2"):
            load_trace_file(path)

    def test_object_without_key_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"foo": 1}\n')
        with pytest.raises(ConfigError, match="no arrival key"):
            load_trace_file(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('"hello"\n')
        with pytest.raises(ConfigError, match="must be a number"):
            load_trace_file(path)


class TestDeadlines:
    def test_jsonl_deadlines_ride_the_sort(self, tmp_path):
        """Per-request deadline_us loads alongside the arrival and stays
        aligned when timestamps sort."""
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"arrival_us": 300, "deadline_us": 900}\n'
            '{"arrival_us": 100, "deadline_us": 500}\n'
            "200\n"
        )
        trace = load_trace_file(path)
        np.testing.assert_allclose(trace.times_us, [100.0, 200.0, 300.0])
        np.testing.assert_allclose(trace.deadlines_us, [500.0, np.inf, 900.0])

    def test_no_deadlines_leaves_none(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("100\n200\n")
        assert load_trace_file(path).deadlines_us is None

    def test_csv_deadline_column(self, tmp_path):
        """Empty or omitted trailing deadline cells both mean 'no SLA'."""
        path = tmp_path / "trace.csv"
        path.write_text(
            "arrival_us,deadline_us\n200,700\n100,\n300\n"
        )
        trace = load_trace_file(path)
        np.testing.assert_allclose(trace.times_us, [100.0, 200.0, 300.0])
        np.testing.assert_allclose(trace.deadlines_us, [np.inf, 700.0, np.inf])

    def test_non_numeric_deadline_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"arrival_us": 100, "deadline_us": "soon"}\n')
        with pytest.raises(ConfigError, match="deadline must be a number"):
            load_trace_file(path)


class TestJsonArray:
    def test_array_of_numbers_and_objects(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text('[300, {"arrival_us": 100}, 200]')
        np.testing.assert_allclose(
            load_trace_file(path).times_us, [100.0, 200.0, 300.0]
        )

    def test_non_array_document_rejected(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text('{"arrival_us": 100}')
        with pytest.raises(ConfigError, match="must be an array"):
            load_trace_file(path)


class TestCsv:
    def test_headerless_single_column(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("200\n100\n300\n")
        np.testing.assert_allclose(
            load_trace_file(path).times_us, [100.0, 200.0, 300.0]
        )

    def test_header_names_column(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("user,arrival_us\na,200\nb,100\n")
        np.testing.assert_allclose(load_trace_file(path).times_us, [100.0, 200.0])

    def test_unknown_header_uses_first_column(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("when\n75\n25\n")
        np.testing.assert_allclose(load_trace_file(path).times_us, [25.0, 75.0])

    def test_bad_cell_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("arrival_us\n100\noops\n")
        with pytest.raises(ConfigError, match="must be a number"):
            load_trace_file(path)


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="does not exist"):
            load_trace_file(tmp_path / "nope.jsonl")

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("100\n")
        with pytest.raises(ConfigError, match="unsupported trace file type"):
            load_trace_file(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n\n")
        with pytest.raises(ConfigError, match="no arrivals"):
            load_trace_file(path)

    def test_negative_times_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("-5\n10\n")
        with pytest.raises(ConfigError):
            load_trace_file(path)


class TestCli:
    def test_serve_sim_replays_file(self, tmp_path, capsys):
        from repro import cli

        path = tmp_path / "arrivals.jsonl"
        path.write_text("\n".join(str(100.0 * i) for i in range(1, 9)))
        code = cli.main(
            [
                "serve-sim",
                "--network",
                "tiny",
                "--trace-file",
                str(path),
                "--max-batch",
                "4",
                "--max-wait-us",
                "50",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "replay:arrivals.jsonl" in out
        assert "served 8 requests" in out

    def test_serve_sim_pipeline_with_file(self, tmp_path, capsys):
        from repro import cli

        path = tmp_path / "arrivals.csv"
        path.write_text("arrival_us\n" + "\n".join(str(10.0 * i) for i in range(1, 13)))
        code = cli.main(
            [
                "serve-sim",
                "--network",
                "tiny",
                "--pipeline",
                "--trace-file",
                str(path),
                "--max-batch",
                "4",
                "--max-wait-us",
                "50",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "warm batches" in out

    def test_missing_trace_file_is_config_error(self, capsys):
        from repro import cli

        assert cli.main(["serve-sim", "--trace-file", "/nonexistent.jsonl"]) == 2
        assert "does not exist" in capsys.readouterr().err
