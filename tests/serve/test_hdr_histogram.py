"""Property tests for the log-bucketed (HDR-style) latency histogram.

The ``kind="log"`` histogram trades the linear histogram's absolute
half-bin percentile bound for a *relative* one (``1/subbins`` of the
value) and, in exchange, keeps memory logarithmic in the largest
latency.  These are the two properties a deeply overloaded serving run
leans on, so both get hypothesis coverage here; the linear kind's
absolute bound is covered in ``test_streaming.py``.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.serve import LatencyHistogram

BIN_US = 10.0
SUBBINS = 32

samples = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=400,
)


def log_tolerance(value: float, subbins: int = SUBBINS, bin_us: float = BIN_US):
    """Bracketing-bucket width at ``value`` (the documented error bound).

    Below ``bin_us`` everything shares bucket 0, so the bound is the
    bucket's full width; above, every bucket is at most ``1/subbins`` of
    its lower bound, and the interpolated estimate sits within the wider
    bracketing bucket's width of the exact order statistic.
    """
    if value < bin_us:
        return bin_us
    return 2.0 * value / subbins + 1e-9


class TestLogPercentileBound:
    @settings(max_examples=60, deadline=None)
    @given(values=samples, p=st.sampled_from([50.0, 90.0, 95.0, 99.0]))
    def test_percentile_within_bracketing_bucket(self, values, p):
        histogram = LatencyHistogram(bin_us=BIN_US, kind="log", subbins=SUBBINS)
        for value in values:
            histogram.add(value)
        exact = float(np.percentile(values, p))
        estimate = histogram.percentile(p)
        assert abs(estimate - exact) <= log_tolerance(max(exact, estimate))

    @settings(max_examples=40, deadline=None)
    @given(values=samples)
    def test_count_mean_max_are_exact(self, values):
        histogram = LatencyHistogram(bin_us=BIN_US, kind="log", subbins=SUBBINS)
        histogram.add_array(values)
        assert histogram.count == len(values)
        assert histogram.mean_us == pytest.approx(np.mean(values), rel=1e-12)
        assert histogram.max_us == max(values)

    @settings(max_examples=30, deadline=None)
    @given(values=samples)
    def test_weighted_and_array_adds_agree(self, values):
        one_by_one = LatencyHistogram(bin_us=BIN_US, kind="log", subbins=SUBBINS)
        weighted = LatencyHistogram(bin_us=BIN_US, kind="log", subbins=SUBBINS)
        for value in values:
            one_by_one.add(value)
            one_by_one.add(value)
            weighted.add_weighted(value, 2)
        assert one_by_one.percentile(95.0) == weighted.percentile(95.0)
        size = min(one_by_one._counts.size, weighted._counts.size)
        np.testing.assert_array_equal(
            one_by_one._counts[:size].nonzero()[0],
            weighted._counts[:size].nonzero()[0],
        )


class TestLogMemoryBound:
    def test_counts_stay_small_out_to_seconds_and_beyond(self):
        histogram = LatencyHistogram(bin_us=BIN_US, kind="log", subbins=SUBBINS)
        # An hour is 3.6e9 us; push three orders past that.  A linear
        # histogram would need 1e11 bins here; the log one needs
        # one bucket per subbin per octave.
        histogram.add_array([0.0, 1.0, 1e3, 1e6, 1e9, 1e12])
        octaves = math.ceil(math.log2(1e12 / BIN_US))
        assert histogram._counts.size < 5000
        assert histogram._counts.size <= 4 * (1 + octaves * SUBBINS)
        assert histogram.count == 6
        assert histogram.max_us == 1e12

    def test_monotone_bucket_index(self):
        histogram = LatencyHistogram(bin_us=BIN_US, kind="log", subbins=SUBBINS)
        values = np.geomspace(0.1, 1e10, 4000)
        indices = [histogram._index_of(float(v)) for v in values]
        assert indices == sorted(indices)


class TestMergeCompatibility:
    def test_merge_requires_identical_bucketing(self):
        log = LatencyHistogram(bin_us=BIN_US, kind="log", subbins=SUBBINS)
        with pytest.raises(ConfigError):
            log.merge(LatencyHistogram(bin_us=BIN_US, kind="linear"))
        with pytest.raises(ConfigError):
            log.merge(LatencyHistogram(bin_us=BIN_US, kind="log", subbins=16))
        with pytest.raises(ConfigError):
            log.merge(LatencyHistogram(bin_us=2 * BIN_US, kind="log", subbins=SUBBINS))

    def test_merge_matches_single_histogram(self):
        rng = np.random.default_rng(5)
        left_values = rng.exponential(500.0, 300)
        right_values = rng.exponential(50000.0, 300)
        left = LatencyHistogram(bin_us=BIN_US, kind="log", subbins=SUBBINS)
        right = LatencyHistogram(bin_us=BIN_US, kind="log", subbins=SUBBINS)
        combined = LatencyHistogram(bin_us=BIN_US, kind="log", subbins=SUBBINS)
        left.add_array(left_values)
        right.add_array(right_values)
        combined.add_array(np.concatenate([left_values, right_values]))
        left.merge(right)
        assert left.count == combined.count
        assert left.percentile(99.0) == combined.percentile(99.0)
        assert left.mean_us == pytest.approx(combined.mean_us, rel=1e-12)

    def test_rejects_bad_kind_and_subbins(self):
        with pytest.raises(ConfigError):
            LatencyHistogram(kind="exp")
        with pytest.raises(ConfigError):
            LatencyHistogram(kind="log", subbins=0)
