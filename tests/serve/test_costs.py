"""Cost models: bit-exactness vs the batched engine, memoization, crosscheck."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hw.config import AcceleratorConfig
from repro.hw.scheduler import BatchScheduler
from repro.serve.costs import AnalyticBatchCost, ScheduledBatchCost, crosscheck


@pytest.fixture(scope="module")
def scheduled_cost(tiny_qnet):
    return ScheduledBatchCost(qnet=tiny_qnet)


class TestScheduledBatchCost:
    def test_bit_identical_to_standalone_scheduler(
        self, scheduled_cost, tiny_qnet, tiny_images
    ):
        """The acceptance guarantee: serving charges exactly the cycles the
        batched engine reports when run standalone on the same batch."""
        for batch in (1, 2, len(tiny_images)):
            standalone = BatchScheduler(tiny_qnet).run_batch(tiny_images[:batch])
            assert scheduled_cost.batch_cycles(batch) == standalone.overlapped_cycles

    def test_memoized_probe_matches_real_batch_execution(
        self, scheduled_cost, tiny_images
    ):
        """Tiling is shape-driven: the zero-image probe's cycles equal any
        real batch's cycles at the same size."""
        cycles, result = scheduled_cost.execute(tiny_images[:3])
        assert cycles == scheduled_cost.batch_cycles(3)
        assert result.batch == 3
        assert result.predictions.shape == (3,)

    def test_sequential_accounting(self, tiny_qnet, tiny_images):
        cost = ScheduledBatchCost(qnet=tiny_qnet, accounting="sequential")
        standalone = BatchScheduler(tiny_qnet).run_batch(tiny_images[:2])
        assert cost.batch_cycles(2) == standalone.total_cycles
        assert cost.batch_cycles(2) >= scheduled_cost_cycles(tiny_qnet, 2)

    def test_bad_inputs_rejected(self, scheduled_cost, tiny_qnet):
        with pytest.raises(ConfigError):
            scheduled_cost.batch_cycles(0)
        with pytest.raises(ConfigError):
            ScheduledBatchCost(qnet=tiny_qnet, accounting="imaginary")

    def test_respects_accelerator_config(self, tiny_qnet):
        bounded = ScheduledBatchCost(
            qnet=tiny_qnet, accel_config=AcceleratorConfig(acc_fifo_depth=8)
        )
        ideal = ScheduledBatchCost(qnet=tiny_qnet)
        assert bounded.batch_cycles(4) > ideal.batch_cycles(4)
        assert bounded.config.acc_fifo_depth == 8


def scheduled_cost_cycles(qnet, batch: int) -> int:
    return ScheduledBatchCost(qnet=qnet).batch_cycles(batch)


class TestAnalyticAndCrosscheck:
    def test_analytic_monotone_and_memoized(self, tiny_config):
        cost = AnalyticBatchCost(network=tiny_config)
        assert cost.batch_cycles(8) > cost.batch_cycles(1)
        assert cost.batch_cycles(8) == cost.batch_cycles(8)

    def test_crosscheck_within_tolerance(self, scheduled_cost, tiny_config):
        analytic = AnalyticBatchCost(network=tiny_config)
        report = crosscheck(scheduled_cost, analytic, batch_sizes=(1, 3, 8))
        for entry in report.values():
            assert entry["rel_error"] <= 0.02

    def test_crosscheck_raises_beyond_tolerance(self, scheduled_cost, tiny_config):
        analytic = AnalyticBatchCost(network=tiny_config)
        with pytest.raises(ConfigError):
            crosscheck(scheduled_cost, analytic, batch_sizes=(1,), rel_tol=1e-9)
