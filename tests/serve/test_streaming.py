"""Streaming fast path: histogram statistics vs the full-record reports."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.serve import (
    AnalyticBatchCost,
    LatencyHistogram,
    ServerConfig,
    ServingSimulator,
    StreamingStats,
    TenantSpec,
    poisson_trace,
    replay_trace,
)

BIN_US = 50.0
PCTL_KEYS = ("p50_us", "p95_us", "p99_us")


@pytest.fixture(scope="module")
def tiny_cost(tiny_config):
    return AnalyticBatchCost(network=tiny_config)


@pytest.fixture(scope="module")
def tiny_pipeline_cost(tiny_config):
    return AnalyticBatchCost(network=tiny_config, pipeline=True)


def capacity_rps(cost):
    return cost.config.clock_mhz * 1e6 / cost.batch_cycles(1)


def assert_reports_match(record, fast, bin_us=BIN_US):
    """The fast path's contract against the full-record report."""
    assert fast.offered == record.offered
    assert fast.completed == record.completed
    assert fast.shed_count == record.shed_count
    assert fast.batch_count == record.batch_count
    assert fast.warm_batches == record.warm_batches
    assert fast.deadline_miss_count == record.deadline_miss_count
    assert fast.batch_size_histogram() == record.batch_size_histogram()
    assert fast.makespan_us == record.makespan_us
    for record_stat, fast_stat in zip(record.array_stats, fast.array_stats):
        assert fast_stat["batches"] == record_stat["batches"]
        assert fast_stat["requests"] == record_stat["requests"]
        assert fast_stat["busy_us"] == pytest.approx(record_stat["busy_us"])
    exact = record.latency_summary()
    streamed = fast.latency_summary()
    assert set(streamed) == set(exact)
    for name in exact:
        for key in PCTL_KEYS:
            assert abs(streamed[name][key] - exact[name][key]) <= bin_us, (
                name,
                key,
            )
        assert streamed[name]["mean_us"] == pytest.approx(
            exact[name]["mean_us"], rel=1e-9, abs=1e-6
        )


class TestLatencyHistogram:
    def test_counts_and_mean_are_exact(self):
        histogram = LatencyHistogram(bin_us=10.0)
        values = [3.0, 17.0, 17.5, 250.0, 9999.0]
        for value in values:
            histogram.add(value)
        assert histogram.count == len(values)
        assert histogram.mean_us == pytest.approx(np.mean(values))
        assert histogram.max_us == max(values)

    def test_percentiles_within_half_bin_of_numpy(self):
        rng = np.random.default_rng(5)
        values = rng.exponential(scale=2000.0, size=5000)
        histogram = LatencyHistogram(bin_us=BIN_US)
        histogram.add_array(values)
        for p in (50, 95, 99):
            exact = float(np.percentile(values, p))
            assert abs(histogram.percentile(p) - exact) <= BIN_US / 2 + 1e-9

    def test_weighted_adds_match_repeated_adds(self):
        a = LatencyHistogram(bin_us=5.0)
        b = LatencyHistogram(bin_us=5.0)
        for _ in range(7):
            a.add(123.0)
        b.add_weighted(123.0, 7)
        assert a.count == b.count
        assert a.summary() == b.summary()

    def test_merge_combines_counts(self):
        a = LatencyHistogram(bin_us=10.0)
        b = LatencyHistogram(bin_us=10.0)
        a.add_array([10.0, 20.0])
        b.add_array([30.0, 40000.0])
        a.merge(b)
        assert a.count == 4
        assert a.max_us == 40000.0
        with pytest.raises(ConfigError):
            a.merge(LatencyHistogram(bin_us=99.0))

    def test_empty_histogram_reports_zero(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(99) == 0.0
        assert histogram.summary()["mean_us"] == 0.0

    def test_rejects_bad_bin(self):
        with pytest.raises(ConfigError):
            LatencyHistogram(bin_us=0.0)
        with pytest.raises(ConfigError):
            LatencyHistogram(bin_us=math.inf)


class TestStreamingStats:
    def test_aggregates(self):
        stats = StreamingStats(bin_us=10.0, pipeline=True)
        stats.offered = 3
        stats.add_batch(2, warm=True, drain_saved_us=5.0)
        stats.add_request(100.0, 60.0, 10.0, 30.0, 5.0)
        stats.add_request(50.0, 0.0, 20.0, 30.0, 5.0)
        assert stats.completed == 3  # offered - shed
        assert stats.warm_batches == 1
        assert "drain_saved" in stats.latency_summary()
        assert stats.components["total"].count == 2


class TestStreamingSimulation:
    def test_fifo_matches_record_path(self, tiny_cost):
        trace = poisson_trace(
            2.5 * capacity_rps(tiny_cost), 3000, np.random.default_rng(3)
        )
        server = ServerConfig.from_policy(
            "fifo", tiny_cost, max_batch=8, max_wait_us=50.0, arrays=2
        )
        simulator = ServingSimulator(trace, server=server)
        assert_reports_match(
            simulator.run(), simulator.run(record_requests=False)
        )

    @pytest.mark.parametrize("policy", ["deadline", "greedy"])
    def test_policy_presets_match_record_path(self, tiny_cost, policy):
        trace = poisson_trace(
            2.0 * capacity_rps(tiny_cost), 1200, np.random.default_rng(9)
        )
        server = ServerConfig.from_policy(
            policy,
            tiny_cost,
            max_batch=8,
            max_wait_us=50.0,
            arrays=2,
            deadline_us=100.0,
        )
        simulator = ServingSimulator(trace, server=server)
        assert_reports_match(
            simulator.run(), simulator.run(record_requests=False)
        )

    def test_pipeline_warm_costs_match_record_path(self, tiny_pipeline_cost):
        trace = poisson_trace(
            3.0 * capacity_rps(tiny_pipeline_cost),
            800,
            np.random.default_rng(17),
        )
        server = ServerConfig.from_policy(
            "fifo",
            tiny_pipeline_cost,
            max_batch=4,
            max_wait_us=50.0,
            arrays=2,
            pipeline=True,
        )
        simulator = ServingSimulator(trace, server=server)
        record = simulator.run()
        fast = simulator.run(record_requests=False)
        assert record.warm_batches > 0  # the scenario exercises warm costs
        assert_reports_match(record, fast)

    def test_multi_tenant_matches_record_path(self, tiny_cost):
        rng = np.random.default_rng(23)
        rate = capacity_rps(tiny_cost)
        tenants = [
            TenantSpec(name="a", trace=poisson_trace(rate, 400, rng), weight=2.0),
            TenantSpec(
                name="b",
                trace=poisson_trace(0.7 * rate, 300, rng),
                deadline_us=200.0,
            ),
        ]
        server = ServerConfig.from_policy(
            "fifo", tiny_cost, max_batch=8, max_wait_us=40.0, arrays=2
        )
        simulator = ServingSimulator(server=server, tenants=tenants)
        record = simulator.run()
        fast = simulator.run(record_requests=False)
        assert_reports_match(record, fast)
        for record_entry, fast_entry in zip(record.tenants, fast.tenants):
            for key in ("tenant", "offered", "served", "shed", "deadline_misses"):
                assert fast_entry[key] == record_entry[key]

    def test_per_request_deadlines_match_record_path(self, tiny_cost):
        rng = np.random.default_rng(29)
        times = np.cumsum(
            rng.exponential(1e6 / (2.0 * capacity_rps(tiny_cost)), size=600)
        )
        deadlines = times + rng.uniform(50.0, 400.0, size=600)
        trace = replay_trace(times, deadlines_us=deadlines)
        server = ServerConfig.from_policy(
            "deadline", tiny_cost, max_batch=8, max_wait_us=50.0
        )
        simulator = ServingSimulator(trace, server=server)
        record = simulator.run()
        fast = simulator.run(record_requests=False)
        assert record.shed_count > 0  # admission is exercised
        assert_reports_match(record, fast)

    def test_streaming_report_serializes(self, tiny_cost):
        trace = poisson_trace(capacity_rps(tiny_cost), 100, np.random.default_rng(1))
        simulator = ServingSimulator(
            trace, server=ServerConfig.from_policy("fifo", tiny_cost)
        )
        report = simulator.run(record_requests=False)
        payload = report.to_dict()
        assert payload["record_requests"] is False
        assert payload["latency_bin_us"] == BIN_US
        assert payload["requests"] == report.completed
        assert "latency" in report.format_table()

    def test_execute_requires_record_mode(self, tiny_qnet, tiny_images):
        from repro.serve import ScheduledBatchCost

        cost = ScheduledBatchCost(qnet=tiny_qnet)
        trace = replay_trace(np.array([1.0, 2.0, 3.0, 4.0]))
        simulator = ServingSimulator(
            trace, cost=cost, images=tiny_images, execute=True
        )
        with pytest.raises(ConfigError):
            simulator.run(record_requests=False)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        count=st.integers(min_value=1, max_value=400),
        multiplier=st.floats(min_value=0.2, max_value=4.0),
        max_batch=st.integers(min_value=1, max_value=8),
        arrays=st.integers(min_value=1, max_value=3),
        policy=st.sampled_from(["fifo", "deadline", "greedy"]),
    )
    def test_streaming_matches_record_on_random_traces(
        self, seed, count, multiplier, max_batch, arrays, policy
    ):
        # The property the fast path promises: identical counts and
        # percentiles within one histogram bin, on any trace and preset.
        # (Module-level config: hypothesis forbids function-scoped
        # fixtures inside @given; the global probe cache keeps repeated
        # cost-model construction cheap.)
        from repro.capsnet.config import tiny_capsnet_config

        cost = AnalyticBatchCost(network=tiny_capsnet_config())
        trace = poisson_trace(
            multiplier * capacity_rps(cost), count, np.random.default_rng(seed)
        )
        server = ServerConfig.from_policy(
            policy,
            cost,
            max_batch=max_batch,
            max_wait_us=50.0,
            arrays=arrays,
            deadline_us=150.0,
        )
        simulator = ServingSimulator(trace, server=server)
        assert_reports_match(
            simulator.run(), simulator.run(record_requests=False)
        )
