"""Arrival-trace generators: shapes, determinism, validation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serve.trace import (
    ArrivalTrace,
    bursty_trace,
    make_trace,
    poisson_trace,
    replay_trace,
    uniform_trace,
)


class TestPoisson:
    def test_count_sorted_nonnegative(self, rng):
        trace = poisson_trace(1000.0, 50, rng)
        assert trace.count == 50
        assert trace.times_us[0] >= 0
        assert np.all(np.diff(trace.times_us) >= 0)

    def test_mean_rate_approximately_matches(self):
        rng = np.random.default_rng(0)
        trace = poisson_trace(1000.0, 5000, rng)
        assert trace.offered_rps == pytest.approx(1000.0, rel=0.1)

    def test_deterministic_for_fixed_seed(self):
        a = poisson_trace(500.0, 20, np.random.default_rng(42))
        b = poisson_trace(500.0, 20, np.random.default_rng(42))
        assert np.array_equal(a.times_us, b.times_us)


class TestUniform:
    def test_evenly_spaced(self):
        trace = uniform_trace(1e6, 4)
        assert np.allclose(np.diff(trace.times_us), 1.0)
        assert trace.offered_rps == pytest.approx(1e6)


class TestBursty:
    def test_burst_structure(self, rng):
        trace = bursty_trace(1000.0, 24, rng, burst_size=8, spread_us=10.0)
        assert trace.count == 24
        # Requests cluster: within a burst, gaps are tiny vs between bursts.
        gaps = np.diff(trace.times_us)
        assert np.sum(gaps > 100.0) <= 3  # at most the inter-burst gaps

    def test_partial_final_burst(self, rng):
        assert bursty_trace(1000.0, 10, rng, burst_size=8).count == 10

    def test_invalid_burst_rejected(self, rng):
        with pytest.raises(ConfigError):
            bursty_trace(1000.0, 8, rng, burst_size=0)


class TestReplayAndValidation:
    def test_replay_sorts(self):
        trace = replay_trace([30.0, 10.0, 20.0])
        assert np.array_equal(trace.times_us, [10.0, 20.0, 30.0])
        assert trace.name == "replay"

    def test_negative_times_rejected(self):
        with pytest.raises(ConfigError):
            ArrivalTrace("bad", np.array([-1.0, 2.0]))

    def test_unsorted_times_rejected(self):
        with pytest.raises(ConfigError):
            ArrivalTrace("bad", np.array([3.0, 1.0]))

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            ArrivalTrace("bad", np.array([]))

    def test_bad_rate_or_count_rejected(self, rng):
        with pytest.raises(ConfigError):
            poisson_trace(0.0, 5, rng)
        with pytest.raises(ConfigError):
            poisson_trace(100.0, 0, rng)
        with pytest.raises(ConfigError):
            poisson_trace(float("nan"), 5, rng)

    def test_non_finite_times_rejected(self):
        with pytest.raises(ConfigError):
            ArrivalTrace("bad", np.array([1.0, np.nan]))
        with pytest.raises(ConfigError):
            replay_trace([np.inf])

    def test_make_trace_dispatch(self, rng):
        assert make_trace("poisson", 100.0, 5, rng).name == "poisson"
        assert make_trace("bursty", 100.0, 5, rng, burst_size=2).name == "bursty"
        assert make_trace("uniform", 100.0, 5, rng).name == "uniform"
        with pytest.raises(ConfigError):
            make_trace("nope", 100.0, 5, rng)
