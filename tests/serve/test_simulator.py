"""End-to-end serving simulations: determinism, decomposition, sharding."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.hw.scheduler import BatchScheduler
from repro.serve import (
    AnalyticBatchCost,
    BatchPolicy,
    ScheduledBatchCost,
    ServingSimulator,
    poisson_trace,
    replay_trace,
)


@pytest.fixture(scope="module")
def cost(tiny_qnet):
    return ScheduledBatchCost(qnet=tiny_qnet)


def overload_trace(cost, count: int = 64, multiplier: float = 3.0, seed: int = 11):
    rate = multiplier * cost.config.clock_mhz * 1e6 / cost.batch_cycles(1)
    return poisson_trace(rate, count, np.random.default_rng(seed))


class TestDeterminism:
    def test_same_seed_same_report(self, cost):
        trace = overload_trace(cost)
        policy = BatchPolicy(max_batch=8, max_wait_us=30.0)
        first = ServingSimulator(trace, policy, cost).run()
        second = ServingSimulator(trace, policy, cost).run()
        a, b = first.to_dict(), second.to_dict()
        a.pop("wall_seconds"), a.pop("wall_rps")
        b.pop("wall_seconds"), b.pop("wall_rps")
        assert a == b


class TestExactCycles:
    def test_batch_cycles_bit_identical_to_scheduler(self, cost, tiny_qnet):
        """Every dispatched batch occupies an array for exactly the cycles
        BatchScheduler reports standalone for that batch size."""
        report = ServingSimulator(
            overload_trace(cost), BatchPolicy(max_batch=8, max_wait_us=30.0), cost
        ).run()
        scheduler = BatchScheduler(tiny_qnet)
        size = tiny_qnet.config.image_size
        standalone = {}
        for batch in report.batches:
            if batch.size not in standalone:
                probe = np.zeros((batch.size, size, size))
                standalone[batch.size] = scheduler.run_batch(probe).overlapped_cycles
            assert batch.cycles == standalone[batch.size]

    def test_compute_latency_matches_cycles(self, cost):
        report = ServingSimulator(
            overload_trace(cost, count=16), BatchPolicy(max_batch=4), cost
        ).run()
        config = cost.config
        for record in report.requests:
            batch = report.batches[record.batch_index]
            assert record.compute_us == pytest.approx(config.cycles_to_us(batch.cycles))


class TestLatencyDecomposition:
    def test_components_sum_to_wait(self, cost):
        report = ServingSimulator(
            overload_trace(cost), BatchPolicy(max_batch=8, max_wait_us=50.0), cost
        ).run()
        for record in report.requests:
            wait = record.dispatch_us - record.arrival_us
            assert record.batching_us + record.queueing_us == pytest.approx(wait)
            assert record.batching_us >= -1e-9
            assert record.queueing_us >= -1e-9

    def test_simultaneous_burst_dispatches_with_zero_wait(self, cost):
        """Eight requests at the same instant fill the batch immediately:
        no batching wait, no queueing, one full batch."""
        trace = replay_trace([100.0] * 8)
        report = ServingSimulator(
            trace, BatchPolicy(max_batch=8, max_wait_us=1e6), cost
        ).run()
        assert len(report.batches) == 1
        assert report.batches[0].size == 8
        assert report.batches[0].dispatch_us == pytest.approx(100.0)
        for record in report.requests:
            assert record.batching_us == pytest.approx(0.0)
            assert record.queueing_us == pytest.approx(0.0)

    def test_timeout_dispatches_partial_batch(self, cost):
        """Two lonely requests wait out max_wait, then go as one batch;
        the wait is pure batching (an array sat idle throughout)."""
        trace = replay_trace([100.0, 150.0])
        report = ServingSimulator(
            trace, BatchPolicy(max_batch=8, max_wait_us=200.0), cost
        ).run()
        assert len(report.batches) == 1
        assert report.batches[0].size == 2
        assert report.batches[0].dispatch_us == pytest.approx(300.0)
        first, second = report.requests
        assert first.batching_us == pytest.approx(200.0)
        assert second.batching_us == pytest.approx(150.0)
        assert first.queueing_us == pytest.approx(0.0)

    def test_batch_one_baseline_has_no_batching_wait(self, cost):
        report = ServingSimulator(
            overload_trace(cost, count=32), BatchPolicy(max_batch=1), cost
        ).run()
        assert all(batch.size == 1 for batch in report.batches)
        for record in report.requests:
            assert record.batching_us == pytest.approx(0.0)


class TestShardingAndThroughput:
    def test_multi_array_shards_and_speeds_up(self, cost):
        trace = overload_trace(cost, count=64)
        policy = BatchPolicy(max_batch=8, max_wait_us=30.0)
        one = ServingSimulator(trace, policy, cost, arrays=1).run()
        two = ServingSimulator(trace, policy, cost, arrays=2).run()
        assert two.makespan_us < one.makespan_us
        assert two.throughput_rps > one.throughput_rps
        busy = [stat["busy_us"] for stat in two.array_stats]
        assert all(value > 0 for value in busy)
        assert sum(stat["requests"] for stat in two.array_stats) == 64

    def test_dynamic_batching_beats_batch1_under_overload(self, cost):
        trace = overload_trace(cost, count=64)
        batch1 = ServingSimulator(trace, BatchPolicy(max_batch=1), cost).run()
        dynamic = ServingSimulator(
            trace, BatchPolicy(max_batch=8, max_wait_us=30.0), cost
        ).run()
        assert dynamic.throughput_rps > batch1.throughput_rps
        assert dynamic.mean_batch_size > 4.0

    def test_utilization_near_one_under_overload(self, cost):
        report = ServingSimulator(
            overload_trace(cost, count=64), BatchPolicy(max_batch=8), cost
        ).run()
        assert 0.9 < report.array_stats[0]["utilization"] <= 1.0

    def test_light_load_placement_rotates_arrays(self, cost):
        """Every batch dispatches while both arrays are idle; the
        least-recently-released tie-break alternates them, where the old
        index-order scan sent every batch to array 0 and its utilization
        spread was maximal."""
        gap = 2.0 * cost.config.cycles_to_us(cost.batch_cycles(1))
        trace = replay_trace(np.arange(1, 17) * gap)
        report = ServingSimulator(
            trace, BatchPolicy(max_batch=1), cost, arrays=2
        ).run()
        assert [batch.array for batch in report.batches] == [0, 1] * 8
        utilization = [stat["utilization"] for stat in report.array_stats]
        assert max(utilization) - min(utilization) < 0.01
        requests = [stat["requests"] for stat in report.array_stats]
        assert requests == [8, 8]


class TestExecuteModeAndValidation:
    def test_execute_predictions_match_golden(self, cost, tiny_qnet, tiny_images):
        trace = replay_trace(np.linspace(0.0, 100.0, len(tiny_images)))
        report = ServingSimulator(
            trace,
            BatchPolicy(max_batch=2, max_wait_us=10.0),
            cost,
            images=tiny_images,
            execute=True,
        ).run()
        assert np.array_equal(report.predictions, tiny_qnet.predict_batch(tiny_images))

    def test_crosscheck_attached(self, cost):
        report = ServingSimulator(
            overload_trace(cost, count=16), BatchPolicy(max_batch=4), cost
        ).run(with_crosscheck=True)
        assert report.crosscheck
        assert all(entry["rel_error"] <= 0.02 for entry in report.crosscheck.values())

    def test_analytic_cost_runs(self, tiny_config):
        cost = AnalyticBatchCost(network=tiny_config)
        report = ServingSimulator(
            poisson_trace(1000.0, 8, np.random.default_rng(0)),
            BatchPolicy(max_batch=4),
            cost,
        ).run()
        assert report.completed == 8

    def test_execute_needs_scheduled_cost_and_images(self, cost, tiny_config):
        trace = replay_trace([1.0, 2.0])
        with pytest.raises(ConfigError):
            ServingSimulator(
                trace,
                BatchPolicy(),
                AnalyticBatchCost(network=tiny_config),
                execute=True,
            )
        with pytest.raises(ConfigError):
            ServingSimulator(trace, BatchPolicy(), cost, execute=True)

    def test_image_count_mismatch_rejected(self, cost, tiny_images):
        with pytest.raises(ShapeError):
            ServingSimulator(
                replay_trace([1.0]), BatchPolicy(), cost, images=tiny_images
            )

    def test_report_table_renders(self, cost):
        report = ServingSimulator(
            overload_trace(cost, count=8), BatchPolicy(max_batch=4), cost
        ).run()
        table = report.format_table()
        assert "queueing" in table and "batching" in table and "compute" in table
