"""Dynamic batcher policy behavior: fill, timeout, FIFO order."""

import pytest

from repro.errors import ConfigError
from repro.serve.batcher import BatchPolicy, DynamicBatcher, QueuedRequest


def fill(batcher: DynamicBatcher, arrivals: list[float], start_index: int = 0) -> None:
    for offset, arrival in enumerate(arrivals):
        batcher.add(QueuedRequest(index=start_index + offset, arrival_us=arrival))


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ConfigError):
            BatchPolicy(max_wait_us=-1.0)

    def test_non_finite_wait_rejected(self):
        """NaN/inf deadlines would never become ready and hang the loop."""
        with pytest.raises(ConfigError):
            BatchPolicy(max_wait_us=float("nan"))
        with pytest.raises(ConfigError):
            BatchPolicy(max_wait_us=float("inf"))

    def test_describe(self):
        assert BatchPolicy(max_batch=1).describe() == "batch-1"
        assert "8" in BatchPolicy(max_batch=8, max_wait_us=100.0).describe()


class TestTimeoutBeforeFill:
    """Light load: the coalescing wait expires before the batch fills."""

    def test_not_ready_before_deadline(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=8, max_wait_us=100.0))
        fill(batcher, [10.0, 50.0])
        assert not batcher.ready(10.0)
        assert not batcher.ready(109.9)

    def test_partial_batch_at_deadline(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=8, max_wait_us=100.0))
        fill(batcher, [10.0, 50.0])
        assert batcher.oldest_deadline_us == 110.0
        assert batcher.ready(110.0)
        batch = batcher.take()
        assert [request.index for request in batch] == [0, 1]
        assert len(batcher) == 0

    def test_zero_wait_dispatches_immediately(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=8, max_wait_us=0.0))
        fill(batcher, [10.0])
        assert batcher.ready(10.0)


class TestBurstFillsInstantly:
    """A burst of max_batch simultaneous arrivals is ready with no wait."""

    def test_full_batch_ready_at_arrival_instant(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=8, max_wait_us=1e6))
        fill(batcher, [42.0] * 8)
        assert batcher.ready(42.0)
        batch = batcher.take()
        assert len(batch) == 8
        assert len(batcher) == 0

    def test_overfull_queue_leaves_remainder_in_fifo_order(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=4, max_wait_us=1e6))
        fill(batcher, [1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        batch = batcher.take()
        assert [request.index for request in batch] == [0, 1, 2, 3]
        assert len(batcher) == 2
        assert batcher.oldest_deadline_us == pytest.approx(5.0 + 1e6)

    def test_batch_one_policy_always_ready(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=1, max_wait_us=1e6))
        fill(batcher, [7.0])
        assert batcher.ready(7.0)
        assert len(batcher.take()) == 1


class TestEmpty:
    def test_empty_not_ready_and_take_raises(self):
        batcher = DynamicBatcher(BatchPolicy())
        assert not batcher.ready(1e9)
        assert batcher.oldest_deadline_us is None
        with pytest.raises(ConfigError):
            batcher.take()
