"""Serving-policy protocols: admission, deadline batching, dispatch, tenants."""

import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hw.config import AcceleratorConfig
from repro.serve import (
    AdmitAll,
    AnalyticBatchCost,
    ArrayPool,
    BatchPolicy,
    ChainedAdmission,
    CostBank,
    DeadlineAdmission,
    DeadlineBatcher,
    DispatchContext,
    GreedyWhenIdleDispatch,
    LeastRecentDispatch,
    QueueLimitAdmission,
    QueuedRequest,
    RequestQueue,
    RoundRobinDispatch,
    ScheduledBatchCost,
    ServerConfig,
    ServingSimulator,
    TenantSpec,
    make_serving_policy,
    poisson_trace,
    replay_trace,
    uniform_trace,
)
from repro.serve.policies import (
    ADMISSION_POLICIES,
    BATCHING_POLICIES,
    DISPATCH_POLICIES,
    SERVING_POLICIES,
)


@pytest.fixture(scope="module")
def cost(tiny_qnet):
    return ScheduledBatchCost(qnet=tiny_qnet)


def overload_trace(cost, count=64, multiplier=3.0, seed=11):
    rate = multiplier * cost.config.clock_mhz * 1e6 / cost.batch_cycles(1)
    return poisson_trace(rate, count, np.random.default_rng(seed))


def fill(queue, arrivals, deadline_us=math.inf, start=0):
    for offset, arrival in enumerate(arrivals):
        queue.append(
            QueuedRequest(
                index=start + offset, arrival_us=arrival, deadline_us=deadline_us
            )
        )


class TestRegistries:
    def test_registry_names_resolve(self):
        assert set(ADMISSION_POLICIES) == {
            "admit-all",
            "queue-limit",
            "deadline",
            "degraded",
        }
        assert set(BATCHING_POLICIES) == {"max-wait", "deadline"}
        assert set(DISPATCH_POLICIES) == {
            "least-recent",
            "round-robin",
            "prefer-warm",
            "greedy",
            "greedy-backlog",
        }
        assert BATCHING_POLICIES["max-wait"] is BatchPolicy
        assert BATCHING_POLICIES["deadline"] is DeadlineBatcher

    @pytest.mark.parametrize("name", SERVING_POLICIES)
    def test_presets_build_triples(self, name):
        admission, batching, dispatch = make_serving_policy(name, max_batch=4)
        assert batching.max_batch == 4
        assert admission.describe()
        assert dispatch.describe()

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigError):
            make_serving_policy("imaginary")

    def test_queue_limit_chains_onto_preset(self):
        admission, _, _ = make_serving_policy("fifo", queue_limit=3)
        assert isinstance(admission, QueueLimitAdmission)
        admission, _, _ = make_serving_policy("deadline", queue_limit=3)
        assert isinstance(admission, ChainedAdmission)

    def test_server_config_from_policy(self, cost):
        server = ServerConfig.from_policy(
            "deadline", cost, max_batch=4, deadline_us=5000.0, arrays=2
        )
        assert isinstance(server.batching, DeadlineBatcher)
        assert server.arrays == 2
        assert "deadline" in server.describe()
        payload = server.policy_json()
        assert payload["admission"] == "shed-infeasible"
        assert payload["deadline_us"] == 5000.0
        with pytest.raises(ConfigError):
            ServerConfig.from_policy("fifo", cost, dispatch="imaginary")

    def test_server_config_defaults_are_legacy(self, cost):
        server = ServerConfig(cost=cost)
        assert isinstance(server.admission, AdmitAll)
        assert isinstance(server.batching, BatchPolicy)
        assert isinstance(server.dispatch, LeastRecentDispatch)

    def test_heterogeneous_config_counts(self, cost):
        configs = (AcceleratorConfig(), AcceleratorConfig().with_array(8, 8))
        server = ServerConfig(cost=cost, array_configs=configs)
        assert server.arrays == 2
        with pytest.raises(ConfigError):
            ServerConfig(cost=cost, arrays=3, array_configs=configs)


class TestAdmission:
    def test_admit_all(self, cost):
        request = QueuedRequest(index=0, arrival_us=0.0)
        assert AdmitAll().admit(request, 0.0, RequestQueue(), ArrayPool(1))

    def test_zero_capacity_sheds_everything(self, cost):
        """max_queue=0 models zero admission capacity: every arrival sheds,
        nothing dispatches, and latency statistics stay empty."""
        trace = overload_trace(cost, count=16)
        server = ServerConfig(cost=cost, admission=QueueLimitAdmission(0))
        report = ServingSimulator(trace, server=server).run()
        assert report.shed_count == 16
        assert report.shed_rate == 1.0
        assert report.completed == 0
        assert not report.batches
        assert report.throughput_rps == 0.0
        assert report.latency_summary()["total"]["p99_us"] == 0.0

    def test_queue_limit_sheds_overflow_only(self, cost):
        trace = overload_trace(cost, count=32)
        server = ServerConfig(cost=cost, admission=QueueLimitAdmission(4))
        report = ServingSimulator(trace, server=server).run()
        assert 0 < report.shed_count < 32
        assert report.completed == 32 - report.shed_count

    def test_deadline_admission_sheds_infeasible(self, cost):
        """A request whose deadline precedes even an immediate solo dispatch
        is shed at arrival."""
        policy = DeadlineAdmission()
        policy.bind(cost)
        compute = cost.config.cycles_to_us(cost.batch_cycles(1))
        queue, pool = RequestQueue(), ArrayPool(1)
        hopeless = QueuedRequest(index=0, arrival_us=100.0, deadline_us=50.0)
        tight = QueuedRequest(
            index=1, arrival_us=100.0, deadline_us=100.0 + compute + 1.0
        )
        unbounded = QueuedRequest(index=2, arrival_us=100.0)
        assert not policy.admit(hopeless, 100.0, queue, pool)
        assert policy.admit(tight, 100.0, queue, pool)
        assert policy.admit(unbounded, 100.0, queue, pool)

    def test_deadline_admission_accounts_in_flight_work(self, cost):
        """Every array busy pushes the estimated start to the soonest
        in-flight completion: a request that would squeak through on an
        idle pool is shed when the array is mid-batch."""
        policy = DeadlineAdmission()
        policy.bind(cost)
        compute = cost.config.cycles_to_us(cost.batch_cycles(1))
        pool = ArrayPool(1)
        pool.claim(0)
        pool.charge(0, 1, compute, now_us=0.0)  # busy until `compute`
        queue = RequestQueue()
        # Feasible only if the array were idle: deadline = now + 1.5*compute,
        # but the batch in flight frees the array at `compute`, so the
        # earliest completion is 2*compute.
        request = QueuedRequest(
            index=0, arrival_us=0.0, deadline_us=1.5 * compute
        )
        assert not policy.admit(request, 0.0, queue, pool)
        relaxed = QueuedRequest(
            index=1, arrival_us=0.0, deadline_us=2.5 * compute
        )
        assert policy.admit(relaxed, 0.0, queue, pool)

    def test_chained_admission_requires_all(self, cost):
        chained = ChainedAdmission((AdmitAll(), QueueLimitAdmission(0)))
        request = QueuedRequest(index=0, arrival_us=0.0)
        assert not chained.admit(request, 0.0, RequestQueue(), ArrayPool(1))
        assert "+" in chained.describe()

    def test_validation(self):
        with pytest.raises(ConfigError):
            QueueLimitAdmission(-1)
        with pytest.raises(ConfigError):
            DeadlineAdmission(slack_us=-1.0)
        with pytest.raises(ConfigError):
            ChainedAdmission(())


class TestDeadlineBatcher:
    def test_launches_early_before_deadline_violation(self, cost):
        """With a deadline tighter than the coalescing wait, the batcher is
        ready at deadline - predicted_compute, not at max_wait."""
        batcher = DeadlineBatcher(max_batch=8, max_wait_us=10_000.0)
        batcher.bind(cost)
        queue = RequestQueue()
        deadline = 500.0 + 2_000.0
        fill(queue, [500.0], deadline_us=deadline)
        launch_by = deadline - batcher.predicted_compute_us(1)
        assert batcher.next_deadline_us(queue) == pytest.approx(launch_by)
        assert not batcher.ready(queue, launch_by - 1.0)
        assert batcher.ready(queue, launch_by)

    def test_deadline_already_past_at_arrival_is_ready_immediately(self, cost):
        """A queued request whose deadline has already passed dispatches at
        once — waiting cannot help it."""
        batcher = DeadlineBatcher(max_batch=8, max_wait_us=10_000.0)
        batcher.bind(cost)
        queue = RequestQueue()
        fill(queue, [100.0], deadline_us=50.0)
        assert batcher.ready(queue, 100.0)

    def test_no_deadline_falls_back_to_max_wait(self, cost):
        batcher = DeadlineBatcher(max_batch=8, max_wait_us=300.0)
        batcher.bind(cost)
        queue = RequestQueue()
        fill(queue, [100.0])
        assert batcher.next_deadline_us(queue) == pytest.approx(400.0)
        assert not batcher.ready(queue, 399.0)
        assert batcher.ready(queue, 400.0)

    def test_full_batch_ready_and_fifo_take(self, cost):
        batcher = DeadlineBatcher(max_batch=2)
        queue = RequestQueue()
        fill(queue, [1.0, 2.0, 3.0])
        assert batcher.ready(queue, 3.0)
        taken = batcher.take(queue)
        assert [request.index for request in taken] == [0, 1]
        assert len(queue) == 1

    def test_unbound_predictor_defaults_to_zero(self):
        batcher = DeadlineBatcher(max_batch=8, max_wait_us=1e6)
        queue = RequestQueue()
        fill(queue, [0.0], deadline_us=700.0)
        assert batcher.predicted_compute_us(4) == 0.0
        assert batcher.next_deadline_us(queue) == pytest.approx(700.0)

    def test_empty_queue(self, cost):
        batcher = DeadlineBatcher()
        queue = RequestQueue()
        assert not batcher.ready(queue, 1e9)
        assert batcher.next_deadline_us(queue) is None
        with pytest.raises(ConfigError):
            batcher.take(queue)

    def test_validation(self):
        with pytest.raises(ConfigError):
            DeadlineBatcher(max_batch=0)
        with pytest.raises(ConfigError):
            DeadlineBatcher(max_wait_us=float("inf"))
        with pytest.raises(ConfigError):
            DeadlineBatcher(slack_us=float("nan"))

    def test_simulated_early_launch_beats_max_wait_p99(self, cost):
        """Acceptance shape: at saturation, the deadline policy's early
        launches and shedding keep served p99 below the max-wait batcher's
        on the same trace."""
        trace = overload_trace(cost, count=64, multiplier=3.0)
        deadline_us = 4.0 * cost.config.cycles_to_us(cost.batch_cycles(1))
        fifo = ServingSimulator(
            trace,
            server=ServerConfig.from_policy(
                "fifo", cost, max_wait_us=2000.0, deadline_us=deadline_us
            ),
        ).run()
        deadline = ServingSimulator(
            trace,
            server=ServerConfig.from_policy(
                "deadline", cost, max_wait_us=2000.0, deadline_us=deadline_us
            ),
        ).run()
        assert deadline.shed_count > 0
        assert (
            deadline.latency_summary()["total"]["p99_us"]
            < fifo.latency_summary()["total"]["p99_us"]
        )
        assert deadline.deadline_miss_rate < fifo.deadline_miss_rate

    def test_deadline_trace_overrides_relative_sla(self, cost):
        """A finite per-request deadline carried by the trace wins over the
        server's relative SLA; a request without its own deadline falls
        back to the configured SLA instead of going unbounded."""
        trace = replay_trace([100.0, 200.0], deadlines_us=[50.0, math.inf])
        server = ServerConfig.from_policy("deadline", cost, deadline_us=50_000.0)
        report = ServingSimulator(trace, server=server).run()
        assert report.requests[0].shed
        assert report.requests[0].deadline_us == 50.0
        assert not report.requests[1].shed
        assert report.requests[1].deadline_us == pytest.approx(200.0 + 50_000.0)


class TestDispatchPolicies:
    @staticmethod
    def ctx(pool, now=0.0, size=1, pipeline=False, durations=None):
        durations = durations or {}
        return DispatchContext(
            pool=pool,
            now_us=now,
            batch_size=size,
            pipeline=pipeline,
            duration_us=lambda i: durations.get(i, 1.0),
        )

    def test_round_robin_rotates(self):
        pool = ArrayPool(3)
        policy = RoundRobinDispatch()
        order = []
        for _ in range(3):
            array = policy.select(self.ctx(pool))
            pool.claim(array)
            order.append(array)
        assert order == [0, 1, 2]
        pool.release(1, 10.0)
        assert policy.select(self.ctx(pool, now=10.0)) == 1

    def test_least_recent_prefers_longest_idle(self):
        pool = ArrayPool(2)
        array, _ = pool.select(0.0)
        pool.release(array, 5.0)
        # Array 1 has never run: it is the least recently released.
        assert LeastRecentDispatch().select(self.ctx(pool, now=5.0)) == 1

    def test_least_recent_prefers_warm_in_pipeline_mode(self):
        pool = ArrayPool(2)
        array, _ = pool.select(0.0)
        pool.release(array, 5.0)
        ctx = self.ctx(pool, now=5.0, pipeline=True)
        assert LeastRecentDispatch().select(ctx) == 0  # warm beats longer-idle

    def test_greedy_picks_fastest_idle(self):
        pool = ArrayPool(2)
        ctx = self.ctx(pool, durations={0: 9.0, 1: 3.0})
        assert GreedyWhenIdleDispatch().select(ctx) == 1

    def test_no_idle_array_raises(self):
        pool = ArrayPool(1)
        pool.claim(0)
        with pytest.raises(ConfigError):
            LeastRecentDispatch().select(self.ctx(pool))


class TestHeterogeneousPool:
    def test_small_array_wins_while_large_is_busy(self, cost, tiny_qnet):
        """Greedy dispatch on a {16x16, 4x4} pool: the first request takes
        the large (faster) array; a request arriving while it is busy goes
        to the idle small array immediately instead of queueing for the
        large one."""
        configs = (AcceleratorConfig(), AcceleratorConfig().with_array(4, 4))
        small_cost = ScheduledBatchCost(
            qnet=tiny_qnet, accel_config=configs[1]
        )
        large_us = cost.config.cycles_to_us(cost.batch_cycles(1))
        trace = replay_trace([0.0, large_us / 2.0])
        server = ServerConfig(
            cost=cost,
            batching=BatchPolicy(max_batch=1, max_wait_us=0.0),
            dispatch=GreedyWhenIdleDispatch(),
            array_configs=configs,
        )
        report = ServingSimulator(trace, server=server).run()
        assert [batch.array for batch in report.batches] == [0, 1]
        # The small array charged its own (slower) cycle figure...
        assert report.batches[1].cycles == small_cost.batch_cycles(1)
        assert report.batches[1].cycles > report.batches[0].cycles
        # ...and still finished before the large array would have freed.
        assert report.batches[1].dispatch_us == pytest.approx(large_us / 2.0)
        assert report.requests[1].queueing_us == pytest.approx(0.0)

    def test_greedy_prefers_large_array_when_both_idle(self, cost):
        configs = (AcceleratorConfig(), AcceleratorConfig().with_array(4, 4))
        server = ServerConfig(
            cost=cost,
            batching=BatchPolicy(max_batch=1, max_wait_us=0.0),
            dispatch=GreedyWhenIdleDispatch(),
            array_configs=configs,
        )
        report = ServingSimulator(replay_trace([0.0]), server=server).run()
        assert report.batches[0].array == 0
        assert report.batches[0].cycles == cost.batch_cycles(1)

    def test_cost_bank_memoizes_per_config(self, cost):
        bank = CostBank()
        small = AcceleratorConfig().with_array(8, 8)
        assert bank.resolve(cost, None) is cost
        assert bank.resolve(cost, cost.config) is cost
        rebuilt = bank.resolve(cost, small)
        assert rebuilt is not cost
        assert rebuilt.config == small
        # Two arrays with the same configuration share one model.
        assert bank.resolve(cost, AcceleratorConfig().with_array(8, 8)) is rebuilt

    def test_cost_bank_rebuilds_analytic(self, tiny_config):
        analytic = AnalyticBatchCost(network=tiny_config)
        small = AcceleratorConfig().with_array(8, 8)
        rebuilt = CostBank().resolve(analytic, small)
        assert isinstance(rebuilt, AnalyticBatchCost)
        assert rebuilt.config == small
        assert rebuilt.batch_cycles(1) != analytic.batch_cycles(1)

    def test_execute_mode_rejects_heterogeneous_pool(self, cost, tiny_images):
        configs = (AcceleratorConfig(), AcceleratorConfig().with_array(8, 8))
        server = ServerConfig(cost=cost, array_configs=configs)
        with pytest.raises(ConfigError):
            ServingSimulator(
                replay_trace(np.linspace(0, 10, len(tiny_images))),
                server=server,
                images=tiny_images,
                execute=True,
            )


class TestMultiTenant:
    def two_tenant_report(self, cost, tiny_config, weights=(1.0, 1.0), count=48):
        """Two tenants, each offered ~1x one array's capacity (2x total)."""
        analytic = AnalyticBatchCost(network=tiny_config)
        rate = cost.config.clock_mhz * 1e6 / cost.batch_cycles(1)
        rng = np.random.default_rng(5)
        tenants = [
            TenantSpec(
                name="a",
                trace=poisson_trace(rate, count, rng),
                weight=weights[0],
            ),
            TenantSpec(
                name="b",
                trace=poisson_trace(rate, count, rng),
                cost=analytic,
                weight=weights[1],
            ),
        ]
        server = ServerConfig(
            cost=cost, batching=BatchPolicy(max_batch=4, max_wait_us=50.0)
        )
        return ServingSimulator(server=server, tenants=tenants).run()

    def test_neither_tenant_starves_at_2x_saturation(self, cost, tiny_config):
        report = self.two_tenant_report(cost, tiny_config)
        assert report.tenants is not None
        by_name = {entry["tenant"]: entry for entry in report.tenants}
        assert by_name["a"]["served"] == 48
        assert by_name["b"]["served"] == 48
        # Weighted-fair service: both tenants dispatch throughout the run,
        # not one after the other drains.
        first = [batch.tenant for batch in report.batches[:10]]
        assert "a" in first and "b" in first
        # Equal weights: comparable latency (neither queue was parked).
        mean_a = by_name["a"]["latency_us"]["mean_us"]
        mean_b = by_name["b"]["latency_us"]["mean_us"]
        assert 0.5 < mean_a / mean_b < 2.0

    def test_weighted_tenant_gets_priority(self, cost, tiny_config):
        fair = self.two_tenant_report(cost, tiny_config, weights=(1.0, 1.0))
        skewed = self.two_tenant_report(cost, tiny_config, weights=(4.0, 1.0))
        fair_a = {e["tenant"]: e for e in fair.tenants}["a"]
        skewed_a = {e["tenant"]: e for e in skewed.tenants}["a"]
        assert (
            skewed_a["latency_us"]["mean_us"] < fair_a["latency_us"]["mean_us"]
        )

    def test_tenant_breakdown_in_report(self, cost, tiny_config):
        report = self.two_tenant_report(cost, tiny_config)
        payload = report.to_dict()
        assert payload["tenants"] == report.tenants
        assert "tenant a" in report.format_table()
        shares = [entry["served_share"] for entry in report.tenants]
        assert sum(shares) == pytest.approx(1.0)

    def test_tenant_validation(self, cost, tiny_config):
        trace = uniform_trace(100.0, 4)
        with pytest.raises(ConfigError):
            TenantSpec(name="a", trace=trace, weight=0.0)
        with pytest.raises(ConfigError):
            TenantSpec(name="a", trace=trace, deadline_us=-1.0)
        with pytest.raises(ConfigError):
            ServingSimulator(
                trace,
                server=ServerConfig(cost=cost),
                tenants=[TenantSpec(name="a", trace=trace)],
            )

    def test_shared_spec_policy_instance_not_cross_bound(self, cost, tiny_config):
        """One DeadlineBatcher instance reused by two TenantSpecs must not
        end up predicting from the last-bound tenant's cost model."""
        from repro.serve.simulator import _Tenant

        shared = DeadlineBatcher(max_batch=4)
        other = AnalyticBatchCost(network=tiny_config)
        server = ServerConfig(cost=cost)
        trace = uniform_trace(100.0, 4)
        first = _Tenant(
            TenantSpec(name="a", trace=trace, batching=shared), 0, server
        )
        second = _Tenant(
            TenantSpec(name="b", trace=trace, cost=other, batching=shared),
            1,
            server,
        )
        assert first.batching is not second.batching
        assert first.batching.predicted_compute_us(1) != (
            second.batching.predicted_compute_us(1)
        )

    def test_multi_tenant_rejects_execute(self, cost, tiny_images):
        trace = uniform_trace(100.0, 4)
        tenants = [
            TenantSpec(name="a", trace=trace),
            TenantSpec(name="b", trace=trace),
        ]
        with pytest.raises(ConfigError):
            ServingSimulator(
                server=ServerConfig(cost=cost),
                tenants=tenants,
                images=tiny_images,
                execute=True,
            )


class TestLegacyEquivalence:
    def test_classic_constructor_matches_fifo_server(self, cost):
        """The PR 2 constructor (trace, policy, cost) and the explicit fifo
        ServerConfig produce identical reports."""
        trace = overload_trace(cost, count=32)
        policy = BatchPolicy(max_batch=8, max_wait_us=30.0)
        legacy = ServingSimulator(trace, policy, cost).run()
        server = ServerConfig(cost=cost, batching=policy)
        explicit = ServingSimulator(trace, server=server).run()
        a, b = legacy.to_dict(), explicit.to_dict()
        for key in ("wall_seconds", "wall_rps"):
            a.pop(key), b.pop(key)
        assert a == b

    def test_server_and_legacy_args_conflict(self, cost):
        trace = uniform_trace(100.0, 4)
        server = ServerConfig(cost=cost)
        with pytest.raises(ConfigError):
            ServingSimulator(trace, BatchPolicy(), cost, server=server)
        # The documented exclusivity covers every classic argument, not
        # just (policy, cost) — silently ignoring arrays/pipeline would
        # mislead the caller about what was simulated.
        with pytest.raises(ConfigError):
            ServingSimulator(trace, server=server, arrays=4)
        with pytest.raises(ConfigError):
            ServingSimulator(trace, server=server, pipeline=True)
        with pytest.raises(ConfigError):
            ServingSimulator(trace, server=server, network_name="other")
        # Restating a legacy default alongside server= is harmless.
        assert ServingSimulator(
            trace, server=server, arrays=1, pipeline=False
        ).run().completed == 4
        with pytest.raises(ConfigError):
            ServingSimulator(trace)
        with pytest.raises(ConfigError):
            ServingSimulator()
        with pytest.raises(ConfigError):
            ServingSimulator(server=server, tenants=[])

    def test_repeated_runs_are_reproducible(self, cost):
        """Stateful dispatch policies (the round-robin pointer) reset per
        run: the same simulator produces identical placements twice."""
        trace = overload_trace(cost, count=17)
        server = ServerConfig.from_policy(
            "fifo", cost, arrays=2, dispatch="round-robin"
        )
        simulator = ServingSimulator(trace, server=server)
        first = [batch.array for batch in simulator.run().batches]
        second = [batch.array for batch in simulator.run().batches]
        assert first == second

    def test_tenants_do_not_share_chained_admission_state(
        self, cost, tiny_config
    ):
        """Server-default policies are deep-copied per tenant: with a
        chained deadline+queue-limit admission, each tenant's deadline
        shedder keeps its own cost predictor instead of all tenants
        predicting from the last-bound tenant's network."""
        from repro.serve.simulator import _Tenant

        other = AnalyticBatchCost(
            network=tiny_config, accel_config=AcceleratorConfig().with_array(4, 4)
        )
        server = ServerConfig.from_policy(
            "deadline", cost, deadline_us=1000.0, queue_limit=5
        )
        trace = uniform_trace(100.0, 4)
        first = _Tenant(TenantSpec(name="a", trace=trace), 0, server)
        second = _Tenant(
            TenantSpec(name="b", trace=trace, cost=other), 1, server
        )
        shed_a = first.admission.policies[0]
        shed_b = second.admission.policies[0]
        assert shed_a is not shed_b
        queue, pool = RequestQueue(), ArrayPool(1)
        assert shed_a.earliest_done_us(0.0, queue, pool) != (
            shed_b.earliest_done_us(0.0, queue, pool)
        )
