"""Fault layer: plan parsing, deterministic injection, retry/quarantine.

Covers :mod:`repro.serve.faults` and the fault paths woven through the
serving core and both drivers: the seeded :class:`FaultInjector`'s
reproducibility, the bounded retry/requeue split, array quarantine with
timed readmission, goodput accounting, the streaming fast path's
refusal of fault plans, and — the tentpole gate — exact decision and
fault-counter identity between the simulator clock and the live engine
path (:func:`replay_virtual`) under the same plan.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serve import (
    AnalyticBatchCost,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    ServerConfig,
    ServingSimulator,
    decision_diffs,
    load_fault_plan,
    poisson_trace,
    replay_virtual,
)
from repro.serve.core import group_requeues


@pytest.fixture(scope="module")
def tiny_cost(tiny_config):
    return AnalyticBatchCost(network=tiny_config)


def fault_server(cost, plan=None, retry=None, **overrides):
    settings = dict(
        max_batch=8, max_wait_us=2000.0, arrays=2, network_name="tiny"
    )
    settings.update(overrides)
    return ServerConfig.from_policy(
        "fifo", cost, fault_plan=plan, retry=retry, **settings
    )


def saturating_trace(count=200, seed=7):
    return poisson_trace(
        rate_rps=5000.0, count=count, rng=np.random.default_rng(seed)
    )


class TestFaultPlan:
    def test_empty_detection(self):
        assert FaultPlan().empty
        assert not FaultPlan(crash_batches=(3,)).empty
        assert not FaultPlan(crash_rate=0.1).empty
        assert not FaultPlan(array_down=((0, 100.0, 200.0),)).empty

    def test_detect_delay_prefers_hang(self):
        assert FaultPlan(hang_us=150.0).detect_delay_us(900.0) == 150.0
        # Without a hang, the crash surfaces when the batch would finish.
        assert FaultPlan().detect_delay_us(900.0) == 900.0

    def test_round_trips_through_dict(self):
        plan = FaultPlan(
            crash_batches=(1, 4),
            crash_rate=0.05,
            max_crashes=3,
            hang_us=10.0,
            array_down=((1, 100.0, 500.0),),
            seed=9,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_inline_spec_parses(self):
        plan = load_fault_plan("crash_batches=1:4,crash_rate=0.02,seed=11")
        assert plan.crash_batches == (1, 4)
        assert plan.crash_rate == 0.02
        assert plan.seed == 11

    def test_inline_array_down_windows(self):
        plan = load_fault_plan("array_down=0@100:500+1@900:950")
        assert plan.array_down == ((0, 100.0, 500.0), (1, 900.0, 950.0))

    def test_json_spec_parses(self):
        plan = load_fault_plan('{"crash_batches": [2], "hang_us": 5.0}')
        assert plan.crash_batches == (2,)
        assert plan.hang_us == 5.0

    def test_file_spec_parses(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"crash_rate": 0.1, "seed": 3}')
        plan = load_fault_plan(str(path))
        assert plan.crash_rate == 0.1
        assert plan.seed == 3

    def test_bad_specs_raise(self):
        with pytest.raises(ConfigError):
            load_fault_plan("crash_rate=not-a-number")
        with pytest.raises(ConfigError):
            load_fault_plan("no_such_field=1")
        with pytest.raises(ConfigError):
            load_fault_plan('{"crash_rate": 2.0}')  # probability > 1
        with pytest.raises(ConfigError):
            load_fault_plan("array_down=0@500:100")  # window ends first

    #: Table of invalid plan specs: (id, spec, fragment the ConfigError
    #: must contain — every rejection names the offending field).
    INVALID_SPECS = [
        ("negative-crash-rate", '{"crash_rate": -0.5}', "crash_rate"),
        ("crash-rate-above-one", "crash_rate=1.5", "crash_rate"),
        ("negative-corrupt-rate", '{"corrupt_rate": -0.1}', "corrupt_rate"),
        ("corrupt-rate-above-one", "corrupt_rate=2", "corrupt_rate"),
        ("zero-corrupt-bits", '{"corrupt_bits": 0}', "corrupt_bits"),
        ("too-many-corrupt-bits", "corrupt_bits=17", "corrupt_bits"),
        ("bad-corrupt-target", "corrupt_target=bias", "corrupt_target"),
        ("negative-max-crashes", '{"max_crashes": -1}', "max_crashes"),
        ("negative-hang", "hang_us=-10", "hang_us"),
        ("infinite-hang", '{"hang_us": Infinity}', "hang_us"),
        ("unknown-key", '{"flip_rate": 0.1}', "flip_rate"),
        ("unknown-inline-key", "flip_rate=0.1", "flip_rate"),
        ("inverted-window", '{"array_down": [[0, 500.0, 100.0]]}', "array_down"),
        (
            "overlapping-windows",
            '{"array_down": [[0, 100.0, 500.0], [0, 400.0, 900.0]]}',
            "overlap",
        ),
        ("empty-failure-group", '{"failure_groups": [[[], 0.0, 10.0]]}', "arrays"),
        (
            "inverted-group-window",
            '{"failure_groups": [[[0, 1], 50.0, 10.0]]}',
            "failure_groups",
        ),
        ("malformed-window", "array_down=0-100-500", "array@start:end"),
        ("malformed-group", "failure_groups=0:1@", "array:array@start:end"),
        ("not-key-value", "crash_rate", "key=value"),
        ("json-not-object", "{", "JSON"),
    ]

    @pytest.mark.parametrize(
        ("spec", "fragment"),
        [entry[1:] for entry in INVALID_SPECS],
        ids=[entry[0] for entry in INVALID_SPECS],
    )
    def test_invalid_specs_name_the_field(self, spec, fragment):
        with pytest.raises(ConfigError) as excinfo:
            load_fault_plan(spec)
        assert fragment in str(excinfo.value)

    def test_adjacent_windows_do_not_overlap(self):
        # end == start of the next window is back-to-back, not overlap.
        plan = load_fault_plan(
            '{"array_down": [[0, 100.0, 500.0], [0, 500.0, 900.0]]}'
        )
        assert len(plan.array_down) == 2
        # Same windows on different arrays never conflict either.
        load_fault_plan('{"array_down": [[0, 0.0, 10.0], [1, 0.0, 10.0]]}')

    def test_corruption_round_trips_through_dict(self):
        plan = FaultPlan(
            corrupt_batches=(2, 7),
            corrupt_rate=0.1,
            corrupt_bits=3,
            corrupt_target="accumulator",
            failure_groups=(((0, 2), 100.0, 400.0),),
            seed=5,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_inline_corruption_and_groups_parse(self):
        plan = load_fault_plan(
            "corrupt_batches=2:7,corrupt_rate=0.1,corrupt_bits=3,"
            "corrupt_target=accumulator,failure_groups=0:2@100:400"
        )
        assert plan.corrupt_batches == (2, 7)
        assert plan.corrupt_rate == 0.1
        assert plan.corrupt_bits == 3
        assert plan.corrupt_target == "accumulator"
        assert plan.failure_groups == (((0, 2), 100.0, 400.0),)
        assert plan.corrupts and not plan.empty


class TestFaultInjector:
    def test_crash_batch_ordinals_match_once(self):
        # Ordinals are 0-based placement counts: (1,) dooms the second
        # batch the core places, exactly once.
        injector = FaultInjector(FaultPlan(crash_batches=(1,)))
        assert not injector.should_crash(0, 0.0, members=())
        assert injector.should_crash(0, 10.0, members=())
        assert not injector.should_crash(0, 20.0, members=())

    def test_crash_rate_is_seed_deterministic(self):
        plan = FaultPlan(crash_rate=0.3, seed=5)
        draws = []
        for _ in range(2):
            injector = FaultInjector(plan)
            draws.append(
                [injector.should_crash(0, float(i), ()) for i in range(50)]
            )
        assert draws[0] == draws[1]
        assert any(draws[0]) and not all(draws[0])

    def test_max_crashes_caps_injection(self):
        injector = FaultInjector(FaultPlan(crash_rate=1.0, max_crashes=2))
        hits = [injector.should_crash(0, float(i), ()) for i in range(10)]
        assert sum(hits) == 2

    def test_array_down_window(self):
        injector = FaultInjector(
            FaultPlan(array_down=((1, 100.0, 200.0),))
        )
        assert not injector.should_crash(0, 150.0, ())  # other array
        assert injector.should_crash(1, 150.0, ())
        assert not injector.should_crash(1, 250.0, ())  # window passed


def _request(attempts: int, deadline_us: float = float("inf")):
    return type(
        "Req", (), {"attempts": attempts, "deadline_us": deadline_us}
    )()


class TestRetryPolicy:
    def test_backoff_grows_per_attempt(self):
        retry = RetryPolicy(backoff_us=100.0, backoff_multiplier=2.0)
        assert retry.requeue_at_us(1000.0, _request(0)) == 1100.0
        assert retry.requeue_at_us(1000.0, _request(1)) == 1200.0
        assert retry.requeue_at_us(1000.0, _request(2)) == 1400.0

    def test_backoff_clamped_to_deadline(self):
        retry = RetryPolicy(backoff_us=10_000.0)
        # Backoff would overshoot the deadline: requeue at the deadline.
        assert retry.requeue_at_us(1000.0, _request(0, 4000.0)) == 4000.0
        # A deadline already in the past clamps to now (retry immediately).
        assert retry.requeue_at_us(1000.0, _request(0, 500.0)) == 1000.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_us=-1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(recovery_us=-5.0)


def test_group_requeues_coalesces_consecutive_instants():
    groups = group_requeues([("a", 10.0), ("b", 10.0), ("c", 25.0), ("d", 10.0)])
    assert groups == [
        (10.0, ("a", "b")),
        (25.0, ("c",)),
        (10.0, ("d",)),
    ]
    assert group_requeues([]) == []


class TestSimulatedFaults:
    def test_transient_crashes_all_requests_complete(self, tiny_cost):
        plan = FaultPlan(crash_batches=(1, 3), crash_rate=0.05, seed=3)
        report = ServingSimulator(
            saturating_trace(), server=fault_server(tiny_cost, plan)
        ).run()
        assert report.goodput == 1.0
        assert report.failed_count == 0
        faults = report.faults
        assert faults["crashes"] >= 2
        assert faults["retries"] > 0
        assert faults["failed"] == 0
        # Every quarantined array re-entered service within the bounded
        # readmission delay.
        assert faults["quarantines"] == faults["recoveries"] > 0
        assert faults["recovery_max_us"] <= RetryPolicy().recovery_us

    def test_exhausted_budget_fails_requests(self, tiny_cost):
        # Budget of one attempt: any crashed batch's members terminally
        # fail instead of retrying.
        plan = FaultPlan(crash_batches=(1,), seed=3)
        report = ServingSimulator(
            saturating_trace(),
            server=fault_server(
                tiny_cost, plan, retry=RetryPolicy(max_attempts=1)
            ),
        ).run()
        assert report.failed_count > 0
        assert report.goodput < 1.0
        assert report.faults["retries"] == 0
        assert report.faults["failed"] == report.failed_count
        # Failed requests are terminal in the record table too.
        failed = [r for r in report.requests if r.failed]
        assert len(failed) == report.failed_count
        assert all(not r.shed for r in failed)

    def test_crashed_batches_are_flagged_in_the_table(self, tiny_cost):
        plan = FaultPlan(crash_batches=(1,), seed=3)
        report = ServingSimulator(
            saturating_trace(), server=fault_server(tiny_cost, plan)
        ).run()
        crashed = [b for b in report.batches if b.crashed]
        assert len(crashed) == 1
        # The retried members reappear in a later, completing batch.
        members = set(crashed[0].request_indices)
        completing = [
            b
            for b in report.batches
            if not b.crashed and members & set(b.request_indices)
        ]
        assert completing

    def test_no_plan_attaches_no_fault_stats(self, tiny_cost):
        report = ServingSimulator(
            saturating_trace(), server=fault_server(tiny_cost)
        ).run()
        assert report.faults is None
        assert report.failed_count == 0
        assert report.goodput == 1.0

    def test_streaming_fast_path_refuses_fault_plans(self, tiny_cost):
        plan = FaultPlan(crash_batches=(1,))
        simulator = ServingSimulator(
            saturating_trace(count=40), server=fault_server(tiny_cost, plan)
        )
        with pytest.raises(ConfigError):
            simulator.run(record_requests=False)

    def test_deterministic_rerun(self, tiny_cost):
        plan = FaultPlan(crash_rate=0.1, seed=17)
        reports = [
            ServingSimulator(
                saturating_trace(), server=fault_server(tiny_cost, plan)
            ).run()
            for _ in range(2)
        ]
        first, second = (r.to_dict() for r in reports)
        for report in (first, second):
            report.pop("wall_seconds"), report.pop("wall_rps")
        assert first == second


class TestSimLiveFaultIdentity:
    @pytest.mark.parametrize(
        "plan",
        [
            FaultPlan(crash_batches=(1, 4), seed=3),
            FaultPlan(crash_rate=0.08, seed=11),
            FaultPlan(crash_batches=(2,), crash_rate=0.05, hang_us=40.0, seed=5),
            FaultPlan(array_down=((0, 0.0, 4000.0),), seed=1),
        ],
        ids=["ordinals", "rate", "hang", "array-down"],
    )
    def test_replay_matches_simulator_under_faults(self, tiny_cost, plan):
        trace = saturating_trace()
        sim = ServingSimulator(
            trace, server=fault_server(tiny_cost, plan)
        ).run()
        live = replay_virtual(fault_server(tiny_cost, plan), trace)
        assert decision_diffs(sim, live) == []
        # Identity extends to the fault counters themselves.
        assert sim.faults == live.faults
        assert sim.failed_count == live.failed_count
        assert sim.shed_count == live.shed_count

    def test_retry_budget_exhaustion_matches_too(self, tiny_cost):
        plan = FaultPlan(crash_batches=(1, 2), seed=3)
        retry = RetryPolicy(max_attempts=1)
        trace = saturating_trace()
        sim = ServingSimulator(
            trace, server=fault_server(tiny_cost, plan, retry=retry)
        ).run()
        live = replay_virtual(
            fault_server(tiny_cost, plan, retry=retry), trace
        )
        assert decision_diffs(sim, live) == []
        assert sim.faults == live.faults
        assert sim.failed_count == live.failed_count > 0
