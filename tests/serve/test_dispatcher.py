"""Array pool: deterministic placement and utilization accounting."""

import pytest

from repro.errors import ConfigError
from repro.serve.dispatcher import ArrayPool


def claim(pool, batch_size, duration_us, now_us=0.0):
    array, warm = pool.select(now_us)
    pool.charge(array, batch_size, duration_us, warm=warm)
    return array


def test_lowest_id_first_and_release():
    pool = ArrayPool(3)
    assert pool.idle_count == 3
    assert claim(pool, 1, 10.0) == 0
    assert claim(pool, 1, 10.0) == 1
    pool.release(0)
    assert claim(pool, 1, 10.0) == 0  # freed array is reused first
    assert pool.idle_count == 1


def test_stats_accumulate():
    pool = ArrayPool(2)
    claim(pool, 4, 100.0)
    pool.release(0)
    claim(pool, 2, 50.0)
    stat = pool.stats[0]
    assert stat.busy_us == pytest.approx(150.0)
    assert stat.batches == 2
    assert stat.requests == 6
    assert stat.utilization(300.0) == pytest.approx(0.5)
    assert pool.stats[1].utilization(300.0) == 0.0


def test_exhausted_pool_raises():
    pool = ArrayPool(1)
    claim(pool, 1, 1.0)
    assert not pool.has_idle()
    with pytest.raises(ConfigError):
        pool.select(1.0)


def test_zero_arrays_rejected():
    with pytest.raises(ConfigError):
        ArrayPool(0)


def test_zero_makespan_utilization():
    assert ArrayPool(1).stats[0].utilization(0.0) == 0.0


def test_utilization_spread_gauges_placement_fairness():
    pool = ArrayPool(2)
    claim(pool, 1, 100.0)
    assert pool.utilization_spread(200.0) == pytest.approx(0.5)
    pool.release(0, 100.0)
    claim(pool, 1, 100.0, now_us=150.0)  # LRU sends the second batch to #1
    assert pool.utilization_spread(200.0) == pytest.approx(0.0)


def test_earliest_idle_us_tracks_in_flight_work():
    pool = ArrayPool(1)
    assert pool.earliest_idle_us(5.0) == 5.0  # an array is idle
    array, _ = pool.select(10.0)
    pool.charge(array, 1, 40.0, now_us=10.0)
    assert pool.earliest_idle_us(20.0) == 50.0
    pool.release(array, 50.0)
    assert pool.earliest_idle_us(60.0) == 60.0


class TestBacklogGreedyRegression:
    """A fast-but-backlogged array must beat a slow-but-idle one.

    The idle-only greedy dispatch is forced onto whatever array happens
    to be free; on a pool with a ~5x speed gap that means a burst
    regularly lands batches on the slow array while the fast one is
    about to free up.  BacklogGreedyDispatch ranks arrays by predicted
    *completion* (queue delay + duration) and stacks behind the fast
    array instead — the regression this pins down is both the placement
    counts and the end-to-end latency win.
    """

    def heterogeneous_run(self, dispatch):
        import numpy as np

        from repro.capsnet.config import tiny_capsnet_config
        from repro.hw.config import AcceleratorConfig
        from repro.serve import (
            AnalyticBatchCost,
            ArrivalTrace,
            ServerConfig,
            ServingSimulator,
        )

        cost = AnalyticBatchCost(network=tiny_capsnet_config())
        accel = AcceleratorConfig()
        server = ServerConfig.from_policy(
            "fifo",
            cost,
            max_batch=8,
            max_wait_us=0.0,
            dispatch=dispatch,
            array_configs=[accel.with_array(16, 16), accel.with_array(2, 2)],
            network_name="tiny",
        )
        # A near-simultaneous burst: every batch formation happens while
        # both arrays' queues are observable, so the policies separate.
        trace = ArrivalTrace("burst", 1.0 + 0.001 * np.arange(64))
        return ServingSimulator(trace, server=server).run()

    def test_stacking_beats_idle_only_placement(self):
        idle_only = self.heterogeneous_run("greedy")
        backlog = self.heterogeneous_run("greedy-backlog")
        assert backlog.completed == idle_only.completed == 64
        # Fewer batches strand on the slow array...
        assert (
            backlog.array_stats[1]["batches"]
            < idle_only.array_stats[1]["batches"]
        )
        # ...and the run finishes measurably earlier, tail included.
        assert backlog.makespan_us < 0.9 * idle_only.makespan_us
        assert (
            backlog.latency_summary()["total"]["p99_us"]
            < idle_only.latency_summary()["total"]["p99_us"]
        )

    def test_homogeneous_pool_is_unaffected(self):
        import numpy as np

        from repro.capsnet.config import tiny_capsnet_config
        from repro.serve import (
            AnalyticBatchCost,
            ArrivalTrace,
            ServerConfig,
            ServingSimulator,
        )

        cost = AnalyticBatchCost(network=tiny_capsnet_config())
        trace = ArrivalTrace("burst", 1.0 + 0.001 * np.arange(64))

        def run(dispatch):
            server = ServerConfig.from_policy(
                "fifo",
                cost,
                max_batch=8,
                max_wait_us=0.0,
                dispatch=dispatch,
                arrays=2,
                network_name="tiny",
            )
            return ServingSimulator(trace, server=server).run()

        idle_only, backlog = run("greedy"), run("greedy-backlog")
        assert backlog.makespan_us == idle_only.makespan_us
        assert [s["batches"] for s in backlog.array_stats] == [
            s["batches"] for s in idle_only.array_stats
        ]
