"""Pipelined serving: warm/cold charging, drain-saved accounting, dispatch."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serve import (
    AnalyticBatchCost,
    BatchPolicy,
    ScheduledBatchCost,
    ServingSimulator,
    poisson_trace,
    replay_trace,
    uniform_trace,
)
from repro.serve.dispatcher import ArrayPool


@pytest.fixture(scope="module")
def cost(tiny_qnet):
    return ScheduledBatchCost(qnet=tiny_qnet, pipeline=True)


def saturating_trace(cost, count=40, multiplier=3.0, seed=11):
    rate = multiplier * cost.config.clock_mhz * 1e6 / cost.batch_cycles(1)
    return poisson_trace(rate, count, np.random.default_rng(seed))


class TestWarmCosts:
    def test_warm_at_most_cold(self, cost):
        for batch in (1, 2, 8):
            assert cost.warm_batch_cycles(batch) <= cost.batch_cycles(batch)
            assert cost.drain_saved_cycles(batch) == (
                cost.batch_cycles(batch) - cost.warm_batch_cycles(batch)
            )

    def test_warm_needs_pipeline_flag(self, tiny_qnet):
        plain = ScheduledBatchCost(qnet=tiny_qnet)
        with pytest.raises(ConfigError):
            plain.warm_batch_cycles(1)

    def test_sequential_accounting_rejected(self, tiny_qnet):
        with pytest.raises(ConfigError):
            ScheduledBatchCost(qnet=tiny_qnet, accounting="sequential", pipeline=True)

    def test_analytic_warm_at_most_cold(self, tiny_config):
        analytic = AnalyticBatchCost(network=tiny_config, pipeline=True)
        for batch in (1, 4):
            assert analytic.warm_batch_cycles(batch) <= analytic.batch_cycles(batch)

    def test_analytic_warm_needs_pipeline_flag(self, tiny_config):
        with pytest.raises(ConfigError):
            AnalyticBatchCost(network=tiny_config).warm_batch_cycles(1)

    def test_execute_returns_warm_cycles_and_identical_outputs(self, cost, tiny_images):
        cold_cycles, cold_result = cost.execute(tiny_images[:2], warm=False)
        warm_cycles, warm_result = cost.execute(tiny_images[:2], warm=True)
        assert cold_cycles == cost.batch_cycles(2)
        assert warm_cycles == cost.warm_batch_cycles(2)
        np.testing.assert_array_equal(cold_result.predictions, warm_result.predictions)


class TestWarmDispatch:
    def test_back_to_back_batches_run_warm(self, cost):
        report = ServingSimulator(
            saturating_trace(cost),
            BatchPolicy(max_batch=4, max_wait_us=20.0),
            cost,
            pipeline=True,
        ).run()
        # Under saturation every batch after the first finds the queue
        # non-empty and dispatches the instant the array frees.
        assert report.warm_batches == len(report.batches) - 1
        for batch in report.batches[1:]:
            assert batch.warm
            assert batch.cycles == cost.warm_batch_cycles(batch.size)
            assert batch.drain_saved_us == pytest.approx(
                cost.config.cycles_to_us(cost.drain_saved_cycles(batch.size))
            )
        assert not report.batches[0].warm
        assert report.batches[0].cycles == cost.batch_cycles(report.batches[0].size)

    def test_idle_gaps_dispatch_cold(self, cost):
        # Arrivals far apart: the array always drains before the next
        # request shows up, so nothing runs warm.
        gap = 10 * cost.config.cycles_to_us(cost.batch_cycles(1))
        trace = replay_trace(np.arange(1, 9) * gap)
        report = ServingSimulator(
            trace, BatchPolicy(max_batch=1, max_wait_us=0.0), cost, pipeline=True
        ).run()
        assert report.warm_batches == 0
        assert report.drain_saved_total_us == 0.0

    def test_pipeline_improves_saturated_throughput(self, cost, tiny_qnet):
        trace = saturating_trace(cost)
        policy = BatchPolicy(max_batch=4, max_wait_us=20.0)
        cold = ServingSimulator(trace, policy, ScheduledBatchCost(qnet=tiny_qnet)).run()
        warm = ServingSimulator(trace, policy, cost, pipeline=True).run()
        assert warm.throughput_rps > cold.throughput_rps
        assert warm.drain_saved_total_us > 0.0

    def test_pipeline_off_unchanged_by_pipeline_capable_cost(self, cost, tiny_qnet):
        trace = saturating_trace(cost)
        policy = BatchPolicy(max_batch=4, max_wait_us=20.0)
        plain = ServingSimulator(
            trace, policy, ScheduledBatchCost(qnet=tiny_qnet)
        ).run()
        off = ServingSimulator(trace, policy, cost, pipeline=False).run()
        a, b = plain.to_dict(), off.to_dict()
        for key in ("wall_seconds", "wall_rps"):
            a.pop(key), b.pop(key)
        assert a == b

    def test_pipeline_needs_pipeline_cost(self, tiny_qnet):
        plain = ScheduledBatchCost(qnet=tiny_qnet)
        trace = uniform_trace(100.0, 4)
        with pytest.raises(ConfigError):
            ServingSimulator(trace, BatchPolicy(), plain, pipeline=True)

    def test_execute_mode_predictions_bit_exact(self, cost, tiny_qnet, tiny_images):
        from repro.hw.scheduler import BatchScheduler

        trace = saturating_trace(cost, count=4)
        report = ServingSimulator(
            trace,
            BatchPolicy(max_batch=4, max_wait_us=20.0),
            cost,
            images=tiny_images,
            execute=True,
            pipeline=True,
        ).run()
        assert report.warm_batches >= 0  # ran to completion
        scheduler = BatchScheduler(tiny_qnet)
        for batch in report.batches:
            expected = scheduler.run_batch(tiny_images[batch.request_indices])
            np.testing.assert_array_equal(
                report.predictions[batch.request_indices], expected.predictions
            )

    def test_report_fields(self, cost):
        report = ServingSimulator(
            saturating_trace(cost),
            BatchPolicy(max_batch=4, max_wait_us=20.0),
            cost,
            pipeline=True,
        ).run()
        payload = report.to_dict()
        assert payload["pipeline"] is True
        assert payload["warm_batches"] == report.warm_batches
        assert payload["drain_saved_us"] == pytest.approx(report.drain_saved_total_us)
        assert "drain_saved" in report.latency_summary()
        assert "warm batches" in report.format_table()
        # The three-way decomposition still sums to the latency.
        for record in report.requests:
            assert record.queueing_us + record.batching_us + record.compute_us == (
                pytest.approx(record.latency_us)
            )


class TestPairKeyedWarmCosts:
    """The warm cost is keyed by the (prev_batch_size, batch_size) pair."""

    def test_pair_reduces_to_homogeneous_when_sizes_match(self, cost, tiny_config):
        analytic = AnalyticBatchCost(network=tiny_config, pipeline=True)
        for model in (cost, analytic):
            assert model.warm_batch_cycles(4, 4) == model.warm_batch_cycles(4)
            assert model.warm_batch_cycles(2, None) == model.warm_batch_cycles(2)

    def test_mixed_pairs_differ_from_homogeneous_probe(self, cost):
        """A batch following a different-size predecessor genuinely costs
        differently than the homogeneous-stream assumption (the ROADMAP
        open item this closes): a small batch after a large one hides
        more prestage under the longer routing tail, and vice versa."""
        assert cost.warm_batch_cycles(1, 4) != cost.warm_batch_cycles(1)
        assert cost.warm_batch_cycles(4, 1) != cost.warm_batch_cycles(4)

    def test_pair_never_exceeds_cold(self, cost):
        for prev, current in [(1, 4), (4, 1), (8, 2), (2, 8)]:
            warm = cost.warm_batch_cycles(current, prev)
            assert warm <= cost.batch_cycles(current)
            assert cost.drain_saved_cycles(current, prev) == (
                cost.batch_cycles(current) - warm
            )

    def test_pair_crosschecks_against_stream_scheduler(self, cost, tiny_qnet):
        """The scheduled pair cost is exactly the settled transition-batch
        marginal of a mixed-size stream through PipelinedStreamScheduler."""
        from repro.hw.scheduler import PipelinedStreamScheduler
        from repro.serve.costs import PAIR_PROBE_PREFIX, PAIR_PROBE_SUFFIX

        pipelined = PipelinedStreamScheduler(tiny_qnet)
        for prev, current in [(4, 1), (1, 4)]:
            timing = pipelined.probe_timing(
                [prev] * PAIR_PROBE_PREFIX + [current] * PAIR_PROBE_SUFFIX
            )
            expected = min(
                timing.batches[PAIR_PROBE_PREFIX].marginal_cycles,
                cost.batch_cycles(current),
            )
            assert cost.warm_batch_cycles(current, prev) == expected

    def test_analytic_pair_crosschecks_scheduled(self, cost, tiny_config):
        analytic = AnalyticBatchCost(network=tiny_config, pipeline=True)
        for prev, current in [(4, 1), (1, 4), (8, 2)]:
            exact = cost.warm_batch_cycles(current, prev)
            model = analytic.warm_batch_cycles(current, prev)
            assert abs(model - exact) / exact < 0.05

    def test_invalid_prev_size_rejected(self, cost, tiny_config):
        analytic = AnalyticBatchCost(network=tiny_config, pipeline=True)
        for model in (cost, analytic):
            with pytest.raises(ConfigError):
                model.warm_batch_cycles(4, 0)

    def test_simulator_charges_pair_cost_on_mixed_handoff(self, cost):
        """A solo batch, then four requests queued while it runs: the
        4-batch dispatches warm the instant the 1-batch finishes and is
        charged the (1, 4) pair cost, not the homogeneous 4-stream figure."""
        # Requests 1-4 arrive while request 0's batch occupies the array.
        trace = replay_trace([0.0, 1.0, 2.0, 3.0, 4.0])
        report = ServingSimulator(
            trace, BatchPolicy(max_batch=4, max_wait_us=0.0), cost, pipeline=True
        ).run()
        assert [batch.size for batch in report.batches] == [1, 4]
        tail = report.batches[1]
        assert tail.warm
        assert tail.cycles == cost.warm_batch_cycles(4, prev_size=1)
        assert tail.cycles != cost.warm_batch_cycles(4)
        assert tail.drain_saved_us == pytest.approx(
            cost.config.cycles_to_us(cost.drain_saved_cycles(4, prev_size=1))
        )

    def test_execute_charges_pair_cost(self, cost, tiny_images):
        cycles, result = cost.execute(tiny_images[:2], warm=True, prev_size=4)
        assert cycles == cost.warm_batch_cycles(2, prev_size=4)
        cold_cycles, cold_result = cost.execute(tiny_images[:2])
        np.testing.assert_array_equal(result.predictions, cold_result.predictions)


class TestWarmArrayPreference:
    def test_prefers_just_freed_array(self):
        pool = ArrayPool(2)
        a, warm = pool.select(0.0)
        assert (a, warm) == (0, False)
        pool.charge(a, 1, 10.0)
        pool.release(a, 10.0)
        # Array 0 was just released at t=10; prefer it over cold array 1.
        array, warm = pool.select(10.0, prefer_warm=True)
        assert (array, warm) == (0, True)

    def test_without_preference_least_recently_released_wins(self):
        pool = ArrayPool(2)
        first, _ = pool.select(0.0)
        pool.release(first, 5.0)
        # Array 1 has been idle since the start — longer than array 0,
        # which was just released — so it wins the cold selection even
        # though array 0 happens to be warm.
        array, warm = pool.select(5.0)
        assert (array, warm) == (1, False)
        array, warm = pool.select(5.0)
        assert (array, warm) == (0, True)

    def test_warm_counter_tracked(self):
        pool = ArrayPool(1)
        array, _ = pool.select(0.0)
        pool.charge(array, 2, 7.0, warm=False)
        pool.release(array, 7.0)
        array, warm = pool.select(7.0, prefer_warm=True)
        assert warm
        pool.charge(array, 2, 5.0, warm=True)
        assert pool.stats[0].warm_batches == 1
        assert pool.stats[0].batches == 2

    def test_charge_accumulates_requests(self):
        pool = ArrayPool(2)
        array, _ = pool.select(0.0)
        pool.charge(array, 3, 12.0)
        assert array == 0
        assert pool.stats[0].busy_us == 12.0
        assert pool.stats[0].requests == 3
