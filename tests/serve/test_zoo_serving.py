"""Zoo networks through the serving stack: costs, simulator, executors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler.zoo import get_network, zoo_names
from repro.serve import (
    AnalyticBatchCost,
    CompiledStreamExecutor,
    ScheduledBatchCost,
    ServerConfig,
    ServingSimulator,
    TenantSpec,
    uniform_trace,
)
from tests.compiler.conftest import zoo_images


class TestZooCosts:
    @pytest.mark.parametrize("name", ["tiny", "mlp", "cnn", "tiny-res"])
    def test_program_pricing_matches_scheduled(self, name):
        """The analytic program path is bit-exact against real scheduling."""
        scheduled = ScheduledBatchCost(qnet=name, pipeline=True)
        analytic = AnalyticBatchCost(network=name, pipeline=True)
        assert analytic.network_key == scheduled.network_key
        for batch in (1, 4):
            assert analytic.batch_cycles(batch) == scheduled.batch_cycles(batch)
            assert analytic.warm_batch_cycles(
                batch, batch
            ) == scheduled.warm_batch_cycles(batch, batch)

    def test_network_key_is_shared_across_cost_kinds(self, tiny_qnet, tiny_config):
        by_name = ScheduledBatchCost(qnet="tiny")
        by_qnet = ScheduledBatchCost(qnet=tiny_qnet)
        by_config = AnalyticBatchCost(network=tiny_config)
        assert by_name.network_key == by_qnet.network_key == by_config.network_key

    def test_signatures_distinguish_pricing_paths(self, tiny_config):
        analytic_model = AnalyticBatchCost(network=tiny_config)
        analytic_program = AnalyticBatchCost(network="tiny-res")
        assert analytic_model.signature()[0] == "analytic"
        assert analytic_program.signature()[0] == "analytic-program"

    def test_every_zoo_network_prices(self):
        for name in zoo_names():
            cost = AnalyticBatchCost(network=name, pipeline=True)
            assert cost.batch_cycles(2) > 0


class TestZooSimulation:
    def test_multi_tenant_zoo_trace(self):
        """Mixed zoo tenants share one pool under weighted-fair service."""
        cost = AnalyticBatchCost(network="tiny", pipeline=True)
        server = ServerConfig.from_policy("fifo", cost, arrays=2, max_batch=4)
        tenants = [
            TenantSpec(name="caps", trace=uniform_trace(2000.0, 10)),
            TenantSpec(
                name="mlp",
                trace=uniform_trace(1500.0, 10),
                cost=AnalyticBatchCost(network="mlp", pipeline=True),
            ),
            TenantSpec(
                name="res",
                trace=uniform_trace(1000.0, 10),
                cost=AnalyticBatchCost(network="tiny-res", pipeline=True),
                weight=2.0,
            ),
        ]
        report = ServingSimulator(server=server, tenants=tenants).run()
        assert len(report.served) == 30
        assert {record.tenant for record in report.served} == {"caps", "mlp", "res"}
        assert {entry["tenant"] for entry in report.tenants} == {"caps", "mlp", "res"}

    def test_executed_simulation_serves_zoo_baseline(self):
        cost = ScheduledBatchCost(qnet="mlp")
        server = ServerConfig.from_policy("fifo", cost, max_batch=4)
        trace = uniform_trace(1000.0, 8)
        images = zoo_images("mlp", count=8)
        report = ServingSimulator(
            trace, server=server, images=images, execute=True
        ).run()
        assert len(report.served) == 8
        assert report.predictions is not None
        assert report.predictions.shape == (8,)


class TestCompiledStreamExecutor:
    def test_serves_non_capsnet_networks(self):
        network = get_network("mlp")
        executor = CompiledStreamExecutor(network)
        images = zoo_images("mlp", count=4)
        predictions = executor.execute(0, images)
        want = ScheduledBatchCost(qnet="mlp").execute(images)[1].predictions
        assert np.array_equal(predictions, want)
        executor.close()

    def test_tiles_channels_for_multi_channel_networks(self):
        executor = CompiledStreamExecutor(get_network("cifar"))
        images = zoo_images("cifar", count=1)[:, 0]  # grayscale (B, H, W)
        predictions = executor.execute(0, images)
        assert predictions.shape == (1,)
        executor.close()
