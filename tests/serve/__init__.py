"""Tests for the serving simulator subsystem."""
