"""Benchmark: regenerate Table II, Table III and Fig 18 (synthesis)."""

import pytest

from repro.experiments import fig18, table2, table3
from repro.perf.calibration import PAPER_TABLE2


def test_table2(benchmark):
    result = benchmark(table2.run)
    values = {row["parameter"]: row["ours"] for row in result.rows}
    assert values["area_mm2"] == pytest.approx(PAPER_TABLE2["area_mm2"], rel=0.2)
    assert values["power_mw"] == pytest.approx(PAPER_TABLE2["power_mw"], rel=0.2)
    benchmark.extra_info["area_mm2"] = round(values["area_mm2"], 3)
    benchmark.extra_info["power_mw"] = round(values["power_mw"], 1)
    print(table2.format_report(result))


def test_table3(benchmark):
    result = benchmark(table3.run)
    assert result.max_relative_error() < 0.30
    benchmark.extra_info["max_rel_error"] = round(result.max_relative_error(), 3)
    print(table3.format_report(result))


def test_fig18(benchmark):
    result = benchmark(fig18.run)
    assert result.buffers_dominate()
    benchmark.extra_info["area_pct"] = {
        name: round(fraction * 100, 1) for name, fraction in result.area_fractions.items()
    }
    print(fig18.format_report(result))
