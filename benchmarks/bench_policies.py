"""Serving-policy benchmark: fifo vs deadline vs greedy at saturation.

Drives the discrete-event serving simulator under each serving-policy
preset (``repro.serve.policies``) on the **same** saturating Poisson
trace — the ``bench_serving.py`` scenario: arrivals at a multiple of the
batch-1 service capacity — with one per-request SLA shared by every
policy:

* ``fifo``   — the classic max-batch + max-wait batcher (PR 2 default);
* ``deadline`` — SLA-aware: shed-infeasible admission plus early launch
  before the oldest queued deadline becomes unmeetable;
* ``greedy`` — zero coalescing wait, fastest-idle-array dispatch.

Per policy it reports served throughput on the simulated clock, mean
batch size, p50/p99 latency, shed rate, and SLA miss rate.  The headline
is the deadline policy's p99 against the fifo batcher's at equal offered
rate: under overload the max-wait batcher's queue (and p99) grows without
bound while the deadline policy sheds or early-launches instead —
recorded MNIST run at 2.5x capacity with a 10 ms SLA: p99 9.2 ms vs
146.6 ms, at the cost of shedding what the array cannot serve in time.
Batch costs are the bit-exact scheduled model; everything is seeded, so
the modeled figures are deterministic and guarded by
``benchmarks/check_perf_regression.py``.

Replayed traces close the loop to production-style logs: pass
``--trace-file`` (JSONL/CSV, see ``repro.serve.trace``) to serve a
recorded arrival log instead of the synthetic Poisson trace — each
request keeps its own absolute ``deadline_us`` SLA from the log (the
``--deadline-ms`` flag then only stamps requests without one), and
``--fast`` switches the simulator to its ``record_requests=False``
streaming path so million-request logs replay in seconds.  A small
checked-in sample lives at ``benchmarks/traces/sample-trace.jsonl``.

Usage::

    PYTHONPATH=src python benchmarks/bench_policies.py            # MNIST shapes
    PYTHONPATH=src python benchmarks/bench_policies.py --smoke    # tiny, CI
    PYTHONPATH=src python benchmarks/bench_policies.py --json out.json
    PYTHONPATH=src python benchmarks/bench_policies.py \
        --trace-file benchmarks/traces/sample-trace.jsonl --fast
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.capsnet.config import mnist_capsnet_config, tiny_capsnet_config
from repro.serve import (
    SERVING_POLICIES,
    ScheduledBatchCost,
    ServerConfig,
    ServingSimulator,
    load_trace_file,
    poisson_trace,
)


def run_benchmark(args: argparse.Namespace) -> dict:
    network = tiny_capsnet_config() if args.network == "tiny" else mnist_capsnet_config()
    cost = ScheduledBatchCost(network=network)
    capacity_rps = (
        args.arrays * cost.config.clock_mhz * 1e6 / cost.batch_cycles(1)
    )
    if args.trace_file is not None:
        trace = load_trace_file(args.trace_file)
        args.requests = trace.count
        args.rate_multiplier = trace.offered_rps / capacity_rps
    else:
        rate = args.rate_multiplier * capacity_rps
        trace = poisson_trace(rate, args.requests, np.random.default_rng(args.seed))

    rows = []
    for name in SERVING_POLICIES:
        server = ServerConfig.from_policy(
            name,
            cost,
            max_batch=args.max_batch,
            max_wait_us=args.max_wait_us,
            arrays=args.arrays,
            deadline_us=args.deadline_ms * 1000.0,
            network_name=args.network,
        )
        report = ServingSimulator(trace, server=server).run(
            record_requests=not args.fast
        )
        latency = report.latency_summary()["total"]
        rows.append(
            {
                "policy": name,
                "describe": server.describe(),
                "offered_rps": report.offered_rps,
                "throughput_rps": report.throughput_rps,
                "served": report.completed,
                "shed": report.shed_count,
                "shed_rate": report.shed_rate,
                "deadline_miss_rate": report.deadline_miss_rate,
                "mean_batch_size": report.mean_batch_size,
                "p50_total_latency_us": latency["p50_us"],
                "p99_total_latency_us": latency["p99_us"],
            }
        )

    by_name = {row["policy"]: row for row in rows}
    fifo_p99 = by_name["fifo"]["p99_total_latency_us"]
    deadline_p99 = by_name["deadline"]["p99_total_latency_us"]
    return {
        "benchmark": "bench_policies",
        "network": args.network,
        "trace": trace.name,
        "trace_file": args.trace_file,
        "requests": args.requests,
        "arrays": args.arrays,
        "seed": args.seed,
        "rate_multiplier": args.rate_multiplier,
        "deadline_ms": args.deadline_ms,
        "max_batch": args.max_batch,
        "max_wait_us": args.max_wait_us,
        "batch1_capacity_rps": capacity_rps,
        "offered_rps": trace.offered_rps,
        "results": rows,
        "headline": {
            "p99_fifo_us": fifo_p99,
            "p99_deadline_us": deadline_p99,
            "p99_deadline_vs_fifo": deadline_p99 / fifo_p99,
            "shed_rate_deadline": by_name["deadline"]["shed_rate"],
            "miss_rate_fifo": by_name["fifo"]["deadline_miss_rate"],
            "miss_rate_deadline": by_name["deadline"]["deadline_miss_rate"],
            "throughput_fifo_rps": by_name["fifo"]["throughput_rps"],
            "throughput_greedy_rps": by_name["greedy"]["throughput_rps"],
        },
    }


def format_report(report: dict) -> str:
    lines = [
        f"Serving policies — {report['network']} network,"
        f" {report['requests']} requests at"
        f" {report['rate_multiplier']:g}x batch-1 capacity"
        f" ({report['offered_rps']:,.1f} req/s offered),"
        f" {report['deadline_ms']:g} ms SLA, {report['arrays']} array(s)",
        f"{'policy':>10s} {'served req/s':>13s} {'batch':>6s} {'p50':>9s}"
        f" {'p99':>9s} {'shed':>7s} {'SLA miss':>9s}",
    ]
    for row in report["results"]:
        lines.append(
            f"{row['policy']:>10s} {row['throughput_rps']:13,.1f}"
            f" {row['mean_batch_size']:6.2f}"
            f" {row['p50_total_latency_us'] / 1e3:8.2f}m"
            f" {row['p99_total_latency_us'] / 1e3:8.2f}m"
            f" {row['shed_rate']:7.1%} {row['deadline_miss_rate']:9.1%}"
        )
    headline = report["headline"]
    lines.append(
        f"headline: deadline batching p99"
        f" {headline['p99_deadline_us'] / 1e3:,.2f} ms vs fifo"
        f" {headline['p99_fifo_us'] / 1e3:,.2f} ms at equal offered rate"
        f" ({headline['p99_deadline_vs_fifo']:.2f}x;"
        f" shed rate {headline['shed_rate_deadline']:.1%}, SLA misses"
        f" {headline['miss_rate_deadline']:.1%} vs"
        f" {headline['miss_rate_fifo']:.1%})"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny shapes and short trace (CI benchmark-smoke gate)",
    )
    parser.add_argument("--network", choices=("mnist", "tiny"), default=None)
    parser.add_argument(
        "--requests", type=int, default=None, help="requests in the trace"
    )
    parser.add_argument(
        "--trace-file",
        type=str,
        default=None,
        help="replay a recorded .jsonl/.csv arrival log (per-request"
        " deadline_us honored) instead of the synthetic Poisson trace",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="streaming simulator path (record_requests=False) for long traces",
    )
    parser.add_argument(
        "--rate-multiplier",
        type=float,
        default=2.5,
        help="arrival rate as a multiple of the batch-1 service capacity",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request SLA (default: 10 ms MNIST, 0.1 ms tiny)",
    )
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument(
        "--max-wait-us", type=float, default=None, help="fifo coalescing wait"
    )
    parser.add_argument("--arrays", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", type=str, default=None, help="write report JSON here")
    args = parser.parse_args(argv)

    if args.rate_multiplier <= 0:
        parser.error("--rate-multiplier must be positive")
    if args.network is None:
        args.network = "tiny" if args.smoke else "mnist"
    if args.requests is None:
        args.requests = 96 if args.smoke else 64
    if args.requests < 1:
        parser.error("--requests must be positive")
    if args.max_wait_us is None:
        # About one batch-1 service time, matching bench_serving.py.
        args.max_wait_us = 50.0 if args.network == "tiny" else 5000.0
    if args.deadline_ms is None:
        args.deadline_ms = 0.1 if args.network == "tiny" else 10.0
    if args.deadline_ms <= 0:
        parser.error("--deadline-ms must be positive")

    report = run_benchmark(args)
    print(format_report(report))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
