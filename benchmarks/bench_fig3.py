"""Benchmark: regenerate Fig 3 (squashing function and derivative peak)."""

import pytest

from repro.experiments import fig3


def test_fig3(benchmark):
    result = benchmark(fig3.run)
    assert result.peak_x == pytest.approx(result.paper_peak[0], abs=2e-3)
    assert result.peak_y == pytest.approx(result.paper_peak[1], abs=1e-3)
    benchmark.extra_info["peak"] = (round(result.peak_x, 4), round(result.peak_y, 4))
    benchmark.extra_info["lut_max_error"] = round(result.lut_max_error, 5)
    print(fig3.format_report(result))
