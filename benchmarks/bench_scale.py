"""Simulator-scale benchmark: streaming fast path vs the full-record path.

Runs the discrete-event serving simulator on one long saturating Poisson
trace (the ``bench_serving.py`` scenario: MNIST shapes at 2.5x the
batch-1 service capacity) twice per measurement:

* ``record_requests=True``  — the exact path: full per-request and
  per-batch tables (the PR 4 behavior, bit-identical reports);
* ``record_requests=False`` — the streaming fast path: O(1)-memory
  histogram statistics, bulk arrival drains, inlined classic batching.

The headline is **simulated requests per wall-clock second** of each
path and their ratio, plus the equivalence audit the fast path promises:
identical offered/completed/shed/batch counts, exactly equal makespan,
and latency percentiles within one histogram bin of the exact report.
Costs are closed-form (the cost model is not what is being measured), so
the simulated metrics are deterministic; the wall-clock figures feed the
CI guard as conservative floors (see ``benchmarks/baselines/README.md``).

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py              # 100k requests
    PYTHONPATH=src python benchmarks/bench_scale.py --smoke      # CI gate
    PYTHONPATH=src python benchmarks/bench_scale.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.capsnet.config import mnist_capsnet_config, tiny_capsnet_config
from repro.serve import (
    AnalyticBatchCost,
    ServerConfig,
    ServingSimulator,
    poisson_trace,
)

PERCENTILE_KEYS = ("p50_us", "p95_us", "p99_us")


def run_benchmark(args: argparse.Namespace) -> dict:
    network = tiny_capsnet_config() if args.network == "tiny" else mnist_capsnet_config()
    cost = AnalyticBatchCost(network=network)
    capacity_rps = args.arrays * cost.config.clock_mhz * 1e6 / cost.batch_cycles(1)
    trace = poisson_trace(
        args.rate_multiplier * capacity_rps,
        args.requests,
        np.random.default_rng(args.seed),
    )
    server = ServerConfig.from_policy(
        "fifo",
        cost,
        max_batch=args.max_batch,
        max_wait_us=args.max_wait_us,
        arrays=args.arrays,
        network_name=args.network,
    )
    simulator = ServingSimulator(trace, server=server)

    # Warm both paths once (cost-model probes, allocator effects), then
    # take the best of ``repeats`` measurements per path.
    record = simulator.run()
    fast = simulator.run(record_requests=False, latency_bin_us=args.latency_bin_us)
    record_wall = fast_wall = float("inf")
    for _ in range(args.repeats):
        start = time.perf_counter()
        record = simulator.run()
        record_wall = min(record_wall, time.perf_counter() - start)
        start = time.perf_counter()
        fast = simulator.run(
            record_requests=False, latency_bin_us=args.latency_bin_us
        )
        fast_wall = min(fast_wall, time.perf_counter() - start)

    counts_identical = (
        record.offered == fast.offered
        and record.completed == fast.completed
        and record.shed_count == fast.shed_count
        and record.batch_count == fast.batch_count
        and record.batch_size_histogram() == fast.batch_size_histogram()
        and record.makespan_us == fast.makespan_us
    )
    record_latency = record.latency_summary()
    fast_latency = fast.latency_summary()
    max_diff = max(
        abs(record_latency[name][key] - fast_latency[name][key])
        for name in record_latency
        for key in PERCENTILE_KEYS
    )
    return {
        "benchmark": "bench_scale",
        "network": args.network,
        "requests": args.requests,
        "arrays": args.arrays,
        "seed": args.seed,
        "rate_multiplier": args.rate_multiplier,
        "max_batch": args.max_batch,
        "max_wait_us": args.max_wait_us,
        "latency_bin_us": args.latency_bin_us,
        "repeats": args.repeats,
        "offered_rps": trace.offered_rps,
        "served": fast.completed,
        "record": {
            "wall_seconds": record_wall,
            "wall_rps": args.requests / record_wall,
            "latency_us": record_latency,
        },
        "fast": {
            "wall_seconds": fast_wall,
            "wall_rps": args.requests / fast_wall,
            "latency_us": fast_latency,
        },
        "headline": {
            "fast_wall_rps": args.requests / fast_wall,
            "record_wall_rps": args.requests / record_wall,
            "wall_speedup": record_wall / fast_wall,
            "counts_identical": float(counts_identical),
            "max_percentile_diff_us": max_diff,
            "percentile_diff_within_bin": float(max_diff <= args.latency_bin_us),
        },
    }


def format_report(report: dict) -> str:
    headline = report["headline"]
    lines = [
        f"Simulator scale — {report['network']} shapes,"
        f" {report['requests']:,} requests at"
        f" {report['rate_multiplier']:g}x batch-1 capacity,"
        f" {report['arrays']} array(s)",
        f"  record path: {report['record']['wall_seconds']:.3f} s"
        f" = {headline['record_wall_rps']:,.0f} simulated req/s",
        f"  fast path:   {report['fast']['wall_seconds']:.3f} s"
        f" = {headline['fast_wall_rps']:,.0f} simulated req/s"
        f"  ({headline['wall_speedup']:.1f}x)",
        f"  equivalence: counts identical = {bool(headline['counts_identical'])},"
        f" worst percentile deviation {headline['max_percentile_diff_us']:.1f} us"
        f" (bin {report['latency_bin_us']:g} us)",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short trace (CI benchmark-smoke gate)",
    )
    parser.add_argument("--network", choices=("mnist", "tiny"), default="mnist")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--rate-multiplier", type=float, default=2.5)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait-us", type=float, default=5000.0)
    parser.add_argument("--latency-bin-us", type=float, default=50.0)
    parser.add_argument("--arrays", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", type=str, default=None, help="write report JSON here")
    args = parser.parse_args(argv)

    if args.requests is None:
        args.requests = 20_000 if args.smoke else 100_000
    if args.requests < 1 or args.repeats < 1:
        parser.error("--requests and --repeats must be positive")
    if args.rate_multiplier <= 0:
        parser.error("--rate-multiplier must be positive")

    report = run_benchmark(args)
    print(format_report(report))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
