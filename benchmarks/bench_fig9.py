"""Benchmark: regenerate Fig 9 (GPU time per routing step)."""

from repro.experiments import fig9


def test_fig9(benchmark):
    result = benchmark(fig9.run)
    # Paper's observation: squashing dominates every routing iteration.
    assert result.dominant_step.startswith("Squash")
    benchmark.extra_info["step_us"] = {
        step: round(us, 1) for step, us in result.step_us.items()
    }
    print(fig9.format_report(result))
