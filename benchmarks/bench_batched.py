"""Throughput benchmark for the batched execution engine.

Sweeps the scheduler batch size over the same synthetic image stream and
reports, per batch size:

* simulator wall-clock throughput (images/s of host time) — the per-job
  Python dispatch that batching amortizes is real simulation cost, so this
  is the headline "serve traffic" number;
* modeled hardware throughput (images/s at the configured clock) under
  double-buffered accounting — weight-tile loads amortize across the
  stacked batch stream;
* achieved PE utilization.

Usage::

    PYTHONPATH=src python benchmarks/bench_batched.py            # MNIST shapes
    PYTHONPATH=src python benchmarks/bench_batched.py --smoke    # tiny shapes, CI
    PYTHONPATH=src python benchmarks/bench_batched.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.capsnet.config import mnist_capsnet_config, tiny_capsnet_config
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.data.synthetic import SyntheticDigits
from repro.hw.scheduler import BatchScheduler


def measure(
    scheduler: BatchScheduler,
    images: np.ndarray,
    batch_size: int,
    repeats: int,
) -> dict:
    """Steady-state wall-clock and modeled stats for one batch size."""
    count = len(images)

    def one_pass() -> list:
        return [
            scheduler.run_batch(images[lo : lo + batch_size])
            for lo in range(0, count, batch_size)
        ]

    results = one_pass()  # warm-up: page-faults, LUTs, allocator arenas
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        results = one_pass()
        best = min(best, time.perf_counter() - start)

    config = scheduler.accelerator.config
    seq_cycles = sum(r.total_cycles for r in results)
    ovl_cycles = sum(r.overlapped_cycles for r in results)
    macs = sum(r.total_stats.mac_count for r in results)
    jobs = sum(sum(rep.jobs for rep in r.layers.values()) for r in results)
    return {
        "batch_size": batch_size,
        "images": count,
        "wall_seconds": best,
        "wall_images_per_s": count / best,
        "modeled_cycles_per_image": ovl_cycles / count,
        "modeled_sequential_cycles_per_image": seq_cycles / count,
        "modeled_images_per_s": config.clock_mhz * 1e6 * count / ovl_cycles,
        "utilization": macs / (ovl_cycles * config.num_pes),
        "gemm_jobs_per_image": jobs / count,
    }


def run_benchmark(args: argparse.Namespace) -> dict:
    network = tiny_capsnet_config() if args.network == "tiny" else mnist_capsnet_config()
    images = SyntheticDigits(size=network.image_size, seed=args.seed).generate(
        args.images
    ).images
    qnet = QuantizedCapsuleNet(network)
    scheduler = BatchScheduler(qnet, engine="fast")
    skipped = [batch for batch in args.batch_sizes if batch > args.images]
    if skipped:
        print(f"skipping batch sizes larger than --images: {skipped}", file=sys.stderr)
    rows = [
        measure(scheduler, images, batch, args.repeats)
        for batch in args.batch_sizes
        if batch <= args.images
    ]
    baseline = rows[0]["wall_images_per_s"]
    for row in rows:
        row["wall_speedup_vs_batch1"] = row["wall_images_per_s"] / baseline
    return {
        "benchmark": "bench_batched",
        "network": args.network,
        "images": args.images,
        "repeats": args.repeats,
        "results": rows,
    }


def format_report(report: dict) -> str:
    lines = [
        f"Batched execution engine — {report['network']} network,"
        f" {report['images']} images, best of {report['repeats']}",
        f"{'batch':>5s} {'wall img/s':>11s} {'speedup':>8s} {'model img/s':>12s}"
        f" {'cycles/img':>11s} {'util':>6s} {'jobs/img':>9s}",
    ]
    for row in report["results"]:
        lines.append(
            f"{row['batch_size']:5d} {row['wall_images_per_s']:11.1f}"
            f" {row['wall_speedup_vs_batch1']:7.2f}x"
            f" {row['modeled_images_per_s']:12,.0f}"
            f" {row['modeled_cycles_per_image']:11,.0f}"
            f" {row['utilization']:5.1%}"
            f" {row['gemm_jobs_per_image']:9.1f}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny shapes and short sweep (CI benchmark-smoke gate)",
    )
    parser.add_argument("--network", choices=("mnist", "tiny"), default=None)
    parser.add_argument(
        "--batch-sizes", type=int, nargs="+", default=None, help="batch sizes to sweep"
    )
    parser.add_argument("--images", type=int, default=None, help="images per sweep point")
    parser.add_argument("--repeats", type=int, default=None, help="timed repeats")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", type=str, default=None, help="write report JSON here")
    args = parser.parse_args(argv)

    if args.images is not None and args.images < 1:
        parser.error("--images must be positive")
    if args.repeats is not None and args.repeats < 1:
        parser.error("--repeats must be positive")
    if args.batch_sizes is not None and min(args.batch_sizes) < 1:
        parser.error("--batch-sizes must be positive")
    if args.network is None:
        args.network = "tiny" if args.smoke else "mnist"
    if args.batch_sizes is None:
        args.batch_sizes = [1, 4, 8] if args.smoke else [1, 2, 4, 8]
    if args.images is None:
        args.images = 8 if args.smoke else 16
    if args.repeats is None:
        args.repeats = 2 if args.smoke else 3
    if args.batch_sizes[0] != 1:
        print("prepending batch size 1 as the speedup baseline", file=sys.stderr)
        args.batch_sizes = [1] + [b for b in args.batch_sizes if b != 1]

    report = run_benchmark(args)
    print(format_report(report))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
