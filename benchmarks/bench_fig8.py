"""Benchmark: regenerate Fig 8 (GPU layer-wise inference time)."""

from repro.experiments import fig8


def test_fig8(benchmark):
    result = benchmark(fig8.run)
    # Paper's observation: ClassCaps ~10x slower than the conv layers.
    assert 5.0 < result.classcaps_dominance < 20.0
    benchmark.extra_info["layer_ms"] = {
        layer: round(ms, 3) for layer, ms in result.layer_ms.items()
    }
    benchmark.extra_info["classcaps_dominance"] = round(result.classcaps_dominance, 1)
    print(fig8.format_report(result))
