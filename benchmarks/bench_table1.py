"""Benchmark: regenerate Table I and Fig 5 (parameter accounting)."""

from repro.experiments import fig5, table1


def test_table1(benchmark):
    result = benchmark(table1.run)
    assert all(result.parameter_matches.values())
    rows = {name: params for name, _, params, _ in result.rows}
    benchmark.extra_info["parameters"] = rows
    benchmark.extra_info["weight_mb"] = round(result.weight_megabytes, 2)
    print(table1.format_report(result))


def test_fig5(benchmark):
    result = benchmark(fig5.run)
    assert result.matches_paper
    benchmark.extra_info["fractions"] = {
        layer: round(fraction, 4) for layer, fraction in result.fractions.items()
    }
    print(fig5.format_report(result))
