"""Benchmarks of the functional CapsuleNet paths (float and quantized)."""

import numpy as np
import pytest

from repro.capsnet.model import CapsuleNet
from repro.capsnet.ops import squash
from repro.capsnet.routing import routing_by_agreement
from repro.data.synthetic import SyntheticDigits


@pytest.fixture(scope="module")
def tiny_float_net(tiny_config):
    return CapsuleNet(tiny_config)


def test_float_inference_tiny(benchmark, tiny_float_net, tiny_image):
    out = benchmark(tiny_float_net.forward, tiny_image)
    assert out.lengths.shape == (3,)


def test_routing_mnist_size(benchmark):
    """Routing at the paper's ClassCaps dimensions (1152 x 10 x 16)."""
    rng = np.random.default_rng(0)
    u_hat = 0.1 * rng.standard_normal((1152, 10, 16))
    result = benchmark(routing_by_agreement, u_hat, 3, True)
    assert result.v.shape == (10, 16)


def test_squash_primarycaps_size(benchmark):
    rng = np.random.default_rng(0)
    s = rng.standard_normal((1152, 8))
    out = benchmark(squash, s)
    assert np.all(np.linalg.norm(out, axis=-1) < 1.0)


def test_synthetic_digit_generation(benchmark):
    generator = SyntheticDigits(seed=7)
    dataset = benchmark(generator.generate, 10)
    assert len(dataset) == 10
