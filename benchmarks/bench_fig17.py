"""Benchmark: regenerate Fig 17 (routing-step CapsAcc vs GPU)."""

from repro.experiments import fig17


def test_fig17(benchmark):
    result = benchmark(fig17.run)
    report = result.report
    # Reproduction claims (paper: Sum 3x, Update 6x, FC slower, Squash the
    # dominant win).
    assert 1.5 < report.row("Sum1").speedup < 6.0
    assert 3.0 < report.row("Update1").speedup < 12.0
    assert report.row("FC").speedup < 1.0
    assert report.row("Squash1").speedup > 100.0
    benchmark.extra_info["speedups"] = {
        row.name: round(row.speedup, 2) for row in report.rows
    }
    print(fig17.format_report(result))


def test_fig17_without_routing_optimization(benchmark):
    result = benchmark(fig17.run, optimized_routing=False)
    # Without the skip, Softmax1 costs the same as the later iterations.
    softmax1 = result.report.row("Softmax1").capsacc_us
    softmax2 = result.report.row("Softmax2").capsacc_us
    assert abs(softmax1 - softmax2) / softmax2 < 0.01
