"""Live serving runtime benchmark: real req/s and the sim-vs-live gate.

Exercises :mod:`repro.serve.runtime` three ways on the tiny network:

* **Peak throughput** — a saturating burst of real requests served
  in-process through the batched quantized engine (dynamic batching,
  one array).  The headline is sustained live requests per second, from
  first arrival to last completion on the wall clock.
* **Sim-vs-live crosscheck** — the recorded live arrivals are re-run
  through the discrete-event simulator with *in-situ* batch costs
  (median observed duration per batch size), and the live p50/p99
  latencies must land within 20% of the simulated ones: the simulator's
  queueing model predicts the live system.
* **Virtual-replay decisions gate** — the same trace replayed through
  the runtime engine in virtual time must make exactly the decisions
  the simulator makes (same sheds, batches, placements, timings).
  This is deterministic; any diff is a scheduling-path divergence.

Usage::

    PYTHONPATH=src python benchmarks/bench_runtime.py            # full
    PYTHONPATH=src python benchmarks/bench_runtime.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_runtime.py --json out.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

import numpy as np

from repro.capsnet.config import tiny_capsnet_config
from repro.data.synthetic import SyntheticDigits
from repro.hw.config import AcceleratorConfig
from repro.serve import ScheduledBatchCost, ServerConfig, ServingSimulator, make_trace
from repro.serve.compare import compare_reports, decision_diffs
from repro.serve.runtime import MeasuredBatchCost, ServingRuntime, replay_virtual
from repro.serve.trace import ArrivalTrace
from repro.serve.workers import InlineEngineExecutor


def live_server(cost, max_batch: int) -> ServerConfig:
    return ServerConfig.from_policy(
        "fifo",
        cost,
        max_batch=max_batch,
        max_wait_us=2000.0,
        arrays=1,
        network_name="tiny",
    )


async def drive(runtime: ServingRuntime, trace: ArrivalTrace):
    wall_start = time.perf_counter()
    await runtime.run_load(trace)
    await runtime.drain()
    wall = time.perf_counter() - wall_start
    report = runtime.report(
        trace_name=trace.name, offered_rps=trace.offered_rps, wall_seconds=wall
    )
    await runtime.stop()
    return report


def live_rps_of(report) -> float:
    served = report.served
    if not served:
        return 0.0
    span_us = max(r.done_us for r in served) - min(r.arrival_us for r in served)
    return len(served) / span_us * 1e6 if span_us > 0 else 0.0


def run_live_once(cost, executor, trace: ArrivalTrace, max_batch: int, accel):
    """One saturating live run; returns (report, rps, crosscheck dict)."""
    server = live_server(cost, max_batch)
    runtime = ServingRuntime(server, executor=executor, max_pending=8192)
    report = asyncio.run(drive(runtime, trace))
    rps = live_rps_of(report)
    insitu = MeasuredBatchCost.from_report(report, config=accel)
    arrivals = np.array(sorted(r.arrival_us for r in report.requests))
    arrivals -= arrivals[0]
    sim = ServingSimulator(
        ArrivalTrace(times_us=arrivals, name="live-arrivals"),
        server=live_server(insitu, max_batch),
    ).run()
    crosscheck = compare_reports(sim, report, rel_tol=0.2)
    return report, rps, crosscheck


def run_benchmark(args: argparse.Namespace) -> dict:
    network = tiny_capsnet_config()
    accel = AcceleratorConfig()
    rng = np.random.default_rng(args.seed)
    executor = InlineEngineExecutor(network)
    images = SyntheticDigits(size=network.image_size, rng=rng).generate(256).images
    sizes = [s for s in (1, 8, 32, 64, 128, 256) if s <= args.max_batch]
    calibrated = MeasuredBatchCost.calibrate(
        executor, images, sizes=sizes, config=accel
    )

    # Saturating burst: the whole trace arrives in a few tens of
    # milliseconds, so the run measures drain throughput and the latency
    # distribution is queue-shaped (robust for the 20% crosscheck — host
    # noise averages out across the backlog instead of dominating an
    # idle-system percentile).
    trace = make_trace("uniform", args.burst_rps, args.requests, rng)
    attempts = []
    report = rps = crosscheck = None
    for _ in range(2):
        report, rps, crosscheck = run_live_once(
            calibrated, executor, trace, args.max_batch, accel
        )
        attempts.append({"live_rps": rps, "within_tol": crosscheck["within_tol"]})
        if crosscheck["within_tol"]:
            break
    latency = report.latency_summary()["total"]

    # Decisions gate: virtual replay vs the simulator, exact-cost model.
    exact = ScheduledBatchCost(network=network, accel_config=accel)
    replay_server = ServerConfig.from_policy(
        "fifo",
        exact,
        max_batch=8,
        max_wait_us=2000.0,
        dispatch="greedy-backlog",
        arrays=2,
        network_name="tiny",
    )
    replay_trace_arrivals = make_trace(
        "poisson", args.replay_rps, args.replay_requests, rng
    )
    sim_report = ServingSimulator(replay_trace_arrivals, server=replay_server).run()
    live_replay = replay_virtual(replay_server, replay_trace_arrivals)
    diffs = decision_diffs(sim_report, live_replay)

    executor.close()
    return {
        "benchmark": "bench_runtime",
        "network": "tiny",
        "requests": args.requests,
        "max_batch": args.max_batch,
        "seed": args.seed,
        "calibration_points": calibrated.points,
        "attempts": attempts,
        "headline": {
            "live_rps": rps,
            "served": report.completed,
            "mean_batch_size": report.mean_batch_size,
            "p50_live_us": latency["p50_us"],
            "p99_live_us": latency["p99_us"],
            "crosscheck_within_tol": 1.0 if crosscheck["within_tol"] else 0.0,
            "replay_decisions_identical": 1.0 if not diffs else 0.0,
        },
        "sim_vs_live": crosscheck,
        "replay": {
            "requests": args.replay_requests,
            "batches": live_replay.batch_count,
            "diffs": diffs,
        },
    }


def format_report(report: dict) -> str:
    headline = report["headline"]
    xcheck = report["sim_vs_live"]
    lines = [
        f"Live serving runtime — tiny network, {report['requests']} requests,"
        f" batch<={report['max_batch']}, in-process engine",
        f"  live throughput: {headline['live_rps']:,.0f} req/s"
        f" ({headline['served']} served, mean batch"
        f" {headline['mean_batch_size']:.1f})",
        f"  live latency: p50 {headline['p50_live_us']:,.0f}us,"
        f" p99 {headline['p99_live_us']:,.0f}us",
        f"  sim-vs-live: p50 ratio {xcheck['p50_us']['ratio']:.2f},"
        f" p99 ratio {xcheck['p99_us']['ratio']:.2f} ->"
        f" {'within' if headline['crosscheck_within_tol'] else 'OUTSIDE'}"
        f" 20% tolerance",
        f"  virtual replay: {report['replay']['requests']} requests,"
        f" {report['replay']['batches']} batches ->"
        f" {'decision-identical' if headline['replay_decisions_identical'] else 'DIVERGED'}",
    ]
    for diff in report["replay"]["diffs"][:5]:
        lines.append(f"    {diff}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short burst (CI benchmark-smoke gate)",
    )
    parser.add_argument(
        "--requests", type=int, default=None, help="requests in the live burst"
    )
    parser.add_argument("--max-batch", type=int, default=256)
    parser.add_argument(
        "--burst-rps",
        type=float,
        default=100000.0,
        help="offered rate of the saturating burst",
    )
    parser.add_argument(
        "--replay-requests", type=int, default=None, help="virtual-replay trace length"
    )
    parser.add_argument("--replay-rps", type=float, default=4000.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", type=str, default=None, help="write report JSON here")
    args = parser.parse_args(argv)

    if args.max_batch < 8:
        parser.error("--max-batch must be at least 8 (the gate batches >= 8)")
    if args.requests is None:
        args.requests = 4000 if args.smoke else 20000
    if args.replay_requests is None:
        args.replay_requests = 400 if args.smoke else 2000

    report = run_benchmark(args)
    print(format_report(report))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
