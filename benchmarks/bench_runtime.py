"""Live serving runtime benchmark: real req/s and the sim-vs-live gates.

Exercises :mod:`repro.serve.runtime` four ways on the tiny network:

* **Peak throughput** — a saturating burst of real requests served
  in-process through the batched quantized engine (dynamic batching,
  one array).  The headline is sustained live requests per second, from
  first arrival to last completion on the wall clock (median of the
  trials).
* **Saturated crosscheck** — every trial's recorded live arrivals are
  re-run through the discrete-event simulator with *in-situ* batch
  costs (median observed duration per batch size); the gate compares
  the *median* live p50/p99 against the median simulated ones with a
  spread-widened tolerance (:func:`repro.serve.compare
  .compare_reports_median`), so one noisy trial cannot flake it.
* **Paced crosscheck** — the same median gate on a paced regime
  (offered load at roughly half the measured capacity), where the
  latency distribution is batching-shaped rather than queue-shaped and
  host noise used to dominate single runs.  The variance-aware gate is
  what makes this regime gateable at all.
* **Virtual-replay decisions gate** — the same trace replayed through
  the runtime engine in virtual time must make exactly the decisions
  the simulator makes (same sheds, batches, placements, timings).
  This is deterministic; any diff is a scheduling-path divergence.

Usage::

    PYTHONPATH=src python benchmarks/bench_runtime.py            # full
    PYTHONPATH=src python benchmarks/bench_runtime.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_runtime.py --json out.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import time

import numpy as np

from repro.capsnet.config import tiny_capsnet_config
from repro.data.synthetic import SyntheticDigits
from repro.hw.config import AcceleratorConfig
from repro.serve import ScheduledBatchCost, ServerConfig, ServingSimulator, make_trace
from repro.serve.compare import compare_reports_median, decision_diffs
from repro.serve.runtime import MeasuredBatchCost, ServingRuntime, replay_virtual
from repro.serve.trace import ArrivalTrace
from repro.serve.workers import InlineEngineExecutor


def live_server(cost, max_batch: int) -> ServerConfig:
    return ServerConfig.from_policy(
        "fifo",
        cost,
        max_batch=max_batch,
        max_wait_us=2000.0,
        arrays=1,
        network_name="tiny",
    )


async def drive(runtime: ServingRuntime, trace: ArrivalTrace):
    wall_start = time.perf_counter()
    await runtime.run_load(trace)
    await runtime.drain()
    wall = time.perf_counter() - wall_start
    report = runtime.report(
        trace_name=trace.name, offered_rps=trace.offered_rps, wall_seconds=wall
    )
    await runtime.stop()
    return report


def live_rps_of(report) -> float:
    served = report.served
    if not served:
        return 0.0
    span_us = max(r.done_us for r in served) - min(r.arrival_us for r in served)
    return len(served) / span_us * 1e6 if span_us > 0 else 0.0


def run_live_once(cost, executor, trace: ArrivalTrace, max_batch: int, accel):
    """One live run; returns (sim report, live report, live rps)."""
    server = live_server(cost, max_batch)
    runtime = ServingRuntime(server, executor=executor, max_pending=8192)
    report = asyncio.run(drive(runtime, trace))
    rps = live_rps_of(report)
    insitu = MeasuredBatchCost.from_report(report, config=accel)
    arrivals = np.array(sorted(r.arrival_us for r in report.requests))
    arrivals -= arrivals[0]
    sim = ServingSimulator(
        ArrivalTrace(times_us=arrivals, name="live-arrivals"),
        server=live_server(insitu, max_batch),
    ).run()
    return sim, report, rps


def run_regime(cost, executor, trace: ArrivalTrace, args, accel) -> dict:
    """N live trials of one regime, gated on medians with spread-aware tol."""
    pairs = []
    rps_values = []
    for _ in range(args.trials):
        sim, report, rps = run_live_once(
            cost, executor, trace, args.max_batch, accel
        )
        pairs.append((sim, report))
        rps_values.append(rps)
    gate = compare_reports_median(pairs, rel_tol=0.2)
    latency = pairs[-1][1].latency_summary()["total"]
    return {
        "gate": gate,
        "rps_values": rps_values,
        "rps_median": statistics.median(rps_values),
        "last_report": pairs[-1][1],
        "p50_live_us": gate["p50_us"]["live"],
        "p99_live_us": gate["p99_us"]["live"],
        "last_latency": latency,
    }


def run_benchmark(args: argparse.Namespace) -> dict:
    network = tiny_capsnet_config()
    accel = AcceleratorConfig()
    rng = np.random.default_rng(args.seed)
    executor = InlineEngineExecutor(network)
    images = SyntheticDigits(size=network.image_size, rng=rng).generate(256).images
    sizes = [s for s in (1, 8, 32, 64, 128, 256) if s <= args.max_batch]
    calibrated = MeasuredBatchCost.calibrate(
        executor, images, sizes=sizes, config=accel
    )

    # Saturating burst: the whole trace arrives in a few tens of
    # milliseconds, so the run measures drain throughput and the latency
    # distribution is queue-shaped (host noise averages out across the
    # backlog instead of dominating an idle-system percentile).
    burst_trace = make_trace("uniform", args.burst_rps, args.requests, rng)
    saturated = run_regime(calibrated, executor, burst_trace, args, accel)

    # Paced regime: offered load well under the measured capacity, so
    # batches form on the coalescing timer and the percentiles ride on
    # host scheduling noise — exactly what the spread-widened median
    # tolerance exists for.
    paced_rps = args.paced_rps
    if paced_rps is None:
        paced_rps = max(1000.0, 0.5 * saturated["rps_median"])
    paced_trace = make_trace(
        "uniform", paced_rps, max(args.requests // 4, 100), rng
    )
    paced = run_regime(calibrated, executor, paced_trace, args, accel)

    report = saturated["last_report"]
    latency = saturated["last_latency"]

    # Decisions gate: virtual replay vs the simulator, exact-cost model.
    exact = ScheduledBatchCost(network=network, accel_config=accel)
    replay_server = ServerConfig.from_policy(
        "fifo",
        exact,
        max_batch=8,
        max_wait_us=2000.0,
        dispatch="greedy-backlog",
        arrays=2,
        network_name="tiny",
    )
    replay_trace_arrivals = make_trace(
        "poisson", args.replay_rps, args.replay_requests, rng
    )
    sim_report = ServingSimulator(replay_trace_arrivals, server=replay_server).run()
    live_replay = replay_virtual(replay_server, replay_trace_arrivals)
    diffs = decision_diffs(sim_report, live_replay)

    executor.close()
    return {
        "benchmark": "bench_runtime",
        "network": "tiny",
        "requests": args.requests,
        "max_batch": args.max_batch,
        "seed": args.seed,
        "trials": args.trials,
        "calibration_points": calibrated.points,
        "paced_rps": paced_rps,
        "headline": {
            "live_rps": saturated["rps_median"],
            "served": report.completed,
            "mean_batch_size": report.mean_batch_size,
            "p50_live_us": latency["p50_us"],
            "p99_live_us": latency["p99_us"],
            "crosscheck_within_tol": 1.0 if saturated["gate"]["within_tol"] else 0.0,
            "paced_within_tol": 1.0 if paced["gate"]["within_tol"] else 0.0,
            "replay_decisions_identical": 1.0 if not diffs else 0.0,
        },
        "sim_vs_live": saturated["gate"],
        "sim_vs_live_paced": paced["gate"],
        "live_rps_trials": saturated["rps_values"],
        "replay": {
            "requests": args.replay_requests,
            "batches": live_replay.batch_count,
            "diffs": diffs,
        },
    }


def format_report(report: dict) -> str:
    headline = report["headline"]
    lines = [
        f"Live serving runtime — tiny network, {report['requests']} requests"
        f" x {report['trials']} trials, batch<={report['max_batch']},"
        f" in-process engine",
        f"  live throughput: {headline['live_rps']:,.0f} req/s median"
        f" ({headline['served']} served/trial, mean batch"
        f" {headline['mean_batch_size']:.1f})",
        f"  live latency: p50 {headline['p50_live_us']:,.0f}us,"
        f" p99 {headline['p99_live_us']:,.0f}us (medians)",
    ]
    for label, key, flag in (
        ("saturated", "sim_vs_live", "crosscheck_within_tol"),
        ("paced", "sim_vs_live_paced", "paced_within_tol"),
    ):
        gate = report[key]
        lines.append(
            f"  sim-vs-live [{label}]: p50 ratio {gate['p50_us']['ratio']:.2f}"
            f" (tol {gate['p50_us']['tolerance']:.0%}),"
            f" p99 ratio {gate['p99_us']['ratio']:.2f}"
            f" (tol {gate['p99_us']['tolerance']:.0%}) ->"
            f" {'within' if headline[flag] else 'OUTSIDE'} median gate"
        )
    lines.append(
        f"  virtual replay: {report['replay']['requests']} requests,"
        f" {report['replay']['batches']} batches ->"
        f" {'decision-identical' if headline['replay_decisions_identical'] else 'DIVERGED'}"
    )
    for diff in report["replay"]["diffs"][:5]:
        lines.append(f"    {diff}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short burst (CI benchmark-smoke gate)",
    )
    parser.add_argument(
        "--requests", type=int, default=None, help="requests in the live burst"
    )
    parser.add_argument("--max-batch", type=int, default=256)
    parser.add_argument(
        "--burst-rps",
        type=float,
        default=100000.0,
        help="offered rate of the saturating burst",
    )
    parser.add_argument(
        "--replay-requests", type=int, default=None, help="virtual-replay trace length"
    )
    parser.add_argument("--replay-rps", type=float, default=4000.0)
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="live trials per regime for the median gates (3 smoke, 5 full)",
    )
    parser.add_argument(
        "--paced-rps",
        type=float,
        default=None,
        help="offered rate of the paced regime (default: half the measured"
        " saturated throughput)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", type=str, default=None, help="write report JSON here")
    args = parser.parse_args(argv)

    if args.max_batch < 8:
        parser.error("--max-batch must be at least 8 (the gate batches >= 8)")
    if args.requests is None:
        args.requests = 4000 if args.smoke else 20000
    if args.replay_requests is None:
        args.replay_requests = 400 if args.smoke else 2000
    if args.trials is None:
        args.trials = 3 if args.smoke else 5
    if args.trials < 1:
        parser.error("--trials must be at least 1")

    report = run_benchmark(args)
    print(format_report(report))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
