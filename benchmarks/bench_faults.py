"""Fault-tolerance benchmark: the retry/quarantine gates, sim and live.

The fault layer (:mod:`repro.serve.faults`) promises that transient
worker crashes are contained — failed batches retry within budget,
quarantined arrays recover, and no request is lost — and that the
machinery is free when no plan is armed.  This bench guards both:

* **No-fault overhead** — recorded-path simulation wall rate with the
  fault machinery idle (no plan), gated against a conservative
  checked-in floor at a *tight* 2% tolerance, the same pattern as the
  tracer-off gate in ``bench_obs.py``: fault-hook creep on the hot
  dispatch path shows up here first.
* **Goodput under faults** — the same trace served under a seeded
  transient plan (crash ordinals plus a crash rate, default retry
  budget): every offered request must complete — goodput 1.0, zero
  terminal failures — and quarantine recovery must stay at the bounded
  readmission delay.
* **Sim-vs-live fault identity** — the identical plan driven through
  the simulator clock and through :func:`~repro.serve.runtime
  .replay_virtual` (the live engine's code path in virtual time) must
  produce exactly the same decisions *and* the same fault counters
  (crashes, retries, failures, quarantines).  Deterministic; any diff
  is a fault-path divergence between the two drivers.
* **Live wall-clock crashes** — a real asyncio :class:`~repro.serve
  .runtime.ServingRuntime` run through the in-process engine with
  injected crash ordinals: all requests complete, none shed or failed,
  and the crash/quarantine/recovery counters match the plan.
* **Fault-event well-formedness** — the traced fault run's event stream
  keeps complete request lifecycles (every retried request still ends
  in exactly one terminal event) and balanced compute spans.

Usage::

    PYTHONPATH=src python benchmarks/bench_faults.py            # full
    PYTHONPATH=src python benchmarks/bench_faults.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_faults.py --json out.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import time

import numpy as np

from repro.capsnet.config import tiny_capsnet_config
from repro.hw.config import AcceleratorConfig
from repro.obs import RecordingTracer, well_formed_errors
from repro.serve import (
    AnalyticBatchCost,
    FaultPlan,
    ScheduledBatchCost,
    ServerConfig,
    ServingRuntime,
    ServingSimulator,
    make_trace,
    replay_virtual,
)
from repro.serve.compare import decision_diffs


def build_server(fault_plan: FaultPlan | None = None) -> ServerConfig:
    accel = AcceleratorConfig()
    cost = AnalyticBatchCost(network=tiny_capsnet_config(), accel_config=accel)
    return ServerConfig.from_policy(
        "fifo",
        cost,
        max_batch=8,
        max_wait_us=2000.0,
        arrays=2,
        network_name="tiny",
        fault_plan=fault_plan,
    )


def timed_sim(server: ServerConfig, trace, tracer=None):
    """One recorded simulation; returns (report, wall seconds)."""
    simulator = ServingSimulator(trace, server=server, tracer=tracer)
    start = time.perf_counter()
    report = simulator.run(with_crosscheck=False)
    return report, time.perf_counter() - start


async def drive_live(runtime: ServingRuntime, trace):
    await runtime.run_load(trace)
    await runtime.drain()
    report = runtime.report(trace_name=trace.name, offered_rps=trace.offered_rps)
    await runtime.stop()
    return report


def run_benchmark(args: argparse.Namespace) -> dict:
    rng = np.random.default_rng(args.seed)
    trace = make_trace("poisson", args.rate, args.requests, rng)
    plan = FaultPlan(
        crash_batches=(1, 4), crash_rate=args.crash_rate, seed=args.fault_seed
    )

    # --- no-fault overhead floor: the fault machinery must be free when
    # no plan is armed (the hot path pays one `placed.fault` flag).
    nofault = build_server()
    timed_sim(nofault, trace)  # warm the per-batch-size cost memo
    walls = []
    for _ in range(args.trials):
        _, wall = timed_sim(nofault, trace)
        walls.append(wall)
    nofault_rps = args.requests / statistics.median(walls)

    # --- goodput under the transient plan (traced, so the stream's
    # fault events feed the well-formedness gate).
    tracer = RecordingTracer()
    faulted, _ = timed_sim(build_server(plan), trace, tracer=tracer)
    errors = well_formed_errors(tracer)
    fault_stats = faulted.faults or {}

    # --- sim-vs-live identity under the same plan: replay_virtual runs
    # the live engine's code path in virtual time, so decisions and
    # fault counters must match the simulator exactly.
    replayed = replay_virtual(build_server(plan), trace)
    diffs = decision_diffs(faulted, replayed)
    replay_stats = replayed.faults or {}
    counts_identical = fault_stats == replay_stats

    # --- live wall-clock crashes through the real asyncio runtime and
    # the in-process engine (predicted planning costs; injected crash
    # ordinals fire in the executor threads).
    live_plan = FaultPlan(crash_batches=(1, 3), seed=args.fault_seed)
    live_cost = ScheduledBatchCost(
        network=tiny_capsnet_config(), accel_config=AcceleratorConfig()
    )
    live_server = ServerConfig.from_policy(
        "fifo",
        live_cost,
        max_batch=8,
        max_wait_us=2000.0,
        arrays=2,
        network_name="tiny",
        fault_plan=live_plan,
    )
    live_trace = make_trace(
        "uniform", args.live_rps, args.live_requests, rng
    )
    runtime = ServingRuntime(live_server, max_pending=4096)
    live = asyncio.run(drive_live(runtime, live_trace))
    live_stats = live.faults or {}

    return {
        "benchmark": "bench_faults",
        "network": "tiny",
        "requests": args.requests,
        "rate_rps": args.rate,
        "trials": args.trials,
        "seed": args.seed,
        "fault_plan": plan.to_dict(),
        "live_fault_plan": live_plan.to_dict(),
        "nofault_walls_s": walls,
        "fault_stats": fault_stats,
        "replay_fault_stats": replay_stats,
        "live_fault_stats": live_stats,
        "decision_diffs": diffs,
        "well_formed_errors": errors,
        "live_requests": args.live_requests,
        "headline": {
            "nofault_wall_rps": nofault_rps,
            "goodput_under_faults": faulted.goodput,
            "failed_requests": float(faulted.failed_count),
            "recovery_max_us": float(fault_stats.get("recovery_max_us", 0.0)),
            "fault_decisions_identical": 1.0 if not diffs else 0.0,
            "fault_counts_identical": 1.0 if counts_identical else 0.0,
            "fault_stream_well_formed": 1.0 if not errors else 0.0,
            "live_goodput_under_faults": live.goodput,
            "live_failed_requests": float(live.failed_count),
            "live_shed_requests": float(live.shed_count),
            "live_crashes": float(live_stats.get("crashes", 0)),
            "live_recoveries": float(live_stats.get("recoveries", 0)),
        },
    }


def format_report(report: dict) -> str:
    headline = report["headline"]
    stats = report["fault_stats"]
    lines = [
        f"Fault tolerance — tiny network, {report['requests']} requests"
        f" x {report['trials']} trials, recorded simulator path",
        f"  no-fault floor: {headline['nofault_wall_rps']:,.0f} req/s host"
        f" (median of {report['trials']}, fault machinery idle)",
        f"  under faults: goodput {headline['goodput_under_faults']:.1%},"
        f" {stats.get('crashes', 0)} crashes, {stats.get('retries', 0)} retries,"
        f" {int(headline['failed_requests'])} failed,"
        f" {stats.get('quarantines', 0)} quarantines"
        f" (max recovery {headline['recovery_max_us']:,.0f}us)",
        "  sim-vs-live (virtual replay): "
        + (
            "decision-identical"
            if headline["fault_decisions_identical"]
            else "DIVERGED"
        )
        + ", fault counters "
        + ("identical" if headline["fault_counts_identical"] else "DIVERGED"),
        "  fault event stream: "
        + ("well-formed" if headline["fault_stream_well_formed"] else "MALFORMED"),
        f"  live runtime: {report['live_requests']} requests,"
        f" goodput {headline['live_goodput_under_faults']:.1%},"
        f" {int(headline['live_crashes'])} crashes,"
        f" {int(headline['live_failed_requests'])} failed,"
        f" {int(headline['live_shed_requests'])} shed,"
        f" {int(headline['live_recoveries'])} recoveries",
    ]
    for diff in report["decision_diffs"][:5]:
        lines.append(f"    {diff}")
    for error in report["well_formed_errors"][:5]:
        lines.append(f"    {error}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="short trace (CI benchmark-smoke gate)"
    )
    parser.add_argument(
        "--requests", type=int, default=None, help="requests per simulated run"
    )
    parser.add_argument(
        "--rate", type=float, default=20000.0, help="offered rate (requests/s)"
    )
    parser.add_argument(
        "--crash-rate", type=float, default=0.02, help="injected crash probability"
    )
    parser.add_argument(
        "--trials", type=int, default=None, help="timed trials (5 smoke, 9 full)"
    )
    parser.add_argument(
        "--live-requests", type=int, default=None, help="live wall-clock trace length"
    )
    parser.add_argument(
        "--live-rps", type=float, default=50000.0, help="live offered rate"
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--fault-seed", type=int, default=11)
    parser.add_argument("--json", type=str, default=None, help="write report JSON here")
    args = parser.parse_args(argv)

    if args.requests is None:
        args.requests = 3000 if args.smoke else 20000
    if args.trials is None:
        args.trials = 5 if args.smoke else 9
    if args.live_requests is None:
        args.live_requests = 300 if args.smoke else 2000

    report = run_benchmark(args)
    print(format_report(report))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
