"""Benchmark: regenerate Fig 16 (layer-wise CapsAcc vs GPU)."""

from repro.experiments import fig16


def test_fig16(benchmark):
    result = benchmark(fig16.run)
    report = result.report
    # Reproduction claims: ClassCaps near the paper's 12x, total in the
    # single-digit-x band of the paper's 6x.
    assert 8.0 < report.row("ClassCaps").speedup < 20.0
    assert 3.0 < report.row("Total").speedup < 9.0
    benchmark.extra_info["speedups"] = {
        row.name: round(row.speedup, 2) for row in report.rows
    }
    print(fig16.format_report(result))


def test_fig16_channel_serial_conv(benchmark):
    """The paper-literal accumulator-minimizing conv mapping (ablation):
    under it the GPU wins Conv1, as the paper's '46% slower' annotation."""
    result = benchmark(fig16.run, conv_policy="channel_serial")
    assert result.report.row("Conv1").speedup < 1.0
    benchmark.extra_info["conv1_speedup"] = round(result.report.row("Conv1").speedup, 3)
