"""Integrity benchmark: the silent-data-corruption gates, sim and live.

The integrity layer (:mod:`repro.serve.integrity`) promises that armed
ABFT checksums turn silent data corruption into contained, retried
failures — and that the detection machinery behaves identically across
the simulator, the virtual replay and the real asyncio runtime.  This
bench guards the contract end to end:

* **Silent corruption is real** — the same seeded corruption plan served
  with no checks armed must serve corrupted results (``corrupted_served
  >= 1``, zero detections): the baseline hazard the checks exist for.
* **Checksum mode serves zero corrupted** — with ``checksum`` armed,
  every in-envelope flip is detected (coverage exactly 1.0), detected
  batches feed the retry machinery, and **no corrupted request is ever
  served**.  Deterministic from the plan seed.
* **Sim-vs-live detection identity** — the identical corruption plan
  driven through the simulator clock and through
  :func:`~repro.serve.runtime.replay_virtual` must produce the same
  decisions *and* the same fault/detection counters (corruptions,
  detections, corrupted-served, canaries).
* **Check-overhead ceiling** — pricing ``checksum`` into the MNIST
  network's batch-8 cost may add at most 10% over the unchecked cost
  (the ABFT column checksums are one extra row/column of work per tile).
* **Live wall-clock detection** — a real asyncio
  :class:`~repro.serve.runtime.ServingRuntime` over the compiled stream
  executor with injected corruption ordinals: the flips land in real
  numerics, the real ABFT checksums catch both, nothing corrupted or
  failed is served.
* **Event-stream well-formedness** — the traced corruption run keeps
  complete request lifecycles and balanced compute spans.

Usage::

    PYTHONPATH=src python benchmarks/bench_integrity.py            # full
    PYTHONPATH=src python benchmarks/bench_integrity.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_integrity.py --json out.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

import numpy as np

from repro.obs import RecordingTracer, well_formed_errors
from repro.serve import (
    AnalyticBatchCost,
    FaultPlan,
    IntegrityPolicy,
    ScheduledBatchCost,
    ServerConfig,
    ServingRuntime,
    ServingSimulator,
    make_trace,
    replay_virtual,
)
from repro.serve.compare import decision_diffs
from repro.serve.workers import CompiledStreamExecutor


def build_server(
    plan: FaultPlan | None = None,
    integrity: IntegrityPolicy | str | None = None,
) -> ServerConfig:
    mode = integrity.mode if isinstance(integrity, IntegrityPolicy) else integrity
    cost = AnalyticBatchCost(network="tiny", integrity=mode or "none")
    return ServerConfig.from_policy(
        "fifo",
        cost,
        max_batch=8,
        max_wait_us=2000.0,
        arrays=2,
        network_name="tiny",
        fault_plan=plan,
        integrity=integrity,
    )


async def drive_live(runtime: ServingRuntime, trace):
    await runtime.run_load(trace)
    await runtime.drain()
    report = runtime.report(trace_name=trace.name, offered_rps=trace.offered_rps)
    await runtime.stop()
    return report


def run_benchmark(args: argparse.Namespace) -> dict:
    rng = np.random.default_rng(args.seed)
    trace = make_trace("poisson", args.rate, args.requests, rng)
    plan = FaultPlan(corrupt_rate=args.corrupt_rate, seed=args.fault_seed)

    # --- baseline hazard: no checks armed, the same plan serves
    # corrupted results silently (goodput still 1.0 — nothing fails).
    unchecked = ServingSimulator(trace, server=build_server(plan)).run(
        with_crosscheck=False
    )
    unchecked_stats = unchecked.faults or {}

    # --- checksum mode (traced): every in-envelope flip detected and
    # retried, zero corrupted requests served.
    tracer = RecordingTracer()
    checked = ServingSimulator(
        trace, server=build_server(plan, "checksum"), tracer=tracer
    ).run(with_crosscheck=False)
    errors = well_formed_errors(tracer)
    checked_stats = checked.faults or {}
    corruptions = checked_stats.get("corruptions", 0)
    detected = checked_stats.get("detected", 0)
    coverage = detected / corruptions if corruptions else 0.0

    # --- sim-vs-live detection identity: the live engine's code path in
    # virtual time must match decisions and detection counters exactly.
    replayed = replay_virtual(build_server(plan, "checksum"), trace)
    diffs = decision_diffs(checked, replayed)
    counts_identical = checked_stats == (replayed.faults or {})

    # --- canary probes: checksum+canary with a short period fires
    # placement-driven probes; detections are seeded draws from the plan.
    canary_policy = IntegrityPolicy(mode="checksum+canary", canary_every=4)
    canaried = ServingSimulator(
        trace, server=build_server(plan, canary_policy)
    ).run(with_crosscheck=False)
    canary_stats = canaried.faults or {}

    # --- check-overhead ceiling: pricing the ABFT checksums into the
    # MNIST batch-8 cost stays within the 10% budget.
    plain_cost = AnalyticBatchCost(network="mnist")
    priced_cost = AnalyticBatchCost(network="mnist", integrity="checksum")
    overhead_ratio = priced_cost.batch_cycles(8) / plain_cost.batch_cycles(8)

    # --- live wall-clock detection through the real asyncio runtime and
    # the compiled stream executor: injected corruption ordinals flip
    # real numerics mid-stream and the real ABFT checksums catch them.
    live_plan = FaultPlan(corrupt_batches=(1, 3), seed=args.fault_seed)
    live_cost = ScheduledBatchCost("tiny", integrity="checksum")
    live_server = ServerConfig.from_policy(
        "fifo",
        live_cost,
        max_batch=8,
        max_wait_us=2000.0,
        arrays=2,
        network_name="tiny",
        fault_plan=live_plan,
        integrity="checksum",
    )
    live_trace = make_trace("uniform", args.live_rps, args.live_requests, rng)
    runtime = ServingRuntime(
        live_server, executor=CompiledStreamExecutor("tiny"), max_pending=4096
    )
    live = asyncio.run(drive_live(runtime, live_trace))
    live_stats = live.faults or {}

    return {
        "benchmark": "bench_integrity",
        "network": "tiny",
        "requests": args.requests,
        "rate_rps": args.rate,
        "seed": args.seed,
        "corruption_plan": plan.to_dict(),
        "live_corruption_plan": live_plan.to_dict(),
        "unchecked_stats": unchecked_stats,
        "checked_stats": checked_stats,
        "canary_stats": canary_stats,
        "replay_stats": replayed.faults or {},
        "live_stats": live_stats,
        "decision_diffs": diffs,
        "well_formed_errors": errors,
        "live_requests": args.live_requests,
        "headline": {
            "unchecked_corrupted_served": float(
                unchecked_stats.get("corrupted_served", 0)
            ),
            "unchecked_detected": float(unchecked_stats.get("detected", 0)),
            "checked_corrupted_served": float(
                checked_stats.get("corrupted_served", 0)
            ),
            "detection_coverage": coverage,
            "detection_retries": float(checked_stats.get("retries", 0)),
            "goodput_under_corruption": checked.goodput,
            "detection_decisions_identical": 1.0 if not diffs else 0.0,
            "detection_counts_identical": 1.0 if counts_identical else 0.0,
            "integrity_stream_well_formed": 1.0 if not errors else 0.0,
            "canaries_fired": float(canary_stats.get("canaries", 0)),
            "checksum_overhead_ratio": overhead_ratio,
            "live_goodput": live.goodput,
            "live_failed_requests": float(live.failed_count),
            "live_corruptions": float(live_stats.get("corruptions", 0)),
            "live_detected": float(live_stats.get("detected", 0)),
            "live_corrupted_served": float(live_stats.get("corrupted_served", 0)),
        },
    }


def format_report(report: dict) -> str:
    headline = report["headline"]
    checked = report["checked_stats"]
    lines = [
        f"Integrity — tiny network, {report['requests']} requests,"
        f" corrupt_rate {report['corruption_plan']['corrupt_rate']:.0%},"
        " recorded simulator path",
        f"  unchecked: {int(headline['unchecked_corrupted_served'])} corrupted"
        " requests served silently"
        f" ({int(report['unchecked_stats'].get('corruptions', 0))} flips,"
        f" {int(headline['unchecked_detected'])} detected)",
        f"  checksum: {checked.get('corruptions', 0)} flips,"
        f" {checked.get('detected', 0)} detected"
        f" (coverage {headline['detection_coverage']:.0%}),"
        f" {int(headline['checked_corrupted_served'])} served corrupted,"
        f" {int(headline['detection_retries'])} retries,"
        f" goodput {headline['goodput_under_corruption']:.1%}",
        "  sim-vs-live (virtual replay): "
        + (
            "decision-identical"
            if headline["detection_decisions_identical"]
            else "DIVERGED"
        )
        + ", detection counters "
        + ("identical" if headline["detection_counts_identical"] else "DIVERGED"),
        f"  canaries: {int(headline['canaries_fired'])} probes"
        f" ({report['canary_stats'].get('canary_detected', 0)} detections)",
        f"  mnist check overhead: {headline['checksum_overhead_ratio']:.4f}x"
        " batch-8 cycles (ceiling 1.10x)",
        "  corruption event stream: "
        + (
            "well-formed"
            if headline["integrity_stream_well_formed"]
            else "MALFORMED"
        ),
        f"  live runtime: {report['live_requests']} requests,"
        f" goodput {headline['live_goodput']:.1%},"
        f" {int(headline['live_corruptions'])} corruptions,"
        f" {int(headline['live_detected'])} detected by real ABFT,"
        f" {int(headline['live_corrupted_served'])} served corrupted,"
        f" {int(headline['live_failed_requests'])} failed",
    ]
    for diff in report["decision_diffs"][:5]:
        lines.append(f"    {diff}")
    for error in report["well_formed_errors"][:5]:
        lines.append(f"    {error}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="short trace (CI benchmark-smoke gate)"
    )
    parser.add_argument(
        "--requests", type=int, default=None, help="requests per simulated run"
    )
    parser.add_argument(
        "--rate", type=float, default=20000.0, help="offered rate (requests/s)"
    )
    parser.add_argument(
        "--corrupt-rate",
        type=float,
        default=0.05,
        help="injected corruption probability per batch",
    )
    parser.add_argument(
        "--live-requests", type=int, default=None, help="live wall-clock trace length"
    )
    parser.add_argument(
        "--live-rps", type=float, default=2000.0, help="live offered rate"
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--fault-seed", type=int, default=11)
    parser.add_argument("--json", type=str, default=None, help="write report JSON here")
    args = parser.parse_args(argv)

    if args.requests is None:
        args.requests = 3000 if args.smoke else 20000
    if args.live_requests is None:
        args.live_requests = 200 if args.smoke else 1000

    report = run_benchmark(args)
    print(format_report(report))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
