"""Benchmarks for the extension experiments (motivation, energy, batching)."""

from repro.experiments import batching, energy, motivation


def test_motivation(benchmark):
    result = benchmark(motivation.run)
    assert result.compute_bound_layers["PrimaryCaps"]
    assert result.fits_onchip
    benchmark.extra_info["network_intensity"] = round(
        result.network_point.arithmetic_intensity, 1
    )
    print(motivation.format_report(result))


def test_energy(benchmark):
    result = benchmark(energy.run)
    assert result.consistent
    benchmark.extra_info["dynamic_uj"] = round(result.bottomup_total_uj, 1)
    benchmark.extra_info["envelope_uj"] = round(result.topdown_energy_uj, 1)
    print(energy.format_report(result))


def test_batching(benchmark):
    result = benchmark(batching.run)
    assert result.capsacc_images_per_s > result.gpu_images_per_s[1]
    benchmark.extra_info["crossover_batch"] = result.crossover_batch
    print(batching.format_report(result))
