"""Compiler benchmark: compile time, stream size, pricing, and drift.

Three measurements, one JSON artifact:

* **Compilation** — per zoo network, the wall time of the lowering pass
  (graph → instruction stream) and the resulting program size.  Compiling
  is meant to be interactive-fast; the guarded metric is a conservative
  networks-per-second floor.
* **Pricing** — per zoo network, the closed-form double-buffered
  cycles/image and steady-state pipelined cycles/image from the compiled
  stream (deterministic; drift means the lowering changed).
* **Drift** — the compiled stream executed against the frozen
  ``LegacyBatchScheduler`` hand lowering on the same images: both the
  executed cycle totals and the closed-form pricing must be *exactly*
  the legacy figure (ratio 1.0, guarded with absolute bounds).

Usage::

    PYTHONPATH=src python benchmarks/bench_compiler.py            # MNIST drift
    PYTHONPATH=src python benchmarks/bench_compiler.py --smoke    # tiny, CI
    PYTHONPATH=src python benchmarks/bench_compiler.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.capsnet.config import mnist_capsnet_config, tiny_capsnet_config
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.compiler.cost import program_batch_cycles, program_steady_cycles
from repro.compiler.lower import compile_graph
from repro.compiler.zoo import get_network, zoo_names
from repro.data.synthetic import SyntheticDigits
from repro.hw.config import AcceleratorConfig
from repro.hw.legacy_scheduler import LegacyBatchScheduler
from repro.hw.scheduler import BatchScheduler


def compile_rows(args: argparse.Namespace) -> list[dict]:
    """Compile every zoo network fresh and price its stream."""
    accel = AcceleratorConfig()
    rows = []
    for name in zoo_names():
        network = get_network(name)
        start = time.perf_counter()
        for _ in range(args.compile_repeats):
            program = compile_graph(network.graph, network.formats)
        compile_ms = (time.perf_counter() - start) * 1e3 / args.compile_repeats
        overlapped = program_batch_cycles(accel, program, 1)["overlapped"]
        steady = program_steady_cycles(accel, program, args.batch)
        rows.append(
            {
                "network": name,
                "instructions": program.num_instructions,
                "gemm_instructions": len(program.gemm_instructions()),
                "compile_ms": compile_ms,
                "overlapped_cycles_b1": overlapped,
                "steady_cycles_per_image": steady / args.batch,
            }
        )
    return rows


def drift_rows(args: argparse.Namespace) -> dict:
    """Executed and closed-form compiled cycles vs the legacy lowering."""
    config = tiny_capsnet_config() if args.network == "tiny" else mnist_capsnet_config()
    qnet = QuantizedCapsuleNet(config)
    images = (
        SyntheticDigits(size=config.image_size, seed=9).generate(args.drift_batch).images
    )

    legacy = LegacyBatchScheduler(qnet)
    start = time.perf_counter()
    want = legacy.run_batch(images)
    legacy_seconds = time.perf_counter() - start

    compiled = BatchScheduler(qnet)
    start = time.perf_counter()
    got = compiled.run_batch(images)
    compiled_seconds = time.perf_counter() - start

    closed_form = program_batch_cycles(
        compiled.accelerator.config, compiled.compiled.program, args.drift_batch
    )
    return {
        "network": args.network,
        "batch": args.drift_batch,
        "legacy_overlapped_cycles": want.overlapped_cycles,
        "compiled_overlapped_cycles": got.overlapped_cycles,
        "closed_form_overlapped_cycles": closed_form["overlapped"],
        "predictions_identical": bool(
            np.array_equal(got.predictions, want.predictions)
        ),
        "legacy_wall_seconds": legacy_seconds,
        "compiled_wall_seconds": compiled_seconds,
        "compiled_vs_legacy_cycle_ratio": got.overlapped_cycles
        / want.overlapped_cycles,
        "closed_form_vs_legacy_cycle_ratio": closed_form["overlapped"]
        / want.overlapped_cycles,
    }


def run_benchmark(args: argparse.Namespace) -> dict:
    compile_start = time.perf_counter()
    compiled = compile_rows(args)
    compile_seconds = time.perf_counter() - compile_start
    drift = drift_rows(args)
    return {
        "benchmark": "bench_compiler",
        "network": args.network,
        "batch": args.batch,
        "zoo": compiled,
        "drift": drift,
        "headline": {
            "zoo_networks": len(compiled),
            "compile_networks_per_second": (
                len(compiled) * args.compile_repeats / compile_seconds
            ),
            "compiled_vs_legacy_cycle_ratio": drift[
                "compiled_vs_legacy_cycle_ratio"
            ],
            "closed_form_vs_legacy_cycle_ratio": drift[
                "closed_form_vs_legacy_cycle_ratio"
            ],
            "predictions_identical": 1.0 if drift["predictions_identical"] else 0.0,
        },
    }


def format_report(report: dict) -> str:
    lines = [
        "Compiler — graph -> ISA lowering across the model zoo",
        f"{'network':>10s} {'instrs':>7s} {'gemms':>6s} {'compile':>9s}"
        f" {'cyc/img (b1)':>13s} {'steady cyc/img':>15s}",
    ]
    for row in report["zoo"]:
        lines.append(
            f"{row['network']:>10s} {row['instructions']:7d}"
            f" {row['gemm_instructions']:6d} {row['compile_ms']:7.1f}ms"
            f" {row['overlapped_cycles_b1']:13,d}"
            f" {row['steady_cycles_per_image']:15,.0f}"
        )
    drift = report["drift"]
    lines.append(
        f"drift [{drift['network']}, batch {drift['batch']}]:"
        f" legacy {drift['legacy_overlapped_cycles']:,} cycles,"
        f" compiled {drift['compiled_overlapped_cycles']:,}"
        f" ({drift['compiled_vs_legacy_cycle_ratio']:.4f}x),"
        f" closed-form {drift['closed_form_overlapped_cycles']:,}"
        f" ({drift['closed_form_vs_legacy_cycle_ratio']:.4f}x),"
        f" predictions {'identical' if drift['predictions_identical'] else 'DIFFER'}"
    )
    headline = report["headline"]
    lines.append(
        f"headline: {headline['zoo_networks']} zoo networks compile at"
        f" {headline['compile_networks_per_second']:.1f} networks/s;"
        f" compiled-vs-legacy cycle ratio"
        f" {headline['compiled_vs_legacy_cycle_ratio']:.4f}"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny drift network and few compile repeats (CI smoke gate)",
    )
    parser.add_argument("--network", choices=("mnist", "tiny"), default=None)
    parser.add_argument(
        "--batch", type=int, default=4, help="batch size for steady-state pricing"
    )
    parser.add_argument(
        "--drift-batch", type=int, default=2, help="batch size of the drift execution"
    )
    parser.add_argument(
        "--compile-repeats", type=int, default=None, help="lowering passes to average"
    )
    parser.add_argument("--json", type=str, default=None, help="write the artifact here")
    args = parser.parse_args(argv)

    if args.network is None:
        args.network = "tiny" if args.smoke else "mnist"
    if args.compile_repeats is None:
        args.compile_repeats = 3 if args.smoke else 10

    report = run_benchmark(args)
    print(format_report(report))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
