"""Benchmarks of the simulator itself (the performance-sensitive code).

These measure the repository's own hot paths: the cycle-stepped systolic
array, the fast GEMM engine, the bit-accurate quantized inference and the
fully mapped accelerator execution.
"""

import numpy as np
import pytest

from repro.capsnet.hwops import QuantizedFormats
from repro.hw.accelerator import CapsAccAccelerator, GemmJob
from repro.hw.config import AcceleratorConfig
from repro.hw.systolic import SystolicArray
from repro.mapping.execute import MappedInference

FMTS = QuantizedFormats()
ACC_FMT = FMTS.acc(FMTS.caps_data, FMTS.classcaps_weight)


@pytest.fixture(scope="module")
def gemm_operands():
    rng = np.random.default_rng(0)
    data = rng.integers(-60, 60, size=(64, 64))
    weights = rng.integers(-60, 60, size=(64, 64))
    return data, weights


def test_stepped_systolic_tile(benchmark, gemm_operands):
    """One 16x16 weight-stationary tile pass, clock edge by clock edge."""
    config = AcceleratorConfig()
    array = SystolicArray(config, FMTS.caps_data, FMTS.classcaps_weight, ACC_FMT)
    data, weights = gemm_operands
    tile = weights[:16, :16]
    stream = data[:, :16]

    def run():
        array.load_weights(tile)
        return array.run_tile(stream)

    result = benchmark(run)
    assert np.array_equal(result.psums, array.compute_tile_reference(tile, stream))


def test_stepped_full_gemm(benchmark, gemm_operands):
    config = AcceleratorConfig()
    accel = CapsAccAccelerator(config)
    data, weights = gemm_operands
    job = GemmJob("bench", data, weights, FMTS.caps_data, FMTS.classcaps_weight, ACC_FMT)
    result = benchmark(accel.run_gemm, job, "stepped")
    expected = np.clip(data.astype(np.int64) @ weights, ACC_FMT.raw_min, ACC_FMT.raw_max)
    assert np.array_equal(result.acc, expected)


def test_fast_full_gemm(benchmark, gemm_operands):
    config = AcceleratorConfig()
    accel = CapsAccAccelerator(config)
    data, weights = gemm_operands
    job = GemmJob("bench", data, weights, FMTS.caps_data, FMTS.classcaps_weight, ACC_FMT)
    result = benchmark(accel.run_gemm, job, "fast")
    expected = np.clip(data.astype(np.int64) @ weights, ACC_FMT.raw_min, ACC_FMT.raw_max)
    assert np.array_equal(result.acc, expected)


def test_quantized_inference_tiny(benchmark, tiny_qnet, tiny_image):
    out = benchmark(tiny_qnet.forward, tiny_image)
    assert out.saturation.rate < 0.01


def test_mapped_inference_tiny(benchmark, tiny_qnet, tiny_image):
    mapped = MappedInference(tiny_qnet)
    reference = tiny_qnet.forward(tiny_image)
    result = benchmark(mapped.run, tiny_image)
    assert np.array_equal(result.class_caps_raw, reference.class_caps_raw)
