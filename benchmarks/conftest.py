"""Shared fixtures for the benchmark harness.

Run with:  pytest benchmarks/ --benchmark-only
Each benchmark regenerates one paper artifact (table or figure); the
headline reproduction claims are asserted so a performance regression that
breaks a result fails loudly, and key values are attached to
``benchmark.extra_info`` for inspection in the JSON output.
"""

import pytest

from repro.capsnet.config import mnist_capsnet_config, tiny_capsnet_config
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.data.synthetic import SyntheticDigits


@pytest.fixture(scope="session")
def mnist_config():
    return mnist_capsnet_config()


@pytest.fixture(scope="session")
def tiny_config():
    return tiny_capsnet_config()


@pytest.fixture(scope="session")
def tiny_qnet(tiny_config):
    return QuantizedCapsuleNet(tiny_config)


@pytest.fixture(scope="session")
def tiny_image(tiny_config):
    generator = SyntheticDigits(size=tiny_config.image_size, seed=3)
    return generator.generate(1, classes=(1,)).images[0]
