"""Perf-regression guard: compare a benchmark JSON against its baseline.

CI runs the benchmark smokes, then this checker::

    python benchmarks/check_perf_regression.py ARTIFACT.json BASELINE.json

The baseline (checked in under ``benchmarks/baselines/``) lists guarded
metrics by dotted path into the artifact::

    {
      "tolerance": 0.10,
      "metrics": {
        "headline.wall_speedup_vs_batch1": {"value": 1.6, "higher_is_better": true},
        "headline.steady_vs_double_buffered": {"value": 0.75, "higher_is_better": false}
      }
    }

A metric fails when it regresses more than ``tolerance`` (default 10 %)
past the baseline value — below ``value * (1 - tol)`` when higher is
better, above ``value * (1 + tol)`` when lower is better.  Wall-clock
baselines are deliberately conservative floors (see
``benchmarks/baselines/README.md``), so the guard catches real
regressions (an accidentally quadratic event loop, a lost amortization)
without flaking on runner-to-runner variance.  Exit code 1 on any
regression; missing metrics fail too (a renamed key silently dropping a
guard would defeat the point).

A metric may instead (or additionally) pin **absolute** bounds with
``min_value`` / ``max_value`` — the right shape for correctness-style
gates where relative tolerance around a baseline is meaningless
(goodput must be exactly 1.0, a recovery time must stay under a fixed
budget)::

    "headline.goodput_under_faults": {"min_value": 1.0},
    "headline.recovery_max_us": {"max_value": 6000.0}
"""

from __future__ import annotations

import argparse
import json
import sys


def lookup(artifact: dict, path: str):
    """Resolve a dotted path (list indices allowed) into the artifact."""
    node = artifact
    for part in path.split("."):
        if isinstance(node, list):
            node = node[int(part)]
        elif isinstance(node, dict):
            if part not in node:
                raise KeyError(path)
            node = node[part]
        else:
            raise KeyError(path)
    return node


def check(artifact: dict, baseline: dict) -> list[str]:
    """Return a list of human-readable failures (empty = pass)."""
    tolerance = float(baseline.get("tolerance", 0.10))
    failures = []
    for path, spec in baseline.get("metrics", {}).items():
        higher_is_better = bool(spec.get("higher_is_better", True))
        tol = float(spec.get("tolerance", tolerance))
        try:
            value = float(lookup(artifact, path))
        except (KeyError, IndexError, TypeError, ValueError):
            failures.append(f"{path}: missing from artifact")
            continue
        if "min_value" in spec and value < float(spec["min_value"]):
            failures.append(
                f"{path}: {value:.4g} < absolute floor {float(spec['min_value']):.4g}"
            )
        if "max_value" in spec and value > float(spec["max_value"]):
            failures.append(
                f"{path}: {value:.4g} > absolute ceiling {float(spec['max_value']):.4g}"
            )
        if "value" not in spec:
            continue
        reference = float(spec["value"])
        if higher_is_better:
            floor = reference * (1.0 - tol)
            if value < floor:
                failures.append(
                    f"{path}: {value:.4g} < {floor:.4g}"
                    f" (baseline {reference:.4g}, tolerance {tol:.0%})"
                )
        else:
            ceiling = reference * (1.0 + tol)
            if value > ceiling:
                failures.append(
                    f"{path}: {value:.4g} > {ceiling:.4g}"
                    f" (baseline {reference:.4g}, tolerance {tol:.0%})"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifact", help="benchmark JSON produced by this run")
    parser.add_argument("baseline", help="checked-in baseline JSON")
    args = parser.parse_args(argv)

    with open(args.artifact) as handle:
        artifact = json.load(handle)
    with open(args.baseline) as handle:
        baseline = json.load(handle)

    failures = check(artifact, baseline)
    guarded = len(baseline.get("metrics", {}))
    if failures:
        print(f"PERF REGRESSION against {args.baseline}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"perf guard OK: {guarded} metric(s) within tolerance of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
