"""Serving benchmark: dynamic batching vs batch-1 at matched arrival rates.

Drives the discrete-event serving simulator (``repro.serve``) in *execute*
mode — every dispatched batch really runs through the batched engine — and
compares two policies on the **same** arrival trace and request images:

* ``batch-1`` — request-at-a-time serving (the no-batching baseline);
* ``dynamic`` — the dynamic batcher (batch <= 8, bounded coalescing wait).

Per arrival rate it reports achieved throughput on the simulated clock,
host wall-clock throughput (requests simulated per second — the per-job
dispatch cost batching amortizes is genuine simulation work, the same
headline as ``bench_batched.py``), and the latency trade-off decomposed
into queueing / batching / compute.  At an arrival rate that saturates the
batch-1 server, dynamic batching sustains >= 2x the wall throughput on
MNIST shapes; at light load it costs bounded batching latency for little
gain — both ends of the trade-off land in the JSON artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py            # MNIST shapes
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke    # tiny, CI
    PYTHONPATH=src python benchmarks/bench_serving.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.capsnet.config import mnist_capsnet_config, tiny_capsnet_config
from repro.data.synthetic import SyntheticDigits
from repro.serve import BatchPolicy, ScheduledBatchCost, ServingSimulator, poisson_trace


def run_point(
    cost: ScheduledBatchCost,
    trace,
    images: np.ndarray,
    policy: BatchPolicy,
    arrays: int,
    network: str,
) -> dict:
    """Simulate one (rate, policy) point in execute mode."""
    simulator = ServingSimulator(
        trace,
        policy,
        cost,
        arrays=arrays,
        images=images,
        execute=True,
        network_name=network,
    )
    report = simulator.run()
    latency = report.latency_summary()
    return {
        "policy": policy.describe(),
        "max_batch": policy.max_batch,
        "offered_rps": report.offered_rps,
        "throughput_rps": report.throughput_rps,
        "wall_seconds": report.wall_seconds,
        "wall_rps": report.wall_rps,
        "mean_batch_size": report.mean_batch_size,
        "batches": len(report.batches),
        "array_utilization": [stat["utilization"] for stat in report.array_stats],
        "latency_us": latency,
    }


def run_benchmark(args: argparse.Namespace) -> dict:
    network = tiny_capsnet_config() if args.network == "tiny" else mnist_capsnet_config()
    cost = ScheduledBatchCost(network=network)
    config = cost.config
    # Warm up the engine (LUT ROMs, allocator arenas) and memoize the
    # per-size costs the capacity calculation needs.
    capacity_rps = args.arrays * config.clock_mhz * 1e6 / cost.batch_cycles(1)
    cost.batch_cycles(args.max_batch)

    # One Generator seeds the whole benchmark: traces and request images.
    rng = np.random.default_rng(args.seed)
    policies = [
        BatchPolicy(max_batch=1, max_wait_us=0.0),
        BatchPolicy(max_batch=args.max_batch, max_wait_us=args.max_wait_us),
    ]
    digits = SyntheticDigits(size=network.image_size, rng=rng)
    rows = []
    for multiplier in args.rate_multipliers:
        rate = multiplier * capacity_rps
        # Same trace and images for every policy at this rate.
        trace = poisson_trace(rate, args.requests, rng)
        images = digits.generate(args.requests).images
        point_rows = [
            run_point(cost, trace, images, policy, args.arrays, args.network)
            for policy in policies
        ]
        baseline = point_rows[0]
        for row in point_rows:
            row["rate_multiplier"] = multiplier
            row["throughput_speedup_vs_batch1"] = (
                row["throughput_rps"] / baseline["throughput_rps"]
            )
            row["wall_speedup_vs_batch1"] = row["wall_rps"] / baseline["wall_rps"]
        rows.extend(point_rows)

    top = max(args.rate_multipliers)
    dynamic_top = next(
        row for row in rows if row["rate_multiplier"] == top and row["max_batch"] > 1
    )
    batch1_top = next(
        row for row in rows if row["rate_multiplier"] == top and row["max_batch"] == 1
    )
    return {
        "benchmark": "bench_serving",
        "network": args.network,
        "requests": args.requests,
        "arrays": args.arrays,
        "seed": args.seed,
        "batch1_capacity_rps": capacity_rps,
        "results": rows,
        "headline": {
            "rate_multiplier": top,
            "offered_rps": dynamic_top["offered_rps"],
            "wall_speedup_vs_batch1": dynamic_top["wall_speedup_vs_batch1"],
            "throughput_speedup_vs_batch1": dynamic_top["throughput_speedup_vs_batch1"],
            "p95_total_latency_batch1_us": batch1_top["latency_us"]["total"]["p95_us"],
            "p95_total_latency_dynamic_us": dynamic_top["latency_us"]["total"]["p95_us"],
        },
    }


def format_report(report: dict) -> str:
    lines = [
        f"Serving simulator — {report['network']} network, {report['requests']} requests"
        f" per point, {report['arrays']} array(s),"
        f" batch-1 capacity {report['batch1_capacity_rps']:,.1f} req/s",
        f"{'rate':>6s} {'policy':>22s} {'served req/s':>13s} {'wall req/s':>11s}"
        f" {'speedup':>8s} {'batch':>6s} {'p95 lat':>9s} {'queue':>8s} {'batching':>9s}",
    ]
    for row in report["results"]:
        latency = row["latency_us"]
        lines.append(
            f"{row['rate_multiplier']:5.1f}x {row['policy']:>22s}"
            f" {row['throughput_rps']:13,.1f} {row['wall_rps']:11,.1f}"
            f" {row['wall_speedup_vs_batch1']:7.2f}x"
            f" {row['mean_batch_size']:6.2f}"
            f" {latency['total']['p95_us']:8,.0f}u"
            f" {latency['queueing']['p95_us']:7,.0f}u"
            f" {latency['batching']['p95_us']:8,.0f}u"
        )
    headline = report["headline"]
    lines.append(
        f"headline: at {headline['rate_multiplier']:.1f}x batch-1 capacity, dynamic"
        f" batching serves {headline['wall_speedup_vs_batch1']:.2f}x the wall-clock"
        f" throughput ({headline['throughput_speedup_vs_batch1']:.2f}x modeled); p95"
        f" latency {headline['p95_total_latency_dynamic_us']:,.0f}us vs"
        f" {headline['p95_total_latency_batch1_us']:,.0f}us for batch-1"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny shapes and short trace (CI benchmark-smoke gate)",
    )
    parser.add_argument("--network", choices=("mnist", "tiny"), default=None)
    parser.add_argument(
        "--requests", type=int, default=None, help="requests per simulated point"
    )
    parser.add_argument(
        "--rate-multipliers",
        type=float,
        nargs="+",
        default=[0.5, 2.5],
        help="arrival rates as multiples of the batch-1 service capacity",
    )
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument(
        "--max-wait-us", type=float, default=None, help="dynamic policy coalescing wait"
    )
    parser.add_argument("--arrays", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", type=str, default=None, help="write report JSON here")
    args = parser.parse_args(argv)

    if args.requests is not None and args.requests < 1:
        parser.error("--requests must be positive")
    if args.max_batch < 2:
        parser.error("--max-batch must be at least 2 (the benchmark compares a"
                     " dynamic policy against the built-in batch-1 baseline)")
    if min(args.rate_multipliers) <= 0:
        parser.error("--rate-multipliers must be positive")
    if args.network is None:
        args.network = "tiny" if args.smoke else "mnist"
    if args.requests is None:
        args.requests = 96 if args.smoke else 48
    if args.max_wait_us is None:
        # About one batch-1 service time: long enough to coalesce at high
        # load, short enough to bound the light-load latency cost.
        args.max_wait_us = 50.0 if args.network == "tiny" else 5000.0

    report = run_benchmark(args)
    print(format_report(report))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
