"""Benchmark: the ablation studies (design choices of DESIGN.md)."""

from repro.experiments import ablations


def test_routing_optimization(benchmark):
    result = benchmark(ablations.routing_optimization)
    assert result.ratio("optimized (skip softmax1)", "textbook") < 1.0
    benchmark.extra_info["variants"] = {
        k: round(v, 4) for k, v in result.variants.items()
    }


def test_weight_double_buffering(benchmark):
    result = benchmark(ablations.weight_double_buffering)
    ratio = result.variants["single-buffered"] / result.variants["double-buffered (Weight2)"]
    assert ratio > 1.5
    benchmark.extra_info["slowdown_without_weight2"] = round(ratio, 2)


def test_array_size_sweep(benchmark):
    result = benchmark(ablations.array_size_sweep)
    times = [result.variants[f"{s}x{s}"] for s in (4, 8, 16, 32)]
    assert times == sorted(times, reverse=True)
    benchmark.extra_info["total_ms"] = {k: round(v, 3) for k, v in result.variants.items()}


def test_conv_mapping_policy(benchmark):
    result = benchmark(ablations.conv_mapping_policy)
    assert result.variants["channel_serial"] > result.variants["channel_parallel"]
    benchmark.extra_info["conv1_us"] = {k: round(v, 1) for k, v in result.variants.items()}


def test_bitwidth_sweep(benchmark):
    result = benchmark(ablations.bitwidth_sweep)
    assert result.variants["16b"] > result.variants["4b"]
    benchmark.extra_info["area_mm2"] = {k: round(v, 3) for k, v in result.variants.items()}


def test_squash_lut_precision(benchmark):
    result = benchmark(ablations.squash_lut_precision)
    assert result.variants["4b data"] > result.variants["8b data"]
    benchmark.extra_info["mean_abs_error"] = {
        k: round(v, 5) for k, v in result.variants.items()
    }
