"""Stream-pipelining benchmark: cold vs warm cycles/image, serving impact.

Two measurements, one JSON artifact:

* **Engine** — per batch size, the double-buffered ``BatchScheduler``
  figure (the non-pipelined per-batch cost), the pipelined cold cost (one
  batch alone, pipeline empty) and the steady-state warm cost (marginal
  cycles of a batch in a homogeneous stream).  The headline is the
  batch-1 ``steady / double-buffered`` ratio: stream pipelining keeps the
  array hot between batches, so the ratio must land at or below 0.9 on
  MNIST shapes (the acceptance bar; the compute-only lower bound is also
  recorded to show the remaining headroom).  The closed-form
  :class:`repro.perf.AnalyticStreamCost` is cross-checked against the
  scheduler-traced timing as part of the run.
* **Serving** — the discrete-event simulator on one saturating trace,
  pipeline off vs on: back-to-back batches pay the warm cost, so modeled
  throughput rises and the latency report gains the drain-saved term.

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py            # MNIST shapes
    PYTHONPATH=src python benchmarks/bench_pipeline.py --smoke    # tiny, CI
    PYTHONPATH=src python benchmarks/bench_pipeline.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.capsnet.config import mnist_capsnet_config, tiny_capsnet_config
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.hw.scheduler import BatchScheduler, PipelinedStreamScheduler
from repro.perf.stream import AnalyticStreamCost, stream_crosscheck
from repro.serve import (
    BatchPolicy,
    ScheduledBatchCost,
    ServingSimulator,
    poisson_trace,
)


def engine_rows(args: argparse.Namespace, network) -> tuple[list[dict], dict]:
    """Cold vs warm cycles/image per batch size, with the analytic crosscheck."""
    qnet = QuantizedCapsuleNet(network)
    scheduler = BatchScheduler(qnet)
    pipelined = PipelinedStreamScheduler(qnet)
    analytic = AnalyticStreamCost(network=network)
    config = pipelined.accelerator.config
    size = network.image_size
    rows = []
    wall_start = time.perf_counter()
    for batch in args.batch_sizes:
        result = scheduler.run_batch(np.zeros((batch, size, size)))
        double_buffered = result.overlapped_cycles
        compute = result.total_stats.compute_cycles
        cold = pipelined.probe_timing([batch]).finish_cycles
        steady = pipelined.steady_state_cycles(batch, stream_length=args.stream_length)
        rows.append(
            {
                "batch": batch,
                "double_buffered_cycles": double_buffered,
                "pipelined_cold_cycles": cold,
                "pipelined_steady_cycles": steady,
                "compute_cycles": compute,
                "double_buffered_cycles_per_image": double_buffered / batch,
                "steady_cycles_per_image": steady / batch,
                "steady_vs_double_buffered": steady / double_buffered,
                "compute_bound_ratio": compute / double_buffered,
                "steady_images_per_second": batch * config.clock_mhz * 1e6 / steady,
                "analytic_steady_cycles": analytic.steady_cycles(batch),
            }
        )
    wall_seconds = time.perf_counter() - wall_start
    check = stream_crosscheck(
        pipelined, analytic, batch_sizes=tuple(args.batch_sizes)
    )
    return rows, {
        "wall_seconds": wall_seconds,
        "crosscheck": {str(batch): values for batch, values in check.items()},
    }


def serving_rows(args: argparse.Namespace, network) -> list[dict]:
    """Same saturating trace, pipeline off vs on."""
    rows = []
    costs = {
        False: ScheduledBatchCost(network=network),
        True: ScheduledBatchCost(network=network, pipeline=True),
    }
    capacity = (
        args.arrays
        * costs[False].config.clock_mhz
        * 1e6
        / costs[False].batch_cycles(1)
    )
    trace = poisson_trace(
        args.rate_multiplier * capacity,
        args.requests,
        np.random.default_rng(args.seed),
    )
    policy = BatchPolicy(max_batch=args.max_batch, max_wait_us=args.max_wait_us)
    for pipeline in (False, True):
        wall_start = time.perf_counter()
        report = ServingSimulator(
            trace,
            policy,
            costs[pipeline],
            arrays=args.arrays,
            pipeline=pipeline,
            network_name=args.network,
        ).run()
        rows.append(
            {
                "pipeline": pipeline,
                "offered_rps": report.offered_rps,
                "throughput_rps": report.throughput_rps,
                "batches": len(report.batches),
                "warm_batches": report.warm_batches,
                "drain_saved_us": report.drain_saved_total_us,
                "p95_total_latency_us": report.latency_summary()["total"]["p95_us"],
                "wall_seconds": time.perf_counter() - wall_start,
            }
        )
    baseline = rows[0]
    for row in rows:
        row["throughput_speedup_vs_cold"] = (
            row["throughput_rps"] / baseline["throughput_rps"]
        )
    return rows


def run_benchmark(args: argparse.Namespace) -> dict:
    network = tiny_capsnet_config() if args.network == "tiny" else mnist_capsnet_config()
    engine, engine_meta = engine_rows(args, network)
    serving = serving_rows(args, network)
    batch1 = next(row for row in engine if row["batch"] == min(args.batch_sizes))
    pipelined_serving = next(row for row in serving if row["pipeline"])
    return {
        "benchmark": "bench_pipeline",
        "network": args.network,
        "batch_sizes": list(args.batch_sizes),
        "stream_length": args.stream_length,
        "requests": args.requests,
        "arrays": args.arrays,
        "seed": args.seed,
        "engine": engine,
        "engine_meta": engine_meta,
        "serving": serving,
        "headline": {
            "batch": batch1["batch"],
            "steady_vs_double_buffered": batch1["steady_vs_double_buffered"],
            "compute_bound_ratio": batch1["compute_bound_ratio"],
            "steady_cycles_per_image": batch1["steady_cycles_per_image"],
            "double_buffered_cycles_per_image": batch1[
                "double_buffered_cycles_per_image"
            ],
            "serving_throughput_speedup": pipelined_serving[
                "throughput_speedup_vs_cold"
            ],
            "warm_batch_fraction": (
                pipelined_serving["warm_batches"] / pipelined_serving["batches"]
                if pipelined_serving["batches"]
                else 0.0
            ),
        },
    }


def format_report(report: dict) -> str:
    lines = [
        f"Stream pipelining — {report['network']} network,"
        f" stream length {report['stream_length']}",
        f"{'batch':>6s} {'dbuf cyc/img':>13s} {'steady cyc/img':>15s} {'ratio':>7s}"
        f" {'compute bound':>14s} {'img/s':>10s}",
    ]
    for row in report["engine"]:
        lines.append(
            f"{row['batch']:6d} {row['double_buffered_cycles_per_image']:13,.0f}"
            f" {row['steady_cycles_per_image']:15,.0f}"
            f" {row['steady_vs_double_buffered']:6.3f}x"
            f" {row['compute_bound_ratio']:13.3f}x"
            f" {row['steady_images_per_second']:10,.0f}"
        )
    worst = max(
        values["rel_error"]
        for values in report["engine_meta"]["crosscheck"].values()
    )
    lines.append(f"analytic stream cost crosscheck: worst relative error {worst:.2%}")
    for row in report["serving"]:
        mode = "pipeline" if row["pipeline"] else "cold    "
        lines.append(
            f"serving [{mode}]: {row['throughput_rps']:10,.1f} req/s"
            f" ({row['throughput_speedup_vs_cold']:.2f}x),"
            f" {row['warm_batches']}/{row['batches']} warm,"
            f" drain saved {row['drain_saved_us']:,.0f}us,"
            f" p95 {row['p95_total_latency_us']:,.0f}us"
        )
    headline = report["headline"]
    lines.append(
        f"headline: batch-{headline['batch']} steady state runs at"
        f" {headline['steady_vs_double_buffered']:.3f}x the double-buffered"
        f" cycles/image (compute bound {headline['compute_bound_ratio']:.3f}x);"
        f" pipelined serving {headline['serving_throughput_speedup']:.2f}x"
        f" modeled throughput"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny shapes and a short trace (CI benchmark-smoke gate)",
    )
    parser.add_argument("--network", choices=("mnist", "tiny"), default=None)
    parser.add_argument(
        "--batch-sizes", type=int, nargs="+", default=None, help="batch sizes to probe"
    )
    parser.add_argument(
        "--stream-length",
        type=int,
        default=6,
        help="batches in the homogeneous steady-state probe stream",
    )
    parser.add_argument(
        "--rate-multiplier",
        type=float,
        default=2.5,
        help="serving arrival rate as a multiple of batch-1 capacity",
    )
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait-us", type=float, default=None)
    parser.add_argument("--arrays", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", type=str, default=None, help="write report JSON here")
    args = parser.parse_args(argv)

    if args.network is None:
        args.network = "tiny" if args.smoke else "mnist"
    if args.batch_sizes is None:
        args.batch_sizes = [1, args.max_batch]
    if args.requests is None:
        args.requests = 96 if args.smoke else 64
    if args.max_wait_us is None:
        args.max_wait_us = 50.0 if args.network == "tiny" else 5000.0
    if min(args.batch_sizes) < 1 or args.stream_length < 3:
        parser.error("--batch-sizes must be positive and --stream-length >= 3")

    report = run_benchmark(args)
    print(format_report(report))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
