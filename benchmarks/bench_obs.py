"""Observability overhead benchmark: the tracer must be free when off.

The serving core is instrumented at every decision point
(:mod:`repro.obs`), and the contract is that a run with the default
null tracer pays (nearly) nothing for those hooks: each one is a
``tracer.enabled`` attribute check.  This bench guards that contract
and the tracer's correctness properties:

* **Tracer-off throughput** — recorded-path discrete-event simulation
  wall rate with the default null tracer, gated against a conservative
  checked-in floor at a *tight* 2% tolerance (the other wall-clock
  gates run at 10-20%): instrumentation creep shows up here first.
* **Tracer-on overhead** — the same run with a full
  :class:`~repro.obs.RecordingTracer` attached; reported as a ratio and
  gated loosely (recording is allowed to cost, but not blow up).
* **Decision identity** — the traced and untraced runs must make
  exactly the same policy decisions (tracers observe, never steer).
* **Well-formedness + export** — the recorded stream has balanced
  per-array compute spans and complete request lifecycles, and the
  Chrome-trace export round-trips through JSON; the sample timeline is
  written next to the report (CI uploads it as an artifact).

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py            # full
    PYTHONPATH=src python benchmarks/bench_obs.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_obs.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

import numpy as np

from repro.capsnet.config import tiny_capsnet_config
from repro.hw.config import AcceleratorConfig
from repro.obs import RecordingTracer, build_chrome_trace, well_formed_errors
from repro.serve import (
    ScheduledBatchCost,
    ServerConfig,
    ServingSimulator,
    make_trace,
)
from repro.serve.compare import decision_diffs


def build_server(accel: AcceleratorConfig) -> ServerConfig:
    cost = ScheduledBatchCost(network=tiny_capsnet_config(), accel_config=accel)
    return ServerConfig.from_policy(
        "fifo",
        cost,
        max_batch=8,
        max_wait_us=2000.0,
        arrays=2,
        network_name="tiny",
    )


def timed_run(server: ServerConfig, trace, tracer=None):
    """One recorded simulation; returns (report, wall seconds)."""
    simulator = ServingSimulator(trace, server=server, tracer=tracer)
    start = time.perf_counter()
    report = simulator.run(with_crosscheck=False)
    return report, time.perf_counter() - start


def run_benchmark(args: argparse.Namespace) -> dict:
    accel = AcceleratorConfig()
    server = build_server(accel)
    rng = np.random.default_rng(args.seed)
    # ~2x the batch-8 service rate: the queue stays busy so the run
    # exercises batching, placement, and completion on every request.
    trace = make_trace("poisson", args.rate, args.requests, rng)

    # Warm the per-batch-size cost memo outside the timed region — the
    # first probe runs the scheduler; every run after that is pure
    # event-loop work, which is what the overhead gate is about.
    timed_run(server, trace)

    off_walls = []
    on_walls = []
    base_report = traced_report = tracer = None
    for _ in range(args.trials):
        base_report, wall = timed_run(server, trace)
        off_walls.append(wall)
        tracer = RecordingTracer()
        traced_report, wall = timed_run(server, trace, tracer=tracer)
        on_walls.append(wall)

    off_wall = statistics.median(off_walls)
    on_wall = statistics.median(on_walls)
    off_rps = args.requests / off_wall
    overhead = on_wall / off_wall if off_wall > 0 else float("inf")

    diffs = decision_diffs(base_report, traced_report)
    errors = well_formed_errors(tracer)
    payload = build_chrome_trace(tracer)
    payload = json.loads(json.dumps(payload))  # prove it round-trips
    if args.trace_out:
        with open(args.trace_out, "w") as handle:
            json.dump(payload, handle)

    return {
        "benchmark": "bench_obs",
        "network": "tiny",
        "requests": args.requests,
        "rate_rps": args.rate,
        "trials": args.trials,
        "seed": args.seed,
        "tracer_off_walls_s": off_walls,
        "tracer_on_walls_s": on_walls,
        "trace_events": len(tracer.events),
        "chrome_events": len(payload["traceEvents"]),
        "well_formed_errors": errors,
        "decision_diffs": diffs,
        "headline": {
            "tracer_off_wall_rps": off_rps,
            "tracer_on_overhead": overhead,
            "decisions_identical_with_tracer": 1.0 if not diffs else 0.0,
            "stream_well_formed": 1.0 if not errors else 0.0,
        },
    }


def format_report(report: dict) -> str:
    headline = report["headline"]
    lines = [
        f"Observability overhead — tiny network, {report['requests']} requests"
        f" x {report['trials']} trials, recorded simulator path",
        f"  tracer off: {headline['tracer_off_wall_rps']:,.0f} req/s host"
        f" (median of {report['trials']})",
        f"  tracer on: {headline['tracer_on_overhead']:.3f}x the untraced wall"
        f" ({report['trace_events']} events, {report['chrome_events']}"
        f" Chrome trace events)",
        f"  decision identity: "
        + ("identical" if headline["decisions_identical_with_tracer"] else "DIVERGED"),
        f"  event stream: "
        + ("well-formed" if headline["stream_well_formed"] else "MALFORMED"),
    ]
    for diff in report["decision_diffs"][:5]:
        lines.append(f"    {diff}")
    for error in report["well_formed_errors"][:5]:
        lines.append(f"    {error}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="short trace (CI benchmark-smoke gate)"
    )
    parser.add_argument(
        "--requests", type=int, default=None, help="requests per timed run"
    )
    parser.add_argument(
        "--rate", type=float, default=20000.0, help="offered rate (requests/s)"
    )
    parser.add_argument(
        "--trials", type=int, default=None, help="timed trials (5 smoke, 9 full)"
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--trace-out",
        type=str,
        default=None,
        help="write the sample Chrome trace JSON here (CI artifact)",
    )
    parser.add_argument("--json", type=str, default=None, help="write report JSON here")
    args = parser.parse_args(argv)

    if args.requests is None:
        args.requests = 3000 if args.smoke else 20000
    if args.trials is None:
        args.trials = 5 if args.smoke else 9

    report = run_benchmark(args)
    print(format_report(report))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
