"""Design-space exploration: latency / area / power across configurations.

Sweeps the systolic array size and datapath width, evaluating for each
point the inference latency (performance model), silicon area and power
(synthesis model) — the kind of study the CapsAcc architecture enables and
the paper's Section VI parameters sit in the middle of.

Run:  python examples/design_space_exploration.py
"""

from repro.capsnet.config import mnist_capsnet_config
from repro.hw.config import AcceleratorConfig
from repro.perf.model import CapsAccPerformanceModel
from repro.synthesis.report import SynthesisReport


def evaluate(config: AcceleratorConfig, network) -> tuple[float, float, float]:
    """Latency (ms), area (mm^2) and power (mW) of one design point."""
    latency = CapsAccPerformanceModel(accelerator=config, network=network).run()
    synth = SynthesisReport(config=config).table2()
    return latency.total_time_ms, synth["area_mm2"], synth["power_mw"]


def main() -> None:
    network = mnist_capsnet_config()

    print("Array-size sweep (8-bit datapath):")
    print(f"{'array':>8s} {'latency ms':>11s} {'area mm2':>9s} {'power mW':>9s} {'ms*mm2':>8s}")
    for size in (4, 8, 16, 32, 64):
        config = AcceleratorConfig().with_array(size, size)
        ms, mm2, mw = evaluate(config, network)
        print(f"{size:>4d}x{size:<3d} {ms:11.3f} {mm2:9.2f} {mw:9.1f} {ms * mm2:8.2f}")
    print("(the paper's 16x16 point balances latency against area)")

    print("\nBit-width sweep (16x16 array):")
    print(f"{'width':>8s} {'latency ms':>11s} {'area mm2':>9s} {'power mW':>9s}")
    for bits in (4, 8, 12, 16):
        config = AcceleratorConfig(
            data_bits=bits, weight_bits=bits, acc_bits=2 * bits + 9
        )
        ms, mm2, mw = evaluate(config, network)
        print(f"{f'{bits}b':>8s} {ms:11.3f} {mm2:9.2f} {mw:9.1f}")
    print("(latency is width-independent; area and power pay for precision)")

    print("\nWeight double-buffering (the Weight2 register of Fig 11b):")
    for label, config in (
        ("with Weight2", AcceleratorConfig()),
        ("without", AcceleratorConfig().without_weight_reuse()),
    ):
        ms, _, _ = evaluate(config, network)
        print(f"  {label:14s} {ms:7.3f} ms")


if __name__ == "__main__":
    main()
