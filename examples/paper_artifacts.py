"""Regenerate every table and figure of the paper in one run.

Prints Table I, Fig 3, Fig 5, Fig 8, Fig 9, Fig 16, Fig 17, Table II,
Table III and Fig 18 side by side with the paper's (digitized) values,
followed by the ablation studies and the accuracy-parity experiment.

Run:  python examples/paper_artifacts.py
      python examples/paper_artifacts.py --fast   (skip training-based parts)
"""

import sys

from repro.experiments import runner


def main() -> None:
    fast = "--fast" in sys.argv
    suite = runner.run_all(include_accuracy=not fast, include_ablations=not fast)
    print(suite.report_text())


if __name__ == "__main__":
    main()
