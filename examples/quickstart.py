"""Quickstart: run the paper's MNIST CapsuleNet through the CapsAcc stack.

Builds the exact network of paper Fig 1, classifies a synthetic digit with
the float reference and the 8-bit quantized (hardware golden) path, then
evaluates the accelerator performance model and compares against the GPU
baseline — the headline numbers of paper Figs 16/17.

Run:  python examples/quickstart.py
"""

from repro.capsnet.config import mnist_capsnet_config
from repro.capsnet.model import CapsuleNet
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.data.synthetic import SyntheticDigits
from repro.perf.compare import compare_layers
from repro.perf.model import CapsAccPerformanceModel


def main() -> None:
    config = mnist_capsnet_config()
    print(f"CapsuleNet: {config.total_parameter_count:,} trainable parameters")
    print(f"Primary capsules: {config.num_primary_capsules} x {config.primary.capsule_dim}D")

    # One digit through both inference paths.
    digit = SyntheticDigits(seed=42).generate(1, classes=(7,))
    image = digit.images[0]

    float_net = CapsuleNet(config)
    quant_net = QuantizedCapsuleNet(config)
    float_out = float_net.forward(image)
    quant_out = quant_net.forward(image)
    max_err = abs(quant_out.class_caps - float_out.class_capsules).max()
    print("\nFloat capsule lengths:", [f"{x:.3f}" for x in float_out.lengths])
    print(f"8-bit vs float class-capsule error: max {max_err:.4f}")
    print(f"Quantized saturation rate: {quant_out.saturation.rate:.2e}")
    print("(weights are pseudo-trained — dataflow and performance are the"
          " point here; see examples/accuracy_parity.py for accuracy)")

    # Accelerator performance (paper Table II instance: 16x16 @ 250 MHz).
    model = CapsAccPerformanceModel(network=config)
    perf = model.run()
    print(f"\nCapsAcc inference latency: {perf.total_time_ms:.3f} ms"
          f" at {model.accelerator.clock_mhz:.0f} MHz"
          f" ({perf.utilization() * 100:.0f}% PE utilization)")
    for layer, us in perf.layer_times_us().items():
        print(f"  {layer:12s} {us / 1e3:8.3f} ms")

    # Against the GPU baseline (paper Fig 16).
    print("\nCapsAcc vs GPU (paper annotations: ClassCaps 12x, Total 6x):")
    for name, gpu_us, acc_us, speedup, _ in compare_layers(network=config).as_table():
        print(f"  {name:12s} GPU {gpu_us / 1e3:8.2f} ms"
              f"  CapsAcc {acc_us / 1e3:8.2f} ms  -> {speedup:5.2f}x")


if __name__ == "__main__":
    main()
