"""Accuracy parity: does 8-bit hardware inference preserve accuracy?

The paper argues that because CapsAcc is functionally compliant with the
CapsuleNet, classification accuracy is unchanged.  This example trains the
ClassCaps layer on synthetic digits (frozen conv features, margin loss),
then classifies a held-out set with the float reference and the bit-
accurate quantized path and compares.

Run:  python examples/accuracy_parity.py           (tiny network, seconds)
      python examples/accuracy_parity.py --full    (MNIST-size network)
"""

import sys

from repro.capsnet.config import mnist_capsnet_config
from repro.experiments import accuracy


def main() -> None:
    if "--full" in sys.argv:
        config = mnist_capsnet_config()
        result = accuracy.run(
            config=config, train_count=60, test_count=30, epochs=6, seed=11
        )
    else:
        result = accuracy.run()
    print(accuracy.format_report(result))
    gap = abs(result.float_accuracy - result.quantized_accuracy)
    print(f"\nAccuracy gap float vs 8-bit: {gap * 100:.1f} points")
    print("(The paper reports zero gap for its trained MNIST network; the")
    print(" remaining gap here reflects 8-bit quantization of a small model")
    print(" trained on frozen random features, not a hardware mismatch —")
    print(" the hardware path is bit-identical to the quantized reference.)")


if __name__ == "__main__":
    main()
