"""Trace a complete inference through the cycle-level accelerator.

Runs the (fast-to-simulate) tiny CapsuleNet through the mapped accelerator
— every convolution, the per-capsule FC, and all routing dataflows of paper
Fig 12 — and prints, per stage: cycles, achieved utilization and buffer
traffic.  Verifies on the way that the accelerator output is bit-identical
to the quantized reference (the paper's functional-compliance claim).

Run:  python examples/dataflow_trace.py
"""

import numpy as np

from repro.capsnet.config import tiny_capsnet_config
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.data.synthetic import SyntheticDigits
from repro.hw.accelerator import CapsAccAccelerator
from repro.hw.config import AcceleratorConfig
from repro.mapping.execute import MappedInference


def main() -> None:
    config = tiny_capsnet_config()
    qnet = QuantizedCapsuleNet(config)
    accel_config = AcceleratorConfig()  # 16x16, paper instance
    accelerator = CapsAccAccelerator(accel_config, qnet.formats)
    mapped = MappedInference(qnet, accelerator)

    image = SyntheticDigits(size=config.image_size, seed=1).generate(1, classes=(2,)).images[0]
    reference = qnet.forward(image)
    result = mapped.run(image)

    exact = np.array_equal(result.class_caps_raw, reference.class_caps_raw)
    print(f"Accelerator output bit-identical to quantized reference: {exact}")
    print(f"Prediction: class {int(np.argmax(reference.length_sumsq_raw))}")

    print(f"\n{'stage':16s} {'cycles':>9s} {'us@250MHz':>10s} {'MACs':>10s} {'util':>6s}")
    for name, stats in result.stage_stats.items():
        us = accel_config.cycles_to_us(stats.total_cycles)
        util = stats.utilization(accel_config.num_pes)
        print(f"{name:16s} {stats.total_cycles:9d} {us:10.2f} {stats.mac_count:10d} {util * 100:5.1f}%")
    total = result.total_stats
    print(f"{'TOTAL':16s} {total.total_cycles:9d}"
          f" {accel_config.cycles_to_us(total.total_cycles):10.2f}"
          f" {total.mac_count:10d}")

    print("\nBuffer traffic (words):")
    print(f"  data buffer    reads {accelerator.data_buffer.reads:>9d}")
    print(f"  weight buffer  reads {accelerator.weight_buffer.reads:>9d}")
    print(f"  routing buffer reads {accelerator.routing_buffer.reads:>9d}")
    print("\nNote how sum2/sum3 and the updates show zero data-buffer reads:")
    print("predictions are reused through the horizontal feedback path (Fig 12c/d).")


if __name__ == "__main__":
    main()
