"""Declarative parameter grids for design-space sweeps.

A grid is a mapping of axis name to the values that axis sweeps; its
expansion is the cartesian product, ordered like nested loops with the
*first* declared axis outermost.  Axis values stay whatever the caller
put in (ints for array sizes, strings for policy names), so one grid
describes hardware and policy axes alike.
"""

from __future__ import annotations

from itertools import product
from typing import Mapping, Sequence

from repro.errors import ConfigError


def expand_grid(axes: Mapping[str, Sequence]) -> list[dict]:
    """Expand an axis mapping into the full list of sweep points.

    ``{"array": (8, 16), "window": (1, 2)}`` yields four points,
    ``{"array": 8, "window": 1}`` first (first axis outermost).  An
    empty mapping yields the single empty point — a sweep of one
    configuration.  Every axis needs at least one value.
    """
    names = list(axes)
    for name in names:
        if not isinstance(axes[name], (list, tuple)):
            raise ConfigError(
                f"axis {name!r} needs a list/tuple of values"
                f" (got {type(axes[name]).__name__})"
            )
        if len(axes[name]) == 0:
            raise ConfigError(f"axis {name!r} has no values")
    return [
        dict(zip(names, combo))
        for combo in product(*(tuple(axes[name]) for name in names))
    ]
