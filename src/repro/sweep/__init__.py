"""Design-space sweep engine: declarative grids over the cost models.

The ROADMAP's design-space exploration — window / prestage-depth / array
size through the closed-form stream model, serving policies through the
fast simulator — needs thousands of cheap evaluations.  This package
provides the three pieces:

* :func:`~repro.sweep.grid.expand_grid` — declarative parameter grids
  (a mapping of axis name to values, expanded to the cartesian product
  in declaration order);
* :class:`~repro.sweep.runner.SweepSpec` — one sweep description: the
  tier (``analytic`` prices each point with
  :class:`~repro.perf.stream.AnalyticStreamCost`; ``serving`` runs the
  streaming-fast serving simulator), the network, the swept axes, and
  the fixed serving settings;
* :func:`~repro.sweep.runner.run_sweep` — evaluates every point,
  optionally fanned out across processes, returning a
  :class:`~repro.sweep.runner.SweepResult` with JSON/CSV writers and a
  printable table.

The ``repro sweep`` CLI is a thin front-end over these.
"""

from repro.sweep.grid import expand_grid
from repro.sweep.runner import (
    ANALYTIC_AXES,
    SERVING_AXES,
    SweepResult,
    SweepSpec,
    evaluate_point,
    run_sweep,
)

__all__ = [
    "ANALYTIC_AXES",
    "SERVING_AXES",
    "SweepResult",
    "SweepSpec",
    "evaluate_point",
    "expand_grid",
    "run_sweep",
]
