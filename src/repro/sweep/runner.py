"""Sweep evaluation: per-point cost models, process fan-out, artifacts.

Two evaluation tiers share one declarative grid:

* ``analytic`` — each point is priced with the closed-form
  :class:`~repro.perf.stream.AnalyticStreamCost` (steady-state and cold
  cycles per image, modeled throughput, pipelined speedup over the
  per-batch double-buffered schedule) plus the synthesis model's
  area/power for the point's array size.  Cheap enough for wide grids —
  this is the ROADMAP window / prestage / array-size exploration.
* ``serving`` — each point runs the discrete-event serving simulator in
  its ``record_requests=False`` streaming mode on a seeded saturating
  Poisson trace, reporting served throughput, latency percentiles, shed
  and SLA-miss rates.  Accurate tier for policy/batching axes.

Every point is independent, so :func:`run_sweep` can fan the grid out
across worker processes (`processes=1` stays serial; results are
identical either way — the fan-out only changes wall clock).
"""

from __future__ import annotations

import csv
import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ConfigError
from repro.sweep.grid import expand_grid

#: Axes the analytic tier understands.
ANALYTIC_AXES = ("network", "array", "window", "prestage_depth", "batch")

#: Axes the serving tier understands (hardware axes plus policy knobs).
SERVING_AXES = ANALYTIC_AXES + (
    "policy",
    "max_batch",
    "max_wait_us",
    "rate_multiplier",
    "arrays",
    "dispatch",
    "crash_rate",
    "max_attempts",
    "corrupt_rate",
    "integrity",
)

#: Tier name -> allowed axes.
TIERS = {"analytic": ANALYTIC_AXES, "serving": SERVING_AXES}


@dataclass(frozen=True)
class SweepSpec:
    """One sweep description: tier, network, axes, fixed settings.

    ``axes`` maps axis names to value tuples (see :data:`TIERS` for the
    names each tier accepts); every other field is the fixed setting a
    point inherits when it does not sweep that axis.  The spec is plain
    data — picklable, so worker processes rebuild it from a dict.
    """

    tier: str = "analytic"
    network: str = "mnist"
    axes: dict = field(default_factory=dict)
    #: Fixed defaults for un-swept axes.
    array: int = 16
    window: int = 2
    prestage_depth: int = 4
    batch: int = 8
    #: Serving-tier settings.
    policy: str = "fifo"
    max_batch: int = 8
    max_wait_us: float = 2000.0
    rate_multiplier: float = 2.5
    arrays: int = 1
    dispatch: str | None = None
    #: Fault axes (``crash_rate`` > 0 enables injection; points with
    #: faults run the recording path — the streaming fast path refuses
    #: fault plans — so keep fault grids modest).
    crash_rate: float = 0.0
    max_attempts: int = 3
    #: Integrity axes: seeded silent-corruption injection rate and the
    #: check mode countering it (armed points also run the recording
    #: path, and price the network off its compiled stream).
    corrupt_rate: float = 0.0
    integrity: str = "none"
    fault_seed: int = 1
    requests: int = 2000
    deadline_ms: float | None = None
    pipeline: bool = False
    seed: int = 7
    latency_bin_us: float = 50.0
    #: Include the synthesis model's area/power columns (analytic tier).
    synthesis: bool = True

    def __post_init__(self) -> None:
        if self.tier not in TIERS:
            raise ConfigError(
                f"unknown sweep tier {self.tier!r} (choose from {tuple(TIERS)})"
            )
        from repro.compiler.zoo import zoo_names

        names = zoo_names()
        if self.network not in names:
            raise ConfigError(
                f"unknown network {self.network!r} (choose from {names})"
            )
        allowed = TIERS[self.tier]
        for name in self.axes:
            if name not in allowed:
                raise ConfigError(
                    f"axis {name!r} is not a {self.tier}-tier axis"
                    f" (choose from {allowed})"
                )
        for value in self.axes.get("network", ()):
            if value not in names:
                raise ConfigError(
                    f"unknown network {value!r} on the network axis"
                    f" (choose from {names})"
                )
        from repro.serve.integrity import CHECK_MODES

        for mode in (self.integrity, *self.axes.get("integrity", ())):
            if mode not in CHECK_MODES:
                raise ConfigError(
                    f"unknown integrity mode {mode!r}"
                    f" (choose from {CHECK_MODES})"
                )
        if self.requests < 1:
            raise ConfigError("requests must be positive")

    def points(self) -> list[dict]:
        """The expanded grid."""
        return expand_grid(self.axes)


def _resolve_network(name: str):
    """A point's network: the paper CapsNets as configs (the validated
    closed-form perf-model path), every other zoo entry compiled."""
    from repro.capsnet.config import mnist_capsnet_config, tiny_capsnet_config
    from repro.compiler.zoo import get_network

    if name == "tiny":
        return tiny_capsnet_config()
    if name == "mnist":
        return mnist_capsnet_config()
    return get_network(name)


def _accel_config(array: int):
    from repro.hw.config import AcceleratorConfig

    return AcceleratorConfig().with_array(array, array)


def _setting(spec: SweepSpec, point: dict, name: str):
    """A point's value for one axis, falling back to the spec default."""
    return point.get(name, getattr(spec, name))


def evaluate_analytic_point(spec: SweepSpec, point: dict) -> dict:
    """Closed-form metrics of one (array, window, prestage, batch) point."""
    from repro.perf.stream import AnalyticStreamCost
    from repro.serve.costs import AnalyticBatchCost

    from repro.capsnet.config import CapsNetConfig
    from repro.serve.costs import _ProgramStream

    array = int(_setting(spec, point, "array"))
    window = int(_setting(spec, point, "window"))
    prestage = int(_setting(spec, point, "prestage_depth"))
    batch = int(_setting(spec, point, "batch"))
    network_name = str(_setting(spec, point, "network"))
    network = _resolve_network(network_name)
    config = _accel_config(array)
    if isinstance(network, CapsNetConfig):
        stream = AnalyticStreamCost(
            network=network,
            accel_config=config,
            window=window,
            prestage_depth=prestage,
        )
    else:
        # Zoo entries price straight off their compiled instruction stream.
        stream = _ProgramStream(
            config, network.program, window=window, prestage_depth=prestage
        )
    batch_cost = AnalyticBatchCost(network=network, accel_config=config)
    steady = stream.steady_cycles(batch)
    cold = stream.cold_cycles(batch)
    double_buffered = batch_cost.batch_cycles(batch)
    steady_per_image = steady / batch
    row = {
        **point,
        "network": network_name,
        "array": array,
        "window": window,
        "prestage_depth": prestage,
        "batch": batch,
        "steady_cycles_per_image": steady_per_image,
        "cold_cycles": cold,
        "images_per_s": (
            config.clock_mhz * 1e6 / steady_per_image if steady_per_image else 0.0
        ),
        "latency_ms": config.cycles_to_us(cold) / 1e3,
        "pipeline_speedup": double_buffered / steady if steady else 0.0,
    }
    if spec.synthesis:
        from repro.synthesis.report import SynthesisReport

        table = SynthesisReport(config=config).table2()
        row["area_mm2"] = table["area_mm2"]
        row["power_mw"] = table["power_mw"]
    return row


def evaluate_serving_point(spec: SweepSpec, point: dict) -> dict:
    """Fast-simulator metrics of one serving-configuration point."""
    from repro.serve import (
        AnalyticBatchCost,
        FaultPlan,
        RetryPolicy,
        ServerConfig,
        ServingSimulator,
        poisson_trace,
    )

    array = int(_setting(spec, point, "array"))
    window = int(_setting(spec, point, "window"))
    prestage = int(_setting(spec, point, "prestage_depth"))
    policy = str(_setting(spec, point, "policy"))
    max_batch = int(_setting(spec, point, "max_batch"))
    max_wait_us = float(_setting(spec, point, "max_wait_us"))
    rate_multiplier = float(_setting(spec, point, "rate_multiplier"))
    arrays = int(_setting(spec, point, "arrays"))
    dispatch = _setting(spec, point, "dispatch")
    crash_rate = float(_setting(spec, point, "crash_rate"))
    max_attempts = int(_setting(spec, point, "max_attempts"))
    corrupt_rate = float(_setting(spec, point, "corrupt_rate"))
    integrity = str(_setting(spec, point, "integrity"))
    network_name = str(_setting(spec, point, "network"))
    network = _resolve_network(network_name)
    if integrity != "none":
        # Integrity pricing checksums a compiled instruction stream, so
        # armed points price the paper CapsNets off their zoo entries.
        from repro.capsnet.config import CapsNetConfig
        from repro.compiler.zoo import get_network

        if isinstance(network, CapsNetConfig):
            network = get_network(network_name)
    config = _accel_config(array)
    cost = AnalyticBatchCost(
        network=network,
        accel_config=config,
        pipeline=spec.pipeline,
        window=window,
        prestage_depth=prestage,
        integrity=integrity,
    )
    capacity_rps = arrays * config.clock_mhz * 1e6 / cost.batch_cycles(1)
    trace = poisson_trace(
        rate_multiplier * capacity_rps,
        spec.requests,
        np.random.default_rng(spec.seed),
    )
    server = ServerConfig.from_policy(
        policy,
        cost,
        max_batch=max_batch,
        max_wait_us=max_wait_us,
        dispatch=dispatch,
        arrays=arrays,
        pipeline=spec.pipeline,
        deadline_us=(
            spec.deadline_ms * 1000.0 if spec.deadline_ms is not None else None
        ),
        network_name=network_name,
        fault_plan=(
            FaultPlan(
                crash_rate=crash_rate,
                corrupt_rate=corrupt_rate,
                seed=spec.fault_seed,
            )
            if crash_rate > 0.0 or corrupt_rate > 0.0
            else None
        ),
        retry=RetryPolicy(max_attempts=max_attempts),
        integrity=integrity if integrity != "none" else None,
    )
    # Fault and integrity points need the recording path (the streaming
    # fast path refuses both); clean points keep the fast tier.
    report = ServingSimulator(trace, server=server).run(
        record_requests=crash_rate > 0.0
        or corrupt_rate > 0.0
        or integrity != "none",
        latency_bin_us=spec.latency_bin_us,
    )
    latency = report.latency_summary()["total"]
    utilization = [stat["utilization"] for stat in report.array_stats]
    faults = report.faults or {}
    return {
        **point,
        "network": network_name,
        "array": array,
        "policy": policy,
        "arrays": arrays,
        "rate_multiplier": rate_multiplier,
        "crash_rate": crash_rate,
        "max_attempts": max_attempts,
        "corrupt_rate": corrupt_rate,
        "integrity": integrity,
        "corruptions": int(faults.get("corruptions", 0)),
        "detected": int(faults.get("detected", 0)),
        "corrupted_served": int(faults.get("corrupted_served", 0)),
        "offered_rps": report.offered_rps,
        "throughput_rps": report.throughput_rps,
        "served": report.completed,
        "goodput": report.goodput,
        "failed": report.failed_count,
        "retries": int(faults.get("retries", 0)),
        "crashes": int(faults.get("crashes", 0)),
        "shed_rate": report.shed_rate,
        "deadline_miss_rate": report.deadline_miss_rate,
        "mean_batch_size": report.mean_batch_size,
        "p50_us": latency["p50_us"],
        "p99_us": latency["p99_us"],
        "mean_utilization": (
            sum(utilization) / len(utilization) if utilization else 0.0
        ),
        "wall_rps": report.wall_rps,
    }


def evaluate_point(spec: SweepSpec, point: dict) -> dict:
    """Evaluate one sweep point under the spec's tier."""
    if spec.tier == "analytic":
        return evaluate_analytic_point(spec, point)
    return evaluate_serving_point(spec, point)


def _worker(payload: tuple[dict, dict]) -> dict:
    """Process-pool entry: rebuild the spec and evaluate one point."""
    spec_fields, point = payload
    return evaluate_point(SweepSpec(**spec_fields), point)


@dataclass
class SweepResult:
    """Every evaluated sweep point, plus artifact writers."""

    spec: SweepSpec
    rows: list[dict]
    wall_seconds: float
    processes: int

    def best(self, metric: str, maximize: bool = True) -> dict:
        """The row optimizing one metric."""
        if not self.rows:
            raise ConfigError("the sweep produced no rows")
        chooser = max if maximize else min
        return chooser(self.rows, key=lambda row: row[metric])

    def to_dict(self) -> dict:
        """JSON-serializable artifact."""
        return {
            "sweep": asdict(self.spec),
            "points": len(self.rows),
            "processes": self.processes,
            "wall_seconds": self.wall_seconds,
            "rows": self.rows,
        }

    def write_json(self, path: str | Path) -> None:
        """Write the artifact JSON."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    def write_csv(self, path: str | Path) -> None:
        """Write the rows as CSV (columns from the first row)."""
        if not self.rows:
            raise ConfigError("the sweep produced no rows")
        columns = list(self.rows[0])
        with Path(path).open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            writer.writerows(self.rows)

    def format_table(self) -> str:
        """Human-readable sweep table for the CLI."""
        if not self.rows:
            return "(no sweep points)"
        network_column = (
            [("network", lambda r: str(r["network"]))]
            if "network" in self.spec.axes
            else []
        )
        if self.spec.tier == "analytic":
            columns = network_column + [
                ("array", lambda r: f"{r['array']}x{r['array']}"),
                ("window", lambda r: str(r["window"])),
                ("prestage", lambda r: str(r["prestage_depth"])),
                ("batch", lambda r: str(r["batch"])),
                ("cyc/img", lambda r: f"{r['steady_cycles_per_image']:,.0f}"),
                ("img/s", lambda r: f"{r['images_per_s']:,.0f}"),
                ("speedup", lambda r: f"{r['pipeline_speedup']:.3f}x"),
                ("latency ms", lambda r: f"{r['latency_ms']:.3f}"),
            ]
            if "area_mm2" in self.rows[0]:
                columns += [
                    ("area mm2", lambda r: f"{r['area_mm2']:.2f}"),
                    ("power mW", lambda r: f"{r['power_mw']:.1f}"),
                ]
        else:
            columns = network_column + [
                ("array", lambda r: f"{r['array']}x{r['array']}"),
                ("policy", lambda r: str(r["policy"])),
                ("arrays", lambda r: str(r["arrays"])),
                ("rate", lambda r: f"{r['rate_multiplier']:g}x"),
                ("req/s", lambda r: f"{r['throughput_rps']:,.0f}"),
                ("batch", lambda r: f"{r['mean_batch_size']:.2f}"),
                ("p50 ms", lambda r: f"{r['p50_us'] / 1e3:.2f}"),
                ("p99 ms", lambda r: f"{r['p99_us'] / 1e3:.2f}"),
                ("shed", lambda r: f"{r['shed_rate']:.1%}"),
                ("util", lambda r: f"{r['mean_utilization']:.1%}"),
            ]
            if any(row.get("crash_rate") for row in self.rows):
                columns += [
                    ("crash", lambda r: f"{r['crash_rate']:g}"),
                    ("tries", lambda r: str(r["max_attempts"])),
                    ("goodput", lambda r: f"{r['goodput']:.1%}"),
                    ("failed", lambda r: str(r["failed"])),
                ]
            if any(
                row.get("corrupt_rate") or row.get("integrity", "none") != "none"
                for row in self.rows
            ):
                columns += [
                    ("corrupt", lambda r: f"{r['corrupt_rate']:g}"),
                    ("checks", lambda r: str(r["integrity"])),
                    ("detect", lambda r: str(r["detected"])),
                    ("bad", lambda r: str(r["corrupted_served"])),
                ]
        header = " ".join(f"{name:>10s}" for name, _ in columns)
        lines = [
            f"Sweep — {self.spec.tier} tier, {self.spec.network} network,"
            f" {len(self.rows)} point(s), {self.processes} process(es),"
            f" {self.wall_seconds:.2f} s",
            header,
        ]
        for row in self.rows:
            lines.append(" ".join(f"{fmt(row):>10s}" for _, fmt in columns))
        return "\n".join(lines)


def run_sweep(spec: SweepSpec, processes: int = 1) -> SweepResult:
    """Evaluate every grid point, optionally across worker processes.

    ``processes`` <= 1 evaluates serially in this process; larger values
    fan points out over a :class:`concurrent.futures.ProcessPoolExecutor`
    (falling back to serial if the platform refuses to spawn workers).
    Row order always matches the grid expansion, so artifacts are
    identical whatever the fan-out.
    """
    points = spec.points()
    wall_start = time.perf_counter()
    spec_fields = asdict(spec)
    used = 1
    rows: list[dict] | None = None
    if processes > 1 and len(points) > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            workers = min(processes, len(points))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                rows = list(
                    pool.map(_worker, [(spec_fields, point) for point in points])
                )
            used = workers
        except (OSError, PermissionError):
            rows = None  # sandboxed platform: fall back to serial
    if rows is None:
        rows = [evaluate_point(spec, point) for point in points]
    return SweepResult(
        spec=spec,
        rows=rows,
        wall_seconds=time.perf_counter() - wall_start,
        processes=used,
    )
