"""Request-lifecycle tracers for the serving core.

:class:`~repro.serve.core.ServingCore` is the single choke point both
serving drivers share, so instrumenting it once gives the discrete-event
simulator and the live asyncio runtime the *same* structured event
stream — only the timestamps differ (virtual vs wall clock).

The tracer contract is deliberately tiny and purely observational:

* :class:`Tracer` — the null default.  Every hook is a no-op and
  ``enabled`` is ``False``; hot call sites guard with
  ``if tracer.enabled:`` so the untraced path costs one attribute load
  and a falsy branch per event site.
* :class:`RecordingTracer` — captures the full per-request lifecycle
  (arrive → admit/shed → batch-form → dispatch → compute start/end →
  complete) plus per-array busy spans, and derives analysis views
  (busy time, utilization, request lifecycles) for exporters and tests.
* :class:`MultiTracer` — fans one event stream out to several tracers
  (e.g. a recording tracer plus a live metrics adapter).

Tracers never mutate policy state and are never consulted for
decisions, which is what makes the decision-identity invariant (traced
run == untraced run, bit for bit) hold by construction — and testable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# Event kinds, in per-request lifecycle order.
ARRIVE = "arrive"
ADMIT = "admit"
SHED = "shed"
BATCH_FORM = "batch_form"
DISPATCH = "dispatch"
COMPUTE_START = "compute_start"
COMPUTE_END = "compute_end"
COMPLETE = "complete"
TIMEOUT = "timeout"
# Fault-path kinds: a batch crashing (its members either RETRY back into
# their queue or terminally FAILED once the attempt budget is spent) and
# the array-level quarantine/readmission pair around a crashed array.
CRASH = "crash"
RETRY = "retry"
FAILED = "failed"
QUARANTINE = "quarantine"
RECOVER = "recover"
# Integrity kinds: a batch that completed with (undetected) corrupted
# numerics, a checksum layer catching corruption mid-batch, and a canary
# probe firing (detected flag in the exporter args).
CORRUPT = "corrupt"
DETECT = "detect"
CANARY = "canary"

EVENT_KINDS = (
    ARRIVE,
    ADMIT,
    SHED,
    BATCH_FORM,
    DISPATCH,
    COMPUTE_START,
    COMPUTE_END,
    COMPLETE,
    TIMEOUT,
    CRASH,
    RETRY,
    FAILED,
    QUARANTINE,
    RECOVER,
    CORRUPT,
    DETECT,
    CANARY,
)

#: Lifecycle order for a single request's events (well-formedness).
#: RETRY may repeat between admission and the terminal outcome; FAILED
#: is a terminal alongside SHED/COMPLETE.
_REQUEST_ORDER = {ARRIVE: 0, ADMIT: 1, SHED: 1, RETRY: 2, COMPLETE: 3, FAILED: 3}


@dataclass(slots=True)
class TraceEvent:
    """One structured serving event.

    ``ts_us`` is the driver's clock — virtual microseconds in the
    simulator, wall-clock microseconds in the live runtime.  Fields not
    meaningful for a kind keep their defaults (``-1`` / ``""``).
    """

    ts_us: float
    kind: str
    request: int = -1
    batch: int = -1
    array: int = -1
    tenant: str = ""
    size: int = 0
    deadline_us: float = math.inf
    warm: bool = False
    stacked: bool = False

    def to_dict(self) -> dict:
        """JSON-friendly view; omits defaulted fields."""
        row: dict = {"ts_us": self.ts_us, "kind": self.kind}
        if self.request >= 0:
            row["request"] = self.request
        if self.batch >= 0:
            row["batch"] = self.batch
        if self.array >= 0:
            row["array"] = self.array
        if self.tenant:
            row["tenant"] = self.tenant
        if self.size:
            row["size"] = self.size
        if math.isfinite(self.deadline_us):
            row["deadline_us"] = self.deadline_us
        if self.warm:
            row["warm"] = True
        if self.stacked:
            row["stacked"] = True
        return row


@dataclass(slots=True)
class BatchTrace:
    """Span-level view of one placed batch (one busy span on its array)."""

    batch: int
    tenant: str
    array: int
    size: int
    warm: bool
    stacked: bool
    formed_us: float
    dispatch_us: float
    done_us: float | None = None
    members: tuple[int, ...] = ()
    member_arrivals: tuple[float, ...] = ()
    member_deadlines: tuple[float, ...] = ()
    #: True when the batch's span closed by crashing instead of completing
    #: (``done_us`` is then the crash-detection instant).
    crashed: bool = False


class Tracer:
    """Null tracer: the zero-cost default every driver starts with.

    Subclasses that record must set ``enabled = True`` — instrumented
    call sites skip the hook entirely when it is ``False``, so a null
    tracer adds no per-event work beyond one branch.
    """

    enabled = False

    def request_arrived(
        self, ts_us: float, index: int, tenant: str, deadline_us: float
    ) -> None:
        """An arrival reached admission (before the admit/shed verdict)."""

    def request_admitted(self, ts_us: float, index: int, tenant: str) -> None:
        """Admission accepted the request into its tenant queue."""

    def request_shed(self, ts_us: float, index: int, tenant: str) -> None:
        """Admission (or backpressure) rejected the request — terminal."""

    def batch_placed(self, ts_us: float, placed) -> None:
        """The core formed ``placed`` and placed it on its array.

        ``ts_us`` is the formation instant; ``placed.dispatch_us`` may
        be later (a batch stacked behind a busy array starts when the
        predecessor finishes).  Implementations that assign batch ids
        stamp ``placed.trace_id``.
        """

    def batch_completed(self, ts_us: float, placed) -> None:
        """``placed`` finished computing at ``ts_us`` (predicted done in
        virtual time, measured done on the wall clock)."""

    def coalescing_timeout(self, ts_us: float) -> None:
        """A batching coalescing window expired (queue forced ready)."""

    def batch_crashed(self, ts_us: float, placed) -> None:
        """``placed`` died at ``ts_us`` (injected or a real worker death).

        Closes the batch's compute span; member outcomes follow as
        :meth:`request_retried` / :meth:`request_failed` events.
        """

    def request_retried(self, ts_us: float, index: int, tenant: str) -> None:
        """A crashed request re-entered its tenant queue for another try."""

    def request_failed(self, ts_us: float, index: int, tenant: str) -> None:
        """A crashed request exhausted its attempt budget — terminal."""

    def array_quarantined(self, ts_us: float, array: int) -> None:
        """``array`` left service after a crash (dispatch skips it)."""

    def array_recovered(self, ts_us: float, array: int) -> None:
        """``array`` passed its health probe and rejoined the pool."""

    def batch_corrupted(self, ts_us: float, placed) -> None:
        """``placed`` completed *with corrupted numerics undetected* —
        its members were served wrong answers.  Only a corruption the
        armed checks cannot see reaches this hook."""

    def corruption_detected(self, ts_us: float, placed) -> None:
        """An integrity check caught ``placed``'s corruption at ``ts_us``.

        Closes the batch's compute span like a crash; member outcomes
        follow as retry/failed events through the same machinery.
        """

    def canary_probe(self, ts_us: float, array: int, detected: bool) -> None:
        """A canary probe ran on ``array``; ``detected`` is its verdict."""


#: Shared null tracer — drivers default to this instance.
NULL_TRACER = Tracer()


class RecordingTracer(Tracer):
    """Records the full event stream plus batch/busy-span tables."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self.batches: list[BatchTrace] = []
        #: request index -> arrival timestamp (for exporter wait spans).
        self.arrivals: dict[int, float] = {}
        #: request index -> absolute deadline (inf when none).
        self.deadlines: dict[int, float] = {}
        self.timeouts = 0

    # -- hook implementations -------------------------------------------

    def request_arrived(
        self, ts_us: float, index: int, tenant: str, deadline_us: float
    ) -> None:
        self.arrivals[index] = ts_us
        if math.isfinite(deadline_us):
            self.deadlines[index] = deadline_us
        self.events.append(
            TraceEvent(
                ts_us=ts_us,
                kind=ARRIVE,
                request=index,
                tenant=tenant,
                deadline_us=deadline_us,
            )
        )

    def request_admitted(self, ts_us: float, index: int, tenant: str) -> None:
        self.events.append(
            TraceEvent(ts_us=ts_us, kind=ADMIT, request=index, tenant=tenant)
        )

    def request_shed(self, ts_us: float, index: int, tenant: str) -> None:
        self.events.append(
            TraceEvent(ts_us=ts_us, kind=SHED, request=index, tenant=tenant)
        )

    def batch_placed(self, ts_us: float, placed) -> None:
        batch_id = len(self.batches)
        placed.trace_id = batch_id
        tenant = placed.tenant.name
        self.batches.append(
            BatchTrace(
                batch=batch_id,
                tenant=tenant,
                array=placed.array,
                size=placed.size,
                warm=placed.warm,
                stacked=placed.stacked,
                formed_us=ts_us,
                dispatch_us=placed.dispatch_us,
                members=tuple(m.index for m in placed.members),
                member_arrivals=tuple(m.arrival_us for m in placed.members),
                member_deadlines=tuple(m.deadline_us for m in placed.members),
            )
        )
        events = self.events
        events.append(
            TraceEvent(
                ts_us=ts_us,
                kind=BATCH_FORM,
                batch=batch_id,
                tenant=tenant,
                size=placed.size,
            )
        )
        events.append(
            TraceEvent(
                ts_us=ts_us,
                kind=DISPATCH,
                batch=batch_id,
                array=placed.array,
                tenant=tenant,
                size=placed.size,
                stacked=placed.stacked,
            )
        )
        events.append(
            TraceEvent(
                ts_us=placed.dispatch_us,
                kind=COMPUTE_START,
                batch=batch_id,
                array=placed.array,
                tenant=tenant,
                size=placed.size,
                warm=placed.warm,
                stacked=placed.stacked,
            )
        )

    def batch_completed(self, ts_us: float, placed) -> None:
        batch_id = placed.trace_id
        if 0 <= batch_id < len(self.batches):
            self.batches[batch_id].done_us = ts_us
        events = self.events
        events.append(
            TraceEvent(
                ts_us=ts_us,
                kind=COMPUTE_END,
                batch=batch_id,
                array=placed.array,
                size=placed.size,
            )
        )
        tenant = placed.tenant.name
        for member in placed.members:
            events.append(
                TraceEvent(
                    ts_us=ts_us,
                    kind=COMPLETE,
                    request=member.index,
                    batch=batch_id,
                    array=placed.array,
                    tenant=tenant,
                    deadline_us=member.deadline_us,
                )
            )

    def coalescing_timeout(self, ts_us: float) -> None:
        self.timeouts += 1
        self.events.append(TraceEvent(ts_us=ts_us, kind=TIMEOUT))

    def batch_crashed(self, ts_us: float, placed) -> None:
        batch_id = placed.trace_id
        if 0 <= batch_id < len(self.batches):
            trace = self.batches[batch_id]
            trace.done_us = ts_us
            trace.crashed = True
        events = self.events
        # The crash closes the compute span: the array was occupied from
        # dispatch until detection, so busy/utilization views stay exact.
        events.append(
            TraceEvent(
                ts_us=ts_us,
                kind=COMPUTE_END,
                batch=batch_id,
                array=placed.array,
                size=placed.size,
            )
        )
        events.append(
            TraceEvent(
                ts_us=ts_us,
                kind=CRASH,
                batch=batch_id,
                array=placed.array,
                tenant=placed.tenant.name,
                size=placed.size,
            )
        )

    def request_retried(self, ts_us: float, index: int, tenant: str) -> None:
        self.events.append(
            TraceEvent(ts_us=ts_us, kind=RETRY, request=index, tenant=tenant)
        )

    def request_failed(self, ts_us: float, index: int, tenant: str) -> None:
        self.events.append(
            TraceEvent(ts_us=ts_us, kind=FAILED, request=index, tenant=tenant)
        )

    def array_quarantined(self, ts_us: float, array: int) -> None:
        self.events.append(TraceEvent(ts_us=ts_us, kind=QUARANTINE, array=array))

    def array_recovered(self, ts_us: float, array: int) -> None:
        self.events.append(TraceEvent(ts_us=ts_us, kind=RECOVER, array=array))

    def batch_corrupted(self, ts_us: float, placed) -> None:
        self.events.append(
            TraceEvent(
                ts_us=ts_us,
                kind=CORRUPT,
                batch=placed.trace_id,
                array=placed.array,
                tenant=placed.tenant.name,
                size=placed.size,
            )
        )

    def corruption_detected(self, ts_us: float, placed) -> None:
        batch_id = placed.trace_id
        if 0 <= batch_id < len(self.batches):
            trace = self.batches[batch_id]
            trace.done_us = ts_us
            trace.crashed = True
        events = self.events
        # A detection closes the compute span exactly like a crash: the
        # array was busy from dispatch until the checksum caught it.
        events.append(
            TraceEvent(
                ts_us=ts_us,
                kind=COMPUTE_END,
                batch=batch_id,
                array=placed.array,
                size=placed.size,
            )
        )
        events.append(
            TraceEvent(
                ts_us=ts_us,
                kind=DETECT,
                batch=batch_id,
                array=placed.array,
                tenant=placed.tenant.name,
                size=placed.size,
            )
        )

    def canary_probe(self, ts_us: float, array: int, detected: bool) -> None:
        # ``size`` doubles as the detected flag (0/1) so TraceEvent stays
        # slot-compatible; the exporter re-labels it.
        self.events.append(
            TraceEvent(
                ts_us=ts_us, kind=CANARY, array=array, size=1 if detected else 0
            )
        )

    # -- analysis views -------------------------------------------------

    def completed_batches(self) -> list[BatchTrace]:
        """Batches whose compute span closed (done timestamp known)."""
        return [b for b in self.batches if b.done_us is not None]

    def busy_spans(self, array: int | None = None) -> list[tuple[int, float, float]]:
        """Per-array ``(array, start_us, end_us)`` compute spans."""
        return [
            (b.array, b.dispatch_us, b.done_us)
            for b in self.completed_batches()
            if array is None or b.array == array
        ]

    def array_busy_us(self) -> dict[int, float]:
        """Total charged busy time per array, from the busy spans."""
        busy: dict[int, float] = {}
        for array, start, end in self.busy_spans():
            busy[array] = busy.get(array, 0.0) + (end - start)
        return busy

    def array_utilization(
        self, makespan_us: float, arrays: int | None = None
    ) -> dict[int, float]:
        """Busy-us / span-us per array, derived purely from the spans.

        ``arrays`` pads the result with zero-utilization entries for
        arrays that never ran a batch (to match a report's full table).
        """
        busy = self.array_busy_us()
        if arrays is not None:
            for index in range(arrays):
                busy.setdefault(index, 0.0)
        if makespan_us <= 0.0:
            return {array: 0.0 for array in sorted(busy)}
        return {array: busy[array] / makespan_us for array in sorted(busy)}

    def request_lifecycles(self) -> dict[int, list[TraceEvent]]:
        """Events grouped per request index, in emission order."""
        lifecycles: dict[int, list[TraceEvent]] = {}
        for event in self.events:
            if event.request >= 0:
                lifecycles.setdefault(event.request, []).append(event)
        return lifecycles


class MultiTracer(Tracer):
    """Fans every hook out to several child tracers, in order."""

    enabled = True

    def __init__(self, tracers) -> None:
        self.tracers = list(tracers)

    def request_arrived(self, ts_us, index, tenant, deadline_us) -> None:
        for tracer in self.tracers:
            tracer.request_arrived(ts_us, index, tenant, deadline_us)

    def request_admitted(self, ts_us, index, tenant) -> None:
        for tracer in self.tracers:
            tracer.request_admitted(ts_us, index, tenant)

    def request_shed(self, ts_us, index, tenant) -> None:
        for tracer in self.tracers:
            tracer.request_shed(ts_us, index, tenant)

    def batch_placed(self, ts_us, placed) -> None:
        for tracer in self.tracers:
            tracer.batch_placed(ts_us, placed)

    def batch_completed(self, ts_us, placed) -> None:
        for tracer in self.tracers:
            tracer.batch_completed(ts_us, placed)

    def coalescing_timeout(self, ts_us) -> None:
        for tracer in self.tracers:
            tracer.coalescing_timeout(ts_us)

    def batch_crashed(self, ts_us, placed) -> None:
        for tracer in self.tracers:
            tracer.batch_crashed(ts_us, placed)

    def request_retried(self, ts_us, index, tenant) -> None:
        for tracer in self.tracers:
            tracer.request_retried(ts_us, index, tenant)

    def request_failed(self, ts_us, index, tenant) -> None:
        for tracer in self.tracers:
            tracer.request_failed(ts_us, index, tenant)

    def array_quarantined(self, ts_us, array) -> None:
        for tracer in self.tracers:
            tracer.array_quarantined(ts_us, array)

    def array_recovered(self, ts_us, array) -> None:
        for tracer in self.tracers:
            tracer.array_recovered(ts_us, array)

    def batch_corrupted(self, ts_us, placed) -> None:
        for tracer in self.tracers:
            tracer.batch_corrupted(ts_us, placed)

    def corruption_detected(self, ts_us, placed) -> None:
        for tracer in self.tracers:
            tracer.corruption_detected(ts_us, placed)

    def canary_probe(self, ts_us, array, detected) -> None:
        for tracer in self.tracers:
            tracer.canary_probe(ts_us, array, detected)


def combine_tracers(*tracers) -> Tracer:
    """Collapse several optional tracers into one hook target.

    ``None`` and disabled tracers drop out; zero active tracers return
    the shared :data:`NULL_TRACER` (so call sites keep their zero-cost
    guard), one returns itself, more wrap in a :class:`MultiTracer`.
    """
    active = [t for t in tracers if t is not None and t.enabled]
    if not active:
        return NULL_TRACER
    if len(active) == 1:
        return active[0]
    return MultiTracer(active)


def well_formed_errors(tracer: RecordingTracer) -> list[str]:
    """Event-stream invariant violations (empty = well formed).

    Checks, per the observability contract:

    * per-request lifecycle order: arrive ≤ admit/shed ≤ retry* ≤
      complete/failed, with exactly one arrive and exactly one terminal
      outcome (shed, complete, or failed) per request — a retried
      request still terminates exactly once;
    * balanced compute spans: every ``compute_start`` has a matching
      ``compute_end`` on the same batch/array with ``end >= start``
      (a crashed batch's span closes at crash detection);
    * batch-table consistency: dispatch never precedes formation, and
      completion never precedes dispatch.

    Timestamps are *not* required to be globally monotonic in emission
    order: a batch stacked behind a busy array legally records a
    ``compute_start`` in the future.  Exporters sort by timestamp.
    """
    errors: list[str] = []
    starts: dict[int, TraceEvent] = {}
    ends: dict[int, TraceEvent] = {}
    for event in tracer.events:
        if event.kind == COMPUTE_START:
            if event.batch in starts:
                errors.append(f"batch {event.batch}: duplicate compute_start")
            starts[event.batch] = event
        elif event.kind == COMPUTE_END:
            if event.batch in ends:
                errors.append(f"batch {event.batch}: duplicate compute_end")
            ends[event.batch] = event
    for batch, start in starts.items():
        end = ends.get(batch)
        if end is None:
            errors.append(f"batch {batch}: compute_start without compute_end")
        elif end.ts_us < start.ts_us or end.array != start.array:
            errors.append(
                f"batch {batch}: span end ({end.ts_us}, array {end.array})"
                f" inconsistent with start ({start.ts_us}, array {start.array})"
            )
    for batch in ends:
        if batch not in starts:
            errors.append(f"batch {batch}: compute_end without compute_start")
    for trace in tracer.batches:
        if trace.dispatch_us < trace.formed_us:
            errors.append(f"batch {trace.batch}: dispatched before formation")
        if trace.done_us is not None and trace.done_us < trace.dispatch_us:
            errors.append(f"batch {trace.batch}: completed before dispatch")
    for index, events in tracer.request_lifecycles().items():
        kinds = [e.kind for e in events]
        if kinds.count(ARRIVE) != 1:
            errors.append(f"request {index}: expected exactly one arrive")
            continue
        terminal = kinds.count(SHED) + kinds.count(COMPLETE) + kinds.count(FAILED)
        if terminal != 1:
            errors.append(
                f"request {index}: expected one terminal event, saw {terminal}"
            )
        last_phase = -1
        last_ts = -math.inf
        for event in events:
            phase = _REQUEST_ORDER.get(event.kind)
            if phase is None:
                continue
            if phase < last_phase or event.ts_us < last_ts:
                errors.append(
                    f"request {index}: out-of-order {event.kind} at {event.ts_us}"
                )
                break
            last_phase, last_ts = phase, event.ts_us
    return errors
