"""Live serving metrics: registry, windowed rollups, Prometheus text.

The metrics layer rides the same tracer hooks the recorders use:
:class:`ServingMetrics` *is* a :class:`~repro.obs.tracer.Tracer`, so one
``combine_tracers(recording, metrics)`` feeds both from the single
instrumentation point in the serving core.  Counters and windowed
latency rollups update on events; gauges (queue depth, in-flight
batches, per-array utilization) are sampled by the driver — the live
runtime's periodic snapshot task, or an explicit ``sample()`` call.

Latency rolls up per fixed window through the HDR log-bucketed
:class:`~repro.serve.stats.LatencyHistogram` (``kind="log"``): each
closed window yields count / p50 / p99, kept in a bounded deque and
mirrored into gauges, so a scraper sees fresh percentiles without the
server ever holding per-request state.

Exposition is Prometheus text format, served by
:func:`serve_metrics` (a dependency-free ``asyncio`` HTTP responder)
behind ``repro serve --metrics-listen HOST:PORT``.
"""

from __future__ import annotations

import math
from collections import deque

from repro.errors import ConfigError
from repro.obs.tracer import Tracer
from repro.serve.stats import LatencyHistogram


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Family:
    """One metric family: a name, a help line, and labeled samples."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self.samples: dict[tuple, float] = {}

    @staticmethod
    def _key(labels: dict) -> tuple:
        return tuple(sorted(labels.items()))

    def value(self, **labels) -> float:
        return self.samples.get(self._key(labels), 0.0)

    def render(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key in sorted(self.samples):
            label = (
                "{" + ",".join(f'{k}="{v}"' for k, v in key) + "}" if key else ""
            )
            lines.append(f"{self.name}{label} {_format_value(self.samples[key])}")
        return lines


class Counter(_Family):
    """Monotonically increasing labeled counter."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        self.samples[key] = self.samples.get(key, 0.0) + amount


class Gauge(_Family):
    """Last-value labeled gauge."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self.samples[self._key(labels)] = float(value)


class MetricsRegistry:
    """Ordered collection of metric families with text exposition."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def _register(self, cls, name: str, help_text: str):
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = cls(name, help_text)
        elif not isinstance(family, cls):
            raise ConfigError(f"metric {name!r} already registered as another type")
        return family

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._register(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._register(Gauge, name, help_text)

    def render(self) -> str:
        """Prometheus text exposition of every family."""
        lines: list[str] = []
        for name in sorted(self._families):
            lines.extend(self._families[name].render())
        return "\n".join(lines) + "\n"


class WindowedLatency:
    """Fixed-window latency rollups over log-bucketed histograms.

    ``observe(ts_us, value_us)`` folds a sample into the window holding
    ``ts_us``; crossing a window boundary closes the previous window
    into a ``{start_us, end_us, count, p50_us, p99_us, mean_us}``
    summary.  Windows are closed lazily by observation timestamps (the
    caller's clock — virtual or wall), so the class itself never reads
    time.
    """

    def __init__(
        self,
        window_us: float = 1_000_000.0,
        bin_us: float = 50.0,
        subbins: int = 32,
        keep: int = 64,
    ) -> None:
        if not (math.isfinite(window_us) and window_us > 0):
            raise ConfigError("metrics window must be finite and positive")
        self.window_us = float(window_us)
        self._bin_us = bin_us
        self._subbins = subbins
        self._hist = LatencyHistogram(bin_us, kind="log", subbins=subbins)
        self._window_start: float | None = None
        self.windows: deque[dict] = deque(maxlen=keep)

    def _summary(self, end_us: float) -> dict:
        hist = self._hist
        return {
            "start_us": self._window_start,
            "end_us": end_us,
            "count": hist.count,
            "mean_us": hist.mean_us,
            "p50_us": hist.percentile(50),
            "p99_us": hist.percentile(99),
        }

    def _roll_to(self, ts_us: float) -> None:
        while ts_us >= self._window_start + self.window_us:
            end = self._window_start + self.window_us
            self.windows.append(self._summary(end))
            self._hist = LatencyHistogram(
                self._bin_us, kind="log", subbins=self._subbins
            )
            self._window_start = end

    def observe(self, ts_us: float, value_us: float) -> None:
        if self._window_start is None:
            self._window_start = math.floor(ts_us / self.window_us) * self.window_us
        else:
            self._roll_to(ts_us)
        self._hist.add(value_us)

    def latest(self) -> dict | None:
        """Most recent rollup: the last closed window, else the current
        partial one (so early scrapes still see percentiles)."""
        if self.windows:
            return self.windows[-1]
        if self._window_start is None or self._hist.count == 0:
            return None
        return self._summary(self._window_start + self.window_us)


class ServingMetrics(Tracer):
    """Tracer adapter that folds serving events into a metrics registry.

    Counter families (labeled by tenant where meaningful):

    * ``serve_requests_offered_total`` / ``_admitted_total`` /
      ``_shed_total`` / ``_completed_total`` / ``_deadline_missed_total``
    * ``serve_batches_total`` (labeled ``warm``), ``serve_batch_size_total``
      (labeled ``size`` — the batch-size distribution),
      ``serve_coalescing_timeouts_total``
    * fault families: ``serve_crashes_total`` / ``serve_quarantines_total``
      / ``serve_recoveries_total`` (labeled ``array``),
      ``serve_retries_total`` / ``serve_requests_failed_total``
      (labeled ``tenant``)

    Gauges set by :meth:`sample` (the runtime's snapshot task):
    ``serve_queue_depth``, ``serve_inflight_batches``,
    ``serve_array_utilization`` (labeled ``array``), ``serve_shed_ratio``,
    and the windowed-latency mirrors ``serve_latency_p50_us`` /
    ``serve_latency_p99_us`` / ``serve_latency_window_count``.
    """

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        window_us: float = 1_000_000.0,
        bin_us: float = 50.0,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self.offered = reg.counter(
            "serve_requests_offered_total", "Arrivals reaching admission"
        )
        self.admitted = reg.counter(
            "serve_requests_admitted_total", "Arrivals admitted to a queue"
        )
        self.shed = reg.counter(
            "serve_requests_shed_total", "Arrivals rejected (admission/backpressure)"
        )
        self.completed = reg.counter(
            "serve_requests_completed_total", "Requests whose batch finished"
        )
        self.deadline_missed = reg.counter(
            "serve_deadline_missed_total", "Completions past their deadline"
        )
        self.batches = reg.counter(
            "serve_batches_total", "Batches placed on arrays"
        )
        self.batch_size = reg.counter(
            "serve_batch_size_total", "Batch-size distribution of placed batches"
        )
        self.timeouts = reg.counter(
            "serve_coalescing_timeouts_total", "Coalescing windows that expired"
        )
        self.crashes = reg.counter(
            "serve_crashes_total", "Batches that crashed mid-execution"
        )
        self.retries = reg.counter(
            "serve_retries_total", "Requests requeued after a crash"
        )
        self.failed = reg.counter(
            "serve_requests_failed_total", "Requests failed (retry budget spent)"
        )
        self.quarantines = reg.counter(
            "serve_quarantines_total", "Arrays quarantined after a crash"
        )
        self.recoveries = reg.counter(
            "serve_recoveries_total", "Quarantined arrays readmitted to service"
        )
        self.corruptions = reg.counter(
            "serve_corrupted_served_total",
            "Requests served corrupted results (undetected corruption)",
        )
        self.detections = reg.counter(
            "serve_corruption_detected_total",
            "Batches whose corruption an integrity check caught",
        )
        self.canaries = reg.counter(
            "serve_canary_probes_total",
            "Canary probes fired (labeled by detection verdict)",
        )
        self.queue_depth = reg.gauge(
            "serve_queue_depth", "Requests queued across tenants"
        )
        self.inflight = reg.gauge(
            "serve_inflight_batches", "Batches currently executing"
        )
        self.utilization = reg.gauge(
            "serve_array_utilization", "Busy fraction per array since start"
        )
        self.shed_ratio = reg.gauge(
            "serve_shed_ratio", "Shed arrivals over offered arrivals"
        )
        self.latency_p50 = reg.gauge(
            "serve_latency_p50_us", "p50 total latency of the latest window"
        )
        self.latency_p99 = reg.gauge(
            "serve_latency_p99_us", "p99 total latency of the latest window"
        )
        self.latency_count = reg.gauge(
            "serve_latency_window_count", "Completions in the latest window"
        )
        self.latency = WindowedLatency(window_us=window_us, bin_us=bin_us)

    # -- tracer hooks ---------------------------------------------------

    def request_arrived(self, ts_us, index, tenant, deadline_us) -> None:
        self.offered.inc(tenant=tenant)

    def request_admitted(self, ts_us, index, tenant) -> None:
        self.admitted.inc(tenant=tenant)

    def request_shed(self, ts_us, index, tenant) -> None:
        self.shed.inc(tenant=tenant)

    def batch_placed(self, ts_us, placed) -> None:
        self.batches.inc(warm=str(bool(placed.warm)).lower())
        self.batch_size.inc(size=str(placed.size))

    def batch_completed(self, ts_us, placed) -> None:
        tenant = placed.tenant.name
        observe = self.latency.observe
        for member in placed.members:
            self.completed.inc(tenant=tenant)
            observe(ts_us, ts_us - member.arrival_us)
            if ts_us > member.deadline_us:
                self.deadline_missed.inc(tenant=tenant)

    def coalescing_timeout(self, ts_us) -> None:
        self.timeouts.inc()

    def batch_crashed(self, ts_us, placed) -> None:
        self.crashes.inc(array=str(placed.array))

    def request_retried(self, ts_us, index, tenant) -> None:
        self.retries.inc(tenant=tenant)

    def request_failed(self, ts_us, index, tenant) -> None:
        self.failed.inc(tenant=tenant)

    def array_quarantined(self, ts_us, array) -> None:
        self.quarantines.inc(array=str(array))

    def array_recovered(self, ts_us, array) -> None:
        self.recoveries.inc(array=str(array))

    def batch_corrupted(self, ts_us, placed) -> None:
        self.corruptions.inc(placed.size, array=str(placed.array))

    def corruption_detected(self, ts_us, placed) -> None:
        self.detections.inc(array=str(placed.array))

    def canary_probe(self, ts_us, array, detected) -> None:
        self.canaries.inc(
            array=str(array), detected=str(bool(detected)).lower()
        )

    # -- driver-sampled gauges ------------------------------------------

    def sample(
        self,
        *,
        queue_depth: int | None = None,
        inflight: int | None = None,
        busy_us: dict[int, float] | None = None,
        elapsed_us: float | None = None,
    ) -> None:
        """Refresh the sampled gauges (and the latency-window mirrors)."""
        if queue_depth is not None:
            self.queue_depth.set(queue_depth)
        if inflight is not None:
            self.inflight.set(inflight)
        if busy_us is not None and elapsed_us is not None and elapsed_us > 0.0:
            for array, busy in busy_us.items():
                self.utilization.set(busy / elapsed_us, array=str(array))
        offered = sum(self.offered.samples.values())
        if offered > 0.0:
            self.shed_ratio.set(sum(self.shed.samples.values()) / offered)
        window = self.latency.latest()
        if window is not None:
            self.latency_p50.set(window["p50_us"])
            self.latency_p99.set(window["p99_us"])
            self.latency_count.set(window["count"])

    def render(self) -> str:
        """Prometheus text for the underlying registry."""
        return self.registry.render()


async def serve_metrics(metrics, host: str = "127.0.0.1", port: int = 9095):
    """Start a minimal HTTP/1.0 exposition server; returns the server.

    ``metrics`` is anything with a ``render() -> str`` (a
    :class:`ServingMetrics` or a bare :class:`MetricsRegistry`).  Every
    request — regardless of path — answers 200 with the current text
    exposition, which is all a Prometheus scrape needs.  Close with
    ``server.close(); await server.wait_closed()``.
    """
    import asyncio

    async def handle(reader, writer):
        try:
            await reader.readline()  # request line; headers are ignored
            body = metrics.render().encode()
            writer.write(
                b"HTTP/1.0 200 OK\r\n"
                b"Content-Type: text/plain; version=0.0.4\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
            )
            await writer.drain()
        finally:
            writer.close()

    return await asyncio.start_server(handle, host, port)
