"""Unified observability for the serving stack: tracing, export, metrics.

Both serving drivers — the discrete-event simulator and the live asyncio
runtime — drive one :class:`~repro.serve.core.ServingCore`, so this
package instruments that single choke point and gets an identical
structured event stream from both (virtual vs wall-clock timestamps
being the only difference):

* :mod:`repro.obs.tracer` — the tracer protocol: a zero-cost null
  default (:data:`NULL_TRACER`), a :class:`RecordingTracer` capturing
  the full request lifecycle and per-array busy spans, and
  :func:`combine_tracers` to fan one stream out to several consumers.
* :mod:`repro.obs.export` — Chrome trace-event / Perfetto JSON (array
  lanes, per-request flow arrows, an op-level pipeline drill-down lane)
  and a JSONL span log; ``repro serve[-sim] --trace-out t.json``.
* :mod:`repro.obs.metrics` — counters, sampled gauges, windowed
  latency rollups, Prometheus text exposition;
  ``repro serve --metrics-listen HOST:PORT``.

Quick start::

    from repro.obs import RecordingTracer, export_chrome_trace
    from repro.serve import ServingSimulator

    tracer = RecordingTracer()
    report = ServingSimulator(trace, server=server, tracer=tracer).run()
    export_chrome_trace(tracer, "serve.trace.json")   # open in Perfetto
"""

from repro.obs.export import (
    build_chrome_trace,
    chrome_trace_events,
    export_chrome_trace,
    export_trace,
    op_lane_events,
    pipeline_op_lane,
    trace_schema,
    write_span_log,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    ServingMetrics,
    WindowedLatency,
    serve_metrics,
)
from repro.obs.tracer import (
    EVENT_KINDS,
    NULL_TRACER,
    BatchTrace,
    MultiTracer,
    RecordingTracer,
    TraceEvent,
    Tracer,
    combine_tracers,
    well_formed_errors,
)

__all__ = [
    "EVENT_KINDS",
    "NULL_TRACER",
    "BatchTrace",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "MultiTracer",
    "RecordingTracer",
    "ServingMetrics",
    "TraceEvent",
    "Tracer",
    "WindowedLatency",
    "build_chrome_trace",
    "chrome_trace_events",
    "combine_tracers",
    "export_chrome_trace",
    "export_trace",
    "op_lane_events",
    "pipeline_op_lane",
    "serve_metrics",
    "trace_schema",
    "well_formed_errors",
    "write_span_log",
]
