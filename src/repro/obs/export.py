"""Trace exporters: Chrome trace-event / Perfetto JSON and JSONL spans.

The Chrome trace-event format (the JSON Perfetto and ``chrome://tracing``
both load) renders the serving timeline the way the paper draws its
pipeline figures: one lane per PE array carrying batch compute spans,
a requests lane carrying per-request wait spans, flow arrows binding
each request's wait to the batch that served it, and — when the cost
model is pipelined — an op-level drill-down lane showing tile streams,
weight-port loads, and activation passes from the
:mod:`repro.hw.pipeline` schedule (Fig. 11 made visible).

Both serving drivers feed one :class:`~repro.obs.tracer.RecordingTracer`
through the shared core, so a simulated run and a live run of the same
trace export *schema-identical* files — same phases, same categories,
same argument keys — differing only in timestamps.  That identity is a
tested acceptance criterion; :func:`trace_schema` is the comparator.
"""

from __future__ import annotations

import json

from repro.obs.tracer import (
    CANARY,
    CORRUPT,
    CRASH,
    DETECT,
    FAILED,
    QUARANTINE,
    RECOVER,
    RETRY,
    SHED,
    TIMEOUT,
    RecordingTracer,
)

#: pid of the serving lanes; the op drill-down uses its own process.
SERVING_PID = 0
PIPELINE_PID = 1

#: tid layout inside the serving process: requests first, arrays after.
REQUESTS_TID = 0
ARRAY_TID_BASE = 1

#: tid layout inside the pipeline drill-down process.
OP_ARRAY_TID = 0
OP_PORT_TID = 1
OP_ACT_TID = 2


def _metadata(pid: int, name: str, tid: int | None = None) -> dict:
    event = {
        "ph": "M",
        "pid": pid,
        "name": "process_name" if tid is None else "thread_name",
        "args": {"name": name},
    }
    if tid is not None:
        event["tid"] = tid
    event["ts"] = 0
    return event


def chrome_trace_events(tracer: RecordingTracer) -> list[dict]:
    """Serving-lane trace events (metadata + spans + flows + instants)."""
    events: list[dict] = [_metadata(SERVING_PID, "serving")]
    events.append(_metadata(SERVING_PID, "requests", REQUESTS_TID))
    arrays = sorted({b.array for b in tracer.batches})
    for array in arrays:
        events.append(
            _metadata(SERVING_PID, f"array {array}", ARRAY_TID_BASE + array)
        )

    for batch in tracer.batches:
        if batch.done_us is None:
            continue
        tid = ARRAY_TID_BASE + batch.array
        events.append(
            {
                "ph": "X",
                "pid": SERVING_PID,
                "tid": tid,
                "ts": batch.dispatch_us,
                "dur": batch.done_us - batch.dispatch_us,
                "name": f"batch {batch.batch} x{batch.size}",
                "cat": "batch",
                "args": {
                    "batch": batch.batch,
                    "tenant": batch.tenant,
                    "size": batch.size,
                    "warm": batch.warm,
                    "stacked": batch.stacked,
                },
            }
        )
        for index, arrival in zip(batch.members, batch.member_arrivals):
            wait = batch.dispatch_us - arrival
            events.append(
                {
                    "ph": "X",
                    "pid": SERVING_PID,
                    "tid": REQUESTS_TID,
                    "ts": arrival,
                    "dur": wait if wait > 0.0 else 0.0,
                    "name": f"req {index}",
                    "cat": "request",
                    "args": {"request": index, "tenant": batch.tenant},
                }
            )
            # Flow arrow: the wait span hands off to the batch span.  The
            # start binds to the enclosing request slice, the finish
            # (bp="e") to the batch slice at the dispatch instant.
            events.append(
                {
                    "ph": "s",
                    "pid": SERVING_PID,
                    "tid": REQUESTS_TID,
                    "ts": arrival,
                    "id": index,
                    "name": "serve",
                    "cat": "flow",
                    "args": {"request": index},
                }
            )
            events.append(
                {
                    "ph": "f",
                    "bp": "e",
                    "pid": SERVING_PID,
                    "tid": tid,
                    "ts": batch.dispatch_us,
                    "id": index,
                    "name": "serve",
                    "cat": "flow",
                    "args": {"request": index},
                }
            )

    for event in tracer.events:
        if event.kind == SHED:
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "pid": SERVING_PID,
                    "tid": REQUESTS_TID,
                    "ts": event.ts_us,
                    "name": f"shed {event.request}",
                    "cat": "shed",
                    "args": {"request": event.request, "tenant": event.tenant},
                }
            )
        elif event.kind == TIMEOUT:
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "pid": SERVING_PID,
                    "tid": REQUESTS_TID,
                    "ts": event.ts_us,
                    "name": "coalescing timeout",
                    "cat": "timeout",
                    "args": {},
                }
            )
        elif event.kind == CRASH:
            # Fault markers land on the array lane the crash happened on;
            # the batch's (crash-truncated) compute span is already there.
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "pid": SERVING_PID,
                    "tid": ARRAY_TID_BASE + event.array,
                    "ts": event.ts_us,
                    "name": f"crash batch {event.batch}",
                    "cat": "crash",
                    "args": {
                        "batch": event.batch,
                        "array": event.array,
                        "tenant": event.tenant,
                        "size": event.size,
                    },
                }
            )
        elif event.kind in (RETRY, FAILED):
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "pid": SERVING_PID,
                    "tid": REQUESTS_TID,
                    "ts": event.ts_us,
                    "name": f"{event.kind} {event.request}",
                    "cat": event.kind,
                    "args": {"request": event.request, "tenant": event.tenant},
                }
            )
        elif event.kind in (QUARANTINE, RECOVER):
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "pid": SERVING_PID,
                    "tid": ARRAY_TID_BASE + event.array,
                    "ts": event.ts_us,
                    "name": f"{event.kind} array {event.array}",
                    "cat": event.kind,
                    "args": {"array": event.array},
                }
            )
        elif event.kind in (CORRUPT, DETECT):
            # Integrity markers share the crash marker's array lane: a
            # detection truncated the batch's compute span there, and an
            # undetected corruption annotates the span that served it.
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "pid": SERVING_PID,
                    "tid": ARRAY_TID_BASE + event.array,
                    "ts": event.ts_us,
                    "name": f"{event.kind} batch {event.batch}",
                    "cat": event.kind,
                    "args": {
                        "batch": event.batch,
                        "array": event.array,
                        "tenant": event.tenant,
                        "size": event.size,
                    },
                }
            )
        elif event.kind == CANARY:
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "pid": SERVING_PID,
                    "tid": ARRAY_TID_BASE + event.array,
                    "ts": event.ts_us,
                    "name": f"canary array {event.array}",
                    "cat": CANARY,
                    "args": {"array": event.array, "detected": bool(event.size)},
                }
            )
    return events


def op_lane_events(
    op_spans,
    clock_mhz: float,
    offset_us: float = 0.0,
) -> list[dict]:
    """Op drill-down lane from :class:`~repro.hw.pipeline.OpSpan` records.

    Renders one pipelined batch stream — tile streams on the PE-array
    thread, weight-port loads (with prestage slack visible) on the port
    thread, activation passes on the activation thread — converting
    cycles to microseconds at ``clock_mhz``.
    """
    scale = 1.0 / clock_mhz  # cycles -> us
    events: list[dict] = [
        _metadata(PIPELINE_PID, "pipeline drill-down"),
        _metadata(PIPELINE_PID, "pe array", OP_ARRAY_TID),
        _metadata(PIPELINE_PID, "weight port", OP_PORT_TID),
        _metadata(PIPELINE_PID, "activation", OP_ACT_TID),
    ]
    for span in op_spans:
        name = span.layer or span.kind
        args = {"batch": span.batch, "op": span.op, "layer": span.layer}
        if span.kind == "act":
            events.append(
                {
                    "ph": "X",
                    "pid": PIPELINE_PID,
                    "tid": OP_ACT_TID,
                    "ts": offset_us + span.start_cycle * scale,
                    "dur": (span.end_cycle - span.start_cycle) * scale,
                    "name": name,
                    "cat": "op",
                    "args": args,
                }
            )
            continue
        events.append(
            {
                "ph": "X",
                "pid": PIPELINE_PID,
                "tid": OP_ARRAY_TID,
                "ts": offset_us + span.start_cycle * scale,
                "dur": (span.end_cycle - span.start_cycle) * scale,
                "name": name,
                "cat": "op",
                "args": args,
            }
        )
        if span.load_end_cycle > span.load_start_cycle:
            events.append(
                {
                    "ph": "X",
                    "pid": PIPELINE_PID,
                    "tid": OP_PORT_TID,
                    "ts": offset_us + span.load_start_cycle * scale,
                    "dur": (span.load_end_cycle - span.load_start_cycle) * scale,
                    "name": f"load {name}",
                    "cat": "load",
                    "args": args,
                }
            )
    return events


def pipeline_op_lane(cost, batch_size: int, batches: int = 4) -> list[dict]:
    """Drill-down lane for ``batches`` identical pipelined batches.

    Uses the cost model's memoized op timeline
    (``cost.pipeline_ops(batch_size)``) through the recording stream
    scheduler; raises :class:`~repro.errors.ConfigError` when the model
    was not built with ``pipeline=True`` (e.g. the live runtime's
    measured costs) — callers treat the lane as optional.
    """
    from repro.hw.pipeline import stream_op_spans

    ops = cost.pipeline_ops(batch_size)
    _, spans = stream_op_spans([ops] * batches, [batch_size] * batches)
    return op_lane_events(spans, cost.config.clock_mhz)


def build_chrome_trace(
    tracer: RecordingTracer,
    *,
    op_lane: list[dict] | None = None,
    metadata: dict | None = None,
) -> dict:
    """Assemble the full Chrome trace-event JSON payload (sorted by ts)."""
    events = chrome_trace_events(tracer)
    if op_lane:
        events.extend(op_lane)
    # Perfetto tolerates any order, but sorted output makes the export
    # timestamp-monotonic (the well-formedness the tests assert) and
    # diffs stable.  Metadata events sort first (ts 0, ph "M").
    events.sort(key=lambda e: (e.get("ts", 0.0), e["ph"] != "M"))
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs"},
    }
    if metadata:
        payload["otherData"].update(metadata)
    return payload


def export_chrome_trace(
    tracer: RecordingTracer,
    path: str,
    *,
    op_lane: list[dict] | None = None,
    metadata: dict | None = None,
) -> dict:
    """Write the Perfetto-loadable trace JSON to ``path``; returns it."""
    payload = build_chrome_trace(tracer, op_lane=op_lane, metadata=metadata)
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return payload


def write_span_log(tracer: RecordingTracer, path: str) -> int:
    """Write the raw event stream as JSONL (one event per line).

    The structured-log alternative to the Perfetto export: greppable,
    streamable, and loadable row-by-row.  Returns the line count.
    """
    events = sorted(tracer.events, key=lambda e: e.ts_us)
    with open(path, "w") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict()) + "\n")
    return len(events)


def export_trace(tracer: RecordingTracer, path: str, **kwargs):
    """Format-sniffing export: ``.jsonl`` span log, else Chrome JSON."""
    if path.endswith(".jsonl"):
        return write_span_log(tracer, path)
    return export_chrome_trace(tracer, path, **kwargs)


def trace_schema(payload: dict) -> set[tuple]:
    """Schema fingerprint of a Chrome trace payload.

    The set of ``(ph, cat, sorted arg keys)`` triples over non-metadata
    events plus the normalized lane names — everything about the export's
    *shape* that should be identical between a simulated and a live run
    of the same trace, and nothing (timestamps, counts, ids) that
    legitimately differs.
    """
    schema: set[tuple] = set()
    for event in payload["traceEvents"]:
        ph = event["ph"]
        if ph == "M":
            schema.add(("M", event["name"], event["args"]["name"]))
            continue
        schema.add((ph, event.get("cat", ""), tuple(sorted(event.get("args", {})))))
    return schema
