"""CapsAcc-vs-GPU comparison (Figs 16 and 17) and paper-value checks.

The comparison functions pair the analytical CapsAcc model with the GPU
workload model and compute speedups per layer and per routing step, next to
the paper's annotated factors, producing the data behind Figs 16/17 and the
rows recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.perf import calibration
from repro.perf.gpu import GpuModel, gtx1070_paper_profile
from repro.perf.kernels import CapsNetGpuWorkload
from repro.perf.model import CapsAccPerformanceModel


@dataclass
class SpeedupRow:
    """One compared quantity: GPU time, CapsAcc time, speedups."""

    name: str
    gpu_us: float
    capsacc_us: float
    paper_speedup: float | None = None

    @property
    def speedup(self) -> float:
        """Measured CapsAcc speedup over the GPU (>1 = CapsAcc faster)."""
        return self.gpu_us / self.capsacc_us if self.capsacc_us else float("inf")

    @property
    def direction_matches_paper(self) -> bool:
        """Whether the winner matches the paper's annotation."""
        if self.paper_speedup is None:
            return True
        return (self.speedup >= 1.0) == (self.paper_speedup >= 1.0)


@dataclass
class SpeedupReport:
    """A set of compared rows plus convenience accessors."""

    rows: list[SpeedupRow] = field(default_factory=list)

    def row(self, name: str) -> SpeedupRow:
        """Look up a row by name."""
        for entry in self.rows:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def as_table(self) -> list[tuple]:
        """Rows as ``(name, gpu_us, capsacc_us, speedup, paper)`` tuples."""
        return [
            (row.name, row.gpu_us, row.capsacc_us, row.speedup, row.paper_speedup)
            for row in self.rows
        ]


def compare_layers(
    network: CapsNetConfig | None = None,
    capsacc: CapsAccPerformanceModel | None = None,
    gpu: GpuModel | None = None,
) -> SpeedupReport:
    """Per-layer CapsAcc vs GPU comparison (Fig 16)."""
    network = network if network is not None else mnist_capsnet_config()
    capsacc = capsacc if capsacc is not None else CapsAccPerformanceModel(network=network)
    gpu = gpu if gpu is not None else GpuModel(gtx1070_paper_profile())
    workload = CapsNetGpuWorkload(network)
    capsacc_layers = capsacc.layer_times_us()
    gpu_layers = {
        layer: gpu.sequence_time_us(kernels)
        for layer, kernels in workload.layer_kernels().items()
    }
    gpu_layers["Total"] = sum(gpu_layers.values())
    report = SpeedupReport()
    for layer in ("Conv1", "PrimaryCaps", "ClassCaps", "Total"):
        report.rows.append(
            SpeedupRow(
                name=layer,
                gpu_us=gpu_layers[layer],
                capsacc_us=capsacc_layers[layer],
                paper_speedup=calibration.PAPER_LAYER_SPEEDUP.get(layer),
            )
        )
    return report


def compare_routing_steps(
    network: CapsNetConfig | None = None,
    capsacc: CapsAccPerformanceModel | None = None,
    gpu: GpuModel | None = None,
) -> SpeedupReport:
    """Per-routing-step CapsAcc vs GPU comparison (Fig 17)."""
    network = network if network is not None else mnist_capsnet_config()
    capsacc = capsacc if capsacc is not None else CapsAccPerformanceModel(network=network)
    gpu = gpu if gpu is not None else GpuModel(gtx1070_paper_profile())
    workload = CapsNetGpuWorkload(network)
    gpu_steps = {
        label: gpu.sequence_time_us(kernels)
        for label, kernels in workload.routing_step_kernels().items()
    }
    capsacc_steps = capsacc.routing_step_times_us()
    report = SpeedupReport()
    for label, gpu_us in gpu_steps.items():
        base = label.rstrip("123")
        report.rows.append(
            SpeedupRow(
                name=label,
                gpu_us=gpu_us,
                capsacc_us=capsacc_steps[label],
                paper_speedup=calibration.PAPER_STEP_SPEEDUP.get(base),
            )
        )
    return report
