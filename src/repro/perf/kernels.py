"""Framework-operation extraction for the GPU baseline.

Builds, for each CapsuleNet layer and each routing step, the list of
framework operations a 2018-era eager PyTorch implementation issues.  The
structure follows the reference implementations circulating at the time of
the paper (e.g. the widely used gram-ai / higgsfield CapsNet ports):

* convolutions map to one cuDNN kernel plus bias and activation
  elementwise kernels;
* the ClassCaps prediction is a broadcast + one batched matmul;
* softmax over the routing logits decomposes into transpose / max /
  subtract / exp / sum / divide;
* the ClassCaps squash is applied per output capsule in a Python loop
  (norm, add, divide, multiply per capsule) — the implementation detail
  that makes squashing the paper's dominant routing step (Fig 9);
* the logit update is an elementwise product plus a reduction plus an add.

Every operation count scales with the network configuration, so the same
extraction works for the tiny test network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capsnet.config import CapsNetConfig
from repro.capsnet.routing import routing_step_sequence
from repro.perf.gpu import GpuKernel

#: Bytes per element of the GPU's working datatype (float32).
ELEMENT_BYTES = 4


@dataclass(frozen=True)
class ImplementationProfile:
    """Knobs describing how the measured PyTorch implementation was written."""

    #: Apply the ClassCaps squash with a Python loop over output capsules
    #: (the behaviour consistent with the paper's measured squash times).
    squash_loop_over_capsules: bool = True
    #: Framework ops per squash application (norm, scale, divide, multiply).
    ops_per_squash: int = 4
    #: Framework ops per softmax (transpose, max, sub, exp, sum, div).
    ops_per_softmax: int = 6


class CapsNetGpuWorkload:
    """Kernel sequences of a CapsuleNet forward pass on the GPU."""

    def __init__(
        self,
        config: CapsNetConfig,
        impl: ImplementationProfile | None = None,
    ) -> None:
        self.config = config
        self.impl = impl if impl is not None else ImplementationProfile()

    # ---- layers ---------------------------------------------------------------

    def conv1_kernels(self) -> list[GpuKernel]:
        """Conv1: convolution + bias + ReLU."""
        cfg = self.config
        spec = cfg.conv1
        out_elems = cfg.conv1_out_size**2 * spec.out_channels
        macs = out_elems * spec.in_channels * spec.kernel_size**2
        in_bytes = cfg.input_count * ELEMENT_BYTES
        w_bytes = spec.weight_count * ELEMENT_BYTES
        out_bytes = out_elems * ELEMENT_BYTES
        return [
            GpuKernel("conv1.conv", "conv", flops=2 * macs, bytes=in_bytes + w_bytes + out_bytes),
            GpuKernel("conv1.bias", "elementwise", flops=out_elems, bytes=2 * out_bytes),
            GpuKernel("conv1.relu", "elementwise", flops=out_elems, bytes=2 * out_bytes),
        ]

    def primarycaps_kernels(self) -> list[GpuKernel]:
        """PrimaryCaps: convolution + bias + vectorized squash."""
        cfg = self.config
        spec = cfg.primary
        out_elems = cfg.primary_out_size**2 * spec.conv_out_channels
        macs = out_elems * spec.in_channels * spec.kernel_size**2
        in_elems = cfg.conv1_out_size**2 * spec.in_channels
        kernels = [
            GpuKernel(
                "primary.conv",
                "conv",
                flops=2 * macs,
                bytes=(in_elems + spec.weight_count + out_elems) * ELEMENT_BYTES,
            ),
            GpuKernel(
                "primary.bias", "elementwise", flops=out_elems, bytes=2 * out_elems * ELEMENT_BYTES
            ),
        ]
        # Vectorized squash over all primary capsules at once.
        squash_bytes = 2 * out_elems * ELEMENT_BYTES
        for index in range(self.impl.ops_per_squash):
            kind = "reduce" if index == 0 else "elementwise"
            kernels.append(
                GpuKernel(f"primary.squash{index}", kind, flops=out_elems, bytes=squash_bytes)
            )
        return kernels

    # ---- routing steps ----------------------------------------------------------

    def load_kernels(self) -> list[GpuKernel]:
        """Staging of predictions / logits before routing."""
        cfg = self.config
        u_elems = cfg.num_primary_capsules * cfg.primary.capsule_dim
        b_elems = cfg.coupling_coefficient_count
        return [
            GpuKernel("load.stage_u", "elementwise", bytes=2 * u_elems * ELEMENT_BYTES),
            GpuKernel("load.zero_b", "elementwise", bytes=b_elems * ELEMENT_BYTES),
        ]

    def fc_kernels(self) -> list[GpuKernel]:
        """ClassCaps predictions: broadcast + batched matmul."""
        cfg = self.config
        macs = cfg.classcaps_weight_count  # each weight used once
        u_hat_elems = (
            cfg.num_primary_capsules * cfg.classcaps.num_classes * cfg.classcaps.out_dim
        )
        w_bytes = cfg.classcaps_weight_count * ELEMENT_BYTES
        return [
            GpuKernel("fc.broadcast", "elementwise", bytes=2 * u_hat_elems * ELEMENT_BYTES),
            GpuKernel(
                "fc.bmm", "gemm", flops=2 * macs, bytes=w_bytes + u_hat_elems * ELEMENT_BYTES
            ),
        ]

    def softmax_kernels(self, iteration: int) -> list[GpuKernel]:
        """Softmax over the routing logits (one op chain)."""
        elems = self.config.coupling_coefficient_count
        kernels = []
        for index in range(self.impl.ops_per_softmax):
            kind = "reduce" if index in (1, 4) else "elementwise"
            kernels.append(
                GpuKernel(
                    f"softmax{iteration}.op{index}",
                    kind,
                    flops=elems,
                    bytes=2 * elems * ELEMENT_BYTES,
                )
            )
        return kernels

    def sum_kernels(self, iteration: int) -> list[GpuKernel]:
        """Weighted prediction sum: elementwise product + reduction."""
        cfg = self.config
        u_hat_elems = (
            cfg.num_primary_capsules * cfg.classcaps.num_classes * cfg.classcaps.out_dim
        )
        out_elems = cfg.output_count
        return [
            GpuKernel(
                f"sum{iteration}.mul",
                "elementwise",
                flops=u_hat_elems,
                bytes=3 * u_hat_elems * ELEMENT_BYTES,
            ),
            GpuKernel(
                f"sum{iteration}.reduce",
                "reduce",
                flops=u_hat_elems,
                bytes=(u_hat_elems + out_elems) * ELEMENT_BYTES,
            ),
        ]

    def squash_kernels(self, iteration: int) -> list[GpuKernel]:
        """ClassCaps squash: per-capsule op loop (the measured hotspot)."""
        cfg = self.config
        caps = cfg.classcaps.num_classes
        dim = cfg.classcaps.out_dim
        loops = caps if self.impl.squash_loop_over_capsules else 1
        elems = dim if self.impl.squash_loop_over_capsules else caps * dim
        kernels = []
        for capsule in range(loops):
            for index in range(self.impl.ops_per_squash):
                kind = "reduce" if index == 0 else "elementwise"
                kernels.append(
                    GpuKernel(
                        f"squash{iteration}.c{capsule}.op{index}",
                        kind,
                        flops=elems,
                        bytes=2 * elems * ELEMENT_BYTES,
                    )
                )
        return kernels

    def update_kernels(self, iteration: int) -> list[GpuKernel]:
        """Routing logit update: product + reduction + accumulate."""
        cfg = self.config
        u_hat_elems = (
            cfg.num_primary_capsules * cfg.classcaps.num_classes * cfg.classcaps.out_dim
        )
        b_elems = cfg.coupling_coefficient_count
        return [
            GpuKernel(
                f"update{iteration}.mul",
                "elementwise",
                flops=u_hat_elems,
                bytes=3 * u_hat_elems * ELEMENT_BYTES,
            ),
            GpuKernel(
                f"update{iteration}.reduce",
                "reduce",
                flops=u_hat_elems,
                bytes=(u_hat_elems + b_elems) * ELEMENT_BYTES,
            ),
            GpuKernel(
                f"update{iteration}.add",
                "elementwise",
                flops=b_elems,
                bytes=3 * b_elems * ELEMENT_BYTES,
            ),
        ]

    # ---- aggregation -----------------------------------------------------------

    def routing_step_kernels(self) -> dict[str, list[GpuKernel]]:
        """Kernel list per routing step label (Fig 9 sequence).

        The GPU implementation runs the textbook algorithm, so the first
        softmax is *not* skipped here — only CapsAcc applies that
        optimization.
        """
        steps: dict[str, list[GpuKernel]] = {
            "Load": self.load_kernels(),
            "FC": self.fc_kernels(),
        }
        for label in routing_step_sequence(
            self.config.classcaps.routing_iterations, optimized=False
        ):
            iteration = int(label[-1])
            if label.startswith("Softmax"):
                steps[label] = self.softmax_kernels(iteration)
            elif label.startswith("Sum"):
                steps[label] = self.sum_kernels(iteration)
            elif label.startswith("Squash"):
                steps[label] = self.squash_kernels(iteration)
            elif label.startswith("Update"):
                steps[label] = self.update_kernels(iteration)
        return steps

    def layer_kernels(self) -> dict[str, list[GpuKernel]]:
        """Kernel list per layer (Fig 8 aggregation)."""
        classcaps: list[GpuKernel] = []
        for kernels in self.routing_step_kernels().values():
            classcaps.extend(kernels)
        return {
            "Conv1": self.conv1_kernels(),
            "PrimaryCaps": self.primarycaps_kernels(),
            "ClassCaps": classcaps,
        }
