"""End-to-end CapsAcc performance model (Figs 16 and 17, CapsAcc side).

:class:`CapsAccPerformanceModel` composes the mapped stage shapes of
:mod:`repro.mapping.shapes` with the cycle model of
:mod:`repro.perf.cycles` to produce, for a network and accelerator
configuration:

* per-stage cycles and microseconds,
* per-layer aggregation (Conv1 / PrimaryCaps / ClassCaps / Total — Fig 16),
* per-routing-step times with the paper's step labels (Fig 17),
* total inference latency and achieved utilization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.hw.config import AcceleratorConfig
from repro.mapping.shapes import (
    classcaps_fc_stage,
    conv_stage,
    full_inference_stages,
    load_stage,
    stage_layer,
)
from repro.perf.cycles import StagePerf, stage_performance


@dataclass
class InferencePerformance:
    """Full-network performance summary (one batch of ``batch`` images)."""

    stages: list[StagePerf]
    clock_mhz: float
    num_pes: int
    batch: int = 1

    @property
    def total_cycles(self) -> int:
        """Cycles for one complete batch."""
        return sum(stage.cycles for stage in self.stages)

    @property
    def total_time_ms(self) -> float:
        """Latency of one batch in milliseconds."""
        return self.total_cycles / self.clock_mhz / 1e3

    @property
    def cycles_per_image(self) -> float:
        """Amortized cycles per image."""
        return self.total_cycles / self.batch

    @property
    def images_per_second(self) -> float:
        """Modeled throughput in images per second."""
        if self.total_cycles == 0:
            return 0.0
        return self.batch * self.clock_mhz * 1e6 / self.total_cycles

    def layer_times_us(self) -> dict[str, float]:
        """Per-layer latency in microseconds (Fig 16 aggregation)."""
        layers: dict[str, float] = {"Conv1": 0.0, "PrimaryCaps": 0.0, "ClassCaps": 0.0}
        for stage in self.stages:
            layers[stage_layer(stage.name)] += stage.time_us(self.clock_mhz)
        layers["Total"] = sum(layers.values())
        return layers

    def stage_times_us(self) -> dict[str, float]:
        """Per-stage latency in microseconds, in execution order."""
        return {stage.name: stage.time_us(self.clock_mhz) for stage in self.stages}

    def utilization(self) -> float:
        """Overall achieved MACs per PE-cycle."""
        total_macs = sum(stage.macs for stage in self.stages)
        if self.total_cycles == 0:
            return 0.0
        return total_macs / (self.total_cycles * self.num_pes)


@dataclass
class CapsAccPerformanceModel:
    """Analytical performance model of CapsAcc running a CapsuleNet.

    Parameters
    ----------
    accelerator:
        Hardware configuration (defaults to the paper's Table II instance).
    network:
        CapsuleNet architecture (defaults to the paper's MNIST network).
    optimized_routing:
        Apply the first-softmax skip (Section V-C).
    conv_policy:
        Convolution mapping policy (see :func:`repro.mapping.shapes.conv_stage`).
    """

    accelerator: AcceleratorConfig = field(default_factory=AcceleratorConfig)
    network: CapsNetConfig = field(default_factory=mnist_capsnet_config)
    optimized_routing: bool = True
    conv_policy: str = "channel_parallel"

    def run(self, batch: int = 1) -> InferencePerformance:
        """Evaluate all stages of one inference pass over a ``batch``.

        With ``batch > 1`` the closed-form model costs the batched
        execution engine's schedule — weight-shared stages stack the batch
        into their stream (amortizing tile loads), per-image-weight routing
        stages repeat — and is validated against the stepped engine by the
        batched equivalence tests.
        """
        stages = full_inference_stages(
            self.network,
            optimized_routing=self.optimized_routing,
            conv_policy=self.conv_policy,
        )
        perf = [
            stage_performance(self.accelerator, stage, batch=batch)
            for stage in stages
        ]
        return InferencePerformance(
            stages=perf,
            clock_mhz=self.accelerator.clock_mhz,
            num_pes=self.accelerator.num_pes,
            batch=batch,
        )

    def routing_step_times_us(self) -> dict[str, float]:
        """Per-routing-step latency with the paper's Fig 17 labels.

        Labels are ``Load, FC, Softmax1, Sum1, Squash1, Update1, ...``; a
        skipped softmax appears at its initialization-transfer cost.
        """
        clock = self.accelerator.clock_mhz
        times: dict[str, float] = {}
        load = stage_performance(self.accelerator, load_stage(self.network))
        times["Load"] = load.time_us(clock)
        fc = stage_performance(self.accelerator, classcaps_fc_stage(self.network))
        times["FC"] = fc.time_us(clock)
        from repro.mapping.shapes import routing_stages

        for stage in routing_stages(self.network, optimized=self.optimized_routing):
            perf = stage_performance(self.accelerator, stage)
            label = stage.name.replace(" (skipped)", "")
            times[label.capitalize()] = perf.time_us(clock)
        return times

    def layer_times_us(self) -> dict[str, float]:
        """Per-layer latency in microseconds (Fig 16)."""
        return self.run().layer_times_us()

    def conv_stage_perf(self, layer: str) -> StagePerf:
        """Performance of a single convolution stage (for ablations)."""
        stage = conv_stage(self.network, layer, policy=self.conv_policy)
        return stage_performance(self.accelerator, stage)
