"""Performance models: CapsAcc cycle model and the GPU baseline.

* :mod:`repro.perf.cycles` — closed-form cycle accounting for mapped
  stages, built on the same formulas as the cycle-stepped simulator
  (exact agreement asserted in tests).
* :mod:`repro.perf.model` — :class:`CapsAccPerformanceModel`, producing the
  per-layer (Fig 16) and per-routing-step (Fig 17) numbers in real time
  units.
* :mod:`repro.perf.stream` — :class:`AnalyticStreamCost`, the closed-form
  cost of the stream-pipelined cross-batch schedule (cold and steady
  state), cross-checked against the scheduler-traced timing.
* :mod:`repro.perf.gpu` / :mod:`repro.perf.kernels` — the framework-op-level
  GPU model substituting the paper's GTX1070 + PyTorch measurements.
* :mod:`repro.perf.calibration` — the single place where digitized paper
  values and calibration constants live.
* :mod:`repro.perf.compare` — speedup computation and paper comparison.
"""

from repro.perf.cycles import StagePerf, stage_performance
from repro.perf.model import CapsAccPerformanceModel, InferencePerformance
from repro.perf.stream import AnalyticStreamCost, stream_crosscheck
from repro.perf.gpu import GpuDeviceProfile, GpuModel, gtx1070_paper_profile, gtx1070_ideal_profile
from repro.perf.kernels import CapsNetGpuWorkload, ImplementationProfile
from repro.perf.compare import SpeedupReport, compare_layers, compare_routing_steps

__all__ = [
    "StagePerf",
    "stage_performance",
    "AnalyticStreamCost",
    "stream_crosscheck",
    "CapsAccPerformanceModel",
    "InferencePerformance",
    "GpuDeviceProfile",
    "GpuModel",
    "gtx1070_paper_profile",
    "gtx1070_ideal_profile",
    "CapsNetGpuWorkload",
    "ImplementationProfile",
    "SpeedupReport",
    "compare_layers",
    "compare_routing_steps",
]
