"""Closed-form cycle model for mapped stages.

Turns the shape-level stage descriptions of :mod:`repro.mapping.shapes`
into cycle counts using exactly the GEMM formulas of
:func:`repro.hw.accelerator.gemm_cycles` (shared code, so the analytical
model and the cycle-stepped simulator cannot drift apart) plus the
activation-unit latencies of :mod:`repro.hw.activation` and bus transfer
costs.  GEMM streaming, activation pipelines and bulk transfers are charged
serially per stage — a conservative model of the control unit's stage
sequencing.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.hw.accelerator import gemm_cycles
from repro.hw.activation import activation_latency, batched_activation_latency
from repro.hw.config import AcceleratorConfig
from repro.hw.stats import CycleStats
from repro.mapping.shapes import StageShape, batch_stage, transfer_cycles


@dataclass
class StagePerf:
    """Cycle-level performance of one mapped stage."""

    name: str
    cycles: int
    gemm_cycles: int
    activation_cycles: int
    transfer_cycles: int
    macs: int

    def time_us(self, clock_mhz: float) -> float:
        """Stage latency in microseconds at the given clock."""
        return self.cycles / clock_mhz

    def utilization(self, num_pes: int) -> float:
        """Achieved MACs per PE-cycle over the stage."""
        if self.cycles == 0:
            return 0.0
        return self.macs / (self.cycles * num_pes)


def stage_performance(
    config: AcceleratorConfig,
    stage: StageShape,
    overlap: bool | None = None,
    batch: int = 1,
) -> StagePerf:
    """Cycle accounting for one stage on a given accelerator configuration.

    With ``batch > 1`` the stage is costed as scheduled by the batched
    execution engine (:func:`repro.mapping.shapes.batch_stage`): weight-
    shared GEMMs stack the batch into their stream, per-image-weight GEMMs
    repeat, and activations/transfers scale linearly.  The returned cycles
    cover the *whole batch*.
    """
    stage = batch_stage(stage, batch)
    gemm_total = 0
    for shape in stage.gemms:
        cycles = gemm_cycles(config, shape.m, shape.k, shape.n, overlap=overlap)
        gemm_total += cycles["total"] * shape.count
    activation_total = 0
    for work in stage.activations:
        units = work.units if work.units is not None else config.cols
        activation_total += batched_activation_latency(
            work.mode, work.n, work.groups, units
        )
    transfer_total = transfer_cycles(stage.transfer_words, config.data_bus_words)
    total = gemm_total + activation_total + transfer_total
    return StagePerf(
        name=stage.name,
        cycles=total,
        gemm_cycles=gemm_total,
        activation_cycles=activation_total,
        transfer_cycles=transfer_total,
        macs=stage.macs,
    )


def stage_accesses(stage: StageShape, config: AcceleratorConfig) -> CycleStats:
    """Estimated buffer traffic of one stage (for the power model).

    Weight-port operands are read once per tile load; data-port operands
    stream once per column tile; feedback operands cost nothing (the
    Fig 10 multiplexers).  Outputs are written back at one word per
    produced value.
    """
    stats = CycleStats()
    for shape in stage.gemms:
        n_tiles = math.ceil(shape.n / config.cols)
        weight_words = shape.k * shape.n * shape.count
        data_words = shape.m * shape.k * n_tiles * shape.count
        out_words = shape.m * shape.n * shape.count
        if shape.weight_source != "feedback":
            stats.add_access(f"{shape.weight_source}.read", weight_words)
        if shape.data_source != "feedback":
            stats.add_access(f"{shape.data_source}.read", data_words)
        stats.add_access("accumulator.write", out_words)
        stats.add_access("data_buffer.write", out_words)
    for work in stage.activations:
        stats.add_access("activation.ops", work.n * work.groups)
    if stage.transfer_words:
        stats.add_access("data_buffer.write", stage.transfer_words)
    stats.mac_count = stage.macs
    return stats


def activation_only_cycles(config: AcceleratorConfig, mode, n: int, groups: int) -> int:
    """Convenience wrapper mirroring the activation unit latency rules."""
    return batched_activation_latency(mode, n, groups, config.cols)


def peak_gemm_cycles(config: AcceleratorConfig, macs: int) -> float:
    """Ideal cycles if every PE did useful work every cycle (lower bound)."""
    return macs / config.num_pes


__all__ = [
    "StagePerf",
    "stage_performance",
    "stage_accesses",
    "activation_only_cycles",
    "peak_gemm_cycles",
    "activation_latency",
]
