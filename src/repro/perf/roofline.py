"""Generic roofline model and arithmetic-intensity analysis.

Supports the paper's Section III motivational claims: CapsuleNet inference
is *compute*-intensive rather than *memory*-intensive (the bottleneck is
squashing, not weight traffic), and an 8 MB on-chip memory suffices for all
parameters.  The roofline also cross-checks the GPU device profiles and
gives the accelerator's theoretical bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.errors import ConfigError
from repro.hw.config import AcceleratorConfig


@dataclass(frozen=True)
class RooflinePoint:
    """One workload on a roofline: operations vs bytes moved."""

    name: str
    operations: float
    bytes_moved: float

    @property
    def arithmetic_intensity(self) -> float:
        """Operations per byte."""
        if self.bytes_moved == 0:
            return float("inf")
        return self.operations / self.bytes_moved


@dataclass(frozen=True)
class RooflineMachine:
    """A machine's compute and bandwidth ceilings."""

    name: str
    peak_ops_per_s: float
    bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.peak_ops_per_s <= 0 or self.bandwidth_bytes_per_s <= 0:
            raise ConfigError("roofline ceilings must be positive")

    @property
    def ridge_intensity(self) -> float:
        """Intensity (ops/byte) at which the roofline flattens."""
        return self.peak_ops_per_s / self.bandwidth_bytes_per_s

    def attainable_ops_per_s(self, intensity: float) -> float:
        """The roofline: min(peak, bandwidth * intensity)."""
        if intensity < 0:
            raise ConfigError("arithmetic intensity cannot be negative")
        return min(self.peak_ops_per_s, self.bandwidth_bytes_per_s * intensity)

    def time_s(self, point: RooflinePoint) -> float:
        """Lower-bound execution time of a workload on this machine."""
        rate = self.attainable_ops_per_s(point.arithmetic_intensity)
        return point.operations / rate

    def is_compute_bound(self, point: RooflinePoint) -> bool:
        """Whether the workload sits right of the ridge."""
        return point.arithmetic_intensity >= self.ridge_intensity


def capsacc_machine(config: AcceleratorConfig | None = None) -> RooflineMachine:
    """Roofline ceilings of a CapsAcc instance.

    Compute ceiling: one MAC per PE per cycle.  Bandwidth ceiling: the two
    16-word/cycle operand ports between the buffers and the array.
    """
    config = config if config is not None else AcceleratorConfig()
    bandwidth = (
        (config.data_bus_words + config.weight_bus_words)
        * (config.data_bits // 8 or 1)
        * config.clock_mhz
        * 1e6
    )
    return RooflineMachine(
        name=f"CapsAcc {config.rows}x{config.cols}",
        peak_ops_per_s=config.peak_macs_per_second,
        bandwidth_bytes_per_s=bandwidth,
    )


def layer_roofline_points(
    config: CapsNetConfig | None = None, bytes_per_value: int = 1
) -> list[RooflinePoint]:
    """MACs and minimum operand traffic per layer (unique values moved once).

    Traffic counts each input, weight and output value exactly once — the
    compulsory traffic a perfect cache would incur, which is the right
    quantity for the compute-vs-memory-intensive question of Section III.
    """
    config = config if config is not None else mnist_capsnet_config()
    points = []
    conv1_out = config.conv1_out_size**2 * config.conv1.out_channels
    points.append(
        RooflinePoint(
            "Conv1",
            operations=conv1_out * config.conv1.in_channels * config.conv1.kernel_size**2,
            bytes_moved=bytes_per_value
            * (config.input_count + config.conv1.parameter_count + conv1_out),
        )
    )
    primary_out = config.num_primary_capsules * config.primary.capsule_dim
    points.append(
        RooflinePoint(
            "PrimaryCaps",
            operations=config.primary_out_size**2
            * config.primary.conv_out_channels
            * config.primary.in_channels
            * config.primary.kernel_size**2,
            bytes_moved=bytes_per_value
            * (conv1_out + config.primary.parameter_count + primary_out),
        )
    )
    u_hat_count = (
        config.num_primary_capsules * config.classcaps.num_classes * config.classcaps.out_dim
    )
    routing_macs = config.classcaps.routing_iterations * u_hat_count + (
        config.classcaps.routing_iterations - 1
    ) * u_hat_count
    points.append(
        RooflinePoint(
            "ClassCaps",
            operations=config.classcaps_weight_count + routing_macs,
            bytes_moved=bytes_per_value
            * (
                primary_out
                + config.classcaps_weight_count
                + u_hat_count
                + config.coupling_coefficient_count
                + config.output_count
            ),
        )
    )
    return points


def network_roofline_point(config: CapsNetConfig | None = None) -> RooflinePoint:
    """The whole network as one roofline point."""
    points = layer_roofline_points(config)
    return RooflinePoint(
        "CapsuleNet",
        operations=sum(p.operations for p in points),
        bytes_moved=sum(p.bytes_moved for p in points),
    )
