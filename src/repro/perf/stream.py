"""Closed-form pipelined stream cost (the analytic side of the pipeline).

:class:`AnalyticStreamCost` prices the stream-pipelined schedule of
:mod:`repro.hw.pipeline` without executing any data: per-batch pipeline
ops are derived from the shape-level stage descriptions of
:mod:`repro.mapping.shapes` (the same source the non-pipelined
:class:`~repro.perf.model.CapsAccPerformanceModel` prices), then run
through the identical stream timing model.  This is the pipelined
counterpart of :class:`~repro.serve.costs.AnalyticBatchCost`: orders of
magnitude faster than probing the execution engine, and kept honest by
:func:`stream_crosscheck` against the scheduler-traced ("stepped")
accounting of :class:`~repro.hw.scheduler.PipelinedStreamScheduler`.

The two sides differ only in their inputs — the analytic ops include the
mapping model's bulk-transfer steps, the scheduler trace reflects the
engine's exact job interleaving — so agreement is tight (<2 %) but not
bit-exact, mirroring the ``AnalyticBatchCost`` / ``ScheduledBatchCost``
relationship established for the non-pipelined path.
"""

from __future__ import annotations

from typing import Sequence

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.errors import ConfigError
from repro.hw.accelerator import plan_tiling
from repro.hw.activation import batched_activation_latency
from repro.hw.config import AcceleratorConfig
from repro.hw.pipeline import (
    DEFAULT_PRESTAGE_DEPTH,
    DEFAULT_WINDOW,
    PipelineOp,
    StreamTiming,
    activation_op,
    cached_stream_timing,
    job_ops,
)
from repro.mapping.shapes import batch_stage, full_inference_stages, transfer_cycles

#: Analytic per-batch op timelines, shared across instances: the
#: expansion is pure in (network, optimized_routing, conv_policy, accel
#: config, batch), so sweep points revisiting the same shapes — every
#: window/prestage setting of one array size, every serving run of one
#: configuration — skip the rebuild.
_ANALYTIC_OPS_CACHE: dict[tuple, list[PipelineOp]] = {}


def clear_analytic_ops_cache() -> None:
    """Drop every memoized analytic op timeline."""
    _ANALYTIC_OPS_CACHE.clear()

#: Stream length used to probe the steady state: long enough for the
#: settled window (see ``StreamTiming.steady_marginal_cycles``) to cover
#: a whole period of the marginal — on some shapes the two in-flight
#: batches alternate roles, so settled marginals oscillate with period
#: two and the steady state is their average (asserted in tests).
PROBE_STREAM_LENGTH = 7


class AnalyticStreamCost:
    """Closed-form cold/steady-state costs of the pipelined stream schedule.

    Parameters
    ----------
    network:
        CapsuleNet architecture (defaults to the paper's MNIST network).
    accel_config:
        Accelerator configuration (array size, FIFO depth, ...).
    optimized_routing:
        Apply the first-softmax skip (paper Section V-C).
    conv_policy:
        Convolution mapping policy (see :func:`repro.mapping.shapes.conv_stage`).
    window / prestage_depth:
        Stream-pipeline parameters (see :mod:`repro.hw.pipeline`).
    """

    def __init__(
        self,
        network: CapsNetConfig | None = None,
        accel_config: AcceleratorConfig | None = None,
        optimized_routing: bool = True,
        conv_policy: str = "channel_parallel",
        window: int = DEFAULT_WINDOW,
        prestage_depth: int = DEFAULT_PRESTAGE_DEPTH,
    ) -> None:
        self.network = network if network is not None else mnist_capsnet_config()
        self._config = accel_config if accel_config is not None else AcceleratorConfig()
        self.optimized_routing = optimized_routing
        self.conv_policy = conv_policy
        self.window = window
        self.prestage_depth = prestage_depth
        self._ops_memo: dict[int, list[PipelineOp]] = {}
        self._cold_memo: dict[int, int] = {}
        self._steady_memo: dict[int, int] = {}

    @property
    def config(self) -> AcceleratorConfig:
        """The accelerator configuration costs are computed for."""
        return self._config

    def batch_ops(self, batch: int) -> list[PipelineOp]:
        """Pipeline ops of one batch, derived from the mapped stage shapes.

        Memoized per instance and module-wide (the expansion is pure in
        the network / mapping policy / accelerator config / batch size).
        """
        if batch < 1:
            raise ConfigError("batch size must be positive")
        if batch not in self._ops_memo:
            key = (
                self.network,
                self.optimized_routing,
                self.conv_policy,
                self._config,
                batch,
            )
            cached = _ANALYTIC_OPS_CACHE.get(key)
            if cached is not None:
                self._ops_memo[batch] = cached
                return cached
            config = self._config
            ops: list[PipelineOp] = []
            stages = full_inference_stages(
                self.network,
                optimized_routing=self.optimized_routing,
                conv_policy=self.conv_policy,
            )
            for stage in stages:
                staged = batch_stage(stage, batch)
                for gemm in staged.gemms:
                    plan = plan_tiling(config, gemm.m, gemm.k, gemm.n)
                    ops.extend(
                        job_ops(
                            config,
                            plan,
                            groups=gemm.count,
                            weight_source=gemm.weight_source,
                            layer=staged.name,
                        )
                    )
                for work in staged.activations:
                    units = work.units if work.units is not None else config.cols
                    ops.append(
                        activation_op(
                            batched_activation_latency(
                                work.mode, work.n, work.groups, units
                            ),
                            layer=staged.name,
                        )
                    )
                if staged.transfer_words:
                    ops.append(
                        activation_op(
                            transfer_cycles(
                                staged.transfer_words, config.data_bus_words
                            ),
                            layer=staged.name,
                        )
                    )
            self._ops_memo[batch] = _ANALYTIC_OPS_CACHE[key] = ops
        return self._ops_memo[batch]

    def stream_timing(self, batch_sizes: Sequence[int]) -> StreamTiming:
        """Pipelined timing of an arbitrary stream of batch sizes.

        Memoized through :func:`repro.hw.pipeline.cached_stream_timing`
        (repeated identical probe streams are bit-identical cache hits).
        """
        ops = [self.batch_ops(size) for size in batch_sizes]
        return cached_stream_timing(
            ops,
            list(batch_sizes),
            window=self.window,
            prestage_depth=self.prestage_depth,
        )

    def cold_cycles(self, batch: int) -> int:
        """Cycles for one batch alone, the pipeline starting empty."""
        if batch not in self._cold_memo:
            self._cold_memo[batch] = self.stream_timing([batch]).finish_cycles
        return self._cold_memo[batch]

    def steady_cycles(self, batch: int) -> int:
        """Steady-state marginal cycles of one batch in a homogeneous stream."""
        if batch not in self._steady_memo:
            timing = self.stream_timing([batch] * PROBE_STREAM_LENGTH)
            self._steady_memo[batch] = timing.steady_marginal_cycles
        return self._steady_memo[batch]

    def cycles_per_image(self, batch: int, steady: bool = True) -> float:
        """Amortized cycles per image (steady-state by default)."""
        cycles = self.steady_cycles(batch) if steady else self.cold_cycles(batch)
        return cycles / batch


def stream_crosscheck(
    scheduled,
    analytic: AnalyticStreamCost,
    batch_sizes: tuple[int, ...] = (1, 4, 8),
    rel_tol: float = 0.02,
) -> dict[int, dict[str, float]]:
    """Compare scheduler-traced stream timing against the closed form.

    ``scheduled`` is a :class:`~repro.hw.scheduler.PipelinedStreamScheduler`
    (duck-typed: anything with ``probe_timing``).  Per batch size, the
    steady-state marginal of a homogeneous probe stream is compared;
    raises :class:`~repro.errors.ConfigError` beyond ``rel_tol`` — the
    guard that keeps the fast analytic path honest.
    """
    report: dict[int, dict[str, float]] = {}
    for batch in batch_sizes:
        exact = scheduled.probe_timing([batch] * PROBE_STREAM_LENGTH).steady_marginal_cycles
        model = analytic.steady_cycles(batch)
        rel = abs(model - exact) / exact
        report[batch] = {
            "scheduled": float(exact),
            "analytic": float(model),
            "rel_error": float(rel),
        }
        if rel > rel_tol:
            raise ConfigError(
                f"analytic stream cost diverges from the scheduler at batch"
                f" {batch}: {model} vs {exact} cycles ({rel:.1%} > {rel_tol:.1%})"
            )
    return report
