"""Digitized paper values and calibration targets.

Single source of truth for every number taken from the paper.  Exact
values come from tables; per-layer / per-step times come from reading the
log-scale bar charts (Figs 8, 9, 16, 17) and are therefore approximate —
they are used only as calibration targets and comparison references, never
inside the simulator itself.
"""

from __future__ import annotations

#: Fig 8 (GPU layer-wise inference time, milliseconds; digitized).
PAPER_GPU_LAYER_MS = {
    "Conv1": 1.0,
    "PrimaryCaps": 2.4,
    "ClassCaps": 20.0,
}

#: Fig 9 (GPU routing step time, microseconds; digitized).  The per-step
#: labels follow the paper's x-axis; values for iterations 2/3 are close to
#: iteration 1 in the figure and are digitized jointly.
PAPER_GPU_STEP_US = {
    "Load": 200.0,
    "FC": 150.0,
    "Softmax": 1000.0,
    "Sum": 1000.0,
    "Squash": 4000.0,
    "Update": 1500.0,
}

#: Fig 16 annotations: CapsAcc speedup over GPU per layer (>1 = CapsAcc
#: faster).  Conv1 is annotated "46% slower".
PAPER_LAYER_SPEEDUP = {
    "Conv1": 1.0 / 1.46,
    "ClassCaps": 12.0,
    "Total": 6.0,
}

#: Fig 17 annotations: CapsAcc speedup over GPU per routing step.
PAPER_STEP_SPEEDUP = {
    "Load": 1.09,
    "FC": 1.0 / 1.14,
    "Softmax": 3.0,
    "Sum": 3.0,
    "Squash": 172.0,
    "Update": 6.0,
}

#: Table II: synthesized accelerator parameters.
PAPER_TABLE2 = {
    "technology_nm": 32,
    "voltage_v": 1.05,
    "area_mm2": 2.90,
    "power_mw": 202.0,
    "clock_mhz": 250.0,
    "bit_width": 8,
    "onchip_memory_mb": 8,
}

#: Table III: per-component area (um^2) and power (mW).
PAPER_TABLE3 = {
    "Accumulator": {"area_um2": 311_961, "power_mw": 22.80},
    "Activation": {"area_um2": 143_045, "power_mw": 5.94},
    "Data Buffer": {"area_um2": 1_332_349, "power_mw": 95.96},
    "Routing Buffer": {"area_um2": 316_226, "power_mw": 22.78},
    "Weight Buffer": {"area_um2": 115_643, "power_mw": 8.34},
    "Systolic Array": {"area_um2": 680_525, "power_mw": 46.09},
    "Other": {"area_um2": 4_330, "power_mw": 0.13},
}

#: Fig 18 breakdowns (percent of total), as annotated in the paper.
PAPER_AREA_BREAKDOWN_PCT = {
    "Accumulator": 11.0,
    "Activation": 5.0,
    "Data Buffer": 46.0,
    "Routing Buffer": 11.0,
    "Weight Buffer": 4.0,
    "Systolic Array": 23.0,
    "Other": 0.2,
}

PAPER_POWER_BREAKDOWN_PCT = {
    "Accumulator": 11.0,
    "Activation": 3.0,
    "Data Buffer": 47.0,
    "Routing Buffer": 11.0,
    "Weight Buffer": 4.0,
    "Systolic Array": 23.0,
    "Other": 0.1,
}

#: Fig 3: peak of the squash derivative (paper-reported coordinates; the
#: analytic values are x = 1/sqrt(3) ~ 0.57735 and y = 3*sqrt(3)/8 = 0.6495).
PAPER_SQUASH_DERIVATIVE_PEAK = (0.5767, 0.6495)


def paper_gpu_total_ms() -> float:
    """Total GPU inference time implied by the digitized Fig 8 values."""
    return sum(PAPER_GPU_LAYER_MS.values())


def paper_capsacc_layer_ms() -> dict[str, float]:
    """CapsAcc layer times implied by Fig 8 values and Fig 16 speedups."""
    implied = {}
    for layer, gpu_ms in PAPER_GPU_LAYER_MS.items():
        if layer in PAPER_LAYER_SPEEDUP:
            implied[layer] = gpu_ms / PAPER_LAYER_SPEEDUP[layer]
    implied["Total"] = paper_gpu_total_ms() / PAPER_LAYER_SPEEDUP["Total"]
    return implied
