"""Framework-op-level GPU performance model (the paper's baseline substitute).

The paper measures CapsuleNet inference on an Nvidia GTX1070 driven by
PyTorch (Section III).  That testbed is unavailable here, so this module
models it: the forward pass is decomposed into the framework operations a
2018-era eager-mode PyTorch implementation issues
(:mod:`repro.perf.kernels`), and each operation costs

``time = framework_overhead + launch_overhead + max(flops / (peak * eff),
bytes / bandwidth)``

The overhead terms dominate the tiny routing ops (a squash over a 10x16
tensor is microseconds of math under milliseconds of dispatch), which is
precisely the bottleneck structure the paper measures in Figs 8-9:
ClassCaps an order of magnitude slower than the convolution layers, with
squashing the dominant routing step.  Device constants come from the
GTX1070 datasheet; the per-kind efficiency factors and overheads are
calibrated once against the digitized paper figures in
:mod:`repro.perf.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class GpuDeviceProfile:
    """A GPU device + framework dispatch model."""

    name: str
    #: Peak single-precision throughput in FLOP/s.
    peak_flops: float
    #: Device memory bandwidth in bytes/s.
    memory_bandwidth: float
    #: Fixed cost per framework operation (Python dispatch, kernel launch,
    #: and the implicit synchronization of 2018-era eager execution).
    op_overhead_s: float
    #: Achieved fraction of peak per kernel kind.
    efficiency: dict = field(
        default_factory=lambda: {
            "conv": 0.02,
            "gemm": 0.10,
            "elementwise": 0.10,
            "reduce": 0.05,
        }
    )

    def kind_efficiency(self, kind: str) -> float:
        """Efficiency factor for a kernel kind."""
        if kind not in self.efficiency:
            raise ConfigError(f"no efficiency factor for kernel kind {kind!r}")
        return self.efficiency[kind]


@dataclass(frozen=True)
class GpuKernel:
    """One framework operation with its arithmetic and memory volume."""

    name: str
    kind: str
    flops: float = 0.0
    bytes: float = 0.0
    count: int = 1


class GpuModel:
    """Evaluates kernel sequences on a device profile."""

    def __init__(self, profile: GpuDeviceProfile) -> None:
        self.profile = profile

    def kernel_time_s(self, kernel: GpuKernel) -> float:
        """Execution time of one kernel batch in seconds."""
        profile = self.profile
        compute = kernel.flops / (profile.peak_flops * profile.kind_efficiency(kernel.kind))
        memory = kernel.bytes / profile.memory_bandwidth
        return kernel.count * (profile.op_overhead_s + max(compute, memory))

    def sequence_time_s(self, kernels: list[GpuKernel]) -> float:
        """Total serialized execution time of a kernel sequence."""
        return sum(self.kernel_time_s(kernel) for kernel in kernels)

    def sequence_time_us(self, kernels: list[GpuKernel]) -> float:
        """Total time in microseconds."""
        return self.sequence_time_s(kernels) * 1e6


def scale_kernels_to_batch(kernels: list[GpuKernel], batch: int) -> list[GpuKernel]:
    """Scale a batch-1 kernel list to a larger batch size.

    Arithmetic and memory volumes grow with the batch while the per-op
    dispatch overhead does not — the mechanism by which batching amortizes
    the GPU's fixed costs (the paper measures batch 1, the embedded
    inference case; the batching experiment explores the crossover).
    """
    if batch < 1:
        raise ConfigError(f"batch size must be positive, got {batch}")
    return [
        GpuKernel(
            name=kernel.name,
            kind=kernel.kind,
            flops=kernel.flops * batch,
            bytes=kernel.bytes * batch,
            count=kernel.count,
        )
        for kernel in kernels
    ]


def gtx1070_paper_profile() -> GpuDeviceProfile:
    """GTX1070 + eager PyTorch, calibrated to the paper's Figs 8-9.

    6.5 TFLOP/s peak, 256 GB/s; the 80 us per-op overhead reflects the
    measured behaviour of batch-1 eager inference with implicit syncs on a
    2018 software stack (the paper's ClassCaps layer, dominated by tiny
    routing ops, runs in the tens of milliseconds — hundreds of ops at
    ~100 us each).
    """
    return GpuDeviceProfile(
        name="GTX1070 (paper-calibrated)",
        peak_flops=6.5e12,
        memory_bandwidth=256e9,
        op_overhead_s=80e-6,
        efficiency={"conv": 0.02, "gemm": 0.10, "elementwise": 0.10, "reduce": 0.05},
    )


def gtx1070_ideal_profile() -> GpuDeviceProfile:
    """Textbook roofline GTX1070 (no framework overhead; ablation only).

    Used to separate the *architectural* comparison from the *software
    stack* comparison: against this idealized baseline the accelerator's
    advantage on small routing ops shrinks, which quantifies how much of
    the paper's measured speedup comes from GPU dispatch overheads.
    """
    return GpuDeviceProfile(
        name="GTX1070 (ideal roofline)",
        peak_flops=6.5e12,
        memory_bandwidth=256e9,
        op_overhead_s=5e-6,
        efficiency={"conv": 0.30, "gemm": 0.50, "elementwise": 0.50, "reduce": 0.30},
    )
