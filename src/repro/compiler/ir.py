"""Typed graph IR for the accelerator compiler.

A :class:`Graph` is a small dataflow DAG: :class:`TensorNode`\\ s (per-image
shape + fixed-point format) connected by :class:`OpNode`\\ s drawn from a
fixed op vocabulary (``conv2d``, ``gemm``, ``caps_gemm``, ``grouped_gemm``,
``relu``, ``squash``, ``softmax``, ``route``, ``requant``, ``reshape``,
``transpose``, ``add``, ``norm``, ``argmax``).  Shapes are **per image** —
the batch dimension is implicit and added by the executor.

:meth:`Graph.validate` raises :class:`~repro.errors.GraphError` for every
malformation the lowering pass would otherwise trip over: duplicate
producers, dangling tensors, unknown params, shape mismatches and cycles.
:meth:`Graph.topo_sort` returns ops in dependency order (Kahn's algorithm).
Graphs round-trip through JSON (:meth:`Graph.to_json` /
:func:`graph_from_json`) so networks really are data — the CLI can compile
a graph file that never touched Python.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any

from repro.errors import GraphError
from repro.fixedpoint.formats import QFormat


@dataclass(frozen=True)
class TensorNode:
    """One value in the graph: a per-image shape plus its raw format."""

    name: str
    shape: tuple[int, ...]
    fmt: QFormat


@dataclass(frozen=True)
class ParamSpec:
    """A learned parameter: shape and the format its raw codes use."""

    name: str
    shape: tuple[int, ...]
    fmt: QFormat


@dataclass
class OpNode:
    """One operation: named inputs/outputs plus kind-specific attributes."""

    name: str
    kind: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    attrs: dict[str, Any] = field(default_factory=dict)


def _conv_out(size: int, kernel: int, stride: int) -> int:
    return (size - kernel) // stride + 1


def _infer_conv2d(op: OpNode, ins: list[tuple[int, ...]], params, _g) -> list[tuple[int, ...]]:
    (shape,) = ins
    if len(shape) != 3:
        raise GraphError(f"{op.name}: conv2d input must be (C, H, W), got {shape}")
    weight = params[op.attrs["weight"]]
    if len(weight.shape) != 4 or weight.shape[2] != weight.shape[3]:
        raise GraphError(f"{op.name}: conv2d weight must be (O, C, K, K)")
    out_ch, in_ch, kernel, _ = weight.shape
    if in_ch != shape[0]:
        raise GraphError(
            f"{op.name}: input has {shape[0]} channels, weight expects {in_ch}"
        )
    stride = int(op.attrs.get("stride", 1))
    if shape[1] < kernel or shape[2] < kernel:
        raise GraphError(f"{op.name}: input {shape[1:]} smaller than kernel {kernel}")
    oh = _conv_out(shape[1], kernel, stride)
    ow = _conv_out(shape[2], kernel, stride)
    return [(oh * ow, out_ch)]


def _infer_gemm(op: OpNode, ins, params, _g):
    (shape,) = ins
    if len(shape) != 2:
        raise GraphError(f"{op.name}: gemm input must be (M, K), got {shape}")
    weight = params[op.attrs["weight"]]
    wshape = weight.shape
    if len(wshape) != 2:
        raise GraphError(f"{op.name}: gemm weight must be 2-D")
    if op.attrs.get("transpose", False):
        wshape = (wshape[1], wshape[0])
    if wshape[0] != shape[1]:
        raise GraphError(
            f"{op.name}: gemm K mismatch (data {shape}, weight {weight.shape})"
        )
    return [(shape[0], wshape[1])]


def _infer_caps_gemm(op: OpNode, ins, params, _g):
    (shape,) = ins
    weight = params[op.attrs["weight"]]
    if len(shape) != 2:
        raise GraphError(f"{op.name}: caps_gemm input must be (num_in, in_dim)")
    if len(weight.shape) != 4:
        raise GraphError(
            f"{op.name}: caps_gemm weight must be (num_in, num_out, out_dim, in_dim)"
        )
    num_in, num_out, out_dim, in_dim = weight.shape
    if (num_in, in_dim) != shape:
        raise GraphError(
            f"{op.name}: caps_gemm shape mismatch (data {shape}, weight {weight.shape})"
        )
    return [(num_in, num_out, out_dim)]


def _infer_grouped_gemm(op: OpNode, ins, params, _g):
    data, weights = ins
    if len(data) != 3 or len(weights) != 3:
        raise GraphError(f"{op.name}: grouped_gemm operands must be (G, M, K)/(G, K, N)")
    if data[0] != weights[0] or data[2] != weights[1]:
        raise GraphError(
            f"{op.name}: grouped_gemm shape mismatch (data {data}, weights {weights})"
        )
    return [(data[0], data[1], weights[2])]


def _infer_elementwise(op: OpNode, ins, _params, _g):
    return [ins[0]]


def _infer_add(op: OpNode, ins, _params, _g):
    a, b = ins
    if a != b:
        raise GraphError(f"{op.name}: add operands differ in shape ({a} vs {b})")
    return [a]


def _infer_reshape(op: OpNode, ins, _params, _g):
    (shape,) = ins
    target = tuple(int(d) for d in op.attrs["shape"])
    if math.prod(shape) != math.prod(target):
        raise GraphError(
            f"{op.name}: cannot reshape {shape} ({math.prod(shape)} elems)"
            f" to {target} ({math.prod(target)} elems)"
        )
    return [target]


def _infer_transpose(op: OpNode, ins, _params, _g):
    (shape,) = ins
    perm = tuple(int(p) for p in op.attrs["perm"])
    if sorted(perm) != list(range(len(shape))):
        raise GraphError(f"{op.name}: perm {perm} invalid for rank-{len(shape)} input")
    return [tuple(shape[p] for p in perm)]


def _infer_route(op: OpNode, ins, _params, _g):
    (shape,) = ins
    if len(shape) != 3:
        raise GraphError(
            f"{op.name}: route input must be (num_in, num_out, out_dim), got {shape}"
        )
    num_in, num_out, out_dim = shape
    if int(op.attrs.get("iterations", 1)) < 1:
        raise GraphError(f"{op.name}: route needs at least one iteration")
    return [(num_out, out_dim), (num_in, num_out)]


def _infer_reduce_last(op: OpNode, ins, _params, _g):
    (shape,) = ins
    if not shape:
        raise GraphError(f"{op.name}: cannot reduce a scalar")
    return [shape[:-1]]


#: kind -> (arity, n_outputs, shape-inference function)
OP_KINDS: dict[str, tuple[int, int, Any]] = {
    "conv2d": (1, 1, _infer_conv2d),
    "gemm": (1, 1, _infer_gemm),
    "caps_gemm": (1, 1, _infer_caps_gemm),
    "grouped_gemm": (2, 1, _infer_grouped_gemm),
    "relu": (1, 1, _infer_elementwise),
    "requant": (1, 1, _infer_elementwise),
    "squash": (1, 1, _infer_elementwise),
    "softmax": (1, 1, _infer_elementwise),
    "add": (2, 1, _infer_add),
    "reshape": (1, 1, _infer_reshape),
    "transpose": (1, 1, _infer_transpose),
    "route": (1, 2, _infer_route),
    "norm": (1, 1, _infer_reduce_last),
    "argmax": (1, 1, _infer_reduce_last),
}


@dataclass
class Graph:
    """A validated dataflow graph over named tensors."""

    name: str
    tensors: dict[str, TensorNode] = field(default_factory=dict)
    params: dict[str, ParamSpec] = field(default_factory=dict)
    ops: list[OpNode] = field(default_factory=list)
    inputs: tuple[str, ...] = ()
    #: output alias -> tensor name (aliases become ``BatchResult.outputs`` keys)
    outputs: dict[str, str] = field(default_factory=dict)

    # ---- structure -----------------------------------------------------------

    def producers(self) -> dict[str, OpNode]:
        """Map every produced tensor to its (unique) producing op."""
        produced: dict[str, OpNode] = {}
        for op in self.ops:
            for out in op.outputs:
                if out in produced:
                    raise GraphError(
                        f"tensor {out!r} produced by both"
                        f" {produced[out].name!r} and {op.name!r}"
                    )
                if out in self.inputs:
                    raise GraphError(f"graph input {out!r} cannot be produced by {op.name!r}")
                produced[out] = op
        return produced

    def topo_sort(self) -> list[OpNode]:
        """Ops in dependency order; raises :class:`GraphError` on cycles."""
        produced = self.producers()
        indegree: dict[str, int] = {}
        consumers: dict[str, list[OpNode]] = {}
        for op in self.ops:
            deps = [t for t in op.inputs if t in produced]
            indegree[op.name] = len(deps)
            for t in deps:
                consumers.setdefault(t, []).append(op)
        ready = [op for op in self.ops if indegree[op.name] == 0]
        order: list[OpNode] = []
        while ready:
            op = ready.pop(0)
            order.append(op)
            for out in op.outputs:
                for consumer in consumers.get(out, ()):
                    indegree[consumer.name] -= 1
                    if indegree[consumer.name] == 0:
                        ready.append(consumer)
        if len(order) != len(self.ops):
            stuck = sorted(name for name, deg in indegree.items() if deg > 0)
            raise GraphError(f"graph {self.name!r} contains a cycle through {stuck}")
        return order

    def validate(self) -> None:
        """Raise :class:`GraphError` on any structural or shape problem."""
        names = set()
        for op in self.ops:
            if op.name in names:
                raise GraphError(f"duplicate op name {op.name!r}")
            names.add(op.name)
            if op.kind not in OP_KINDS:
                raise GraphError(f"{op.name}: unknown op kind {op.kind!r}")
        for name in self.inputs:
            if name not in self.tensors:
                raise GraphError(f"graph input {name!r} has no tensor node")
        produced = self.producers()
        for op in self.ops:
            arity, n_out, _ = OP_KINDS[op.kind]
            if len(op.inputs) != arity:
                raise GraphError(
                    f"{op.name}: {op.kind} takes {arity} input(s), got {len(op.inputs)}"
                )
            if len(op.outputs) != n_out:
                raise GraphError(
                    f"{op.name}: {op.kind} yields {n_out} output(s), got {len(op.outputs)}"
                )
            for tensor in (*op.inputs, *op.outputs):
                if tensor not in self.tensors:
                    raise GraphError(f"{op.name}: unknown tensor {tensor!r}")
            for tensor in op.inputs:
                if tensor not in produced and tensor not in self.inputs:
                    raise GraphError(
                        f"{op.name}: input tensor {tensor!r} is dangling"
                        " (no producer and not a graph input)"
                    )
            weight = op.attrs.get("weight")
            if weight is not None and weight not in self.params:
                raise GraphError(f"{op.name}: unknown param {weight!r}")
            bias = op.attrs.get("bias")
            if bias is not None and bias not in self.params:
                raise GraphError(f"{op.name}: unknown param {bias!r}")
        for alias, tensor in self.outputs.items():
            if tensor not in self.tensors:
                raise GraphError(f"output {alias!r} references unknown tensor {tensor!r}")
        # Shape checks run in topo order (which also detects cycles).
        for op in self.topo_sort():
            _, _, infer = OP_KINDS[op.kind]
            in_shapes = [self.tensors[t].shape for t in op.inputs]
            expected = infer(op, in_shapes, self.params, self)
            for tensor, shape in zip(op.outputs, expected):
                declared = self.tensors[tensor].shape
                if tuple(declared) != tuple(shape):
                    raise GraphError(
                        f"{op.name}: output {tensor!r} declared {declared},"
                        f" inferred {tuple(shape)}"
                    )

    # ---- JSON round-trip -----------------------------------------------------

    def to_json(self) -> str:
        """Serialize the graph (shapes, formats, ops, attrs) to JSON."""

        def fmt(q: QFormat) -> list:
            return [q.total_bits, q.frac_bits, bool(q.signed)]

        doc = {
            "name": self.name,
            "tensors": [
                {"name": t.name, "shape": list(t.shape), "fmt": fmt(t.fmt)}
                for t in self.tensors.values()
            ],
            "params": [
                {"name": p.name, "shape": list(p.shape), "fmt": fmt(p.fmt)}
                for p in self.params.values()
            ],
            "ops": [
                {
                    "name": op.name,
                    "kind": op.kind,
                    "inputs": list(op.inputs),
                    "outputs": list(op.outputs),
                    "attrs": op.attrs,
                }
                for op in self.ops
            ],
            "inputs": list(self.inputs),
            "outputs": self.outputs,
        }
        return json.dumps(doc, indent=2)


def graph_from_json(text: str) -> Graph:
    """Rebuild a :class:`Graph` from :meth:`Graph.to_json` output."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphError(f"invalid graph JSON: {exc}") from exc

    def fmt(spec) -> QFormat:
        total, frac, signed = spec
        return QFormat(total_bits=int(total), frac_bits=int(frac), signed=bool(signed))

    def attr(value: Any) -> Any:
        # JSON has no tuples; builder-produced attrs (shape, perm) use them.
        return tuple(value) if isinstance(value, list) else value

    try:
        graph = Graph(
            name=doc["name"],
            tensors={
                t["name"]: TensorNode(t["name"], tuple(int(d) for d in t["shape"]), fmt(t["fmt"]))
                for t in doc["tensors"]
            },
            params={
                p["name"]: ParamSpec(p["name"], tuple(int(d) for d in p["shape"]), fmt(p["fmt"]))
                for p in doc["params"]
            },
            ops=[
                OpNode(
                    name=o["name"],
                    kind=o["kind"],
                    inputs=tuple(o["inputs"]),
                    outputs=tuple(o["outputs"]),
                    attrs={k: attr(v) for k, v in o.get("attrs", {}).items()},
                )
                for o in doc["ops"]
            ],
            inputs=tuple(doc["inputs"]),
            outputs=dict(doc["outputs"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphError(f"malformed graph document: {exc}") from exc
    graph.validate()
    return graph


class GraphBuilder:
    """Incremental graph construction with shape inference.

    Builders declare the input and params, then chain ops — output shapes
    come from the same inference functions validation uses, so a builder
    cannot construct a shape-inconsistent graph.
    """

    def __init__(self, name: str) -> None:
        self.graph = Graph(name=name)
        self._counter = 0

    def input(self, name: str, shape: tuple[int, ...], fmt: QFormat) -> str:
        self.graph.tensors[name] = TensorNode(name, tuple(shape), fmt)
        self.graph.inputs = (*self.graph.inputs, name)
        return name

    def param(self, name: str, shape: tuple[int, ...], fmt: QFormat) -> str:
        self.graph.params[name] = ParamSpec(name, tuple(shape), fmt)
        return name

    def op(
        self,
        kind: str,
        inputs: str | tuple[str, ...],
        out_fmt: QFormat | tuple[QFormat, ...],
        name: str | None = None,
        **attrs: Any,
    ) -> str | tuple[str, ...]:
        """Append an op; returns its output tensor name(s)."""
        if isinstance(inputs, str):
            inputs = (inputs,)
        if name is None:
            self._counter += 1
            name = f"{kind}_{self._counter}"
        _, n_out, infer = OP_KINDS[kind]
        op = OpNode(name=name, kind=kind, inputs=tuple(inputs), outputs=(), attrs=attrs)
        shapes = infer(op, [self.graph.tensors[t].shape for t in inputs], self.graph.params, self.graph)
        fmts = (out_fmt,) * n_out if isinstance(out_fmt, QFormat) else tuple(out_fmt)
        outputs = []
        for index, (shape, fmt) in enumerate(zip(shapes, fmts)):
            tensor = name if n_out == 1 else f"{name}.{index}"
            self.graph.tensors[tensor] = TensorNode(tensor, tuple(shape), fmt)
            outputs.append(tensor)
        op.outputs = tuple(outputs)
        self.graph.ops.append(op)
        return outputs[0] if n_out == 1 else tuple(outputs)

    def output(self, alias: str, tensor: str) -> None:
        self.graph.outputs[alias] = tensor

    def build(self) -> Graph:
        self.graph.validate()
        return self.graph
