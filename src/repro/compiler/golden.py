"""Golden-model evaluation of IR graphs, and compiled-vs-golden checking.

:func:`evaluate_graph` interprets a validated graph per image directly from
its op semantics — integer matmuls with 25-bit saturating accumulation, the
hardware LUT activations, requantization at every annotated format edge —
**without** going through the ISA, the lowering, or the accelerator engines.
It is the compiler's independent reference: :func:`check_network` runs a
compiled program through :class:`~repro.compiler.executor.StreamExecutor`
and asserts every stored output is bit-identical to the interpretation
(and, for CapsNet-architecture entries, to
:class:`~repro.capsnet.quantized.QuantizedCapsuleNet` itself).
"""

from __future__ import annotations

import numpy as np

from repro.capsnet.hwops import (
    HardwareLuts,
    QuantizedFormats,
    hw_norm,
    hw_relu,
    hw_softmax,
    hw_squash,
    quantized_conv2d,
)
from repro.compiler.ir import Graph
from repro.errors import CompileError, ShapeError
from repro.fixedpoint.arith import requantize, saturate_raw
from repro.fixedpoint.quantize import to_raw


def evaluate_graph(
    graph: Graph,
    params: dict[str, np.ndarray],
    image: np.ndarray,
    formats: QuantizedFormats | None = None,
    luts: HardwareLuts | None = None,
) -> dict[str, np.ndarray]:
    """Interpret ``graph`` on one already-quantized raw image.

    Returns ``{output alias: raw array}``.  ``image`` must match the graph
    input's per-image shape exactly (no batch axis).
    """
    fmts = formats if formats is not None else QuantizedFormats()
    if luts is None:
        luts = HardwareLuts.build(fmts)
    if len(graph.inputs) != 1:
        raise CompileError(f"graph {graph.name!r} must have exactly one input")
    in_name = graph.inputs[0]
    image = np.asarray(image, dtype=np.int64)
    if image.shape != graph.tensors[in_name].shape:
        raise ShapeError(
            f"image shape {image.shape} != {graph.tensors[in_name].shape}"
        )
    env: dict[str, np.ndarray] = {in_name: image}

    def fmt(tensor: str):
        return graph.tensors[tensor].fmt

    for op in graph.topo_sort():
        kind = op.kind
        attrs = op.attrs
        if kind == "conv2d":
            x = env[op.inputs[0]]
            w = params[attrs["weight"]]
            bias = params[attrs["bias"]] if attrs.get("bias") else None
            acc_fmt = fmts.acc(fmt(op.inputs[0]), graph.params[attrs["weight"]].fmt)
            conv = quantized_conv2d(x, w, bias, attrs["stride"], acc_fmt)
            out = conv.reshape(conv.shape[0], -1).T  # (oh*ow, O)
            if fmt(op.outputs[0]) != acc_fmt:
                out = requantize(out, acc_fmt, fmt(op.outputs[0]))
            env[op.outputs[0]] = out
        elif kind == "gemm":
            x = env[op.inputs[0]]
            w = np.asarray(params[attrs["weight"]], dtype=np.int64)
            if attrs.get("transpose", False):
                w = w.T
            acc_fmt = fmts.acc(fmt(op.inputs[0]), graph.params[attrs["weight"]].fmt)
            acc = saturate_raw(x @ w, acc_fmt)
            if fmt(op.outputs[0]) != acc_fmt:
                acc = requantize(acc, acc_fmt, fmt(op.outputs[0]))
            env[op.outputs[0]] = acc
        elif kind == "caps_gemm":
            x = env[op.inputs[0]]
            w = params[attrs["weight"]]
            acc_fmt = fmts.acc(fmt(op.inputs[0]), graph.params[attrs["weight"]].fmt)
            acc = saturate_raw(np.einsum("ijod,id->ijo", w, x, dtype=np.int64), acc_fmt)
            env[op.outputs[0]] = requantize(acc, acc_fmt, fmt(op.outputs[0]))
        elif kind == "grouped_gemm":
            data = env[op.inputs[0]]
            weights = env[op.inputs[1]]
            acc_fmt = fmts.acc(fmt(op.inputs[0]), fmt(op.inputs[1]))
            acc = saturate_raw(
                np.einsum("gmk,gkn->gmn", data, weights, dtype=np.int64), acc_fmt
            )
            if fmt(op.outputs[0]) != acc_fmt:
                acc = requantize(acc, acc_fmt, fmt(op.outputs[0]))
            env[op.outputs[0]] = acc
        elif kind == "relu":
            env[op.outputs[0]] = requantize(
                hw_relu(env[op.inputs[0]]), fmt(op.inputs[0]), fmt(op.outputs[0])
            )
        elif kind == "requant":
            env[op.outputs[0]] = requantize(
                env[op.inputs[0]], fmt(op.inputs[0]), fmt(op.outputs[0])
            )
        elif kind == "squash":
            env[op.outputs[0]] = hw_squash(
                env[op.inputs[0]], fmt(op.inputs[0]), luts, fmts
            )
        elif kind == "softmax":
            env[op.outputs[0]] = hw_softmax(env[op.inputs[0]], luts, fmts, axis=-1)
        elif kind == "add":
            env[op.outputs[0]] = saturate_raw(
                env[op.inputs[0]] + env[op.inputs[1]], fmt(op.outputs[0])
            )
        elif kind == "reshape":
            env[op.outputs[0]] = env[op.inputs[0]].reshape(tuple(attrs["shape"]))
        elif kind == "transpose":
            env[op.outputs[0]] = env[op.inputs[0]].transpose(tuple(attrs["perm"]))
        elif kind == "route":
            v, c = _route(
                env[op.inputs[0]],
                attrs["iterations"],
                attrs.get("optimized", True),
                fmts,
                luts,
            )
            env[op.outputs[0]] = v
            env[op.outputs[1]] = c
        elif kind == "norm":
            _, sumsq = hw_norm(env[op.inputs[0]], fmt(op.inputs[0]), luts, fmts)
            env[op.outputs[0]] = sumsq
        elif kind == "argmax":
            env[op.outputs[0]] = np.argmax(env[op.inputs[0]], axis=-1)
        else:  # pragma: no cover - validate() rejects unknown kinds
            raise CompileError(f"golden interpreter: unknown op kind {kind!r}")

    return {alias: env[tensor] for alias, tensor in graph.outputs.items()}


def _route(u_hat, iterations, optimized, fmts, luts):
    """Routing-by-agreement, mirroring the quantized golden model."""
    num_in, num_out, _ = u_hat.shape
    sum_acc_fmt = fmts.acc(fmts.caps_data, fmts.coupling)
    upd_acc_fmt = fmts.acc(fmts.caps_data, fmts.caps_data)
    b_raw = np.zeros((num_in, num_out), dtype=np.int64)
    # The optimized first-iteration skip is exact: the hardware softmax of
    # an all-zero logit row IS the uniform coupling constant.
    c_raw = hw_softmax(b_raw, luts, fmts, axis=-1)
    v_raw = np.zeros((num_out, u_hat.shape[2]), dtype=np.int64)
    for iteration in range(1, iterations + 1):
        if iteration > 1:
            c_raw = hw_softmax(b_raw, luts, fmts, axis=-1)
        s_acc = saturate_raw(
            np.einsum("ij,ijo->jo", c_raw, u_hat, dtype=np.int64), sum_acc_fmt
        )
        s_raw = requantize(s_acc, sum_acc_fmt, fmts.primary_preact)
        v_raw = hw_squash(s_raw, fmts.primary_preact, luts, fmts)
        if iteration < iterations:
            agree = saturate_raw(
                np.einsum("ijo,jo->ij", u_hat, v_raw, dtype=np.int64), upd_acc_fmt
            )
            delta = requantize(agree, upd_acc_fmt, fmts.logits)
            b_raw = saturate_raw(b_raw + delta, fmts.logits)
    return v_raw, c_raw


def check_network(network, images, engine: str = "fast") -> dict:
    """Assert a compiled network's execution matches its golden interpretation.

    Runs the compiled program on ``images`` through the stream executor and
    compares **every stored output** bitwise against per-image graph
    interpretation; for CapsNet entries additionally checks predictions
    against the quantized golden model's :meth:`predict_batch`.  Raises
    :class:`~repro.errors.CompileError` on the first mismatch; returns a
    small summary dict when everything matches.
    """
    from repro.compiler.executor import StreamExecutor
    from repro.compiler.zoo import as_compiled

    net = as_compiled(network)
    executor = StreamExecutor(
        net.program, net.params, net.formats, luts=net.luts, engine=engine
    )
    images = np.asarray(images)
    if images.ndim == 3 and net.input_shape[0] == 1:
        images = images[:, np.newaxis]
    result = executor.run_batch(images)
    raw = to_raw(images, net.program.input_fmt)
    checked = 0
    for index in range(images.shape[0]):
        golden = evaluate_graph(
            net.graph, net.params, raw[index], net.formats, net.luts
        )
        for alias, expected in golden.items():
            got = result.outputs[alias][index]
            if got.shape != expected.shape or not np.array_equal(got, expected):
                raise CompileError(
                    f"{net.name}: output {alias!r} of image {index} diverges "
                    f"from the golden interpretation"
                )
            checked += 1
    if net.qnet is not None and net.config is not None and "res_w" not in net.params:
        golden_preds = net.qnet.predict_batch(images)
        if not np.array_equal(result.predictions, golden_preds):
            raise CompileError(
                f"{net.name}: compiled predictions diverge from the "
                "quantized golden model"
            )
    return {
        "network": net.name,
        "images": int(images.shape[0]),
        "outputs_checked": checked,
        "predictions": result.predictions.tolist(),
    }
