"""repro.compiler: a graph→ISA compiler that makes networks data.

The compiler stack has four layers:

* :mod:`repro.compiler.ir` — a tiny typed graph IR (tensor nodes + op
  nodes) with validation, shape inference and topological sort;
* :mod:`repro.compiler.isa` — the accelerator instruction set; a compiled
  :class:`Program` is a flat stream with explicit weight-tile reuse;
* :mod:`repro.compiler.lower` — the lowering pass, :func:`compile_graph`;
* :mod:`repro.compiler.executor` — bit-accurate batched execution with
  the legacy scheduler's exact cycle recording;

plus :mod:`repro.compiler.golden` (independent graph interpretation and
golden-equivalence checking), :mod:`repro.compiler.cost` (closed-form
pricing of compiled streams for serving/sweeps/energy) and
:mod:`repro.compiler.zoo` (the model zoo of servable networks).
"""

from repro.compiler.cost import (
    program_batch_cycles,
    program_events,
    program_ops,
    program_stats,
    program_steady_cycles,
    program_stream_timing,
)
from repro.compiler.executor import StreamExecutor
from repro.compiler.golden import check_network, evaluate_graph
from repro.compiler.ir import (
    Graph,
    GraphBuilder,
    OpNode,
    ParamSpec,
    TensorNode,
    graph_from_json,
)
from repro.compiler.isa import Instruction, Opcode, Program, program_from_json
from repro.compiler.lower import compile_graph
from repro.compiler.zoo import (
    CompiledNetwork,
    as_compiled,
    capsnet_graph,
    cifar_capsnet_config,
    clear_program_cache,
    cnn_graph,
    compile_qnet,
    get_network,
    mlp_graph,
    mnist_capsnet_graph,
    zoo_names,
)

__all__ = [
    "CompiledNetwork",
    "Graph",
    "GraphBuilder",
    "Instruction",
    "Opcode",
    "OpNode",
    "ParamSpec",
    "Program",
    "StreamExecutor",
    "TensorNode",
    "as_compiled",
    "capsnet_graph",
    "check_network",
    "cifar_capsnet_config",
    "clear_program_cache",
    "cnn_graph",
    "compile_graph",
    "compile_qnet",
    "evaluate_graph",
    "get_network",
    "graph_from_json",
    "mlp_graph",
    "mnist_capsnet_graph",
    "program_batch_cycles",
    "program_events",
    "program_from_json",
    "program_ops",
    "program_stats",
    "program_steady_cycles",
    "program_stream_timing",
    "zoo_names",
]
