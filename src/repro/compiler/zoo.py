"""The model zoo: networks as data, ready to compile and serve.

Every zoo entry is a :class:`CompiledNetwork` — a validated IR graph, its
compiled instruction stream, raw fixed-point parameters and the LUT ROMs —
which both schedulers and the serving stack consume directly.  Entries:

==========  ==================================================================
``mnist``   the paper's MNIST CapsNet (identical bits to
            :class:`~repro.capsnet.quantized.QuantizedCapsuleNet`)
``tiny``    the reduced CapsNet used by fast tests and smoke benchmarks
``cifar``   a CIFAR/SVHN-shape capsule network (32x32x3 input, 10 classes)
``mnist-res``/``tiny-res``  deeper residual capsule variants (MoCapsNet
            style): a 1x1-conv residual block with a saturating skip-add
            between Conv1 and PrimaryCaps
``mlp``     a two-layer fully-connected baseline (784-100-10)
``cnn``     a small conv + FC baseline
==========  ==================================================================

CapsNet entries share the exact raw weight bits of their
:class:`QuantizedCapsuleNet` twin (same pseudo-trained weights, same
quantization), so golden equivalence is testable end to end.  Baseline and
residual parameters are deterministic fan-in-scaled pseudo-trained weights,
like :func:`repro.capsnet.weights.pseudo_trained_weights`.

Programs are memoized per ``(config, optimized_routing, formats)`` — the
instruction stream is shape-driven, so every scheduler/serving rebuild
reuses the settled compilation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.capsnet.config import (
    CapsNetConfig,
    custom_capsnet_config,
    mnist_capsnet_config,
    tiny_capsnet_config,
)
from repro.capsnet.hwops import HardwareLuts, QuantizedFormats
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.compiler.ir import Graph, GraphBuilder
from repro.compiler.isa import Program
from repro.compiler.lower import compile_graph
from repro.errors import ConfigError
from repro.fixedpoint.formats import QFormat
from repro.fixedpoint.quantize import to_raw


@dataclass
class CompiledNetwork:
    """A servable network: graph, program, parameters and ROMs."""

    name: str
    graph: Graph
    program: Program
    #: Raw ``int64`` parameter arrays, keyed by the graph's param names.
    params: dict[str, np.ndarray]
    formats: QuantizedFormats
    luts: HardwareLuts
    #: Per-image input shape ``(C, H, W)``.
    input_shape: tuple[int, ...]
    num_classes: int
    #: Hashable shape-level identity for cycle/timeline caches (parameters
    #: do not affect scheduling, so they are deliberately not part of it).
    key: tuple = ()
    #: Set for CapsNet-architecture entries (``None`` for baselines).
    config: CapsNetConfig | None = None
    qnet: QuantizedCapsuleNet | None = field(default=None, repr=False)


# ---- graph builders ----------------------------------------------------------


def capsnet_graph(
    config: CapsNetConfig,
    formats: QuantizedFormats | None = None,
    optimized_routing: bool = True,
    residual: bool = False,
    name: str = "capsnet",
) -> Graph:
    """The CapsNet layer DAG (optionally with one residual conv block)."""
    fmts = formats if formats is not None else QuantizedFormats()
    b = GraphBuilder(name)
    conv1 = config.conv1
    x = b.input("image", (conv1.in_channels, config.image_size, config.image_size), fmts.input)

    conv1_acc = fmts.acc(fmts.input, fmts.conv1_weight)
    b.param("conv1_w", (conv1.out_channels, conv1.in_channels, conv1.kernel_size, conv1.kernel_size), fmts.conv1_weight)
    b.param("conv1_b", (conv1.out_channels,), conv1_acc)
    acc = b.op(
        "conv2d", x, conv1_acc, name="conv1",
        weight="conv1_w", bias="conv1_b", stride=conv1.stride, layer="conv1",
    )
    relu = b.op("relu", acc, fmts.conv1_out, name="conv1_relu", layer="conv1")
    size = config.conv1_out_size
    fmap = b.op(
        "reshape",
        b.op("transpose", relu, fmts.conv1_out, name="conv1_t", perm=(1, 0)),
        fmts.conv1_out,
        name="conv1_fmap",
        shape=(conv1.out_channels, size, size),
    )
    if residual:
        res_acc = fmts.acc(fmts.conv1_out, fmts.conv1_weight)
        b.param("res_w", (conv1.out_channels, conv1.out_channels, 1, 1), fmts.conv1_weight)
        b.param("res_b", (conv1.out_channels,), res_acc)
        racc = b.op(
            "conv2d", fmap, res_acc, name="resblock",
            weight="res_w", bias="res_b", stride=1, layer="resblock",
        )
        rrelu = b.op("relu", racc, fmts.conv1_out, name="resblock_relu", layer="resblock")
        rmap = b.op(
            "reshape",
            b.op("transpose", rrelu, fmts.conv1_out, name="resblock_t", perm=(1, 0)),
            fmts.conv1_out,
            name="resblock_fmap",
            shape=(conv1.out_channels, size, size),
        )
        fmap = b.op("add", (fmap, rmap), fmts.conv1_out, name="res_add")

    primary = config.primary
    primary_acc = fmts.acc(fmts.conv1_out, fmts.primary_weight)
    b.param("primary_w", (primary.conv_out_channels, primary.in_channels, primary.kernel_size, primary.kernel_size), fmts.primary_weight)
    b.param("primary_b", (primary.conv_out_channels,), primary_acc)
    pacc = b.op(
        "conv2d", fmap, primary_acc, name="primarycaps",
        weight="primary_w", bias="primary_b", stride=primary.stride, layer="primarycaps",
    )
    preact = b.op("requant", pacc, fmts.primary_preact, name="primary_preact")
    out_size = config.primary_out_size
    caps = b.op(
        "reshape",
        b.op(
            "transpose",
            b.op(
                "reshape",
                b.op("transpose", preact, fmts.primary_preact, name="primary_t", perm=(1, 0)),
                fmts.primary_preact,
                name="primary_grouped",
                shape=(primary.capsule_channels, primary.capsule_dim, out_size, out_size),
            ),
            fmts.primary_preact,
            name="primary_spatial",
            perm=(2, 3, 0, 1),
        ),
        fmts.primary_preact,
        name="primary_capsules",
        shape=(config.num_primary_capsules, primary.capsule_dim),
    )
    prim = b.op("squash", caps, fmts.caps_data, name="primarycaps_squash", layer="primarycaps")

    classcaps = config.classcaps
    b.param(
        "classcaps_w",
        (config.num_primary_capsules, classcaps.num_classes, classcaps.out_dim, primary.capsule_dim),
        fmts.classcaps_weight,
    )
    u_hat = b.op("caps_gemm", prim, fmts.caps_data, name="classcaps_fc", weight="classcaps_w")
    v, c = b.op(
        "route", u_hat, (fmts.caps_data, fmts.coupling), name="routing",
        iterations=classcaps.routing_iterations, optimized=optimized_routing,
    )
    sumsq = b.op("norm", v, fmts.acc(fmts.caps_data, fmts.caps_data), name="length")
    pred = b.op("argmax", sumsq, QFormat(8, 0), name="predict")

    b.output("predictions", pred)
    b.output("conv1_raw", fmap)
    b.output("primary_raw", prim)
    b.output("u_hat_raw", u_hat)
    b.output("class_caps_raw", v)
    b.output("coupling_raw", c)
    b.output("length_sumsq_raw", sumsq)
    return b.build()


def mnist_capsnet_graph(
    formats: QuantizedFormats | None = None, optimized_routing: bool = True
) -> Graph:
    """The paper network as an IR graph — the compiled serving default."""
    return capsnet_graph(
        mnist_capsnet_config(), formats, optimized_routing, name="mnist"
    )


def mlp_graph(
    image_size: int = 28,
    hidden: int = 100,
    num_classes: int = 10,
    formats: QuantizedFormats | None = None,
    name: str = "mlp",
) -> Graph:
    """A two-layer fully-connected baseline."""
    fmts = formats if formats is not None else QuantizedFormats()
    b = GraphBuilder(name)
    x = b.input("image", (1, image_size, image_size), fmts.input)
    flat = b.op("reshape", x, fmts.input, name="flatten", shape=(1, image_size * image_size))
    fc1_acc = fmts.acc(fmts.input, fmts.classcaps_weight)
    b.param("fc1_w", (image_size * image_size, hidden), fmts.classcaps_weight)
    h_acc = b.op("gemm", flat, fc1_acc, name="fc1", weight="fc1_w", layer="fc1")
    h = b.op("relu", h_acc, fmts.conv1_out, name="fc1_relu", layer="fc1")
    b.param("fc2_w", (hidden, num_classes), fmts.classcaps_weight)
    logits = b.op("gemm", h, fmts.caps_data, name="fc2", weight="fc2_w", layer="fc2")
    scores = b.op("reshape", logits, fmts.caps_data, name="scores", shape=(num_classes,))
    pred = b.op("argmax", scores, QFormat(8, 0), name="predict")
    b.output("predictions", pred)
    b.output("logits", scores)
    return b.build()


def cnn_graph(
    image_size: int = 28,
    channels: int = 8,
    kernel: int = 5,
    stride: int = 2,
    num_classes: int = 10,
    formats: QuantizedFormats | None = None,
    name: str = "cnn",
) -> Graph:
    """A small convolutional baseline: conv + ReLU + FC."""
    fmts = formats if formats is not None else QuantizedFormats()
    b = GraphBuilder(name)
    x = b.input("image", (1, image_size, image_size), fmts.input)
    conv_acc = fmts.acc(fmts.input, fmts.conv1_weight)
    b.param("conv_w", (channels, 1, kernel, kernel), fmts.conv1_weight)
    b.param("conv_b", (channels,), conv_acc)
    acc = b.op(
        "conv2d", x, conv_acc, name="conv",
        weight="conv_w", bias="conv_b", stride=stride, layer="conv",
    )
    feat = b.op("relu", acc, fmts.conv1_out, name="conv_relu", layer="conv")
    out_size = (image_size - kernel) // stride + 1
    flat = b.op(
        "reshape", feat, fmts.conv1_out, name="flatten",
        shape=(1, out_size * out_size * channels),
    )
    b.param("fc_w", (out_size * out_size * channels, num_classes), fmts.classcaps_weight)
    logits = b.op("gemm", flat, fmts.caps_data, name="fc", weight="fc_w", layer="fc")
    scores = b.op("reshape", logits, fmts.caps_data, name="scores", shape=(num_classes,))
    pred = b.op("argmax", scores, QFormat(8, 0), name="predict")
    b.output("predictions", pred)
    b.output("logits", scores)
    return b.build()


# ---- compiled-network construction -------------------------------------------

#: Compiled program cache: CapsNet programs are shape-driven, so one
#: compilation serves every scheduler/cost rebuild of the same architecture.
_PROGRAM_CACHE: dict[tuple, tuple[Graph, Program]] = {}


def clear_program_cache() -> None:
    """Drop every memoized compilation (tests)."""
    _PROGRAM_CACHE.clear()


def _pseudo_weights(shape: tuple[int, ...], fan_in: int, fmt: QFormat, seed: str) -> np.ndarray:
    """Deterministic fan-in-scaled raw weights (per-array seed)."""
    rng = np.random.default_rng(abs(hash(("repro.zoo", seed))) % (2**32))
    return to_raw(rng.standard_normal(shape) / np.sqrt(fan_in), fmt)


def compile_qnet(qnet: QuantizedCapsuleNet, name: str | None = None) -> CompiledNetwork:
    """Compile a quantized CapsNet into a servable :class:`CompiledNetwork`.

    The instruction stream is bit-identical to the legacy hand lowering;
    parameters are the qnet's own raw weight arrays (shared, not copied).
    """
    config = qnet.config
    if name is None:
        name = "capsnet"
    cache_key = (config, qnet.optimized_routing, qnet.formats, False)
    cached = _PROGRAM_CACHE.get(cache_key)
    if cached is None:
        graph = capsnet_graph(
            config, qnet.formats, qnet.optimized_routing, name=name
        )
        cached = _PROGRAM_CACHE[cache_key] = (graph, compile_graph(graph, qnet.formats))
    graph, program = cached
    return CompiledNetwork(
        name=name,
        graph=graph,
        program=program,
        params=qnet.raw_weights,
        formats=qnet.formats,
        luts=qnet.luts,
        input_shape=(config.in_channels, config.image_size, config.image_size),
        num_classes=config.classcaps.num_classes,
        key=("capsnet", config, qnet.optimized_routing),
        config=config,
        qnet=qnet,
    )


def _residual_capsnet(name: str, config: CapsNetConfig) -> CompiledNetwork:
    qnet = QuantizedCapsuleNet(config)
    fmts = qnet.formats
    cache_key = (config, qnet.optimized_routing, fmts, True)
    cached = _PROGRAM_CACHE.get(cache_key)
    if cached is None:
        graph = capsnet_graph(config, fmts, qnet.optimized_routing, residual=True, name=name)
        cached = _PROGRAM_CACHE[cache_key] = (graph, compile_graph(graph, fmts))
    graph, program = cached
    channels = config.conv1.out_channels
    params = dict(qnet.raw_weights)
    # Small residual weights keep the skip-add inside the 8-bit range.
    params["res_w"] = _pseudo_weights(
        (channels, channels, 1, 1), 4 * channels, fmts.conv1_weight, f"{name}.res_w"
    )
    params["res_b"] = np.zeros(channels, dtype=np.int64)
    return CompiledNetwork(
        name=name,
        graph=graph,
        program=program,
        params=params,
        formats=fmts,
        luts=qnet.luts,
        input_shape=(config.in_channels, config.image_size, config.image_size),
        num_classes=config.classcaps.num_classes,
        key=("zoo", name),
        config=config,
        qnet=qnet,
    )


def _compile_with_params(name: str, graph: Graph, seeded_fans: dict[str, int]) -> CompiledNetwork:
    fmts = QuantizedFormats()
    program = compile_graph(graph, fmts)
    params: dict[str, np.ndarray] = {}
    for pname, spec in graph.params.items():
        if pname.endswith("_b"):
            params[pname] = np.zeros(spec.shape, dtype=np.int64)
        else:
            params[pname] = _pseudo_weights(
                spec.shape, seeded_fans[pname], spec.fmt, f"{name}.{pname}"
            )
    input_shape = graph.tensors[graph.inputs[0]].shape
    num_classes = graph.tensors[graph.outputs["logits"]].shape[-1]
    return CompiledNetwork(
        name=name,
        graph=graph,
        program=program,
        params=params,
        formats=fmts,
        luts=HardwareLuts.build(fmts),
        input_shape=input_shape,
        num_classes=num_classes,
        key=("zoo", name),
    )


def cifar_capsnet_config() -> CapsNetConfig:
    """A CIFAR/SVHN-shape capsule network (32x32x3, 10 classes)."""
    return custom_capsnet_config(
        image_size=32,
        num_classes=10,
        in_channels=3,
        conv1_channels=64,
        capsule_channels=8,
    )


def _build_mnist() -> CompiledNetwork:
    return compile_qnet(QuantizedCapsuleNet(mnist_capsnet_config()), name="mnist")


def _build_tiny() -> CompiledNetwork:
    return compile_qnet(QuantizedCapsuleNet(tiny_capsnet_config()), name="tiny")


def _build_cifar() -> CompiledNetwork:
    return compile_qnet(QuantizedCapsuleNet(cifar_capsnet_config()), name="cifar")


def _build_mnist_res() -> CompiledNetwork:
    return _residual_capsnet("mnist-res", mnist_capsnet_config())


def _build_tiny_res() -> CompiledNetwork:
    return _residual_capsnet("tiny-res", tiny_capsnet_config())


def _build_mlp() -> CompiledNetwork:
    graph = mlp_graph()
    return _compile_with_params("mlp", graph, {"fc1_w": 784, "fc2_w": 100})


def _build_cnn() -> CompiledNetwork:
    graph = cnn_graph()
    return _compile_with_params(
        "cnn", graph, {"conv_w": 25, "fc_w": 12 * 12 * 8}
    )


_BUILDERS = {
    "mnist": _build_mnist,
    "tiny": _build_tiny,
    "cifar": _build_cifar,
    "mnist-res": _build_mnist_res,
    "tiny-res": _build_tiny_res,
    "mlp": _build_mlp,
    "cnn": _build_cnn,
}

_ZOO_CACHE: dict[str, CompiledNetwork] = {}


def zoo_names() -> tuple[str, ...]:
    """Every model-zoo network name, in registry order."""
    return tuple(_BUILDERS)


def get_network(name: str) -> CompiledNetwork:
    """Build (once) and return a zoo network by name."""
    if name not in _BUILDERS:
        raise ConfigError(
            f"unknown zoo network {name!r}; available: {', '.join(_BUILDERS)}"
        )
    if name not in _ZOO_CACHE:
        _ZOO_CACHE[name] = _BUILDERS[name]()
    return _ZOO_CACHE[name]


def as_compiled(network) -> CompiledNetwork:
    """Coerce a scheduler/serving network argument to a :class:`CompiledNetwork`.

    Accepts a :class:`CompiledNetwork` (returned as-is), a
    :class:`QuantizedCapsuleNet` (compiled, program memoized) or a zoo name.
    """
    if isinstance(network, CompiledNetwork):
        return network
    if isinstance(network, QuantizedCapsuleNet):
        return compile_qnet(network)
    if isinstance(network, str):
        return get_network(network)
    raise ConfigError(
        f"cannot interpret {type(network).__name__} as a compiled network"
    )
