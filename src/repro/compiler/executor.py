"""Bit-accurate batched execution of compiled instruction streams.

:class:`StreamExecutor` runs a :class:`~repro.compiler.isa.Program` over a
``(B, ...)`` image batch on one :class:`~repro.hw.accelerator.CapsAccAccelerator`.
Every register holds a batched tensor (leading ``B`` axis prepended to the
program's per-image shapes); GEMM instructions execute through the
accelerator's engines (``fast``/``stepped``) and activation instructions
through a shared :class:`~repro.hw.activation.ActivationUnit` built from the
network's own LUT ROMs — exactly the components the legacy hand-written
scheduler used, so outputs *and* cycle accounting are bit-identical by
construction (and asserted by the drift test).

Cycle recording mirrors the legacy scheduler rule for rule: array
instructions book their job's sequential stats and double-buffered cycles
under their ``layer``; recorded activations book the Section IV-C latencies
over ``B * groups`` arrays; layout/bookkeeping instructions are free.
"""

from __future__ import annotations

import numpy as np

from repro.capsnet.ops import im2col
from repro.compiler.isa import Instruction, Opcode, Program
from repro.errors import CompileError, ShapeError
from repro.fixedpoint.arith import requantize, saturate_raw
from repro.fixedpoint.quantize import to_raw
from repro.hw.accelerator import (
    BatchedGemmJob,
    BatchedGemmResult,
    CapsAccAccelerator,
    GroupedGemmJob,
)
from repro.hw.activation import ActivationMode, ActivationUnit, batched_activation_latency
from repro.hw.report import BatchResult, LayerReport, TraceEvent

#: ``BatchResult`` field <- program output alias (set when the alias exists).
_RESULT_FIELDS = (
    "conv1_raw",
    "primary_raw",
    "u_hat_raw",
    "class_caps_raw",
    "coupling_raw",
    "length_sumsq_raw",
)


class StreamExecutor:
    """Executes compiled programs batch by batch with cycle accounting."""

    def __init__(
        self,
        program: Program,
        params: dict[str, np.ndarray],
        formats,
        luts=None,
        accelerator: CapsAccAccelerator | None = None,
        engine: str = "fast",
    ) -> None:
        self.program = program
        self.params = params
        if accelerator is None:
            accelerator = CapsAccAccelerator(formats=formats)
        self.accelerator = accelerator
        # Share the network's ROMs so both paths are the same bits.
        self.activation = ActivationUnit(formats, luts)
        self.engine = engine

    # ---- bookkeeping ---------------------------------------------------------

    def _record(
        self,
        layers: dict[str, LayerReport],
        trace: list[TraceEvent] | None,
        name: str,
        result: BatchedGemmResult | None = None,
        activation_cycles: int = 0,
        weight_source: str = "weight_buffer",
    ) -> None:
        report = layers.setdefault(name, LayerReport(name=name))
        if result is not None:
            report.stats = report.stats + result.stats
            report.overlapped_cycles += result.overlapped_cycles
            report.jobs += 1
            if trace is not None:
                trace.append(
                    TraceEvent(
                        kind="gemm",
                        name=name,
                        plan=result.plan,
                        groups=result.groups,
                        weight_source=weight_source,
                    )
                )
        if activation_cycles:
            report.stats.activation_cycles += activation_cycles
            report.stats.total_cycles += activation_cycles
            report.overlapped_cycles += activation_cycles
            if trace is not None:
                trace.append(
                    TraceEvent(kind="activation", name=name, cycles=activation_cycles)
                )

    def _activation_cycles(self, mode: ActivationMode, n: int, groups: int) -> int:
        units = self.accelerator.config.cols if mode is ActivationMode.RELU else 1
        return batched_activation_latency(mode, n, groups, units)

    # ---- integrity -----------------------------------------------------------

    def _victim_instruction(self, corruption) -> int:
        """Index of the array instruction the corruption lands on.

        Seeded from the spec so the choice is bit-reproducible from the
        fault plan; ``output``-target corruption lands on the final
        ARGMAX instead and returns ``-1`` here.
        """
        import random

        if corruption is None or corruption.target == "output":
            return -1
        positions = [
            index
            for index, instr in enumerate(self.program.instructions)
            if instr.opcode in (Opcode.GEMM, Opcode.GROUPED_GEMM)
        ]
        if not positions:
            return -1
        return positions[random.Random(corruption.seed).randrange(len(positions))]

    @staticmethod
    def _corrupt_tensor(tensor, corruption, verify, axis, kind):
        """Apply the seeded flips; raise on an armed checksum mismatch.

        ``axis`` picks the ABFT reduction the check runs (``-2`` column
        sums for weight tiles, ``-1`` row sums for accumulators), exact
        in int64.  Verification is numeric only here, at the corrupted
        instruction — every other instruction's tensors are
        bit-identical to the clean run by construction, so their checks
        cannot fire; the *cost* of checking them everywhere is what the
        cost models price in.
        """
        from repro.serve.integrity import DetectedCorruptionError, apply_corruption

        clean = np.asarray(tensor, dtype=np.int64)
        corrupted = apply_corruption(clean, corruption)
        if verify and not np.array_equal(
            corrupted.sum(axis=axis), clean.sum(axis=axis)
        ):
            raise DetectedCorruptionError(
                f"ABFT checksum mismatch on {kind}"
                f" (target {corruption.target}, {corruption.bits} bit flips)"
            )
        return corrupted

    def _load_tile(self, instr: Instruction) -> np.ndarray:
        key = instr.attrs["key"]
        if key not in self.params:
            raise CompileError(f"program references unknown param {key!r}")
        tile = self.params[key]
        index = instr.attrs.get("index")
        if index is not None:
            tile = tile[index]
        reshape = instr.attrs.get("reshape")
        if reshape is not None:
            tile = tile.reshape(tuple(reshape))
        if instr.attrs.get("transpose", False):
            tile = tile.T
        return np.asarray(tile, dtype=np.int64)

    # ---- execution -----------------------------------------------------------

    def run_batch(
        self,
        images: np.ndarray,
        trace: list[TraceEvent] | None = None,
        corruption=None,
        verify_checksums: bool = False,
    ) -> BatchResult:
        """Execute one batch of real-valued inputs through the program.

        ``corruption`` (a :class:`~repro.serve.faults.CorruptionSpec`)
        injects seeded bit flips into one array instruction's weight
        tile or accumulator — or, for ``output`` targets, into the
        final ARGMAX's scores — so the corrupted numerics are
        bit-reproducible from the fault plan.  ``verify_checksums`` arms
        the ABFT column/row checksums, raising
        :class:`~repro.serve.integrity.DetectedCorruptionError` on any
        in-envelope mismatch (``output`` flips happen after the last
        checked GEMM and are never caught here).
        """
        program = self.program
        victim = self._victim_instruction(corruption)
        output_pending = corruption is not None and corruption.target == "output"
        images = np.asarray(images)
        expected = program.input_shape
        if images.ndim == len(expected) and len(expected) == 3 and expected[0] == 1:
            images = images[:, np.newaxis]
        if images.ndim != len(expected) + 1 or images.shape[1:] != tuple(expected):
            raise ShapeError(f"batch shape {images.shape} != (B,) + {tuple(expected)}")
        batch = images.shape[0]
        if batch < 1:
            raise ShapeError("batch must contain at least one image")

        env: dict[str, np.ndarray] = {program.input: to_raw(images, program.input_fmt)}
        wregs: dict[str, np.ndarray] = {}
        layers: dict[str, LayerReport] = {}
        outputs: dict[str, np.ndarray] = {}

        for pos, instr in enumerate(program.instructions):
            op = instr.opcode
            attrs = instr.attrs
            if op is Opcode.LOAD_T:
                wregs[instr.dest] = self._load_tile(instr)
            elif op is Opcode.IM2COL:
                kernel = attrs["kernel"]
                stride = attrs["stride"]
                env[instr.dest] = np.stack(
                    [
                        im2col(np.asarray(x, dtype=np.int64), kernel, stride)
                        for x in env[instr.srcs[0]]
                    ]
                )
            elif op is Opcode.GEMM:
                weight_tile = wregs[attrs["wreg"]]
                if pos == victim and corruption.target == "weight":
                    weight_tile = self._corrupt_tensor(
                        weight_tile,
                        corruption,
                        verify_checksums,
                        -2,
                        f"weight tile {attrs['wreg']}",
                    )
                job = BatchedGemmJob(
                    attrs["job"],
                    env[instr.srcs[0]],
                    weight_tile,
                    attrs["data_fmt"],
                    attrs["weight_fmt"],
                    attrs["acc_fmt"],
                )
                result = self.accelerator.run_batched_gemm(job, engine=self.engine)
                self._record(layers, trace, instr.layer, result)
                acc = result.acc
                if pos == victim and corruption.target == "accumulator":
                    acc = self._corrupt_tensor(
                        acc,
                        corruption,
                        verify_checksums,
                        -1,
                        f"accumulator of {instr.layer}",
                    )
                bias = attrs.get("bias")
                if bias is not None:
                    acc = saturate_raw(
                        acc + self.params[bias][np.newaxis, np.newaxis, :],
                        attrs["acc_fmt"],
                    )
                requant_to = attrs.get("requant_to")
                if requant_to is not None:
                    acc = requantize(acc, attrs["acc_fmt"], requant_to)
                env[instr.dest] = acc
            elif op is Opcode.GROUPED_GEMM:
                data = env[instr.srcs[0]]
                weights = env[instr.srcs[1]]
                groups = attrs["groups"]
                grouped_weights = weights.reshape(
                    (batch * groups,) + weights.shape[2:]
                )
                if pos == victim and corruption.target == "weight":
                    grouped_weights = self._corrupt_tensor(
                        grouped_weights,
                        corruption,
                        verify_checksums,
                        -2,
                        f"weight tiles of {instr.layer}",
                    )
                job = GroupedGemmJob(
                    attrs["job"],
                    data.reshape((batch * groups,) + data.shape[2:]),
                    grouped_weights,
                    attrs["data_fmt"],
                    attrs["weight_fmt"],
                    attrs["acc_fmt"],
                    data_source=attrs["data_source"],
                    weight_source=attrs["weight_source"],
                )
                result = self.accelerator.run_grouped_gemm(job, engine=self.engine)
                self._record(
                    layers, trace, instr.layer, result,
                    weight_source=attrs["weight_source"],
                )
                acc = result.acc
                if pos == victim and corruption.target == "accumulator":
                    acc = self._corrupt_tensor(
                        acc,
                        corruption,
                        verify_checksums,
                        -1,
                        f"accumulator of {instr.layer}",
                    )
                requant_to = attrs.get("requant_to")
                if requant_to is not None:
                    acc = requantize(acc, attrs["acc_fmt"], requant_to)
                env[instr.dest] = acc.reshape((batch,) + tuple(attrs["out_shape"]))
            elif op is Opcode.RELU:
                env[instr.dest] = self.activation.relu(
                    env[instr.srcs[0]], attrs["in_fmt"], attrs["out_fmt"]
                )
                if attrs.get("record", True):
                    self._record(
                        layers, trace, instr.layer,
                        activation_cycles=self._activation_cycles(
                            ActivationMode.RELU, attrs["n"], batch * attrs["groups"]
                        ),
                    )
            elif op is Opcode.SQUASH:
                env[instr.dest] = self.activation.squash(
                    env[instr.srcs[0]], attrs["in_fmt"]
                )
                if attrs.get("record", True):
                    self._record(
                        layers, trace, instr.layer,
                        activation_cycles=self._activation_cycles(
                            ActivationMode.SQUASH, attrs["n"], batch * attrs["groups"]
                        ),
                    )
            elif op is Opcode.SOFTMAX:
                env[instr.dest] = self.activation.softmax(env[instr.srcs[0]], axis=-1)
                if attrs.get("record", True):
                    self._record(
                        layers, trace, instr.layer,
                        activation_cycles=self._activation_cycles(
                            ActivationMode.SOFTMAX, attrs["n"], batch * attrs["groups"]
                        ),
                    )
            elif op is Opcode.NORM:
                # Final length readout: the legacy lowering never charged it.
                _, sumsq = self.activation.norm(env[instr.srcs[0]], attrs["in_fmt"])
                env[instr.dest] = sumsq
            elif op is Opcode.ARGMAX:
                scores = env[instr.srcs[0]]
                if output_pending:
                    # Output-target corruption lands after every checked
                    # GEMM: flip the readout scores so the served
                    # predictions are wrong and no inline check can see it.
                    from repro.serve.integrity import apply_corruption

                    scores = apply_corruption(scores, corruption)
                    output_pending = False
                env[instr.dest] = np.argmax(scores, axis=-1)
            elif op is Opcode.REQUANT:
                env[instr.dest] = requantize(
                    env[instr.srcs[0]], attrs["from_fmt"], attrs["to_fmt"]
                )
            elif op is Opcode.RESHAPE:
                env[instr.dest] = env[instr.srcs[0]].reshape(
                    (batch,) + tuple(attrs["shape"])
                )
            elif op is Opcode.TRANSPOSE:
                perm = tuple(attrs["perm"])
                env[instr.dest] = env[instr.srcs[0]].transpose(
                    (0,) + tuple(p + 1 for p in perm)
                )
            elif op is Opcode.SLICE:
                axis = attrs["axis"] + 1
                index = (slice(None),) * axis + (slice(attrs["start"], attrs["stop"]),)
                env[instr.dest] = env[instr.srcs[0]][index]
            elif op is Opcode.CONCAT:
                env[instr.dest] = np.stack([env[s] for s in instr.srcs], axis=1)
            elif op is Opcode.ADD_SAT:
                a, b = instr.srcs
                env[instr.dest] = saturate_raw(env[a] + env[b], attrs["fmt"])
            elif op is Opcode.CONST:
                env[instr.dest] = np.full(
                    (batch,) + tuple(attrs["shape"]), attrs["value"], dtype=np.int64
                )
            elif op is Opcode.STORE:
                outputs[attrs["alias"]] = env[instr.srcs[0]]
            else:  # pragma: no cover - exhaustive over Opcode
                raise CompileError(f"unknown opcode {op!r}")

        if "predictions" not in outputs:
            raise CompileError(
                f"program {program.name!r} stores no 'predictions' output"
            )
        fields = {f: outputs[f] for f in _RESULT_FIELDS if f in outputs}
        return BatchResult(
            batch=batch,
            predictions=outputs["predictions"],
            layers=layers,
            outputs=outputs,
            **fields,
        )
