"""The accelerator instruction set.

A compiled :class:`Program` is a flat list of :class:`Instruction`\\ s over a
register file of named batched tensors.  Three instruction classes exist:

* **array work** — ``GEMM`` / ``GROUPED_GEMM`` execute on the systolic array
  (the only instructions that cost array cycles); ``LOAD_T`` stages a weight
  tile sequence for the next ``GEMM`` (its load cycles are accounted inside
  the GEMM's tiling plan, exactly as the schedulers always did);
* **activation unit** — ``RELU`` / ``SQUASH`` / ``SOFTMAX`` / ``NORM`` run
  on the per-column activation units with the paper's Section IV-C
  latencies (``NORM`` at the readout is free, matching the legacy
  accounting, which never charged the final norm);
* **layout/bookkeeping** — ``IM2COL``, ``REQUANT``, ``RESHAPE``,
  ``TRANSPOSE``, ``SLICE``, ``CONCAT``, ``ADD_SAT``, ``CONST``, ``ARGMAX``,
  ``STORE`` are free: they model address generation and datapath wiring the
  cycle model never charged.

Every array/activation instruction stamps its **per-image** work shape
(``m``/``k``/``n``/``groups`` or activation ``n``/``groups``) so
:mod:`repro.compiler.cost` can price a program for any batch size in closed
form, bit-identical to executing it.  Programs serialize to JSON and to a
readable text listing.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import CompileError
from repro.fixedpoint.formats import QFormat


class Opcode(enum.Enum):
    """Instruction opcodes of the CapsAcc stream ISA."""

    LOAD_T = "load_t"
    IM2COL = "im2col"
    GEMM = "gemm"
    GROUPED_GEMM = "grouped_gemm"
    RELU = "relu"
    SQUASH = "squash"
    SOFTMAX = "softmax"
    NORM = "norm"
    ARGMAX = "argmax"
    REQUANT = "requant"
    RESHAPE = "reshape"
    TRANSPOSE = "transpose"
    SLICE = "slice"
    CONCAT = "concat"
    ADD_SAT = "add_sat"
    CONST = "const"
    STORE = "store"


#: Opcodes that execute GEMM work on the systolic array.
ARRAY_OPCODES = frozenset({Opcode.GEMM, Opcode.GROUPED_GEMM})
#: Opcodes that occupy the activation units (when ``record`` is set).
ACTIVATION_OPCODES = frozenset({Opcode.RELU, Opcode.SQUASH, Opcode.SOFTMAX})


@dataclass
class Instruction:
    """One decoded instruction: opcode, register operands, attributes.

    ``layer`` names the :class:`~repro.hw.report.LayerReport` bucket the
    instruction's cycles land in (``None`` for free instructions).
    """

    opcode: Opcode
    dest: str | None = None
    srcs: tuple[str, ...] = ()
    layer: str | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def text(self) -> str:
        """One readable listing line."""
        parts = [self.opcode.value.upper().ljust(12)]
        if self.dest:
            parts.append(f"{self.dest} <-")
        if self.srcs:
            parts.append(", ".join(self.srcs))
        shown = {
            k: v
            for k, v in self.attrs.items()
            if k in ("job", "key", "index", "m", "k", "n", "groups", "mode", "value",
                     "shape", "perm", "axis", "start", "stop", "stride", "kernel",
                     "data_source", "weight_source", "wreg", "record", "alias")
        }
        if self.layer:
            shown["layer"] = self.layer
        if shown:
            parts.append(
                "{" + ", ".join(f"{k}={v}" for k, v in sorted(shown.items())) + "}"
            )
        return " ".join(parts)


def _encode(value: Any) -> Any:
    if isinstance(value, QFormat):
        return {"__qformat__": [value.total_bits, value.frac_bits, bool(value.signed)]}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode(v) for v in value]}
    if isinstance(value, dict):
        return {k: _encode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_encode(v) for v in value]
    return value


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if "__qformat__" in value:
            total, frac, signed = value["__qformat__"]
            return QFormat(total_bits=int(total), frac_bits=int(frac), signed=bool(signed))
        if "__tuple__" in value:
            return tuple(_decode(v) for v in value["__tuple__"])
        return {k: _decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


@dataclass
class Program:
    """A compiled instruction stream plus its execution interface."""

    name: str
    #: Register name the quantized input batch is written to.
    input: str
    #: Per-image input shape ``(C, H, W)`` (or any rank for non-image nets).
    input_shape: tuple[int, ...]
    #: Fixed-point format the real-valued input quantizes to.
    input_fmt: QFormat
    instructions: list[Instruction] = field(default_factory=list)
    #: Output alias -> register name; aliases become ``BatchResult.outputs``.
    outputs: dict[str, str] = field(default_factory=dict)

    def gemm_instructions(self) -> list[Instruction]:
        """The instructions that execute on the array, in order."""
        return [i for i in self.instructions if i.opcode in ARRAY_OPCODES]

    @property
    def num_instructions(self) -> int:
        return len(self.instructions)

    def text(self) -> str:
        """Readable listing of the whole program."""
        header = (
            f"; program {self.name}: input {self.input} {self.input_shape}"
            f" @ {self.input_fmt.describe()}, {len(self.instructions)} instructions"
        )
        lines = [header]
        lines += [
            f"{index:5d}  {instr.text()}"
            for index, instr in enumerate(self.instructions)
        ]
        lines.append(
            "; outputs: "
            + ", ".join(f"{alias}={reg}" for alias, reg in self.outputs.items())
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        """Serialize (attrs included, formats tagged) to JSON."""
        doc = {
            "name": self.name,
            "input": self.input,
            "input_shape": list(self.input_shape),
            "input_fmt": _encode(self.input_fmt),
            "outputs": self.outputs,
            "instructions": [
                {
                    "opcode": instr.opcode.value,
                    "dest": instr.dest,
                    "srcs": list(instr.srcs),
                    "layer": instr.layer,
                    "attrs": _encode(instr.attrs),
                }
                for instr in self.instructions
            ],
        }
        return json.dumps(doc, indent=2)


def program_from_json(text: str) -> Program:
    """Rebuild a :class:`Program` from :meth:`Program.to_json` output."""
    try:
        doc = json.loads(text)
        program = Program(
            name=doc["name"],
            input=doc["input"],
            input_shape=tuple(int(d) for d in doc["input_shape"]),
            input_fmt=_decode(doc["input_fmt"]),
            outputs=dict(doc["outputs"]),
            instructions=[
                Instruction(
                    opcode=Opcode(i["opcode"]),
                    dest=i["dest"],
                    srcs=tuple(i["srcs"]),
                    layer=i["layer"],
                    attrs=_decode(i["attrs"]),
                )
                for i in doc["instructions"]
            ],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CompileError(f"malformed program document: {exc}") from exc
    return program
