"""Graph → instruction-stream lowering.

:func:`compile_graph` walks a validated :class:`~repro.compiler.ir.Graph` in
topological order and emits the :mod:`~repro.compiler.isa` instruction
stream the stream executor runs.  The lowering encodes the same scheduling
decisions the hand-written :class:`~repro.hw.legacy_scheduler.LegacyBatchScheduler`
made — asserted instruction for instruction by the drift test:

* **conv2d** — one ``IM2COL`` + one ``LOAD_T``/``GEMM`` pair: the batch's
  patches stack into a single ``(B*M, K)`` stream per weight tile, so each
  tile loads once per batch (the paper's weight reuse across images);
* **caps_gemm** — unrolled into one ``LOAD_T``/``GEMM`` pair per input
  capsule: every capsule's private weight matrix is a distinct tile-load
  sequence streamed by all ``B`` capsule vectors (``M = B``);
* **route** — fully unrolled: per iteration one ``SOFTMAX``, a
  ``GROUPED_GEMM`` prediction sum (data from the data buffer on the first
  iteration, the feedback path afterwards; coupling coefficients from the
  routing buffer), a ``SQUASH``, and — except on the last iteration — a
  ``GROUPED_GEMM`` agreement update feeding an ``ADD_SAT`` on the logits.
  With ``optimized`` routing the first softmax is emitted unrecorded (the
  uniform coupling is a constant the control unit precomputes, costing no
  activation cycles — and softmax of an all-zero logit row *is* that
  constant, so the bits match the golden model either way);
* **requant folding** — whenever an op's declared output format differs
  from the GEMM accumulator format, the width reduction folds into the
  GEMM instruction (it happens in front of the activation unit and was
  never charged cycles).

Weight-tile staging is explicit: ``LOAD_T`` carries the param key plus the
reshape/transpose that forms the ``(K, N)`` tile matrix; its cycles are
part of the following GEMM's tiling plan (loads overlap the previous
tile's stream via the Weight2 double buffer), so ``LOAD_T`` itself is free.
"""

from __future__ import annotations

import math

from repro.capsnet.hwops import QuantizedFormats
from repro.compiler.ir import Graph, OpNode
from repro.compiler.isa import Instruction, Opcode, Program
from repro.errors import CompileError
from repro.fixedpoint.formats import QFormat


class _Lowering:
    """Single-use lowering state for one graph."""

    def __init__(self, graph: Graph, formats: QuantizedFormats) -> None:
        self.graph = graph
        self.formats = formats
        self.instructions: list[Instruction] = []

    def emit(self, opcode: Opcode, dest=None, srcs=(), layer=None, **attrs) -> None:
        self.instructions.append(
            Instruction(opcode=opcode, dest=dest, srcs=tuple(srcs), layer=layer, attrs=attrs)
        )

    def _fmt(self, tensor: str) -> QFormat:
        return self.graph.tensors[tensor].fmt

    def _shape(self, tensor: str) -> tuple[int, ...]:
        return self.graph.tensors[tensor].shape

    def _layer(self, op: OpNode) -> str:
        return op.attrs.get("layer", op.name)

    # ---- op lowerings --------------------------------------------------------

    def lower_conv2d(self, op: OpNode) -> None:
        (x,) = op.inputs
        (out,) = op.outputs
        weight = self.graph.params[op.attrs["weight"]]
        out_ch = weight.shape[0]
        kernel = weight.shape[2]
        k_dim = math.prod(weight.shape[1:])
        m_dim = self._shape(out)[0]
        acc_fmt = self.formats.acc(self._fmt(x), weight.fmt)
        layer = self._layer(op)
        patches = f"%{op.name}.patches"
        wreg = f"%{op.name}.w"
        self.emit(
            Opcode.IM2COL, dest=patches, srcs=(x,),
            kernel=kernel, stride=int(op.attrs.get("stride", 1)),
        )
        self.emit(
            Opcode.LOAD_T, dest=wreg,
            key=weight.name, reshape=(out_ch, k_dim), transpose=True,
        )
        self.emit(
            Opcode.GEMM, dest=out, srcs=(patches,), layer=layer,
            job=layer, wreg=wreg,
            data_fmt=self._fmt(x), weight_fmt=weight.fmt, acc_fmt=acc_fmt,
            bias=op.attrs.get("bias"),
            requant_to=None if self._fmt(out) == acc_fmt else self._fmt(out),
            m=m_dim, k=k_dim, n=out_ch,
        )

    def lower_gemm(self, op: OpNode) -> None:
        (x,) = op.inputs
        (out,) = op.outputs
        weight = self.graph.params[op.attrs["weight"]]
        transpose = bool(op.attrs.get("transpose", False))
        k_dim, n_dim = (weight.shape[1], weight.shape[0]) if transpose else weight.shape
        acc_fmt = self.formats.acc(self._fmt(x), weight.fmt)
        layer = self._layer(op)
        wreg = f"%{op.name}.w"
        self.emit(Opcode.LOAD_T, dest=wreg, key=weight.name, reshape=None, transpose=transpose)
        self.emit(
            Opcode.GEMM, dest=out, srcs=(x,), layer=layer,
            job=layer, wreg=wreg,
            data_fmt=self._fmt(x), weight_fmt=weight.fmt, acc_fmt=acc_fmt,
            bias=op.attrs.get("bias"),
            requant_to=None if self._fmt(out) == acc_fmt else self._fmt(out),
            m=self._shape(x)[0], k=k_dim, n=n_dim,
        )

    def lower_caps_gemm(self, op: OpNode) -> None:
        (x,) = op.inputs
        (out,) = op.outputs
        weight = self.graph.params[op.attrs["weight"]]
        num_in, num_out, out_dim, in_dim = weight.shape
        acc_fmt = self.formats.acc(self._fmt(x), weight.fmt)
        layer = self._layer(op)
        parts = []
        for i in range(num_in):
            sliced = f"%{op.name}.in{i}"
            wreg = f"%{op.name}.w{i}"
            raw = f"%{op.name}.acc{i}"
            part = f"%{op.name}.cap{i}"
            self.emit(Opcode.SLICE, dest=sliced, srcs=(x,), axis=0, start=i, stop=i + 1)
            self.emit(
                Opcode.LOAD_T, dest=wreg,
                key=weight.name, index=i,
                reshape=(num_out * out_dim, in_dim), transpose=True,
            )
            self.emit(
                Opcode.GEMM, dest=raw, srcs=(sliced,), layer=layer,
                job=f"fc_capsule_{i}", wreg=wreg,
                data_fmt=self._fmt(x), weight_fmt=weight.fmt, acc_fmt=acc_fmt,
                bias=None,
                requant_to=None if self._fmt(out) == acc_fmt else self._fmt(out),
                m=1, k=in_dim, n=num_out * out_dim,
            )
            self.emit(Opcode.RESHAPE, dest=part, srcs=(raw,), shape=(num_out, out_dim))
            parts.append(part)
        self.emit(Opcode.CONCAT, dest=out, srcs=tuple(parts))

    def lower_grouped_gemm(self, op: OpNode) -> None:
        data, weights = op.inputs
        (out,) = op.outputs
        groups, m_dim, k_dim = self._shape(data)
        n_dim = self._shape(weights)[2]
        acc_fmt = self.formats.acc(self._fmt(data), self._fmt(weights))
        layer = self._layer(op)
        self.emit(
            Opcode.GROUPED_GEMM, dest=out, srcs=(data, weights), layer=layer,
            job=layer,
            data_fmt=self._fmt(data), weight_fmt=self._fmt(weights), acc_fmt=acc_fmt,
            data_source=op.attrs.get("data_source", "data_buffer"),
            weight_source=op.attrs.get("weight_source", "routing_buffer"),
            requant_to=None if self._fmt(out) == acc_fmt else self._fmt(out),
            m=m_dim, k=k_dim, n=n_dim, groups=groups,
            out_shape=self._shape(out),
        )

    def lower_activation(self, op: OpNode) -> None:
        (x,) = op.inputs
        (out,) = op.outputs
        shape = self._shape(x)
        layer = self._layer(op)
        if op.kind == "relu":
            # One comparator per column: n=1, every element its own group.
            self.emit(
                Opcode.RELU, dest=out, srcs=(x,), layer=layer,
                in_fmt=self._fmt(x), out_fmt=self._fmt(out),
                n=1, groups=math.prod(shape), record=True,
            )
        elif op.kind == "squash":
            self.emit(
                Opcode.SQUASH, dest=out, srcs=(x,), layer=layer,
                in_fmt=self._fmt(x),
                n=shape[-1], groups=math.prod(shape[:-1]), record=True,
            )
        elif op.kind == "softmax":
            self.emit(
                Opcode.SOFTMAX, dest=out, srcs=(x,), layer=layer,
                n=shape[-1], groups=math.prod(shape[:-1]), record=True,
            )
        else:  # pragma: no cover - guarded by OP_KINDS
            raise CompileError(f"unknown activation kind {op.kind!r}")

    def lower_route(self, op: OpNode) -> None:
        (u_hat,) = op.inputs
        v_out, c_out = op.outputs
        num_in, num_out, out_dim = self._shape(u_hat)
        iterations = int(op.attrs.get("iterations", 1))
        optimized = bool(op.attrs.get("optimized", False))
        fmts = self.formats
        sum_acc = fmts.acc(fmts.caps_data, fmts.coupling)
        upd_acc = fmts.acc(fmts.caps_data, fmts.caps_data)
        prefix = f"%{op.name}"

        b_reg = f"{prefix}.b0"
        self.emit(Opcode.CONST, dest=b_reg, shape=(num_in, num_out), value=0)
        # First coupling: softmax of zero logits.  With optimized routing the
        # control unit treats it as a precomputed constant (no cycles).
        c_reg = f"{prefix}.c1"
        self.emit(
            Opcode.SOFTMAX, dest=c_reg, srcs=(b_reg,), layer="softmax1",
            n=num_out, groups=num_in, record=not optimized,
        )
        for it in range(1, iterations + 1):
            if it > 1:
                c_reg = f"{prefix}.c{it}"
                self.emit(
                    Opcode.SOFTMAX, dest=c_reg, srcs=(b_reg,), layer=f"softmax{it}",
                    n=num_out, groups=num_in, record=True,
                )
            u_byclass = f"{prefix}.u_sum{it}"
            self.emit(Opcode.TRANSPOSE, dest=u_byclass, srcs=(u_hat,), perm=(1, 2, 0))
            c_t = f"{prefix}.ct{it}"
            self.emit(Opcode.TRANSPOSE, dest=c_t, srcs=(c_reg,), perm=(1, 0))
            c_w = f"{prefix}.cw{it}"
            self.emit(Opcode.RESHAPE, dest=c_w, srcs=(c_t,), shape=(num_out, num_in, 1))
            s_reg = f"{prefix}.s{it}"
            self.emit(
                Opcode.GROUPED_GEMM, dest=s_reg, srcs=(u_byclass, c_w),
                layer=f"sum{it}", job=f"sum{it}",
                data_fmt=fmts.caps_data, weight_fmt=fmts.coupling, acc_fmt=sum_acc,
                data_source="data_buffer" if it == 1 else "feedback",
                weight_source="routing_buffer",
                requant_to=fmts.primary_preact,
                m=out_dim, k=num_in, n=1, groups=num_out,
                out_shape=(num_out, out_dim),
            )
            v_reg = v_out if it == iterations else f"{prefix}.v{it}"
            self.emit(
                Opcode.SQUASH, dest=v_reg, srcs=(s_reg,), layer=f"squash{it}",
                in_fmt=fmts.primary_preact, n=out_dim, groups=num_out, record=True,
            )
            if it < iterations:
                u_byclass2 = f"{prefix}.u_upd{it}"
                self.emit(Opcode.TRANSPOSE, dest=u_byclass2, srcs=(u_hat,), perm=(1, 0, 2))
                v_w = f"{prefix}.vw{it}"
                self.emit(Opcode.RESHAPE, dest=v_w, srcs=(v_reg,), shape=(num_out, out_dim, 1))
                d_reg = f"{prefix}.d{it}"
                self.emit(
                    Opcode.GROUPED_GEMM, dest=d_reg, srcs=(u_byclass2, v_w),
                    layer=f"update{it}", job=f"update{it}",
                    data_fmt=fmts.caps_data, weight_fmt=fmts.caps_data, acc_fmt=upd_acc,
                    data_source="feedback", weight_source="routing_buffer",
                    requant_to=fmts.logits,
                    m=num_in, k=out_dim, n=1, groups=num_out,
                    out_shape=(num_out, num_in),
                )
                d_t = f"{prefix}.dt{it}"
                self.emit(Opcode.TRANSPOSE, dest=d_t, srcs=(d_reg,), perm=(1, 0))
                b_next = f"{prefix}.b{it}"
                self.emit(Opcode.ADD_SAT, dest=b_next, srcs=(b_reg, d_t), fmt=fmts.logits)
                b_reg = b_next
        # Alias the coupling used by the last iteration to its output tensor.
        self.emit(Opcode.RESHAPE, dest=c_out, srcs=(c_reg,), shape=(num_in, num_out))

    def lower(self, op: OpNode) -> None:
        kind = op.kind
        if kind == "conv2d":
            self.lower_conv2d(op)
        elif kind == "gemm":
            self.lower_gemm(op)
        elif kind == "caps_gemm":
            self.lower_caps_gemm(op)
        elif kind == "grouped_gemm":
            self.lower_grouped_gemm(op)
        elif kind in ("relu", "squash", "softmax"):
            self.lower_activation(op)
        elif kind == "route":
            self.lower_route(op)
        elif kind == "requant":
            (x,) = op.inputs
            (out,) = op.outputs
            self.emit(
                Opcode.REQUANT, dest=out, srcs=(x,),
                from_fmt=self._fmt(x), to_fmt=self._fmt(out),
            )
        elif kind == "reshape":
            (x,) = op.inputs
            (out,) = op.outputs
            self.emit(Opcode.RESHAPE, dest=out, srcs=(x,), shape=self._shape(out))
        elif kind == "transpose":
            (x,) = op.inputs
            (out,) = op.outputs
            self.emit(
                Opcode.TRANSPOSE, dest=out, srcs=(x,),
                perm=tuple(int(p) for p in op.attrs["perm"]),
            )
        elif kind == "add":
            (out,) = op.outputs
            self.emit(Opcode.ADD_SAT, dest=out, srcs=op.inputs, fmt=self._fmt(out))
        elif kind == "norm":
            (x,) = op.inputs
            (out,) = op.outputs
            self.emit(Opcode.NORM, dest=out, srcs=(x,), in_fmt=self._fmt(x))
        elif kind == "argmax":
            (x,) = op.inputs
            (out,) = op.outputs
            self.emit(Opcode.ARGMAX, dest=out, srcs=(x,))
        else:  # pragma: no cover - validate() rejects unknown kinds
            raise CompileError(f"no lowering for op kind {kind!r}")


def compile_graph(graph: Graph, formats: QuantizedFormats | None = None) -> Program:
    """Compile a validated graph to an accelerator instruction stream."""
    formats = formats if formats is not None else QuantizedFormats()
    graph.validate()
    if len(graph.inputs) != 1:
        raise CompileError(
            f"graph {graph.name!r} must have exactly one input, got {len(graph.inputs)}"
        )
    lowering = _Lowering(graph, formats)
    for op in graph.topo_sort():
        lowering.lower(op)
    for alias, tensor in graph.outputs.items():
        lowering.emit(Opcode.STORE, srcs=(tensor,), alias=alias)
    input_name = graph.inputs[0]
    input_node = graph.tensors[input_name]
    return Program(
        name=graph.name,
        input=input_name,
        input_shape=input_node.shape,
        input_fmt=input_node.fmt,
        instructions=lowering.instructions,
        outputs=dict(graph.outputs),
    )
