"""Closed-form pricing of compiled programs.

A :class:`~repro.compiler.isa.Program` stamps every array/activation
instruction with its per-image work shape, so a program can be priced for
any batch size without executing it — and the pricing is **bit-identical**
to what :class:`~repro.compiler.executor.StreamExecutor` records when it
actually runs (asserted in tests):

* :func:`program_events` produces the exact :class:`~repro.hw.report.TraceEvent`
  sequence a traced execution would append;
* :func:`program_batch_cycles` gives the batch's sequential and
  double-buffered totals (``BatchResult.total_cycles`` /
  ``.overlapped_cycles``);
* :func:`program_stats` gives the summed :class:`~repro.hw.stats.CycleStats`
  including buffer access counts (``BatchResult.total_stats``) — the
  energy model's activity input;
* :func:`program_ops` / :func:`program_stream_timing` expand the events
  into :mod:`repro.hw.pipeline` op timelines and price the cross-batch
  pipelined stream schedule.

This is what makes networks data: serving admission, sweeps and the energy
model all price zoo networks from their compiled streams, with no
network-specific scheduling code anywhere downstream.
"""

from __future__ import annotations

from typing import Sequence

from repro.compiler.isa import Opcode, Program
from repro.hw.accelerator import batched_gemm_cycles, gemm_cycles, plan_tiling
from repro.hw.activation import ActivationMode, batched_activation_latency
from repro.hw.config import AcceleratorConfig
from repro.hw.pipeline import (
    DEFAULT_PRESTAGE_DEPTH,
    DEFAULT_WINDOW,
    PipelineOp,
    StreamTiming,
    activation_op,
    cached_stream_timing,
    job_ops,
)
from repro.hw.report import TraceEvent
from repro.hw.stats import CycleStats

_ACTIVATION_MODES = {
    Opcode.RELU: ActivationMode.RELU,
    Opcode.SQUASH: ActivationMode.SQUASH,
    Opcode.SOFTMAX: ActivationMode.SOFTMAX,
}


def _activation_cycles(
    config: AcceleratorConfig, opcode: Opcode, n: int, groups: int
) -> int:
    mode = _ACTIVATION_MODES[opcode]
    units = config.cols if mode is ActivationMode.RELU else 1
    return batched_activation_latency(mode, n, groups, units)


def program_events(
    config: AcceleratorConfig, program: Program, batch: int
) -> list[TraceEvent]:
    """The trace a batch-``B`` execution would record, without executing."""
    events: list[TraceEvent] = []
    for instr in program.instructions:
        attrs = instr.attrs
        if instr.opcode is Opcode.GEMM:
            events.append(
                TraceEvent(
                    kind="gemm",
                    name=instr.layer,
                    plan=plan_tiling(config, batch * attrs["m"], attrs["k"], attrs["n"]),
                    groups=1,
                )
            )
        elif instr.opcode is Opcode.GROUPED_GEMM:
            events.append(
                TraceEvent(
                    kind="gemm",
                    name=instr.layer,
                    plan=plan_tiling(config, attrs["m"], attrs["k"], attrs["n"]),
                    groups=batch * attrs["groups"],
                    weight_source=attrs["weight_source"],
                )
            )
        elif instr.opcode in _ACTIVATION_MODES and attrs.get("record", True):
            events.append(
                TraceEvent(
                    kind="activation",
                    name=instr.layer,
                    cycles=_activation_cycles(
                        config, instr.opcode, attrs["n"], batch * attrs["groups"]
                    ),
                )
            )
    return events


def program_batch_cycles(
    config: AcceleratorConfig, program: Program, batch: int
) -> dict[str, int]:
    """Sequential and double-buffered totals of one batch, in closed form.

    ``overlapped`` equals ``BatchResult.overlapped_cycles`` and
    ``sequential`` equals ``BatchResult.total_cycles`` of an actual
    execution of the same program at the same batch size.
    """
    sequential = 0
    overlapped = 0
    for instr in program.instructions:
        attrs = instr.attrs
        if instr.opcode is Opcode.GEMM:
            m, k, n = attrs["m"], attrs["k"], attrs["n"]
            sequential += batched_gemm_cycles(config, batch, m, k, n, overlap=False)["total"]
            overlapped += batched_gemm_cycles(config, batch, m, k, n, overlap=True)["total"]
        elif instr.opcode is Opcode.GROUPED_GEMM:
            m, k, n = attrs["m"], attrs["k"], attrs["n"]
            count = batch * attrs["groups"]
            sequential += count * gemm_cycles(config, m, k, n, overlap=False)["total"]
            overlapped += count * gemm_cycles(config, m, k, n, overlap=True)["total"]
        elif instr.opcode in _ACTIVATION_MODES and attrs.get("record", True):
            cycles = _activation_cycles(
                config, instr.opcode, attrs["n"], batch * attrs["groups"]
            )
            sequential += cycles
            overlapped += cycles
    return {"sequential": sequential, "overlapped": overlapped}


def program_checksum_cycles(
    config: AcceleratorConfig, program: Program, batch: int
) -> int:
    """Cycles the ABFT checksum layer adds to one batch, in closed form.

    Per ``GEMM``/``GROUPED_GEMM``: recompute the weight column checksum
    (``k·n`` adds), fold the data rows against it (``m·k`` adds) and
    verify the accumulator row sums (``m·n`` adds) — the standard
    Huang–Abraham overhead of one extra checksum row/column per tile,
    streamed through the array's full ``rows × cols`` MAC fabric like
    any other tile pass.  This is the explicit integrity-overhead knob
    the serving cost models price in when a server arms ``checksum``
    mode; it stays a single-digit percentage of the GEMM's own
    ``m·k·n`` work on the paper networks.
    """
    fabric = max(config.rows * config.cols, 1)
    total = 0
    for instr in program.instructions:
        attrs = instr.attrs
        if instr.opcode is Opcode.GEMM:
            m, k, n = batch * attrs["m"], attrs["k"], attrs["n"]
            total += -(-(m * k + k * n + m * n) // fabric)
        elif instr.opcode is Opcode.GROUPED_GEMM:
            m, k, n = attrs["m"], attrs["k"], attrs["n"]
            count = batch * attrs["groups"]
            total += count * -(-(m * k + k * n + m * n) // fabric)
    return total


def program_stats(
    config: AcceleratorConfig, program: Program, batch: int
) -> CycleStats:
    """Summed sequential :class:`CycleStats` (``BatchResult.total_stats``).

    Replicates the accelerator's per-job accounting — cycle breakdown,
    MAC count and buffer access counts — from shapes alone.
    """
    total = CycleStats()
    for instr in program.instructions:
        attrs = instr.attrs
        if instr.opcode is Opcode.GEMM:
            plan = plan_tiling(config, batch * attrs["m"], attrs["k"], attrs["n"])
            count = 1
            data_source = "data_buffer"
            weight_source = "weight_buffer"
        elif instr.opcode is Opcode.GROUPED_GEMM:
            plan = plan_tiling(config, attrs["m"], attrs["k"], attrs["n"])
            count = batch * attrs["groups"]
            data_source = attrs["data_source"]
            weight_source = attrs["weight_source"]
        elif instr.opcode in _ACTIVATION_MODES and attrs.get("record", True):
            cycles = _activation_cycles(
                config, instr.opcode, attrs["n"], batch * attrs["groups"]
            )
            total.activation_cycles += cycles
            total.total_cycles += cycles
            continue
        else:
            continue
        cycles = gemm_cycles(config, plan.m, plan.k, plan.n, overlap=False)
        stats = CycleStats(
            total_cycles=cycles["total"] * count,
            compute_cycles=cycles["compute"] * count,
            weight_stall_cycles=cycles["weight_stall"] * count,
            fill_drain_cycles=cycles["fill_drain"] * count,
            mac_count=plan.m * plan.k * plan.n * count,
        )
        weight_words = plan.k * plan.n * len(plan.m_passes) * count
        data_words = plan.m * plan.k * plan.n_tiles * count
        if weight_source != "feedback":
            stats.add_access(f"{weight_source}.read", weight_words)
        if data_source != "feedback":
            stats.add_access(f"{data_source}.read", data_words)
        stats.add_access("accumulator.write", plan.m * plan.n * plan.k_chunks * count)
        total = total + stats
    return total


def program_ops(
    config: AcceleratorConfig, program: Program, batch: int
) -> list[PipelineOp]:
    """One batch's pipeline op timeline, tile for tile (shape-driven)."""
    ops: list[PipelineOp] = []
    for event in program_events(config, program, batch):
        if event.kind == "gemm":
            ops.extend(
                job_ops(
                    config,
                    event.plan,
                    groups=event.groups,
                    weight_source=event.weight_source,
                    layer=event.name,
                )
            )
        else:
            ops.append(activation_op(event.cycles, layer=event.name))
    return ops


def program_stream_timing(
    config: AcceleratorConfig,
    program: Program,
    batch_sizes: Sequence[int],
    window: int = DEFAULT_WINDOW,
    prestage_depth: int = DEFAULT_PRESTAGE_DEPTH,
) -> StreamTiming:
    """Pipelined stream schedule for a sequence of batches of one program."""
    memo: dict[int, list[PipelineOp]] = {}
    ops = []
    for size in batch_sizes:
        if size not in memo:
            memo[size] = program_ops(config, program, size)
        ops.append(memo[size])
    return cached_stream_timing(
        ops, list(batch_sizes), window=window, prestage_depth=prestage_depth
    )


def program_steady_cycles(
    config: AcceleratorConfig,
    program: Program,
    batch: int,
    stream_length: int = 7,
    window: int = DEFAULT_WINDOW,
    prestage_depth: int = DEFAULT_PRESTAGE_DEPTH,
) -> int:
    """Steady-state marginal cycles of one batch in a homogeneous stream."""
    timing = program_stream_timing(
        config,
        program,
        [batch] * max(6, stream_length),
        window=window,
        prestage_depth=prestage_depth,
    )
    return timing.steady_marginal_cycles
