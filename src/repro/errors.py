"""Exception hierarchy for the CapsAcc reproduction.

All exceptions raised on purpose by this package derive from
:class:`ReproError` so callers can catch package-level failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate.
"""


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class QFormatError(ReproError):
    """An invalid fixed-point format specification or conversion."""


class SaturationError(ReproError):
    """A value exceeded its format range while saturation was disabled."""


class ShapeError(ReproError):
    """A tensor shape is inconsistent with the layer or mapping definition."""


class MappingError(ReproError):
    """A dataflow mapping cannot be scheduled onto the configured array."""


class SimulationError(ReproError):
    """The cycle-level simulator reached an inconsistent state."""


class ConfigError(ReproError):
    """An invalid accelerator, model or experiment configuration."""


class GraphError(ReproError):
    """A compiler IR graph is malformed (cycle, dangling tensor, bad shape)."""


class CompileError(ReproError):
    """An IR graph cannot be lowered to an accelerator instruction stream."""


class DataError(ReproError):
    """A dataset could not be loaded or generated."""
