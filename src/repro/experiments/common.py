"""Shared report formatting for the experiment drivers."""

from __future__ import annotations

import math
from typing import Iterable


def format_table(headers: list[str], rows: Iterable[Iterable], title: str = "") -> str:
    """Render rows as a fixed-width ASCII table."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def log_bar_chart(values: dict[str, float], unit: str, width: int = 46) -> str:
    """Render a log-scale horizontal bar chart (the paper's figure style).

    Bars are proportional to ``log10(value / min_value)`` so an order of
    magnitude difference is clearly visible, matching the log axes of
    Figs 8, 9, 16 and 17.
    """
    positive = {k: v for k, v in values.items() if v > 0}
    if not positive:
        return "(no data)"
    low = min(positive.values())
    high = max(positive.values())
    span = math.log10(high / low) if high > low else 1.0
    label_width = max(len(name) for name in values)
    lines = []
    for name, value in values.items():
        if value <= 0:
            bar = ""
        else:
            fraction = math.log10(value / low) / span if span else 1.0
            bar = "#" * max(1, int(round(fraction * width)))
        lines.append(f"{name.ljust(label_width)}  {value:>12.2f} {unit}  |{bar}")
    return "\n".join(lines)


def percent(value: float) -> str:
    """Format a fraction as a percentage, using "<1%" like the paper."""
    pct = value * 100.0
    if pct < 1.0:
        return "<1%"
    return f"{pct:.0f}%"


def ratio_label(speedup: float) -> str:
    """Annotate a speedup the way the paper does (Nx faster / % slower)."""
    if speedup >= 1.0:
        return f"{speedup:.2g}x faster"
    return f"{(1.0 / speedup - 1.0) * 100:.0f}% slower"
