"""Section III motivational analysis: memory vs compute intensity.

Reproduces the paper's three "key observations" (Section III-C):

1. CapsuleNet inference is more compute-intensive than memory-intensive;
2. massive parallel compute is needed to match/beat the GPU on the
   convolution layers;
3. all parameters fit the 8 MB on-chip memory, and buffers between memory
   and the PEs sustain throughput.

The analysis places each layer on the accelerator's roofline and reports
arithmetic intensities, the on-chip fit, and the buffer bandwidth needed to
keep the array busy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.capsnet.params import total_weight_bytes
from repro.experiments.common import format_table
from repro.hw.config import AcceleratorConfig
from repro.perf.roofline import (
    RooflinePoint,
    capsacc_machine,
    layer_roofline_points,
    network_roofline_point,
)


@dataclass
class MotivationResult:
    """Roofline placement and memory-fit facts."""

    layer_points: list[RooflinePoint]
    network_point: RooflinePoint
    ridge_intensity: float
    compute_bound_layers: dict[str, bool]
    weight_megabytes: float
    fits_onchip: bool


def run(
    config: CapsNetConfig | None = None,
    accelerator: AcceleratorConfig | None = None,
) -> MotivationResult:
    """Run the Section III analysis."""
    config = config if config is not None else mnist_capsnet_config()
    accelerator = accelerator if accelerator is not None else AcceleratorConfig()
    machine = capsacc_machine(accelerator)
    points = layer_roofline_points(config)
    network = network_roofline_point(config)
    weight_mb = total_weight_bytes(config) / (1024 * 1024)
    return MotivationResult(
        layer_points=points,
        network_point=network,
        ridge_intensity=machine.ridge_intensity,
        compute_bound_layers={
            point.name: machine.is_compute_bound(point) for point in points
        },
        weight_megabytes=weight_mb,
        fits_onchip=weight_mb <= accelerator.onchip_memory_mb,
    )


def format_report(result: MotivationResult) -> str:
    """Printable Section III summary."""
    rows = []
    for point in result.layer_points + [result.network_point]:
        bound = result.compute_bound_layers.get(point.name)
        label = "-" if bound is None else ("compute" if bound else "memory")
        rows.append(
            (
                point.name,
                f"{point.operations / 1e6:.1f}M",
                f"{point.bytes_moved / 1e6:.2f}MB",
                f"{point.arithmetic_intensity:.1f}",
                label,
            )
        )
    table = format_table(
        ["layer", "MACs", "min traffic", "ops/byte", "bound"],
        rows,
        title=(
            "Section III analysis (accelerator ridge at"
            f" {result.ridge_intensity:.1f} ops/byte)"
        ),
    )
    fit = "fits" if result.fits_onchip else "DOES NOT FIT"
    notes = (
        f"\nParameters at 8-bit: {result.weight_megabytes:.2f} MB — {fit} the"
        " 8 MB on-chip memory (paper observation 3)."
        "\nConvolution layers sit far right of the ridge: compute-intensive,"
        " exactly the paper's observation 1."
    )
    return table + notes
