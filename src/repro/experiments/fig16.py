"""Fig 16: layer-wise CapsAcc vs GPU comparison.

The paper annotates: ClassCaps 12x faster, overall 6x faster, Conv1 46%
slower.  Our default convolution mapping (output channels across columns)
makes Conv1 *faster* than the GPU as well; the paper's accumulator-
minimizing channel-serial mapping — available as an ablation — is slower
than the GPU on Conv1, bracketing the paper's annotation.  The report
states both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.experiments.common import format_table, log_bar_chart, ratio_label
from repro.hw.config import AcceleratorConfig
from repro.perf.compare import SpeedupReport, compare_layers
from repro.perf.model import CapsAccPerformanceModel


@dataclass
class Fig16Result:
    """Layer comparison plus the direction check against the paper."""

    report: SpeedupReport
    directions: dict[str, bool]


def run(
    config: CapsNetConfig | None = None,
    accelerator: AcceleratorConfig | None = None,
    conv_policy: str = "channel_parallel",
) -> Fig16Result:
    """Run the Fig 16 comparison."""
    config = config if config is not None else mnist_capsnet_config()
    model = CapsAccPerformanceModel(
        accelerator=accelerator if accelerator is not None else AcceleratorConfig(),
        network=config,
        conv_policy=conv_policy,
    )
    report = compare_layers(network=config, capsacc=model)
    directions = {row.name: row.direction_matches_paper for row in report.rows}
    return Fig16Result(report=report, directions=directions)


def format_report(result: Fig16Result) -> str:
    """Printable Fig 16 with paper annotations."""
    rows = []
    chart_values: dict[str, float] = {}
    for row in result.report.rows:
        paper = ratio_label(row.paper_speedup) if row.paper_speedup else "-"
        rows.append((row.name, row.gpu_us / 1e3, row.capsacc_us / 1e3, ratio_label(row.speedup), paper))
        chart_values[f"{row.name} GPU"] = row.gpu_us / 1e3
        chart_values[f"{row.name} CapsAcc"] = row.capsacc_us / 1e3
    table = format_table(
        ["Layer", "GPU [ms]", "CapsAcc [ms]", "speedup", "paper"],
        rows,
        title="Fig 16: layer-wise CapsAcc vs GPU",
    )
    chart = log_bar_chart(chart_values, "ms")
    return table + "\n\n" + chart
