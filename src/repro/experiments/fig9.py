"""Fig 9: GPU time per routing-by-agreement step.

Reproduces the paper's key motivational finding: the squashing operation
dominates every routing iteration on the GPU (framework dispatch overheads
on tiny per-capsule tensors), which is what the accelerator's LUT-based
squash unit attacks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.experiments.common import format_table, log_bar_chart
from repro.perf.calibration import PAPER_GPU_STEP_US
from repro.perf.gpu import GpuModel, gtx1070_paper_profile
from repro.perf.kernels import CapsNetGpuWorkload


@dataclass
class Fig9Result:
    """Per-step GPU times in execution order."""

    step_us: dict[str, float]
    paper_step_us: dict[str, float]

    @property
    def dominant_step(self) -> str:
        """The slowest routing step (paper: Squash)."""
        return max(self.step_us, key=self.step_us.get)


def run(
    config: CapsNetConfig | None = None,
    gpu: GpuModel | None = None,
) -> Fig9Result:
    """Evaluate the GPU model per routing step."""
    config = config if config is not None else mnist_capsnet_config()
    gpu = gpu if gpu is not None else GpuModel(gtx1070_paper_profile())
    workload = CapsNetGpuWorkload(config)
    step_us = {
        label: gpu.sequence_time_us(kernels)
        for label, kernels in workload.routing_step_kernels().items()
    }
    return Fig9Result(step_us=step_us, paper_step_us=PAPER_GPU_STEP_US)


def format_report(result: Fig9Result) -> str:
    """Printable Fig 9 with paper values alongside."""
    rows = []
    for label, us in result.step_us.items():
        base = label.rstrip("123")
        rows.append((label, us, result.paper_step_us.get(base, "-")))
    table = format_table(
        ["Step", "model [us]", "paper (digitized) [us]"],
        rows,
        title="Fig 9: GPU time per routing step",
    )
    chart = log_bar_chart(result.step_us, "us")
    note = f"\nDominant step: {result.dominant_step} (paper: Squash)."
    return table + "\n\n" + chart + note
