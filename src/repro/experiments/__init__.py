"""Experiment drivers: one module per paper table and figure.

Every driver exposes ``run()`` returning a structured result and
``format_report(result)`` returning the printable artifact; ``runner.py``
executes the full suite (used by EXPERIMENTS.md and the benchmarks).

=========  ==========================================================
driver     paper artifact
=========  ==========================================================
table1     Table I — per-layer inputs / parameters / outputs
fig3       Fig 3 — squashing function and derivative peak
fig5       Fig 5 — parameter distribution across layers
fig8       Fig 8 — GPU layer-wise inference time
fig9       Fig 9 — GPU routing-step time
fig16      Fig 16 — CapsAcc vs GPU per layer
fig17      Fig 17 — CapsAcc vs GPU per routing step
table2     Table II — synthesized accelerator parameters
table3     Table III — per-component area and power
fig18      Fig 18 — area / power breakdowns
ablations  design-choice studies (routing skip, weight reuse, array
           size, bit width, conv mapping policy)
accuracy   float-vs-quantized classification parity
motivation Section III analysis (compute vs memory intensity, 8 MB fit)
energy     energy per inference (top-down vs bottom-up, extension)
batching   GPU batch-throughput crossover (extension)
faults     serving fault tolerance: crash rate x retry budget (extension)
=========  ==========================================================
"""

from repro.experiments import (
    ablations,
    accuracy,
    batching,
    energy,
    faults,
    fig3,
    fig5,
    fig8,
    fig9,
    fig16,
    fig17,
    fig18,
    motivation,
    runner,
    table1,
    table2,
    table3,
)

__all__ = [
    "table1",
    "fig3",
    "fig5",
    "fig8",
    "fig9",
    "fig16",
    "fig17",
    "table2",
    "table3",
    "fig18",
    "ablations",
    "accuracy",
    "motivation",
    "energy",
    "batching",
    "faults",
    "runner",
]
