"""Run every experiment and assemble the full report.

``python -m repro.experiments.runner`` prints every table and figure of the
paper next to the digitized paper values; ``run_all`` returns the raw
results for programmatic use (the benchmark harness and EXPERIMENTS.md are
generated from it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import (
    ablations,
    accuracy,
    batching,
    energy,
    faults,
    fig3,
    fig5,
    fig8,
    fig9,
    fig16,
    fig17,
    fig18,
    motivation,
    table1,
    table2,
    table3,
)

class _IntegrityDriver:
    """Adapter exposing the integrity grid with the uniform interface."""

    run = staticmethod(faults.run_integrity)
    format_report = staticmethod(faults.format_integrity_report)


#: Drivers with a uniform run/format interface, in paper order.
STANDARD_DRIVERS = {
    "table1": table1,
    "fig3": fig3,
    "fig5": fig5,
    "fig8": fig8,
    "fig9": fig9,
    "fig16": fig16,
    "fig17": fig17,
    "table2": table2,
    "table3": table3,
    "fig18": fig18,
    "motivation": motivation,
    "energy": energy,
    "batching": batching,
    "faults": faults,
    "integrity": _IntegrityDriver,
}


@dataclass
class SuiteResult:
    """All experiment results keyed by artifact id."""

    results: dict = field(default_factory=dict)
    reports: dict = field(default_factory=dict)

    def report_text(self) -> str:
        """The full printable report."""
        separator = "\n\n" + "=" * 72 + "\n\n"
        return separator.join(self.reports[key] for key in self.reports)


def run_all(include_accuracy: bool = True, include_ablations: bool = True) -> SuiteResult:
    """Execute every experiment driver."""
    suite = SuiteResult()
    for key, driver in STANDARD_DRIVERS.items():
        result = driver.run()
        suite.results[key] = result
        suite.reports[key] = driver.format_report(result)
    if include_ablations:
        ablation_results = ablations.run_all()
        suite.results["ablations"] = ablation_results
        suite.reports["ablations"] = ablations.format_report(ablation_results)
    if include_accuracy:
        accuracy_result = accuracy.run()
        suite.results["accuracy"] = accuracy_result
        suite.reports["accuracy"] = accuracy.format_report(accuracy_result)
    return suite


def main() -> None:
    """Entry point: print the full suite report."""
    suite = run_all()
    print(suite.report_text())


if __name__ == "__main__":
    main()
