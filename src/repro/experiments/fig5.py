"""Fig 5: distribution of trainable parameters across layers.

The paper annotates the pie chart with <1% (Conv1), 78% (PrimaryCaps),
22% (ClassCaps) and <1% (coupling coefficients); these fractions follow
exactly from the Table I parameter counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.capsnet.params import parameter_breakdown
from repro.experiments.common import format_table, percent

#: The paper's pie-chart annotations.
PAPER_FRACTIONS = {
    "Conv1": "<1%",
    "PrimaryCaps": "78%",
    "ClassCaps": "22%",
    "Coupling Coeff": "<1%",
}


@dataclass
class Fig5Result:
    """Computed fractions plus the paper's annotations."""

    fractions: dict[str, float]
    paper_labels: dict[str, str]

    def label(self, layer: str) -> str:
        """Our percentage label in the paper's style."""
        return percent(self.fractions[layer])

    @property
    def matches_paper(self) -> bool:
        """Whether every rounded label equals the paper annotation."""
        return all(self.label(layer) == label for layer, label in self.paper_labels.items())


def run(config: CapsNetConfig | None = None) -> Fig5Result:
    """Compute the Fig 5 fractions."""
    config = config if config is not None else mnist_capsnet_config()
    return Fig5Result(fractions=parameter_breakdown(config), paper_labels=PAPER_FRACTIONS)


def format_report(result: Fig5Result) -> str:
    """Printable Fig 5 comparison."""
    rows = [
        (layer, f"{fraction * 100:.2f}%", result.label(layer), result.paper_labels.get(layer, "-"))
        for layer, fraction in result.fractions.items()
    ]
    table = format_table(
        ["Layer", "exact", "label", "paper"],
        rows,
        title="Fig 5: trainable parameter distribution",
    )
    verdict = "\nLabels match the paper: " + ("yes" if result.matches_paper else "NO")
    return table + verdict
