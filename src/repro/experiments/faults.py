"""Fault-tolerance study: goodput vs crash rate vs retry budget.

The serving extension's fault layer (:mod:`repro.serve.faults`) injects
deterministic worker crashes — a per-placement Bernoulli draw from a
seeded stream — and contains them with bounded retry/requeue plus array
quarantine and health-probed readmission.  :func:`run` maps that design
space: one saturating Poisson trace served under every (crash rate,
retry budget) pair, reporting goodput (completed / offered), terminal
failures, retry volume, quarantine recovery time, and the p99 latency
cost of riding through the faults.  Closed-form batch costs keep the
grid cheap.

The study quantifies the two claims the fault layer makes: a retry
budget of a few attempts is enough to hold goodput at 100% under
transient crash rates (failures appear only when the budget is cut to
one attempt), and the latency price of fault tolerance is paid in the
tail, not the median.

:func:`run_integrity` maps the silent-data-corruption axis the same
way: one trace served under every (corruption rate, check mode) pair —
no checks, ABFT checksums, checksums + canary probes
(:mod:`repro.serve.integrity`) — reporting the corrupted-served
fraction, goodput, and the p99 cost of the checks.  The headline claim:
with checksums armed the corrupted-served fraction is exactly zero
(every in-envelope flip is detected and retried), while the unchecked
server quietly returns corrupted results at the injection rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.experiments.common import format_table
from repro.hw.config import AcceleratorConfig


@dataclass
class FaultStudyResult:
    """One row per (crash rate, retry budget) grid point."""

    rows: list[dict]
    rate_multiplier: float
    offered_rps: float
    arrays: int

    def row(self, crash_rate: float, max_attempts: int) -> dict:
        """The grid row of one (crash rate, retry budget) pair."""
        for entry in self.rows:
            if (
                entry["crash_rate"] == crash_rate
                and entry["max_attempts"] == max_attempts
            ):
                return entry
        raise KeyError((crash_rate, max_attempts))


@dataclass
class IntegrityStudyResult:
    """One row per (corruption rate, check mode) grid point."""

    rows: list[dict]
    rate_multiplier: float
    offered_rps: float
    arrays: int

    def row(self, corrupt_rate: float, mode: str) -> dict:
        """The grid row of one (corruption rate, check mode) pair."""
        for entry in self.rows:
            if entry["corrupt_rate"] == corrupt_rate and entry["mode"] == mode:
                return entry
        raise KeyError((corrupt_rate, mode))


def run(
    config: CapsNetConfig | None = None,
    accelerator: AcceleratorConfig | None = None,
    crash_rates: tuple[float, ...] = (0.0, 0.05, 0.15),
    attempt_budgets: tuple[int, ...] = (1, 3),
    rate_multiplier: float = 2.5,
    requests: int = 192,
    max_batch: int = 8,
    max_wait_us: float = 2000.0,
    arrays: int = 2,
    seed: int = 7,
    fault_seed: int = 11,
) -> FaultStudyResult:
    """Serve one trace under every (crash rate, retry budget) pair.

    The arrival rate is ``rate_multiplier`` times the pool's batch-1
    service capacity (the saturation scenario the other serving studies
    use); every grid point sees the same trace and the same fault seed,
    so rows differ only in the injected crash probability and the
    per-request attempt budget.  ``crash_rate=0`` rows run without an
    injector — the no-fault baseline the overhead gate measures against.
    """
    from repro.serve import (
        AnalyticBatchCost,
        FaultPlan,
        RetryPolicy,
        ServerConfig,
        ServingSimulator,
        poisson_trace,
    )

    config = config if config is not None else mnist_capsnet_config()
    accelerator = accelerator if accelerator is not None else AcceleratorConfig()
    cost = AnalyticBatchCost(network=config, accel_config=accelerator)
    capacity_rps = arrays * accelerator.clock_mhz * 1e6 / cost.batch_cycles(1)
    trace = poisson_trace(
        rate_multiplier * capacity_rps, requests, np.random.default_rng(seed)
    )
    rows = []
    for crash_rate in crash_rates:
        for max_attempts in attempt_budgets:
            server = ServerConfig.from_policy(
                "fifo",
                cost,
                max_batch=max_batch,
                max_wait_us=max_wait_us,
                arrays=arrays,
                fault_plan=(
                    FaultPlan(crash_rate=crash_rate, seed=fault_seed)
                    if crash_rate > 0.0
                    else None
                ),
                retry=RetryPolicy(max_attempts=max_attempts),
            )
            report = ServingSimulator(trace, server=server).run()
            latency = report.latency_summary()["total"]
            faults = report.faults or {}
            rows.append(
                {
                    "crash_rate": crash_rate,
                    "max_attempts": max_attempts,
                    "offered": report.offered,
                    "completed": report.completed,
                    "goodput": report.goodput,
                    "failed": report.failed_count,
                    "crashes": int(faults.get("crashes", 0)),
                    "retries": int(faults.get("retries", 0)),
                    "quarantines": int(faults.get("quarantines", 0)),
                    "recovery_max_us": float(faults.get("recovery_max_us", 0.0)),
                    "p50_us": latency["p50_us"],
                    "p99_us": latency["p99_us"],
                }
            )
    return FaultStudyResult(
        rows=rows,
        rate_multiplier=rate_multiplier,
        offered_rps=trace.offered_rps,
        arrays=arrays,
    )


def run_integrity(
    accelerator: AcceleratorConfig | None = None,
    corrupt_rates: tuple[float, ...] = (0.0, 0.08),
    check_modes: tuple[str, ...] = ("none", "checksum", "checksum+canary"),
    network: str = "mnist",
    rate_multiplier: float = 2.5,
    requests: int = 192,
    max_batch: int = 8,
    max_wait_us: float = 2000.0,
    arrays: int = 2,
    seed: int = 7,
    fault_seed: int = 11,
) -> IntegrityStudyResult:
    """Serve one trace under every (corruption rate, check mode) pair.

    Detection coverage and check overhead in one grid: rows with
    ``mode='none'`` serve corrupted results silently (the
    corrupted-served fraction tracks the injection rate), checksum rows
    detect every in-envelope flip and retry it (corrupted-served is
    exactly zero), and the ``corrupt_rate=0`` rows isolate the pure
    overhead of pricing the ABFT checksums into every batch.  The
    network comes from the model zoo because integrity pricing needs a
    compiled instruction stream to checksum.
    """
    from repro.serve import (
        AnalyticBatchCost,
        FaultPlan,
        ServerConfig,
        ServingSimulator,
        poisson_trace,
    )

    accelerator = accelerator if accelerator is not None else AcceleratorConfig()
    costs = {
        mode: AnalyticBatchCost(
            network=network, accel_config=accelerator, integrity=mode
        )
        for mode in check_modes
    }
    baseline = next(iter(costs.values()))
    capacity_rps = arrays * accelerator.clock_mhz * 1e6 / baseline.batch_cycles(1)
    trace = poisson_trace(
        rate_multiplier * capacity_rps, requests, np.random.default_rng(seed)
    )
    rows = []
    for corrupt_rate in corrupt_rates:
        for mode in check_modes:
            server = ServerConfig.from_policy(
                "fifo",
                costs[mode],
                max_batch=max_batch,
                max_wait_us=max_wait_us,
                arrays=arrays,
                fault_plan=(
                    FaultPlan(corrupt_rate=corrupt_rate, seed=fault_seed)
                    if corrupt_rate > 0.0
                    else None
                ),
                integrity=mode if mode != "none" else None,
            )
            report = ServingSimulator(trace, server=server).run()
            latency = report.latency_summary()["total"]
            faults = report.faults or {}
            corrupted_served = int(faults.get("corrupted_served", 0))
            rows.append(
                {
                    "corrupt_rate": corrupt_rate,
                    "mode": mode,
                    "offered": report.offered,
                    "completed": report.completed,
                    "goodput": report.goodput,
                    "corruptions": int(faults.get("corruptions", 0)),
                    "detected": int(faults.get("detected", 0)),
                    "corrupted_served": corrupted_served,
                    "corrupted_fraction": corrupted_served / max(report.offered, 1),
                    "canaries": int(faults.get("canaries", 0)),
                    "retries": int(faults.get("retries", 0)),
                    "p50_us": latency["p50_us"],
                    "p99_us": latency["p99_us"],
                }
            )
    return IntegrityStudyResult(
        rows=rows,
        rate_multiplier=rate_multiplier,
        offered_rps=trace.offered_rps,
        arrays=arrays,
    )


def format_report(result: FaultStudyResult) -> str:
    """Printable fault-tolerance grid."""
    rows = [
        (
            f"{entry['crash_rate']:g}",
            str(entry["max_attempts"]),
            f"{entry['goodput']:.1%}",
            str(entry["failed"]),
            str(entry["crashes"]),
            str(entry["retries"]),
            f"{entry['recovery_max_us'] / 1e3:.1f}",
            f"{entry['p50_us'] / 1e3:.2f}",
            f"{entry['p99_us'] / 1e3:.2f}",
        )
        for entry in result.rows
    ]
    return format_table(
        [
            "crash rate",
            "budget",
            "goodput",
            "failed",
            "crashes",
            "retries",
            "recover ms",
            "p50 ms",
            "p99 ms",
        ],
        rows,
        title=(
            "Fault-tolerance study: crash rate x retry budget"
            f" ({result.rate_multiplier:g}x saturation,"
            f" {result.offered_rps:,.0f} req/s offered,"
            f" {result.arrays} array(s))"
        ),
    )


def format_integrity_report(result: IntegrityStudyResult) -> str:
    """Printable detection-coverage x check-overhead grid."""
    rows = [
        (
            f"{entry['corrupt_rate']:g}",
            entry["mode"],
            f"{entry['goodput']:.1%}",
            str(entry["corruptions"]),
            str(entry["detected"]),
            f"{entry['corrupted_fraction']:.1%}",
            str(entry["canaries"]),
            str(entry["retries"]),
            f"{entry['p50_us'] / 1e3:.2f}",
            f"{entry['p99_us'] / 1e3:.2f}",
        )
        for entry in result.rows
    ]
    return format_table(
        [
            "corrupt rate",
            "checks",
            "goodput",
            "corrupt",
            "detect",
            "served bad",
            "canaries",
            "retries",
            "p50 ms",
            "p99 ms",
        ],
        rows,
        title=(
            "Integrity study: corruption rate x check mode"
            f" ({result.rate_multiplier:g}x saturation,"
            f" {result.offered_rps:,.0f} req/s offered,"
            f" {result.arrays} array(s))"
        ),
    )
