"""Export experiment results as machine-readable artifacts.

Writes one CSV per figure/table (the data series behind each paper plot)
plus a combined JSON manifest — the format downstream users need to
re-plot the paper's figures with their own tooling.

::

    python -m repro.experiments.export out/        # writes out/*.csv + manifest
"""

from __future__ import annotations

import csv
import json
import sys
from pathlib import Path

from repro.experiments import (
    fig3,
    fig5,
    fig8,
    fig9,
    fig16,
    fig17,
    fig18,
    table1,
    table2,
    table3,
)


def _write_csv(path: Path, headers: list[str], rows: list) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)


def export_table1(directory: Path) -> Path:
    """Table I rows with paper values alongside."""
    result = table1.run()
    rows = []
    for name, inputs, params, outputs in result.rows:
        paper = result.paper_rows.get(name, {})
        rows.append(
            (name, inputs, params, outputs,
             paper.get("inputs"), paper.get("parameters"), paper.get("outputs"))
        )
    path = directory / "table1.csv"
    _write_csv(
        path,
        ["layer", "inputs", "parameters", "outputs",
         "paper_inputs", "paper_parameters", "paper_outputs"],
        rows,
    )
    return path


def export_fig3(directory: Path) -> Path:
    """The sampled squash curve and its derivative."""
    result = fig3.run()
    rows = list(zip(result.x, result.squash, result.derivative))
    path = directory / "fig3.csv"
    _write_csv(path, ["x", "squash", "derivative"], rows)
    return path


def export_fig5(directory: Path) -> Path:
    """Parameter distribution fractions."""
    result = fig5.run()
    rows = [
        (layer, fraction, result.paper_labels.get(layer, ""))
        for layer, fraction in result.fractions.items()
    ]
    path = directory / "fig5.csv"
    _write_csv(path, ["layer", "fraction", "paper_label"], rows)
    return path


def export_fig8(directory: Path) -> Path:
    """GPU layer times."""
    result = fig8.run()
    rows = [
        (layer, ms, result.paper_layer_ms.get(layer))
        for layer, ms in result.layer_ms.items()
    ]
    path = directory / "fig8.csv"
    _write_csv(path, ["layer", "model_ms", "paper_ms"], rows)
    return path


def export_fig9(directory: Path) -> Path:
    """GPU routing-step times."""
    result = fig9.run()
    rows = [
        (step, us, result.paper_step_us.get(step.rstrip("123")))
        for step, us in result.step_us.items()
    ]
    path = directory / "fig9.csv"
    _write_csv(path, ["step", "model_us", "paper_us"], rows)
    return path


def export_fig16(directory: Path) -> Path:
    """Layer-wise comparison series."""
    result = fig16.run()
    rows = [
        (row.name, row.gpu_us, row.capsacc_us, row.speedup, row.paper_speedup)
        for row in result.report.rows
    ]
    path = directory / "fig16.csv"
    _write_csv(path, ["layer", "gpu_us", "capsacc_us", "speedup", "paper_speedup"], rows)
    return path


def export_fig17(directory: Path) -> Path:
    """Routing-step comparison series."""
    result = fig17.run()
    rows = [
        (row.name, row.gpu_us, row.capsacc_us, row.speedup, row.paper_speedup)
        for row in result.report.rows
    ]
    path = directory / "fig17.csv"
    _write_csv(path, ["step", "gpu_us", "capsacc_us", "speedup", "paper_speedup"], rows)
    return path


def export_table2(directory: Path) -> Path:
    """Synthesis parameters."""
    result = table2.run()
    rows = [(row["parameter"], row["ours"], row["paper"]) for row in result.rows]
    path = directory / "table2.csv"
    _write_csv(path, ["parameter", "model", "paper"], rows)
    return path


def export_table3(directory: Path) -> Path:
    """Per-component area and power."""
    result = table3.run()
    rows = [
        (row["component"], row["area_um2"], row["paper_area_um2"],
         row["power_mw"], row["paper_power_mw"])
        for row in result.rows
    ]
    path = directory / "table3.csv"
    _write_csv(
        path,
        ["component", "area_um2", "paper_area_um2", "power_mw", "paper_power_mw"],
        rows,
    )
    return path


def export_fig18(directory: Path) -> Path:
    """Area and power breakdown fractions."""
    result = fig18.run()
    rows = [
        (name, area, result.power_fractions[name])
        for name, area in result.area_fractions.items()
    ]
    path = directory / "fig18.csv"
    _write_csv(path, ["component", "area_fraction", "power_fraction"], rows)
    return path


#: Exporters by artifact id.
EXPORTERS = {
    "table1": export_table1,
    "fig3": export_fig3,
    "fig5": export_fig5,
    "fig8": export_fig8,
    "fig9": export_fig9,
    "fig16": export_fig16,
    "fig17": export_fig17,
    "table2": export_table2,
    "table3": export_table3,
    "fig18": export_fig18,
}


def export_all(directory: str | Path) -> dict[str, str]:
    """Write every artifact CSV plus a JSON manifest; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {}
    for artifact, exporter in EXPORTERS.items():
        manifest[artifact] = str(exporter(directory))
    manifest_path = directory / "manifest.json"
    with open(manifest_path, "w") as handle:
        json.dump({"artifacts": manifest}, handle, indent=2)
    manifest["manifest"] = str(manifest_path)
    return manifest


def main() -> None:
    """Entry point: ``python -m repro.experiments.export <dir>``."""
    directory = sys.argv[1] if len(sys.argv) > 1 else "artifacts"
    paths = export_all(directory)
    for artifact, path in paths.items():
        print(f"{artifact:10s} -> {path}")


if __name__ == "__main__":
    main()
