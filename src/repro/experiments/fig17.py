"""Fig 17: per-routing-step CapsAcc vs GPU comparison.

The paper annotates: Load 9% faster, FC 14% slower, Softmax 3x, Sum 3x,
Squash 172x, Update 6x.  The sum and update factors reproduce closely;
squashing reproduces in *direction and dominance* (it is by far the
largest win) but with a larger factor, because our LUT squash pipeline is
idealized relative to the unpublished RTL serialization; FC reproduces the
crossover (the GPU wins) — see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.experiments.common import format_table, log_bar_chart, ratio_label
from repro.hw.config import AcceleratorConfig
from repro.perf.compare import SpeedupReport, compare_routing_steps
from repro.perf.model import CapsAccPerformanceModel


@dataclass
class Fig17Result:
    """Routing-step comparison plus direction checks."""

    report: SpeedupReport
    directions: dict[str, bool]
    optimized_routing: bool


def run(
    config: CapsNetConfig | None = None,
    accelerator: AcceleratorConfig | None = None,
    optimized_routing: bool = True,
) -> Fig17Result:
    """Run the Fig 17 comparison."""
    config = config if config is not None else mnist_capsnet_config()
    model = CapsAccPerformanceModel(
        accelerator=accelerator if accelerator is not None else AcceleratorConfig(),
        network=config,
        optimized_routing=optimized_routing,
    )
    report = compare_routing_steps(network=config, capsacc=model)
    directions = {row.name: row.direction_matches_paper for row in report.rows}
    return Fig17Result(
        report=report, directions=directions, optimized_routing=optimized_routing
    )


def format_report(result: Fig17Result) -> str:
    """Printable Fig 17 with paper annotations."""
    rows = []
    chart_values: dict[str, float] = {}
    for row in result.report.rows:
        paper = ratio_label(row.paper_speedup) if row.paper_speedup else "-"
        rows.append((row.name, row.gpu_us, row.capsacc_us, ratio_label(row.speedup), paper))
        chart_values[f"{row.name} GPU"] = row.gpu_us
        chart_values[f"{row.name} Acc"] = row.capsacc_us
    title = "Fig 17: routing-step CapsAcc vs GPU"
    if result.optimized_routing:
        title += " (softmax1 skipped by the routing optimization)"
    table = format_table(
        ["Step", "GPU [us]", "CapsAcc [us]", "speedup", "paper"], rows, title=title
    )
    chart = log_bar_chart(chart_values, "us")
    return table + "\n\n" + chart
