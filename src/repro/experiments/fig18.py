"""Fig 18: area and power breakdowns of the accelerator.

The paper's breakdowns show the buffers dominating (the data buffer alone
~46-47%) with the systolic array about a quarter of the budget — the
data-reuse argument in silicon.  Both breakdowns follow structurally from
the synthesis model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import format_table, percent
from repro.hw.config import AcceleratorConfig
from repro.perf.calibration import PAPER_AREA_BREAKDOWN_PCT, PAPER_POWER_BREAKDOWN_PCT
from repro.synthesis.report import SynthesisReport


@dataclass
class Fig18Result:
    """Area and power fractions with paper annotations."""

    area_fractions: dict[str, float]
    power_fractions: dict[str, float]

    def buffers_dominate(self) -> bool:
        """Paper's qualitative claim: buffers >50%, array about 1/4."""
        buffers = sum(
            self.area_fractions[name]
            for name in ("Data Buffer", "Routing Buffer", "Weight Buffer")
        )
        array = self.area_fractions["Systolic Array"]
        return buffers > 0.5 and 0.15 < array < 0.35


def run(config: AcceleratorConfig | None = None) -> Fig18Result:
    """Compute the Fig 18 breakdowns."""
    report = SynthesisReport(config=config if config is not None else AcceleratorConfig())
    return Fig18Result(
        area_fractions=report.area_breakdown(),
        power_fractions=report.power_breakdown(),
    )


def format_report(result: Fig18Result) -> str:
    """Printable Fig 18 comparison."""
    rows = []
    for name, area in result.area_fractions.items():
        rows.append(
            (
                name,
                percent(area),
                f"{PAPER_AREA_BREAKDOWN_PCT.get(name, 0):.0f}%",
                percent(result.power_fractions[name]),
                f"{PAPER_POWER_BREAKDOWN_PCT.get(name, 0):.0f}%",
            )
        )
    table = format_table(
        ["Component", "Area", "(paper)", "Power", "(paper)"],
        rows,
        title="Fig 18: area and power breakdown",
    )
    verdict = "\nBuffers dominate, array ~1/4 of budget: " + (
        "yes" if result.buffers_dominate() else "NO"
    )
    return table + verdict
