"""Fig 3: the squashing function, its derivative and the derivative peak.

The paper reports the derivative peak at (0.5767, 0.6495); analytically the
peak of ``d/dx [x^2 / (1 + x^2)] = 2x / (1 + x^2)^2`` sits at
``x = 1/sqrt(3) ~ 0.57735`` with value ``3 * sqrt(3) / 8 = 0.6495...``.
The driver samples both curves, locates the peak numerically, and also
reports the worst-case error of the hardware squash LUT against the exact
function over its full input grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.capsnet.ops import squash_scalar, squash_scalar_derivative
from repro.experiments.common import format_table
from repro.fixedpoint.luts import build_squash_lut, squash_gain
from repro.fixedpoint.quantize import from_raw
from repro.perf.calibration import PAPER_SQUASH_DERIVATIVE_PEAK


@dataclass
class Fig3Result:
    """Sampled curves and peak location."""

    x: np.ndarray
    squash: np.ndarray
    derivative: np.ndarray
    peak_x: float
    peak_y: float
    analytic_peak_x: float
    analytic_peak_y: float
    paper_peak: tuple[float, float]
    lut_max_error: float


def run(samples: int = 2001, x_max: float = 6.0) -> Fig3Result:
    """Sample the squashing function on ``[0, x_max]`` and find the peak."""
    x = np.linspace(0.0, x_max, samples)
    y = squash_scalar(x)
    dy = squash_scalar_derivative(x)
    peak_index = int(np.argmax(dy))
    analytic_x = 1.0 / np.sqrt(3.0)
    analytic_y = float(squash_scalar_derivative(analytic_x))
    lut = build_squash_lut()
    max_error = _lut_max_error(lut)
    return Fig3Result(
        x=x,
        squash=y,
        derivative=dy,
        peak_x=float(x[peak_index]),
        peak_y=float(dy[peak_index]),
        analytic_peak_x=analytic_x,
        analytic_peak_y=analytic_y,
        paper_peak=PAPER_SQUASH_DERIVATIVE_PEAK,
        lut_max_error=max_error,
    )


def _lut_max_error(lut) -> float:
    """Worst-case LUT output error over every (data, norm) grid point.

    The reference applies the same [-1, 1] clamp the ROM builder does
    (squashed components are bounded by 1) before format clipping.
    """
    data_codes = np.arange(lut.a_fmt.raw_min, lut.a_fmt.raw_max + 1)
    norm_codes = np.arange(lut.b_fmt.raw_min, lut.b_fmt.raw_max + 1)
    data_grid, norm_grid = np.meshgrid(data_codes, norm_codes, indexing="ij")
    exact = from_raw(data_grid, lut.a_fmt) * squash_gain(from_raw(norm_grid, lut.b_fmt))
    exact = np.clip(exact, -1.0, 1.0)
    exact = np.clip(exact, lut.out_fmt.min_value, lut.out_fmt.max_value)
    got = from_raw(lut.lookup(data_grid, norm_grid), lut.out_fmt)
    return float(np.max(np.abs(got - exact)))


def format_report(result: Fig3Result) -> str:
    """Printable Fig 3 summary."""
    rows = [
        ("numeric peak", result.peak_x, result.peak_y),
        ("analytic peak (1/sqrt(3), 3*sqrt(3)/8)", result.analytic_peak_x, result.analytic_peak_y),
        ("paper peak", result.paper_peak[0], result.paper_peak[1]),
    ]
    table = format_table(["quantity", "x", "y"], rows, title="Fig 3: squash derivative peak")
    samples = [0.0, 0.5, 1.0, 2.0, 4.0, 6.0]
    curve_rows = [
        (x, float(squash_scalar(x)), float(squash_scalar_derivative(x))) for x in samples
    ]
    curve = format_table(["x", "squash(x)", "squash'(x)"], curve_rows, title="\nCurve samples")
    lut_line = f"\nHardware squash LUT max error vs exact: {result.lut_max_error:.4f}"
    return table + "\n" + curve + lut_line
