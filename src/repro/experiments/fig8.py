"""Fig 8: layer-wise GPU inference time.

Runs the GPU workload model per layer and checks the paper's headline
observation: the ClassCaps layer is roughly an order of magnitude slower
than the convolutional layers (the routing/squashing bottleneck that
motivates the accelerator).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.experiments.common import format_table, log_bar_chart
from repro.perf.calibration import PAPER_GPU_LAYER_MS
from repro.perf.gpu import GpuModel, gtx1070_paper_profile
from repro.perf.kernels import CapsNetGpuWorkload


@dataclass
class Fig8Result:
    """Per-layer GPU times and the dominance ratio."""

    layer_ms: dict[str, float]
    paper_layer_ms: dict[str, float]

    @property
    def classcaps_dominance(self) -> float:
        """ClassCaps time over the mean of the convolution layers."""
        conv_mean = (self.layer_ms["Conv1"] + self.layer_ms["PrimaryCaps"]) / 2.0
        return self.layer_ms["ClassCaps"] / conv_mean

    @property
    def total_ms(self) -> float:
        """Total inference time."""
        return sum(v for k, v in self.layer_ms.items() if k != "Total")


def run(
    config: CapsNetConfig | None = None,
    gpu: GpuModel | None = None,
) -> Fig8Result:
    """Evaluate the GPU model per layer."""
    config = config if config is not None else mnist_capsnet_config()
    gpu = gpu if gpu is not None else GpuModel(gtx1070_paper_profile())
    workload = CapsNetGpuWorkload(config)
    layer_ms = {
        layer: gpu.sequence_time_us(kernels) / 1e3
        for layer, kernels in workload.layer_kernels().items()
    }
    return Fig8Result(layer_ms=layer_ms, paper_layer_ms=PAPER_GPU_LAYER_MS)


def format_report(result: Fig8Result) -> str:
    """Printable Fig 8 with the digitized paper values alongside."""
    values = dict(result.layer_ms)
    values["Total"] = result.total_ms
    chart = log_bar_chart(values, "ms")
    rows = [
        (layer, ms, result.paper_layer_ms.get(layer, "-"))
        for layer, ms in values.items()
    ]
    table = format_table(
        ["Layer", "model [ms]", "paper (digitized) [ms]"],
        rows,
        title="Fig 8: GPU layer-wise inference time",
    )
    note = (
        f"\nClassCaps is {result.classcaps_dominance:.1f}x slower than the mean"
        " of the convolution layers (paper: ~10x)."
    )
    return table + "\n\n" + chart + note
