"""Batching extensions: GPU crossover and serving-policy comparison.

The paper's comparison is batch-1 inference — the embedded / latency-
critical case CapsAcc targets.  A GPU amortizes its per-op dispatch
overhead over larger batches, so there is a crossover batch size beyond
which GPU *throughput* (not latency) overtakes the batch-1 accelerator.
:func:`run` sweeps the batch size, reporting images/s for both targets
and the crossover — quantifying the domain where the paper's conclusion
holds.

:func:`policy_comparison` studies the *serving* side of batching: the
same saturating arrival trace served under each named serving-policy
preset (``fifo`` / ``deadline`` / ``greedy``; see
:mod:`repro.serve.policies`), reporting throughput, p50/p99 latency,
shed rate and SLA misses — the policy-level design space the pluggable
protocols open (closed-form costs, so the sweep is cheap).

:func:`oracle_admission_study` closes the ROADMAP admission-control
item: the backlog-estimate :class:`~repro.serve.policies.DeadlineAdmission`
(at several slack settings) is compared against a **simulate-ahead
oracle** shedder — admission with hindsight, computed by iterated
re-simulation: serve the trace, shed exactly the requests that missed
their deadline, re-serve, and repeat to a fixed point.  The oracle is
not a deployable policy (it reads the future) and not an optimum — it
sheds the minimum hindsight-certain misses, trading nothing off — but
it anchors the comparison: how the arrival-time backlog estimate's
shed/goodput/p99 triangle at each slack sits against pure hindsight
shedding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.experiments.common import format_table
from repro.hw.config import AcceleratorConfig
from repro.perf.gpu import GpuModel, gtx1070_paper_profile, scale_kernels_to_batch
from repro.perf.kernels import CapsNetGpuWorkload
from repro.perf.model import CapsAccPerformanceModel


@dataclass
class BatchingResult:
    """Throughput per batch size and the crossover."""

    batch_sizes: list[int]
    gpu_images_per_s: dict[int, float]
    capsacc_images_per_s: float
    capsacc_latency_ms: float

    @property
    def crossover_batch(self) -> int | None:
        """Smallest swept batch at which the GPU's throughput wins."""
        for batch in self.batch_sizes:
            if self.gpu_images_per_s[batch] > self.capsacc_images_per_s:
                return batch
        return None


def run(
    config: CapsNetConfig | None = None,
    accelerator: AcceleratorConfig | None = None,
    batch_sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128),
) -> BatchingResult:
    """Sweep GPU batch sizes against the batch-1 accelerator."""
    config = config if config is not None else mnist_capsnet_config()
    accelerator = accelerator if accelerator is not None else AcceleratorConfig()
    gpu = GpuModel(gtx1070_paper_profile())
    workload = CapsNetGpuWorkload(config)
    batch1_kernels = [
        kernel
        for kernels in workload.layer_kernels().values()
        for kernel in kernels
    ]
    gpu_throughput = {}
    for batch in batch_sizes:
        seconds = gpu.sequence_time_s(scale_kernels_to_batch(batch1_kernels, batch))
        gpu_throughput[batch] = batch / seconds

    perf = CapsAccPerformanceModel(accelerator=accelerator, network=config).run()
    latency_ms = perf.total_time_ms
    return BatchingResult(
        batch_sizes=list(batch_sizes),
        gpu_images_per_s=gpu_throughput,
        capsacc_images_per_s=1e3 / latency_ms,
        capsacc_latency_ms=latency_ms,
    )


@dataclass
class PolicyComparisonResult:
    """One row per serving-policy preset on a shared saturating trace."""

    rows: list[dict]
    rate_multiplier: float
    deadline_ms: float
    offered_rps: float

    def row(self, policy: str) -> dict:
        """The comparison row of one named policy."""
        for entry in self.rows:
            if entry["policy"] == policy:
                return entry
        raise KeyError(policy)


def policy_comparison(
    config: CapsNetConfig | None = None,
    accelerator: AcceleratorConfig | None = None,
    policies: tuple[str, ...] = ("fifo", "deadline", "greedy"),
    rate_multiplier: float = 2.5,
    requests: int = 96,
    deadline_ms: float = 10.0,
    max_batch: int = 8,
    max_wait_us: float = 5000.0,
    arrays: int = 1,
    seed: int = 7,
) -> PolicyComparisonResult:
    """Serve one saturating trace under each serving-policy preset.

    The arrival rate is ``rate_multiplier`` times the batch-1 service
    capacity (the ``bench_serving.py`` saturation scenario); every policy
    sees the same trace and the same per-request SLA of ``deadline_ms``.
    Costs come from the closed-form model, so the comparison is cheap
    enough for design-space sweeps.
    """
    from repro.serve import (
        AnalyticBatchCost,
        ServerConfig,
        ServingSimulator,
        poisson_trace,
    )

    config = config if config is not None else mnist_capsnet_config()
    accelerator = accelerator if accelerator is not None else AcceleratorConfig()
    cost = AnalyticBatchCost(network=config, accel_config=accelerator)
    capacity_rps = arrays * accelerator.clock_mhz * 1e6 / cost.batch_cycles(1)
    trace = poisson_trace(
        rate_multiplier * capacity_rps, requests, np.random.default_rng(seed)
    )
    rows = []
    for name in policies:
        server = ServerConfig.from_policy(
            name,
            cost,
            max_batch=max_batch,
            max_wait_us=max_wait_us,
            arrays=arrays,
            deadline_us=deadline_ms * 1000.0,
        )
        report = ServingSimulator(trace, server=server).run()
        latency = report.latency_summary()["total"]
        rows.append(
            {
                "policy": name,
                "describe": server.describe(),
                "throughput_rps": report.throughput_rps,
                "mean_batch_size": report.mean_batch_size,
                "p50_us": latency["p50_us"],
                "p99_us": latency["p99_us"],
                "shed_rate": report.shed_rate,
                "deadline_miss_rate": report.deadline_miss_rate,
            }
        )
    return PolicyComparisonResult(
        rows=rows,
        rate_multiplier=rate_multiplier,
        deadline_ms=deadline_ms,
        offered_rps=trace.offered_rps,
    )


@dataclass(frozen=True)
class _ShedIndices:
    """Oracle admission: shed exactly a precomputed set of request indices.

    Internal to the simulate-ahead study — not a registered policy (it
    encodes hindsight, not an arrival-time decision rule).
    """

    indices: frozenset

    def admit(self, request, now_us, queue, pool) -> bool:
        return request.index not in self.indices

    def describe(self) -> str:
        return f"oracle-shed[{len(self.indices)}]"


@dataclass
class AdmissionStudyResult:
    """Deadline-admission slack settings vs the simulate-ahead oracle."""

    rows: list[dict]
    rate_multiplier: float
    deadline_ms: float
    offered_rps: float
    oracle_iterations: int
    #: Whether the oracle reached a missless fixed point within its
    #: iteration budget; ``False`` means the "oracle" row still contains
    #: deadline misses and is labeled ``oracle(truncated)``.
    oracle_converged: bool = True

    def row(self, label: str) -> dict:
        """The study row with one label (``slack=...us`` or ``oracle``)."""
        for entry in self.rows:
            if entry["label"] == label:
                return entry
        raise KeyError(label)


def _admission_row(label: str, report) -> dict:
    latency = report.latency_summary()["total"]
    served = report.completed
    misses = report.deadline_miss_count
    # Goodput — deadline-met requests per second, the quantity admission
    # control exists to maximize — is normalized by the *offered* trace
    # window, not the makespan: a policy that sheds nearly everything
    # finishes early, and dividing by its shrunken makespan would reward
    # exactly that.
    window_s = report.offered / report.offered_rps if report.offered_rps else 0.0
    return {
        "label": label,
        "offered": report.offered,
        "served": served,
        "shed_rate": report.shed_rate,
        "deadline_miss_rate": report.deadline_miss_rate,
        "throughput_rps": report.throughput_rps,
        "goodput_rps": ((served - misses) / window_s if window_s else 0.0),
        "p99_us": latency["p99_us"],
    }


def oracle_admission_study(
    config: CapsNetConfig | None = None,
    accelerator: AcceleratorConfig | None = None,
    slacks_us: tuple[float, ...] = (0.0, 1000.0, 5000.0),
    rate_multiplier: float = 2.5,
    requests: int = 96,
    deadline_ms: float = 10.0,
    max_batch: int = 8,
    max_wait_us: float = 5000.0,
    arrays: int = 1,
    seed: int = 7,
    max_iterations: int = 8,
) -> AdmissionStudyResult:
    """Compare deadline admission at several slacks against the oracle.

    Every row serves the same saturating Poisson trace with the same
    SLA-aware :class:`~repro.serve.batcher.DeadlineBatcher` (slack 0), so
    only the *admission* rule differs: the backlog-estimate
    :class:`~repro.serve.policies.DeadlineAdmission` at each entry of
    ``slacks_us``, and the simulate-ahead oracle (iterated re-simulation
    shedding exactly the requests that would miss; usually settles in
    two or three passes).  Closed-form costs keep the repeated
    simulations cheap.
    """
    from repro.errors import ConfigError
    from repro.serve import (
        AnalyticBatchCost,
        DeadlineAdmission,
        DeadlineBatcher,
        ServerConfig,
        ServingSimulator,
        poisson_trace,
    )

    if max_iterations < 1:
        raise ConfigError("the oracle needs at least one simulation pass")
    config = config if config is not None else mnist_capsnet_config()
    accelerator = accelerator if accelerator is not None else AcceleratorConfig()
    cost = AnalyticBatchCost(network=config, accel_config=accelerator)
    capacity_rps = arrays * accelerator.clock_mhz * 1e6 / cost.batch_cycles(1)
    trace = poisson_trace(
        rate_multiplier * capacity_rps, requests, np.random.default_rng(seed)
    )

    def simulate(admission):
        server = ServerConfig(
            cost=cost,
            admission=admission,
            batching=DeadlineBatcher(max_batch=max_batch, max_wait_us=max_wait_us),
            arrays=arrays,
            deadline_us=deadline_ms * 1000.0,
        )
        return ServingSimulator(trace, server=server).run()

    rows = []
    for slack in slacks_us:
        report = simulate(DeadlineAdmission(slack_us=slack))
        rows.append(_admission_row(f"slack={slack:g}us", report))

    # Simulate-ahead oracle: shed exactly the requests that miss, then
    # re-serve — removing them can only relieve the backlog, so the shed
    # set grows monotonically and the iteration reaches a fixed point.
    shed: frozenset = frozenset()
    iterations = 0
    converged = False
    report = None
    for iterations in range(1, max_iterations + 1):
        report = simulate(_ShedIndices(shed))
        missed = {
            record.index for record in report.requests if record.missed_deadline
        }
        if not missed:
            converged = True
            break
        shed = shed | frozenset(missed)
    # An exhausted budget means the last pass still misses deadlines —
    # that row is *not* hindsight shedding, so label it loudly.
    rows.append(_admission_row("oracle" if converged else "oracle(truncated)", report))
    return AdmissionStudyResult(
        rows=rows,
        rate_multiplier=rate_multiplier,
        deadline_ms=deadline_ms,
        offered_rps=trace.offered_rps,
        oracle_iterations=iterations,
        oracle_converged=converged,
    )


def format_admission_report(result: AdmissionStudyResult) -> str:
    """Printable admission study table."""
    rows = [
        (
            entry["label"],
            f"{entry['shed_rate']:.1%}",
            f"{entry['deadline_miss_rate']:.1%}",
            f"{entry['goodput_rps']:.1f}",
            f"{entry['p99_us'] / 1e3:.2f}",
        )
        for entry in result.rows
    ]
    return format_table(
        ["admission", "shed", "SLA miss", "goodput req/s", "p99 ms"],
        rows,
        title=(
            "Admission study: backlog-estimate deadline shedding vs"
            f" simulate-ahead oracle ({result.rate_multiplier:g}x saturation,"
            f" {result.deadline_ms:g} ms SLA,"
            f" oracle settled in {result.oracle_iterations} pass(es))"
        ),
    )


def format_policy_report(result: PolicyComparisonResult) -> str:
    """Printable serving-policy comparison."""
    rows = [
        (
            entry["policy"],
            f"{entry['throughput_rps']:.1f}",
            f"{entry['mean_batch_size']:.2f}",
            f"{entry['p50_us'] / 1e3:.2f}",
            f"{entry['p99_us'] / 1e3:.2f}",
            f"{entry['shed_rate']:.1%}",
            f"{entry['deadline_miss_rate']:.1%}",
        )
        for entry in result.rows
    ]
    return format_table(
        [
            "policy",
            "served req/s",
            "batch",
            "p50 ms",
            "p99 ms",
            "shed",
            "SLA miss",
        ],
        rows,
        title=(
            "Serving-policy comparison:"
            f" {result.rate_multiplier:g}x saturation"
            f" ({result.offered_rps:,.0f} req/s offered),"
            f" {result.deadline_ms:g} ms SLA"
        ),
    )


def format_report(result: BatchingResult) -> str:
    """Printable batching study."""
    rows = [
        (batch, f"{result.gpu_images_per_s[batch]:.1f}", f"{result.capsacc_images_per_s:.1f}")
        for batch in result.batch_sizes
    ]
    table = format_table(
        ["GPU batch", "GPU img/s", "CapsAcc img/s (batch 1)"],
        rows,
        title="Batching study: throughput crossover",
    )
    crossover = result.crossover_batch
    if crossover is None:
        note = "\nNo crossover within the swept range."
    else:
        note = (
            f"\nGPU throughput overtakes at batch {crossover}; below that —"
            " the paper's embedded batch-1 regime — CapsAcc wins on both"
            " latency and throughput."
        )
    return table + note
