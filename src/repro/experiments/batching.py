"""Batching extension: where does the GPU win back on throughput?

The paper's comparison is batch-1 inference — the embedded / latency-
critical case CapsAcc targets.  A GPU amortizes its per-op dispatch
overhead over larger batches, so there is a crossover batch size beyond
which GPU *throughput* (not latency) overtakes the batch-1 accelerator.
This experiment sweeps the batch size, reporting images/s for both targets
and the crossover — quantifying the domain where the paper's conclusion
holds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.experiments.common import format_table
from repro.hw.config import AcceleratorConfig
from repro.perf.gpu import GpuModel, gtx1070_paper_profile, scale_kernels_to_batch
from repro.perf.kernels import CapsNetGpuWorkload
from repro.perf.model import CapsAccPerformanceModel


@dataclass
class BatchingResult:
    """Throughput per batch size and the crossover."""

    batch_sizes: list[int]
    gpu_images_per_s: dict[int, float]
    capsacc_images_per_s: float
    capsacc_latency_ms: float

    @property
    def crossover_batch(self) -> int | None:
        """Smallest swept batch at which the GPU's throughput wins."""
        for batch in self.batch_sizes:
            if self.gpu_images_per_s[batch] > self.capsacc_images_per_s:
                return batch
        return None


def run(
    config: CapsNetConfig | None = None,
    accelerator: AcceleratorConfig | None = None,
    batch_sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128),
) -> BatchingResult:
    """Sweep GPU batch sizes against the batch-1 accelerator."""
    config = config if config is not None else mnist_capsnet_config()
    accelerator = accelerator if accelerator is not None else AcceleratorConfig()
    gpu = GpuModel(gtx1070_paper_profile())
    workload = CapsNetGpuWorkload(config)
    batch1_kernels = [
        kernel
        for kernels in workload.layer_kernels().values()
        for kernel in kernels
    ]
    gpu_throughput = {}
    for batch in batch_sizes:
        seconds = gpu.sequence_time_s(scale_kernels_to_batch(batch1_kernels, batch))
        gpu_throughput[batch] = batch / seconds

    perf = CapsAccPerformanceModel(accelerator=accelerator, network=config).run()
    latency_ms = perf.total_time_ms
    return BatchingResult(
        batch_sizes=list(batch_sizes),
        gpu_images_per_s=gpu_throughput,
        capsacc_images_per_s=1e3 / latency_ms,
        capsacc_latency_ms=latency_ms,
    )


def format_report(result: BatchingResult) -> str:
    """Printable batching study."""
    rows = [
        (batch, f"{result.gpu_images_per_s[batch]:.1f}", f"{result.capsacc_images_per_s:.1f}")
        for batch in result.batch_sizes
    ]
    table = format_table(
        ["GPU batch", "GPU img/s", "CapsAcc img/s (batch 1)"],
        rows,
        title="Batching study: throughput crossover",
    )
    crossover = result.crossover_batch
    if crossover is None:
        note = "\nNo crossover within the swept range."
    else:
        note = (
            f"\nGPU throughput overtakes at batch {crossover}; below that —"
            " the paper's embedded batch-1 regime — CapsAcc wins on both"
            " latency and throughput."
        )
    return table + note
