"""Table II: synthesized accelerator parameters."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import format_table
from repro.hw.config import AcceleratorConfig
from repro.synthesis.report import SynthesisReport


@dataclass
class Table2Result:
    """Our parameters next to the paper's."""

    rows: list[dict]


def run(config: AcceleratorConfig | None = None) -> Table2Result:
    """Produce the Table II comparison for a configuration."""
    report = SynthesisReport(config=config if config is not None else AcceleratorConfig())
    return Table2Result(rows=report.compare_table2())


def format_report(result: Table2Result) -> str:
    """Printable Table II."""
    rows = [(row["parameter"], row["ours"], row["paper"]) for row in result.rows]
    return format_table(
        ["Parameter", "model", "paper"],
        rows,
        title="Table II: synthesized CapsAcc parameters",
    )
