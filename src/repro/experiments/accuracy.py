"""Accuracy parity: float reference vs 8-bit quantized inference.

The paper states that, because the hardware is functionally compliant with
the original CapsuleNet, classification accuracy is unchanged, and reports
no accuracy numbers.  This experiment exercises the claim end to end on a
network we can actually train in this environment: the ClassCaps layer is
fitted on frozen convolutional features of the synthetic digit dataset
(:mod:`repro.capsnet.train`), then the same weights run through the float
reference and the bit-accurate quantized path, and the two accuracies and
prediction agreement are compared.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.capsnet.config import CapsNetConfig, tiny_capsnet_config
from repro.capsnet.model import CapsuleNet
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.capsnet.train import train_on_dataset
from repro.data.synthetic import SyntheticDigits
from repro.experiments.common import format_table


@dataclass
class AccuracyResult:
    """Float and quantized accuracy plus agreement."""

    float_accuracy: float
    quantized_accuracy: float
    agreement: float
    train_accuracy: float
    num_test: int
    num_classes: int


def run(
    config: CapsNetConfig | None = None,
    train_count: int = 90,
    test_count: int = 45,
    epochs: int = 15,
    seed: int = 11,
) -> AccuracyResult:
    """Train, then compare float vs quantized classification.

    The default configuration is the tiny network (3 classes) so the
    experiment runs in seconds; pass ``mnist_capsnet_config()`` and larger
    counts for the full-scale version (see ``examples/accuracy_parity.py``).
    """
    config = config if config is not None else tiny_capsnet_config()
    classes = tuple(range(config.classcaps.num_classes))
    generator = SyntheticDigits(size=config.image_size, seed=seed)
    train_set = generator.generate(train_count, classes=classes)
    test_generator = SyntheticDigits(size=config.image_size, seed=seed + 1)
    test_set = test_generator.generate(test_count, classes=classes)

    weights, train_result = train_on_dataset(config, train_set, epochs=epochs, seed=seed)
    float_net = CapsuleNet(config, weights=weights)
    quant_net = QuantizedCapsuleNet(config, weights=weights)

    float_preds = float_net.predict_batch(test_set.images)
    quant_preds = np.array(
        [quant_net.predict(image) for image in test_set.images], dtype=np.int64
    )
    float_acc = float(np.mean(float_preds == test_set.labels))
    quant_acc = float(np.mean(quant_preds == test_set.labels))
    agreement = float(np.mean(float_preds == quant_preds))
    return AccuracyResult(
        float_accuracy=float_acc,
        quantized_accuracy=quant_acc,
        agreement=agreement,
        train_accuracy=train_result.train_accuracy,
        num_test=test_count,
        num_classes=len(classes),
    )


def format_report(result: AccuracyResult) -> str:
    """Printable accuracy parity report."""
    rows = [
        ("train accuracy (float)", f"{result.train_accuracy * 100:.1f}%"),
        ("test accuracy (float)", f"{result.float_accuracy * 100:.1f}%"),
        ("test accuracy (8-bit quantized)", f"{result.quantized_accuracy * 100:.1f}%"),
        ("prediction agreement", f"{result.agreement * 100:.1f}%"),
    ]
    table = format_table(
        ["quantity", "value"],
        rows,
        title=(
            f"Accuracy parity ({result.num_classes} classes,"
            f" {result.num_test} test images)"
        ),
    )
    note = (
        "\nPaper claim: hardware inference preserves classification accuracy"
        " (functional compliance)."
    )
    return table + note
