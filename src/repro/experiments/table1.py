"""Table I: input size, trainable parameters and output size per layer.

Parameter counts are exact reproductions of the paper's numbers.  Output
sizes are computed from the architecture; the paper prints 102,400 for the
PrimaryCaps output (and hence the ClassCaps input) where the stride-2
architecture produces 9,216 — the comparison flags the discrepancy rather
than hiding it.  The driver also verifies the paper's 8 MB on-chip memory
claim (all parameters at 8 bits).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.capsnet.params import PAPER_TABLE1, layer_statistics, total_weight_bytes
from repro.experiments.common import format_table


@dataclass
class Table1Result:
    """Computed rows plus the paper comparison."""

    rows: list[tuple[str, int, int, int]]
    paper_rows: dict
    weight_megabytes: float
    parameter_matches: dict[str, bool]


def run(config: CapsNetConfig | None = None) -> Table1Result:
    """Compute Table I for the given (default MNIST) configuration."""
    config = config if config is not None else mnist_capsnet_config()
    stats = layer_statistics(config)
    rows = [s.as_row() for s in stats]
    matches = {
        s.name: PAPER_TABLE1.get(s.name, {}).get("parameters") == s.parameters
        for s in stats
    }
    weight_mb = total_weight_bytes(config) / (1024 * 1024)
    return Table1Result(
        rows=rows,
        paper_rows=PAPER_TABLE1,
        weight_megabytes=weight_mb,
        parameter_matches=matches,
    )


def format_report(result: Table1Result) -> str:
    """Printable Table I with the paper's values alongside."""
    rows = []
    for name, inputs, params, outputs in result.rows:
        paper = result.paper_rows.get(name, {})
        rows.append(
            (
                name,
                inputs,
                paper.get("inputs", "-"),
                params,
                paper.get("parameters", "-"),
                outputs,
                paper.get("outputs", "-"),
            )
        )
    table = format_table(
        ["Layer", "Inputs", "(paper)", "Params", "(paper)", "Outputs", "(paper)"],
        rows,
        title="Table I: per-layer inputs / trainable parameters / outputs",
    )
    memory = (
        f"\nAll parameters at 8-bit: {result.weight_megabytes:.2f} MB"
        " (paper: fits in 8 MB on-chip memory)"
    )
    return table + memory
