"""Table III: per-component area and power."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import format_table
from repro.hw.config import AcceleratorConfig
from repro.synthesis.report import SynthesisReport


@dataclass
class Table3Result:
    """Per-component rows with paper values."""

    rows: list[dict]

    def max_relative_error(self) -> float:
        """Largest relative area error against the paper across components."""
        errors = []
        for row in self.rows:
            if row["paper_area_um2"]:
                errors.append(
                    abs(row["area_um2"] - row["paper_area_um2"]) / row["paper_area_um2"]
                )
        return max(errors) if errors else float("nan")


def run(config: AcceleratorConfig | None = None) -> Table3Result:
    """Produce the Table III comparison for a configuration."""
    report = SynthesisReport(config=config if config is not None else AcceleratorConfig())
    return Table3Result(rows=report.compare_table3())


def format_report(result: Table3Result) -> str:
    """Printable Table III."""
    rows = [
        (
            row["component"],
            row["area_um2"],
            row["paper_area_um2"] or "-",
            row["power_mw"],
            row["paper_power_mw"] or "-",
        )
        for row in result.rows
    ]
    table = format_table(
        ["Component", "Area [um2]", "(paper)", "Power [mW]", "(paper)"],
        rows,
        title="Table III: per-component area and power",
    )
    note = f"\nMax relative area error vs paper: {result.max_relative_error() * 100:.1f}%"
    return table + note
