"""Energy per inference (extension experiment).

The paper reports steady-state power (Table II/III); combined with the
measured latency this implies an energy per inference.  This experiment
computes energy two independent ways and cross-checks them:

* **top-down**: Table II power x modelled inference latency;
* **bottom-up**: per-event energies (MACs, buffer words, LUT lookups) times
  the activity counts of the mapped stages.

The bottom-up dynamic energy must come out below the top-down envelope
(which also contains static and clock-tree power) — a consistency check on
both models — and the breakdown shows where the energy goes, extending the
paper's Fig 18 story from silicon area to actual work.

The pipelined schedule is priced too, driven from the compiled instruction
stream (:mod:`repro.compiler`): the steady-state marginal cycles of a
back-to-back inference stream give the amortized latency, so the top-down
energy per inference shrinks by exactly the pipeline overlap — dynamic
work is unchanged, only the static/clock power window narrows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.experiments.common import format_table
from repro.hw.config import AcceleratorConfig
from repro.hw.stats import CycleStats
from repro.mapping.shapes import full_inference_stages
from repro.perf.cycles import stage_accesses, stage_performance
from repro.synthesis.power import energy_per_inference_uj
from repro.synthesis.report import SynthesisReport


#: GTX1070 board power (TDP) used for the GPU energy comparison.
GPU_TDP_W = 150.0


@dataclass
class EnergyResult:
    """Energy accounting for one inference."""

    latency_ms: float
    total_power_mw: float
    topdown_energy_uj: float
    bottomup_energy_uj: dict[str, float]
    gpu_latency_ms: float = 0.0
    pipelined_latency_ms: float = 0.0
    pipelined_energy_uj: float = 0.0

    @property
    def bottomup_total_uj(self) -> float:
        """Total dynamic energy from activity counts."""
        return sum(self.bottomup_energy_uj.values())

    @property
    def consistent(self) -> bool:
        """Dynamic (bottom-up) energy must fit inside the power envelope."""
        return self.bottomup_total_uj <= self.topdown_energy_uj

    @property
    def gpu_energy_uj(self) -> float:
        """GPU energy per inference at TDP (an optimistic-for-CapsAcc upper
        bound; the comparison note discusses it)."""
        return GPU_TDP_W * 1e3 * self.gpu_latency_ms

    @property
    def efficiency_gain(self) -> float:
        """CapsAcc energy advantage over the GPU per inference."""
        if self.topdown_energy_uj == 0:
            return float("inf")
        return self.gpu_energy_uj / self.topdown_energy_uj

    @property
    def pipeline_speedup(self) -> float:
        """Sequential latency over pipelined steady-state latency."""
        if self.pipelined_latency_ms == 0:
            return float("inf")
        return self.latency_ms / self.pipelined_latency_ms


def run(
    config: CapsNetConfig | None = None,
    accelerator: AcceleratorConfig | None = None,
) -> EnergyResult:
    """Compute both energy estimates for one inference."""
    config = config if config is not None else mnist_capsnet_config()
    accelerator = accelerator if accelerator is not None else AcceleratorConfig()

    stages = full_inference_stages(config)
    total_cycles = sum(
        stage_performance(accelerator, stage).cycles for stage in stages
    )
    activity = CycleStats()
    for stage in stages:
        activity = activity + stage_accesses(stage, accelerator)
    activity.total_cycles = total_cycles

    latency_ms = accelerator.cycles_to_ms(total_cycles)
    power_mw = SynthesisReport(config=accelerator).table2()["power_mw"]
    topdown_uj = power_mw * latency_ms  # mW x ms = uJ
    bottomup = energy_per_inference_uj(activity)

    from repro.compiler.cost import program_steady_cycles
    from repro.compiler.lower import compile_graph
    from repro.compiler.zoo import capsnet_graph

    program = compile_graph(capsnet_graph(config))
    steady_cycles = program_steady_cycles(accelerator, program, batch=1)
    pipelined_ms = accelerator.cycles_to_ms(steady_cycles)
    pipelined_uj = power_mw * pipelined_ms

    from repro.perf.gpu import GpuModel, gtx1070_paper_profile
    from repro.perf.kernels import CapsNetGpuWorkload

    gpu = GpuModel(gtx1070_paper_profile())
    workload = CapsNetGpuWorkload(config)
    gpu_ms = sum(
        gpu.sequence_time_us(kernels) for kernels in workload.layer_kernels().values()
    ) / 1e3
    return EnergyResult(
        latency_ms=latency_ms,
        total_power_mw=power_mw,
        topdown_energy_uj=topdown_uj,
        bottomup_energy_uj=bottomup,
        gpu_latency_ms=gpu_ms,
        pipelined_latency_ms=pipelined_ms,
        pipelined_energy_uj=pipelined_uj,
    )


def format_report(result: EnergyResult) -> str:
    """Printable energy report."""
    rows = [
        (name, f"{uj:.1f}")
        for name, uj in sorted(
            result.bottomup_energy_uj.items(), key=lambda item: -item[1]
        )
    ]
    rows.append(("TOTAL (dynamic, bottom-up)", f"{result.bottomup_total_uj:.1f}"))
    table = format_table(
        ["contributor", "energy [uJ]"],
        rows,
        title="Energy per inference (bottom-up activity model)",
    )
    summary = (
        f"\nTop-down envelope: {result.total_power_mw:.0f} mW x"
        f" {result.latency_ms:.2f} ms = {result.topdown_energy_uj:.0f} uJ"
        f"\nPipelined (compiled stream, steady state): "
        f"{result.pipelined_latency_ms:.2f} ms -> "
        f"{result.pipelined_energy_uj:.0f} uJ per inference"
        f" ({result.pipeline_speedup:.2f}x vs sequential)"
        f"\nConsistency (dynamic <= envelope): "
        + ("yes" if result.consistent else "NO")
        + f"\nGPU at {GPU_TDP_W:.0f} W TDP x {result.gpu_latency_ms:.1f} ms ="
        f" {result.gpu_energy_uj / 1e3:.1f} mJ per inference"
        f" -> CapsAcc is ~{result.efficiency_gain:.0f}x more energy-efficient"
        "\n(TDP overstates real GPU draw on this workload; even at 1/10 of"
        " TDP the gain stays in the hundreds)"
    )
    return table + summary
