"""Ablation studies for the design choices DESIGN.md calls out.

* **Routing optimization** (Section V-C): skipping the first softmax.
* **Weight double-buffering** (the Weight2 register, Section IV-A).
* **Systolic array size** sweep.
* **Convolution mapping policy** (channel-parallel vs channel-serial).
* **Bit width** sweep: area/power of wider datapaths plus the squash LUT
  error at reduced input precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.capsnet.config import CapsNetConfig, mnist_capsnet_config
from repro.experiments.common import format_table
from repro.fixedpoint.luts import build_squash_lut
from repro.fixedpoint.formats import QFormat
from repro.hw.config import AcceleratorConfig
from repro.perf.model import CapsAccPerformanceModel
from repro.synthesis.report import SynthesisReport


@dataclass
class AblationResult:
    """One ablation axis: named variants and their metric values."""

    axis: str
    metric: str
    variants: dict[str, float] = field(default_factory=dict)

    def ratio(self, variant_a: str, variant_b: str) -> float:
        """Metric ratio between two variants."""
        return self.variants[variant_a] / self.variants[variant_b]


def routing_optimization(config: CapsNetConfig | None = None) -> AblationResult:
    """Total inference time with and without the first-softmax skip."""
    config = config if config is not None else mnist_capsnet_config()
    result = AblationResult(axis="routing-optimization", metric="total_ms")
    for label, optimized in (("optimized (skip softmax1)", True), ("textbook", False)):
        model = CapsAccPerformanceModel(network=config, optimized_routing=optimized)
        result.variants[label] = model.run().total_time_ms
    return result


def weight_double_buffering(config: CapsNetConfig | None = None) -> AblationResult:
    """Total inference time with and without the Weight2 register."""
    config = config if config is not None else mnist_capsnet_config()
    result = AblationResult(axis="weight-double-buffering", metric="total_ms")
    for label, accel in (
        ("double-buffered (Weight2)", AcceleratorConfig()),
        ("single-buffered", AcceleratorConfig().without_weight_reuse()),
    ):
        model = CapsAccPerformanceModel(accelerator=accel, network=config)
        result.variants[label] = model.run().total_time_ms
    return result


def array_size_sweep(
    config: CapsNetConfig | None = None,
    sizes: tuple[int, ...] = (4, 8, 16, 32),
) -> AblationResult:
    """Total inference time across systolic array sizes."""
    config = config if config is not None else mnist_capsnet_config()
    result = AblationResult(axis="array-size", metric="total_ms")
    for size in sizes:
        accel = AcceleratorConfig().with_array(size, size)
        model = CapsAccPerformanceModel(accelerator=accel, network=config)
        result.variants[f"{size}x{size}"] = model.run().total_time_ms
    return result


def conv_mapping_policy(config: CapsNetConfig | None = None) -> AblationResult:
    """Conv1 latency under the two convolution mapping policies.

    ``channel_serial`` is the paper's accumulator-minimizing traversal; it
    loses to the GPU on Conv1 (consistent with the paper's "46% slower"
    annotation), while ``channel_parallel`` wins.
    """
    config = config if config is not None else mnist_capsnet_config()
    result = AblationResult(axis="conv-mapping", metric="conv1_us")
    for policy in ("channel_parallel", "channel_serial"):
        model = CapsAccPerformanceModel(network=config, conv_policy=policy)
        result.variants[policy] = model.conv_stage_perf("conv1").time_us(
            model.accelerator.clock_mhz
        )
    return result


def bitwidth_sweep(widths: tuple[int, ...] = (4, 6, 8, 12, 16)) -> AblationResult:
    """Accelerator area as the data/weight width scales.

    The accumulator width tracks the product width plus the paper's nine
    guard bits (8+8 -> 25).
    """
    result = AblationResult(axis="bit-width", metric="area_mm2")
    for width in widths:
        accel = AcceleratorConfig(
            data_bits=width, weight_bits=width, acc_bits=2 * width + 9
        )
        report = SynthesisReport(config=accel)
        result.variants[f"{width}b"] = report.table2()["area_mm2"]
    return result


def squash_lut_precision(
    data_bits: tuple[int, ...] = (4, 5, 6, 7, 8),
    samples: int = 4000,
    seed: int = 5,
) -> AblationResult:
    """End-to-end squash error as the LUT data input width scales.

    Random real (component, norm) pairs are quantized onto the LUT input
    grids, looked up, and compared against the exact squash output —
    capturing input quantization, table rounding and output quantization
    together.  The paper chose a 6-bit data input; the sweep shows the
    accuracy knee around that choice.
    """
    import numpy as np

    from repro.fixedpoint.luts import squash_gain
    from repro.fixedpoint.quantize import from_raw, to_raw

    rng = np.random.default_rng(seed)
    result = AblationResult(axis="squash-lut-precision", metric="mean_abs_error")
    for bits in data_bits:
        fmt = QFormat(total_bits=bits, frac_bits=bits - 3)
        lut = build_squash_lut(data_fmt=fmt)
        norms = rng.uniform(0.0, lut.b_fmt.max_value, size=samples)
        components = rng.uniform(-1.0, 1.0, size=samples) * norms
        exact = components * squash_gain(norms)
        got = from_raw(
            lut.lookup(to_raw(components, fmt), to_raw(norms, lut.b_fmt)), lut.out_fmt
        )
        result.variants[f"{bits}b data"] = float(np.mean(np.abs(got - exact)))
    return result


def run_all(config: CapsNetConfig | None = None) -> list[AblationResult]:
    """Every ablation in one list."""
    config = config if config is not None else mnist_capsnet_config()
    return [
        routing_optimization(config),
        weight_double_buffering(config),
        array_size_sweep(config),
        conv_mapping_policy(config),
        bitwidth_sweep(),
        squash_lut_precision(),
    ]


def format_report(results: list[AblationResult]) -> str:
    """Printable ablation summary."""
    blocks = []
    for result in results:
        rows = [(name, value) for name, value in result.variants.items()]
        blocks.append(
            format_table(
                ["variant", result.metric],
                rows,
                title=f"Ablation: {result.axis}",
            )
        )
    return "\n\n".join(blocks)
