"""Execution reports shared by the schedulers and the compiled executor.

:class:`TraceEvent`, :class:`LayerReport` and :class:`BatchResult` used to
live in :mod:`repro.hw.scheduler`; they moved here so the compiled-stream
executor (:mod:`repro.compiler.executor`) can produce the exact same report
objects without importing the scheduler (which itself imports the compiler).
:mod:`repro.hw.scheduler` re-exports every name, so existing imports keep
working.

:class:`BatchResult` carries a generic ``outputs`` dict (the tensors a
compiled program ``STORE``\\ s); the CapsNet-named fields (``conv1_raw``,
``u_hat_raw``, ...) are kept as plain dataclass fields for the paper network
and are ``None`` for zoo networks that do not produce them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hw.accelerator import TilingPlan
from repro.hw.stats import CycleStats


@dataclass(frozen=True)
class TraceEvent:
    """One scheduled unit of work, in execution order.

    ``kind`` is ``"gemm"`` (with the job's tiling ``plan``, sequential
    ``groups`` and ``weight_source``) or ``"activation"`` (with its
    ``cycles``).  The trace is shape-driven — data never changes it — so
    one probe per batch size describes every batch of that size.
    """

    kind: str
    name: str
    plan: TilingPlan | None = None
    groups: int = 1
    weight_source: str = "weight_buffer"
    cycles: int = 0


@dataclass
class LayerReport:
    """Per-layer accounting of one scheduled batch."""

    name: str
    #: Sequential accounting (weight loads stall compute); activation-unit
    #: cycles are folded into ``stats.total_cycles`` and broken out in
    #: ``stats.activation_cycles``.
    stats: CycleStats = field(default_factory=CycleStats)
    #: Double-buffered accounting: tile loads hide under the previous
    #: tile's stream (the Weight2 register of paper Fig 11b).
    overlapped_cycles: int = 0
    #: GEMM jobs issued for the layer (post-batching).
    jobs: int = 0

    @property
    def gemm_cycles(self) -> int:
        """Sequential cycles spent on the array (excluding activations)."""
        return self.stats.total_cycles - self.stats.activation_cycles

    def merge(self, other: "LayerReport") -> None:
        """Fold another report (e.g. the same layer of a later batch) in."""
        self.stats = self.stats + other.stats
        self.overlapped_cycles += other.overlapped_cycles
        self.jobs += other.jobs

    def utilization(self, num_pes: int) -> float:
        """Achieved MACs per PE-cycle under double-buffered accounting."""
        if self.overlapped_cycles == 0:
            return 0.0
        return self.stats.mac_count / (self.overlapped_cycles * num_pes)


@dataclass
class BatchResult:
    """Outputs and per-layer statistics of one scheduled batch."""

    batch: int
    predictions: np.ndarray
    #: CapsNet-named raw tensors (``None`` for zoo networks without them).
    conv1_raw: np.ndarray | None = None
    primary_raw: np.ndarray | None = None
    u_hat_raw: np.ndarray | None = None
    class_caps_raw: np.ndarray | None = None
    coupling_raw: np.ndarray | None = None
    length_sumsq_raw: np.ndarray | None = None
    layers: dict[str, LayerReport] = field(default_factory=dict)
    #: Every tensor the compiled program stored, keyed by output alias
    #: (includes the CapsNet-named ones when the network produces them).
    outputs: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def total_stats(self) -> CycleStats:
        """Summed sequential statistics over all layers."""
        total = CycleStats()
        for report in self.layers.values():
            total = total + report.stats
        return total

    @property
    def total_cycles(self) -> int:
        """Sequential cycles for the whole batch."""
        return self.total_stats.total_cycles

    @property
    def overlapped_cycles(self) -> int:
        """Double-buffered cycles for the whole batch."""
        return sum(report.overlapped_cycles for report in self.layers.values())

    def cycles_per_image(self, overlap: bool = True) -> float:
        """Amortized cycles per image."""
        cycles = self.overlapped_cycles if overlap else self.total_cycles
        return cycles / self.batch

    def images_per_second(self, clock_mhz: float, overlap: bool = True) -> float:
        """Modeled hardware throughput at the given clock."""
        return clock_mhz * 1e6 / self.cycles_per_image(overlap)

    def utilization(self, num_pes: int) -> float:
        """Overall achieved MACs per PE-cycle (double-buffered)."""
        if self.overlapped_cycles == 0:
            return 0.0
        return self.total_stats.mac_count / (self.overlapped_cycles * num_pes)
