"""Per-column FIFO accumulators (paper Fig 11c).

One accumulator sits under each systolic-array column.  It consists of a
FIFO buffer holding one 25-bit partial sum per pending output and an adder;
a multiplexer selects between storing fresh psums from the array (first
K-chunk of a tile sequence) and adding incoming psums to the stored ones
(subsequent K-chunks).  The FIFO receives one value per column per cycle —
exactly the array's output rate — so accumulation adds no extra cycles;
only the configured depth limits how many outputs a pass may produce.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, SimulationError
from repro.fixedpoint.formats import QFormat


class AccumulatorBank:
    """A bank of ``cols`` FIFO accumulators with saturating adders."""

    def __init__(self, cols: int, depth: int, acc_fmt: QFormat) -> None:
        if cols < 1 or depth < 1:
            raise ShapeError("accumulator bank needs positive cols and depth")
        self.cols = cols
        self.depth = depth
        self.acc_fmt = acc_fmt
        self._store: np.ndarray | None = None
        #: Total values written into the FIFO (for the power model).
        self.write_count = 0
        #: Total adder operations performed.
        self.add_count = 0

    @property
    def occupancy(self) -> int:
        """Number of pending outputs currently held per column."""
        return 0 if self._store is None else self._store.shape[0]

    def accumulate(self, psums: np.ndarray, first_chunk: bool) -> None:
        """Store or add one tile pass worth of partial sums.

        ``psums`` has shape ``(M, cols)``.  ``first_chunk`` selects the
        store path (fresh outputs); otherwise values are added to the held
        partial sums with 25-bit saturation.
        """
        arr = np.asarray(psums, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != self.cols:
            raise ShapeError(f"psums must be (M, {self.cols}), got {arr.shape}")
        if arr.shape[0] > self.depth:
            raise SimulationError(
                f"tile pass produces {arr.shape[0]} outputs per column,"
                f" accumulator depth is {self.depth}"
            )
        self.write_count += arr.size
        if first_chunk:
            self._store = arr.copy()
            return
        if self._store is None or self._store.shape != arr.shape:
            raise SimulationError("accumulate called out of order")
        self.add_count += arr.size
        total = self._store + arr
        np.clip(total, self.acc_fmt.raw_min, self.acc_fmt.raw_max, out=total)
        self._store = total

    def drain(self) -> np.ndarray:
        """Pop all held outputs, shape ``(M, cols)``."""
        if self._store is None:
            raise SimulationError("drain called on an empty accumulator bank")
        result = self._store
        self._store = None
        return result
