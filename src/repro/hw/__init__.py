"""Cycle-stepped, bit-accurate CapsAcc micro-architecture simulator.

Models the architecture of paper Section IV / Figures 10-11:

* :mod:`repro.hw.pe` — one processing element (scalar reference of Fig 11b).
* :mod:`repro.hw.systolic` — the n x m systolic array, vectorized across
  PEs but cycle-for-cycle and bit-for-bit equivalent to the scalar PE.
* :mod:`repro.hw.accumulator` — per-column FIFO accumulators (Fig 11c).
* :mod:`repro.hw.activation` — the activation unit with ReLU / norm /
  squash / softmax datapaths and their paper latencies (Fig 11d-g).
* :mod:`repro.hw.buffers` — data / routing / weight buffers and memories
  with bandwidth limits and access counting (for the power model).
* :mod:`repro.hw.accelerator` — the top level that executes GEMM jobs and
  layer schedules, producing both bit-exact results and cycle statistics.
"""

from repro.hw.config import AcceleratorConfig
from repro.hw.stats import CycleStats
from repro.hw.pe import ProcessingElement
from repro.hw.systolic import SystolicArray
from repro.hw.accumulator import AccumulatorBank
from repro.hw.activation import ActivationUnit, activation_latency
from repro.hw.buffers import Buffer, MemoryModel
from repro.hw.accelerator import (
    BatchedGemmJob,
    BatchedGemmResult,
    CapsAccAccelerator,
    GemmJob,
    GroupedGemmJob,
    batched_gemm_cycles,
)
from repro.hw.control import ControlProgram, ControlStep, compile_schedule

# The batched scheduler depends on the quantized model layer; re-export it
# lazily so `import repro.hw` alone doesn't pull the full CapsNet stack.
_SCHEDULER_EXPORTS = ("BatchResult", "BatchScheduler", "LayerReport")


def __getattr__(name: str):
    if name in _SCHEDULER_EXPORTS:
        from repro.hw import scheduler

        return getattr(scheduler, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BatchedGemmJob",
    "BatchedGemmResult",
    "BatchResult",
    "BatchScheduler",
    "GroupedGemmJob",
    "LayerReport",
    "batched_gemm_cycles",
    "AcceleratorConfig",
    "CycleStats",
    "ProcessingElement",
    "SystolicArray",
    "AccumulatorBank",
    "ActivationUnit",
    "activation_latency",
    "Buffer",
    "MemoryModel",
    "CapsAccAccelerator",
    "GemmJob",
    "ControlProgram",
    "ControlStep",
    "compile_schedule",
]
