"""Batched multi-image scheduler for whole-network CapsAcc execution.

:class:`BatchScheduler` takes a quantized CapsuleNet and schedules every
layer of a ``B``-image batch as batched/grouped GEMM jobs on one
:class:`~repro.hw.accelerator.CapsAccAccelerator`:

* **Conv1 / PrimaryCaps** — the batch's im2col patches stack into a single
  ``(B*M, K)`` stream per weight tile (:class:`BatchedGemmJob`), so each
  convolution tile is loaded once per *batch* instead of once per image —
  the paper's weight reuse extended across images.
* **ClassCaps FC** — one batched job per input capsule: the capsule's
  private weight matrix is loaded once and the ``B`` capsule vectors
  stream through it (``M = B`` instead of ``M = 1``), amortizing the
  load-dominated FC stage.
* **Routing** — coupling coefficients differ per image, so there is no
  cross-image weight reuse; the per-(image, class) GEMMs execute as one
  :class:`GroupedGemmJob` whose accounting is their exact sequential sum.

Results are bit-identical, image for image, to
:class:`~repro.mapping.execute.MappedInference` (asserted in tests).  Every
layer reports both sequential and double-buffered (Weight2 overlap)
accounting; buffer transfers between stages are not charged, matching the
single-image executable lowering.
"""

from __future__ import annotations

import numpy as np
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.capsnet.ops import im2col
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.errors import ShapeError
from repro.fixedpoint.arith import requantize, saturate_raw
from repro.fixedpoint.quantize import to_raw
from repro.hw.accelerator import (
    BatchedGemmJob,
    BatchedGemmResult,
    CapsAccAccelerator,
    GroupedGemmJob,
    TilingPlan,
)
from repro.hw.activation import ActivationMode, ActivationUnit, batched_activation_latency
from repro.hw.pipeline import (
    DEFAULT_PRESTAGE_DEPTH,
    DEFAULT_WINDOW,
    PipelineOp,
    StreamTiming,
    activation_op,
    cached_stream_timing,
    job_ops,
)
from repro.hw.stats import CycleStats


@dataclass(frozen=True)
class TraceEvent:
    """One scheduled unit of work, in execution order.

    ``kind`` is ``"gemm"`` (with the job's tiling ``plan``, sequential
    ``groups`` and ``weight_source``) or ``"activation"`` (with its
    ``cycles``).  The trace is shape-driven — data never changes it — so
    one probe per batch size describes every batch of that size.
    """

    kind: str
    name: str
    plan: TilingPlan | None = None
    groups: int = 1
    weight_source: str = "weight_buffer"
    cycles: int = 0


@dataclass
class LayerReport:
    """Per-layer accounting of one scheduled batch."""

    name: str
    #: Sequential accounting (weight loads stall compute); activation-unit
    #: cycles are folded into ``stats.total_cycles`` and broken out in
    #: ``stats.activation_cycles``.
    stats: CycleStats = field(default_factory=CycleStats)
    #: Double-buffered accounting: tile loads hide under the previous
    #: tile's stream (the Weight2 register of paper Fig 11b).
    overlapped_cycles: int = 0
    #: GEMM jobs issued for the layer (post-batching).
    jobs: int = 0

    @property
    def gemm_cycles(self) -> int:
        """Sequential cycles spent on the array (excluding activations)."""
        return self.stats.total_cycles - self.stats.activation_cycles

    def merge(self, other: "LayerReport") -> None:
        """Fold another report (e.g. the same layer of a later batch) in."""
        self.stats = self.stats + other.stats
        self.overlapped_cycles += other.overlapped_cycles
        self.jobs += other.jobs

    def utilization(self, num_pes: int) -> float:
        """Achieved MACs per PE-cycle under double-buffered accounting."""
        if self.overlapped_cycles == 0:
            return 0.0
        return self.stats.mac_count / (self.overlapped_cycles * num_pes)


@dataclass
class BatchResult:
    """Outputs and per-layer statistics of one scheduled batch."""

    batch: int
    predictions: np.ndarray
    conv1_raw: np.ndarray
    primary_raw: np.ndarray
    u_hat_raw: np.ndarray
    class_caps_raw: np.ndarray
    coupling_raw: np.ndarray
    length_sumsq_raw: np.ndarray
    layers: dict[str, LayerReport] = field(default_factory=dict)

    @property
    def total_stats(self) -> CycleStats:
        """Summed sequential statistics over all layers."""
        total = CycleStats()
        for report in self.layers.values():
            total = total + report.stats
        return total

    @property
    def total_cycles(self) -> int:
        """Sequential cycles for the whole batch."""
        return self.total_stats.total_cycles

    @property
    def overlapped_cycles(self) -> int:
        """Double-buffered cycles for the whole batch."""
        return sum(report.overlapped_cycles for report in self.layers.values())

    def cycles_per_image(self, overlap: bool = True) -> float:
        """Amortized cycles per image."""
        cycles = self.overlapped_cycles if overlap else self.total_cycles
        return cycles / self.batch

    def images_per_second(self, clock_mhz: float, overlap: bool = True) -> float:
        """Modeled hardware throughput at the given clock."""
        return clock_mhz * 1e6 / self.cycles_per_image(overlap)

    def utilization(self, num_pes: int) -> float:
        """Overall achieved MACs per PE-cycle (double-buffered)."""
        if self.overlapped_cycles == 0:
            return 0.0
        return self.total_stats.mac_count / (self.overlapped_cycles * num_pes)


class BatchScheduler:
    """Schedules whole CapsuleNet layer sequences as batched GEMM jobs."""

    def __init__(
        self,
        qnet: QuantizedCapsuleNet,
        accelerator: CapsAccAccelerator | None = None,
        engine: str = "fast",
    ) -> None:
        self.qnet = qnet
        if accelerator is None:
            accelerator = CapsAccAccelerator(formats=qnet.formats)
        self.accelerator = accelerator
        # Share the quantized model's ROMs so both paths are the same bits.
        self.activation = ActivationUnit(qnet.formats, qnet.luts)
        self.engine = engine
        #: When set (a list), every job/activation is appended in execution
        #: order — the stream pipeline's input.  ``None`` disables tracing.
        self.trace: list[TraceEvent] | None = None

    # ---- bookkeeping ---------------------------------------------------------

    def _record(
        self,
        layers: dict[str, LayerReport],
        name: str,
        result: BatchedGemmResult | None = None,
        activation_cycles: int = 0,
        weight_source: str = "weight_buffer",
    ) -> None:
        report = layers.setdefault(name, LayerReport(name=name))
        if result is not None:
            report.stats = report.stats + result.stats
            report.overlapped_cycles += result.overlapped_cycles
            report.jobs += 1
            if self.trace is not None:
                self.trace.append(
                    TraceEvent(
                        kind="gemm",
                        name=name,
                        plan=result.plan,
                        groups=result.groups,
                        weight_source=weight_source,
                    )
                )
        if activation_cycles:
            report.stats.activation_cycles += activation_cycles
            report.stats.total_cycles += activation_cycles
            report.overlapped_cycles += activation_cycles
            if self.trace is not None:
                self.trace.append(
                    TraceEvent(kind="activation", name=name, cycles=activation_cycles)
                )

    def _activation_cycles(self, mode: ActivationMode, n: int, groups: int) -> int:
        units = self.accelerator.config.cols if mode is ActivationMode.RELU else 1
        return batched_activation_latency(mode, n, groups, units)

    # ---- stages --------------------------------------------------------------

    def _conv_layer(
        self,
        layers: dict[str, LayerReport],
        name: str,
        x_raw: np.ndarray,
        weight_raw: np.ndarray,
        bias_raw: np.ndarray,
        stride: int,
        data_fmt,
        weight_fmt,
        acc_fmt,
    ) -> np.ndarray:
        """Lower one convolution for the whole batch to a single stacked job."""
        kernel_size = weight_raw.shape[2]
        patches = np.stack(
            [im2col(np.asarray(x, dtype=np.int64), kernel_size, stride) for x in x_raw]
        )
        wmat = weight_raw.reshape(weight_raw.shape[0], -1).T  # (K, N)
        job = BatchedGemmJob(name, patches, wmat, data_fmt, weight_fmt, acc_fmt)
        result = self.accelerator.run_batched_gemm(job, engine=self.engine)
        self._record(layers, name, result)
        return saturate_raw(result.acc + bias_raw[np.newaxis, np.newaxis, :], acc_fmt)

    def run_batch(self, images: np.ndarray) -> BatchResult:
        """Execute one batch of ``(B, H, W)`` or ``(B, C, H, W)`` images."""
        qnet = self.qnet
        fmts = qnet.formats
        config = qnet.config
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[:, np.newaxis]
        expected = (config.in_channels, config.image_size, config.image_size)
        if images.ndim != 4 or images.shape[1:] != expected:
            raise ShapeError(f"batch shape {images.shape} != (B,) + {expected}")
        batch = images.shape[0]
        if batch < 1:
            raise ShapeError("batch must contain at least one image")
        layers: dict[str, LayerReport] = {}

        # ---- Conv1: batch-stacked im2col GEMM --------------------------------
        image_raw = to_raw(images, fmts.input)
        conv1_acc_fmt = fmts.acc(fmts.input, fmts.conv1_weight)
        conv1_acc = self._conv_layer(
            layers,
            "conv1",
            image_raw,
            qnet.raw_weights["conv1_w"],
            qnet.raw_weights["conv1_b"],
            config.conv1.stride,
            fmts.input,
            fmts.conv1_weight,
            conv1_acc_fmt,
        )
        conv1_out = self.activation.relu(conv1_acc, conv1_acc_fmt, fmts.conv1_out)
        size = config.conv1_out_size
        self._record(
            layers,
            "conv1",
            activation_cycles=self._activation_cycles(
                ActivationMode.RELU, 1, batch * size**2 * config.conv1.out_channels
            ),
        )
        conv1_raw = conv1_out.transpose(0, 2, 1).reshape(
            batch, config.conv1.out_channels, size, size
        )

        # ---- PrimaryCaps: batch-stacked conv GEMM + squash -------------------
        primary_acc_fmt = fmts.acc(fmts.conv1_out, fmts.primary_weight)
        primary_acc = self._conv_layer(
            layers,
            "primarycaps",
            conv1_raw,
            qnet.raw_weights["primary_w"],
            qnet.raw_weights["primary_b"],
            config.primary.stride,
            fmts.conv1_out,
            fmts.primary_weight,
            primary_acc_fmt,
        )
        preact_flat = requantize(primary_acc, primary_acc_fmt, fmts.primary_preact)
        spec = config.primary
        out_size = config.primary_out_size
        preact = preact_flat.transpose(0, 2, 1).reshape(
            batch, spec.conv_out_channels, out_size, out_size
        )
        grouped = preact.reshape(
            batch, spec.capsule_channels, spec.capsule_dim, out_size, out_size
        )
        capsules = grouped.transpose(0, 3, 4, 1, 2).reshape(batch, -1, spec.capsule_dim)
        primary_raw = self.activation.squash(capsules, fmts.primary_preact)
        self._record(
            layers,
            "primarycaps",
            activation_cycles=self._activation_cycles(
                ActivationMode.SQUASH,
                spec.capsule_dim,
                batch * config.num_primary_capsules,
            ),
        )

        # ---- ClassCaps FC: one batched job per input capsule -----------------
        u_hat_raw = self._classcaps_fc(layers, primary_raw)

        # ---- Routing: grouped per-(image, class) jobs ------------------------
        v_raw, c_raw = self._route(layers, u_hat_raw)
        _, sumsq = self.activation.norm(v_raw, fmts.caps_data)

        return BatchResult(
            batch=batch,
            predictions=np.argmax(sumsq, axis=-1),
            conv1_raw=conv1_raw,
            primary_raw=primary_raw,
            u_hat_raw=u_hat_raw,
            class_caps_raw=v_raw,
            coupling_raw=c_raw,
            length_sumsq_raw=sumsq,
            layers=layers,
        )

    def _classcaps_fc(
        self, layers: dict[str, LayerReport], primary_raw: np.ndarray
    ) -> np.ndarray:
        """Per-capsule weight matrices, each streamed by the whole batch.

        Deliberately one job per input capsule, not one grouped job: each
        capsule's private weight matrix is a distinct tile-load sequence
        the control unit schedules separately, and the per-job dispatch is
        exactly the cost the batch dimension amortizes (``M = B`` per
        capsule instead of ``B`` separate ``M = 1`` passes).
        """
        qnet = self.qnet
        fmts = qnet.formats
        config = qnet.config
        acc_fmt = fmts.acc(fmts.caps_data, fmts.classcaps_weight)
        batch = primary_raw.shape[0]
        num_in = config.num_primary_capsules
        num_out = config.classcaps.num_classes
        out_dim = config.classcaps.out_dim
        w = qnet.raw_weights["classcaps_w"]
        u_hat = np.zeros((batch, num_in, num_out, out_dim), dtype=np.int64)
        for i in range(num_in):
            wmat = w[i].reshape(num_out * out_dim, -1).T  # (K, N)
            job = BatchedGemmJob(
                f"fc_capsule_{i}",
                primary_raw[:, i : i + 1, :],  # (B, 1, in_dim)
                wmat,
                fmts.caps_data,
                fmts.classcaps_weight,
                acc_fmt,
            )
            result = self.accelerator.run_batched_gemm(job, engine=self.engine)
            self._record(layers, "classcaps_fc", result)
            u_hat[:, i] = requantize(result.acc[:, 0], acc_fmt, fmts.caps_data).reshape(
                batch, num_out, out_dim
            )
        return u_hat

    def _route(
        self, layers: dict[str, LayerReport], u_hat_raw: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Quantized routing with grouped GEMM jobs across the batch."""
        qnet = self.qnet
        fmts = qnet.formats
        config = qnet.config
        batch, num_in, num_out, out_dim = u_hat_raw.shape
        iterations = config.classcaps.routing_iterations
        sum_acc_fmt = fmts.acc(fmts.caps_data, fmts.coupling)
        upd_acc_fmt = fmts.acc(fmts.caps_data, fmts.caps_data)
        b_raw = np.zeros((batch, num_in, num_out), dtype=np.int64)

        if qnet.optimized_routing:
            c_raw = np.full(
                (batch, num_in, num_out),
                qnet._uniform_coupling_code(num_out),
                dtype=np.int64,
            )
        else:
            c_raw = self.activation.softmax(b_raw, axis=-1)
            self._record(
                layers,
                "softmax1",
                activation_cycles=self._activation_cycles(
                    ActivationMode.SOFTMAX, num_out, batch * num_in
                ),
            )

        v_raw = np.zeros((batch, num_out, out_dim), dtype=np.int64)
        for iteration in range(1, iterations + 1):
            if iteration > 1:
                c_raw = self.activation.softmax(b_raw, axis=-1)
                self._record(
                    layers,
                    f"softmax{iteration}",
                    activation_cycles=self._activation_cycles(
                        ActivationMode.SOFTMAX, num_out, batch * num_in
                    ),
                )
            # Sum: one GEMM per (image, class); predictions arrive from the
            # data buffer first, from the feedback path afterwards.
            source = "data_buffer" if iteration == 1 else "feedback"
            job = GroupedGemmJob(
                f"sum{iteration}",
                u_hat_raw.transpose(0, 2, 3, 1).reshape(
                    batch * num_out, out_dim, num_in
                ),
                c_raw.transpose(0, 2, 1).reshape(batch * num_out, num_in, 1),
                fmts.caps_data,
                fmts.coupling,
                sum_acc_fmt,
                data_source=source,
                weight_source="routing_buffer",
            )
            result = self.accelerator.run_grouped_gemm(job, engine=self.engine)
            self._record(layers, f"sum{iteration}", result, weight_source="routing_buffer")
            s_raw = requantize(
                result.acc[..., 0], sum_acc_fmt, fmts.primary_preact
            ).reshape(batch, num_out, out_dim)
            v_raw = self.activation.squash(s_raw, fmts.primary_preact)
            self._record(
                layers,
                f"squash{iteration}",
                activation_cycles=self._activation_cycles(
                    ActivationMode.SQUASH, out_dim, batch * num_out
                ),
            )
            if iteration < iterations:
                job = GroupedGemmJob(
                    f"update{iteration}",
                    u_hat_raw.transpose(0, 2, 1, 3).reshape(
                        batch * num_out, num_in, out_dim
                    ),
                    v_raw.reshape(batch * num_out, out_dim, 1),
                    fmts.caps_data,
                    fmts.caps_data,
                    upd_acc_fmt,
                    data_source="feedback",
                    weight_source="routing_buffer",
                )
                result = self.accelerator.run_grouped_gemm(job, engine=self.engine)
                self._record(
                    layers, f"update{iteration}", result, weight_source="routing_buffer"
                )
                delta = requantize(result.acc[..., 0], upd_acc_fmt, fmts.logits)
                delta = delta.reshape(batch, num_out, num_in).transpose(0, 2, 1)
                b_raw = saturate_raw(b_raw + delta, fmts.logits)
        return v_raw, c_raw


# ---- stream-level cross-batch pipelining -------------------------------------


def trace_ops(config, events: Sequence[TraceEvent]) -> list[PipelineOp]:
    """Expand one batch's trace into pipeline ops, tile for tile."""
    ops: list[PipelineOp] = []
    for event in events:
        if event.kind == "gemm":
            ops.extend(
                job_ops(
                    config,
                    event.plan,
                    groups=event.groups,
                    weight_source=event.weight_source,
                    layer=event.name,
                )
            )
        else:
            ops.append(activation_op(event.cycles, layer=event.name))
    return ops


@dataclass
class StreamResult:
    """Outputs and pipelined timing of one scheduled batch stream.

    ``results`` are the per-batch :class:`BatchResult` objects — produced
    by the same engine as :class:`BatchScheduler`, so outputs are
    bit-identical to scheduling each batch standalone.  ``timing`` is the
    stream-pipelined schedule; the non-pipelined reference (the sum of
    each batch's double-buffered accounting) is kept for comparison.
    """

    results: list[BatchResult]
    timing: StreamTiming

    @property
    def predictions(self) -> np.ndarray:
        """Concatenated predictions across the stream."""
        return np.concatenate([result.predictions for result in self.results])

    @property
    def total_images(self) -> int:
        """Images across every batch."""
        return sum(result.batch for result in self.results)

    @property
    def overlapped_cycles(self) -> int:
        """Non-pipelined reference: per-batch double-buffered accounting."""
        return sum(result.overlapped_cycles for result in self.results)

    def pipelined_speedup(self) -> float:
        """Whole-stream speedup over per-batch double-buffered scheduling."""
        finish = self.timing.finish_cycles
        if finish == 0:
            return 0.0
        return self.overlapped_cycles / finish


#: Traced per-batch op timelines, shared across scheduler instances:
#: ``(network config, optimized_routing, accel config, engine, batch)``
#: fully determines the trace (scheduling is shape-driven), so a stream
#: scheduler rebuilt for the same shapes — a serving cost model rebuilt
#: per run, a sweep point repeating an array size — reuses the settled
#: timeline instead of re-running the engine probe.
_TRACED_OPS_CACHE: dict[tuple, list[PipelineOp]] = {}


def clear_traced_ops_cache() -> None:
    """Drop every memoized engine-traced op timeline."""
    _TRACED_OPS_CACHE.clear()


class PipelinedStreamScheduler:
    """Schedules a *stream* of batches with cross-batch pipelining.

    Wraps a :class:`BatchScheduler`: every batch executes through the
    same engine (outputs bit-identical, image for image), while timing
    comes from the stream schedule of :mod:`repro.hw.pipeline` — weight
    tiles prestage across job/layer/batch boundaries and up to ``window``
    batches keep the array hot through each other's activation passes.
    """

    def __init__(
        self,
        qnet: QuantizedCapsuleNet,
        accelerator: CapsAccAccelerator | None = None,
        engine: str = "fast",
        window: int = DEFAULT_WINDOW,
        prestage_depth: int = DEFAULT_PRESTAGE_DEPTH,
    ) -> None:
        self.scheduler = BatchScheduler(qnet, accelerator=accelerator, engine=engine)
        self.window = window
        self.prestage_depth = prestage_depth
        self._ops_memo: dict[int, list[PipelineOp]] = {}

    def _ops_key(self, batch: int) -> tuple:
        qnet = self.qnet
        return (
            qnet.config,
            qnet.optimized_routing,
            self.accelerator.config,
            self.scheduler.engine,
            batch,
        )

    @property
    def qnet(self) -> QuantizedCapsuleNet:
        return self.scheduler.qnet

    @property
    def accelerator(self) -> CapsAccAccelerator:
        return self.scheduler.accelerator

    def batch_ops(self, batch_size: int) -> list[PipelineOp]:
        """Pipeline ops of one batch (shape-driven; probed and memoized).

        The memo is two-level: per instance, then module-wide keyed by
        (network, accelerator config, engine, batch) — a scheduler
        rebuilt for shapes another instance already traced skips the
        engine probe entirely.
        """
        if batch_size < 1:
            raise ShapeError("batch must contain at least one image")
        if batch_size not in self._ops_memo:
            cached = _TRACED_OPS_CACHE.get(self._ops_key(batch_size))
            if cached is not None:
                self._ops_memo[batch_size] = cached
            else:
                self.probe_batch(batch_size)
        return self._ops_memo[batch_size]

    def probe_batch(self, batch_size: int) -> BatchResult:
        """Run a zero-image probe batch, memoizing its pipeline ops.

        Returns the full :class:`BatchResult`, so one engine run serves
        both the non-pipelined accounting (``overlapped_cycles``) and the
        stream-pipeline ops — the serving cost model's cold/warm probes
        share it.
        """
        if batch_size < 1:
            raise ShapeError("batch must contain at least one image")
        size = self.qnet.config.image_size
        channels = self.qnet.config.in_channels
        probe = np.zeros((batch_size, channels, size, size), dtype=np.float64)
        return self._run_traced(probe)

    def probe_timing(self, batch_sizes: Sequence[int]) -> StreamTiming:
        """Stream timing for a sequence of batch sizes, without execution.

        Memoized through :func:`repro.hw.pipeline.cached_stream_timing`:
        repeated identical probe streams return the settled schedule
        instead of re-walking every tile (bit-identical — the cache
        stores the first computation's result).
        """
        ops = [self.batch_ops(size) for size in batch_sizes]
        return cached_stream_timing(
            ops,
            list(batch_sizes),
            window=self.window,
            prestage_depth=self.prestage_depth,
        )

    def steady_state_cycles(self, batch_size: int, stream_length: int = 7) -> int:
        """Steady-state marginal cycles of one batch in a homogeneous stream.

        Seven batches are enough for the settled window to cover a whole
        period of the marginal (the cold fill takes three batches to wash
        out, and settled marginals can oscillate with period two; tests
        assert stability across stream lengths).
        """
        timing = self.probe_timing([batch_size] * max(6, stream_length))
        return timing.steady_marginal_cycles

    def run_stream(self, batches: Iterable[np.ndarray]) -> StreamResult:
        """Execute a stream of batches; outputs bit-identical, timing pipelined."""
        results: list[BatchResult] = []
        ops: list[list[PipelineOp]] = []
        for images in batches:
            results.append(self._run_traced(np.asarray(images)))
            ops.append(self._ops_memo[results[-1].batch])
        if not results:
            raise ShapeError("a stream needs at least one batch")
        timing = cached_stream_timing(
            ops,
            [result.batch for result in results],
            window=self.window,
            prestage_depth=self.prestage_depth,
        )
        return StreamResult(results=results, timing=timing)

    def _run_traced(self, images: np.ndarray) -> BatchResult:
        """Run one batch with tracing, memoizing its (shape-driven) ops."""
        scheduler = self.scheduler
        scheduler.trace = []
        try:
            result = scheduler.run_batch(images)
        finally:
            events, scheduler.trace = scheduler.trace, None
        if result.batch not in self._ops_memo:
            key = self._ops_key(result.batch)
            ops = _TRACED_OPS_CACHE.get(key)
            if ops is None:
                ops = _TRACED_OPS_CACHE[key] = trace_ops(
                    self.accelerator.config, events
                )
            self._ops_memo[result.batch] = ops
        return result
