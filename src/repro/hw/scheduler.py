"""Batched multi-image scheduling of *compiled* instruction streams.

:class:`BatchScheduler` used to be a hand-written, CapsNet-specific job
list.  It now consumes the graph→ISA compiler (:mod:`repro.compiler`): any
network — a :class:`~repro.compiler.zoo.CompiledNetwork`, a
:class:`~repro.capsnet.quantized.QuantizedCapsuleNet` (compiled on the
fly, program memoized per architecture) or a zoo name string — lowers to
one instruction stream, and a :class:`~repro.compiler.executor.StreamExecutor`
runs it batch by batch:

* **Convolutions** — the batch's im2col patches stack into a single
  ``(B*M, K)`` stream per weight tile (one ``GEMM`` instruction), so each
  tile loads once per *batch* instead of once per image — the paper's
  weight reuse extended across images.
* **ClassCaps FC** — one ``GEMM`` per input capsule: the capsule's private
  weight matrix is loaded once and the ``B`` capsule vectors stream
  through it (``M = B`` instead of ``M = 1``).
* **Routing** — coupling coefficients differ per image, so the
  per-(image, class) GEMMs execute as ``GROUPED_GEMM`` instructions whose
  accounting is their exact sequential sum.

For the MNIST CapsNet this is ``compile(mnist_capsnet_graph())``: outputs
*and* cycle counts are bit-identical to the frozen hand lowering
(:class:`~repro.hw.legacy_scheduler.LegacyBatchScheduler`, asserted by the
drift test) and, image for image, to
:class:`~repro.mapping.execute.MappedInference`.
"""

from __future__ import annotations

import numpy as np
from typing import Iterable, Sequence

from dataclasses import dataclass

from repro.compiler.executor import StreamExecutor
from repro.compiler.zoo import CompiledNetwork, as_compiled
from repro.errors import ShapeError
from repro.hw.accelerator import CapsAccAccelerator
from repro.hw.pipeline import (
    DEFAULT_PRESTAGE_DEPTH,
    DEFAULT_WINDOW,
    PipelineOp,
    StreamTiming,
    activation_op,
    cached_stream_timing,
    job_ops,
)
from repro.hw.report import BatchResult, LayerReport, TraceEvent

__all__ = [
    "BatchResult",
    "BatchScheduler",
    "LayerReport",
    "PipelinedStreamScheduler",
    "StreamResult",
    "TraceEvent",
    "clear_traced_ops_cache",
    "trace_ops",
]


class BatchScheduler:
    """Schedules whole compiled networks as batched GEMM jobs.

    ``network`` may be a :class:`CompiledNetwork`, a
    :class:`QuantizedCapsuleNet` or a zoo name (see
    :func:`repro.compiler.zoo.as_compiled`).
    """

    def __init__(
        self,
        network,
        accelerator: CapsAccAccelerator | None = None,
        engine: str = "fast",
    ) -> None:
        compiled = as_compiled(network)
        self.compiled = compiled
        #: The quantized golden model, when the network has one (CapsNet
        #: architectures); ``None`` for pure zoo baselines.
        self.qnet = compiled.qnet
        if accelerator is None:
            accelerator = CapsAccAccelerator(formats=compiled.formats)
        self.accelerator = accelerator
        self.engine = engine
        # Share the network's ROMs so all paths are the same bits.
        self._executor = StreamExecutor(
            compiled.program,
            compiled.params,
            compiled.formats,
            luts=compiled.luts,
            accelerator=accelerator,
            engine=engine,
        )
        #: When set (a list), every job/activation is appended in execution
        #: order — the stream pipeline's input.  ``None`` disables tracing.
        self.trace: list[TraceEvent] | None = None

    @property
    def activation(self):
        """The shared activation unit (LUT ROMs included)."""
        return self._executor.activation

    def run_batch(self, images: np.ndarray) -> BatchResult:
        """Execute one batch of ``(B, H, W)`` or ``(B, C, H, W)`` images."""
        return self._executor.run_batch(images, trace=self.trace)


# ---- stream-level cross-batch pipelining -------------------------------------


def trace_ops(config, events: Sequence[TraceEvent]) -> list[PipelineOp]:
    """Expand one batch's trace into pipeline ops, tile for tile."""
    ops: list[PipelineOp] = []
    for event in events:
        if event.kind == "gemm":
            ops.extend(
                job_ops(
                    config,
                    event.plan,
                    groups=event.groups,
                    weight_source=event.weight_source,
                    layer=event.name,
                )
            )
        else:
            ops.append(activation_op(event.cycles, layer=event.name))
    return ops


@dataclass
class StreamResult:
    """Outputs and pipelined timing of one scheduled batch stream.

    ``results`` are the per-batch :class:`BatchResult` objects — produced
    by the same engine as :class:`BatchScheduler`, so outputs are
    bit-identical to scheduling each batch standalone.  ``timing`` is the
    stream-pipelined schedule; the non-pipelined reference (the sum of
    each batch's double-buffered accounting) is kept for comparison.
    """

    results: list[BatchResult]
    timing: StreamTiming

    @property
    def predictions(self) -> np.ndarray:
        """Concatenated predictions across the stream."""
        return np.concatenate([result.predictions for result in self.results])

    @property
    def total_images(self) -> int:
        """Images across every batch."""
        return sum(result.batch for result in self.results)

    @property
    def overlapped_cycles(self) -> int:
        """Non-pipelined reference: per-batch double-buffered accounting."""
        return sum(result.overlapped_cycles for result in self.results)

    def pipelined_speedup(self) -> float:
        """Whole-stream speedup over per-batch double-buffered scheduling."""
        finish = self.timing.finish_cycles
        if finish == 0:
            return 0.0
        return self.overlapped_cycles / finish


#: Traced per-batch op timelines, shared across scheduler instances:
#: ``(network key, accel config, engine, batch)`` fully determines the
#: trace (scheduling is shape-driven; the network key identifies the
#: architecture, not the weights), so a stream scheduler rebuilt for the
#: same shapes — a serving cost model rebuilt per run, a sweep point
#: repeating an array size — reuses the settled timeline instead of
#: re-running the engine probe.
_TRACED_OPS_CACHE: dict[tuple, list[PipelineOp]] = {}


def clear_traced_ops_cache() -> None:
    """Drop every memoized engine-traced op timeline."""
    _TRACED_OPS_CACHE.clear()


class PipelinedStreamScheduler:
    """Schedules a *stream* of batches with cross-batch pipelining.

    Wraps a :class:`BatchScheduler`: every batch executes through the
    same engine (outputs bit-identical, image for image), while timing
    comes from the stream schedule of :mod:`repro.hw.pipeline` — weight
    tiles prestage across job/layer/batch boundaries and up to ``window``
    batches keep the array hot through each other's activation passes.
    """

    def __init__(
        self,
        network,
        accelerator: CapsAccAccelerator | None = None,
        engine: str = "fast",
        window: int = DEFAULT_WINDOW,
        prestage_depth: int = DEFAULT_PRESTAGE_DEPTH,
    ) -> None:
        self.scheduler = BatchScheduler(network, accelerator=accelerator, engine=engine)
        self.window = window
        self.prestage_depth = prestage_depth
        self._ops_memo: dict[int, list[PipelineOp]] = {}

    def _ops_key(self, batch: int) -> tuple:
        return (
            self.compiled.key,
            self.accelerator.config,
            self.scheduler.engine,
            batch,
        )

    @property
    def compiled(self) -> CompiledNetwork:
        return self.scheduler.compiled

    @property
    def qnet(self):
        """The quantized golden model, when the network has one."""
        return self.scheduler.qnet

    @property
    def accelerator(self) -> CapsAccAccelerator:
        return self.scheduler.accelerator

    def batch_ops(self, batch_size: int) -> list[PipelineOp]:
        """Pipeline ops of one batch (shape-driven; probed and memoized).

        The memo is two-level: per instance, then module-wide keyed by
        (network key, accelerator config, engine, batch) — a scheduler
        rebuilt for shapes another instance already traced skips the
        engine probe entirely.
        """
        if batch_size < 1:
            raise ShapeError("batch must contain at least one image")
        if batch_size not in self._ops_memo:
            cached = _TRACED_OPS_CACHE.get(self._ops_key(batch_size))
            if cached is not None:
                self._ops_memo[batch_size] = cached
            else:
                self.probe_batch(batch_size)
        return self._ops_memo[batch_size]

    def probe_batch(self, batch_size: int) -> BatchResult:
        """Run a zero-image probe batch, memoizing its pipeline ops.

        Returns the full :class:`BatchResult`, so one engine run serves
        both the non-pipelined accounting (``overlapped_cycles``) and the
        stream-pipeline ops — the serving cost model's cold/warm probes
        share it.
        """
        if batch_size < 1:
            raise ShapeError("batch must contain at least one image")
        probe = np.zeros(
            (batch_size,) + tuple(self.compiled.input_shape), dtype=np.float64
        )
        return self._run_traced(probe)

    def probe_timing(self, batch_sizes: Sequence[int]) -> StreamTiming:
        """Stream timing for a sequence of batch sizes, without execution.

        Memoized through :func:`repro.hw.pipeline.cached_stream_timing`:
        repeated identical probe streams return the settled schedule
        instead of re-walking every tile (bit-identical — the cache
        stores the first computation's result).
        """
        ops = [self.batch_ops(size) for size in batch_sizes]
        return cached_stream_timing(
            ops,
            list(batch_sizes),
            window=self.window,
            prestage_depth=self.prestage_depth,
        )

    def steady_state_cycles(self, batch_size: int, stream_length: int = 7) -> int:
        """Steady-state marginal cycles of one batch in a homogeneous stream.

        Seven batches are enough for the settled window to cover a whole
        period of the marginal (the cold fill takes three batches to wash
        out, and settled marginals can oscillate with period two; tests
        assert stability across stream lengths).
        """
        timing = self.probe_timing([batch_size] * max(6, stream_length))
        return timing.steady_marginal_cycles

    def run_stream(self, batches: Iterable[np.ndarray]) -> StreamResult:
        """Execute a stream of batches; outputs bit-identical, timing pipelined."""
        results: list[BatchResult] = []
        ops: list[list[PipelineOp]] = []
        for images in batches:
            results.append(self._run_traced(np.asarray(images)))
            ops.append(self._ops_memo[results[-1].batch])
        if not results:
            raise ShapeError("a stream needs at least one batch")
        timing = cached_stream_timing(
            ops,
            [result.batch for result in results],
            window=self.window,
            prestage_depth=self.prestage_depth,
        )
        return StreamResult(results=results, timing=timing)

    def _run_traced(self, images: np.ndarray) -> BatchResult:
        """Run one batch with tracing, memoizing its (shape-driven) ops."""
        scheduler = self.scheduler
        scheduler.trace = []
        try:
            result = scheduler.run_batch(images)
        finally:
            events, scheduler.trace = scheduler.trace, None
        if result.batch not in self._ops_memo:
            key = self._ops_key(result.batch)
            ops = _TRACED_OPS_CACHE.get(key)
            if ops is None:
                ops = _TRACED_OPS_CACHE[key] = trace_ops(
                    self.accelerator.config, events
                )
            self._ops_memo[result.batch] = ops
        return result
