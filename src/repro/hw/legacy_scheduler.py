"""Frozen hand-coded CapsNet lowering (pre-compiler reference).

:class:`LegacyBatchScheduler` is the original :class:`BatchScheduler` body —
the CapsNet-specific job list written by hand, before the graph→ISA compiler
(:mod:`repro.compiler`) took over lowering.  It is kept verbatim as a drift
reference: ``tests/compiler/test_drift.py`` asserts that the compiled MNIST
stream reproduces this scheduler's outputs, per-layer cycle statistics and
trace **exactly**.  Do not modify this file when changing the compiler; that
would defeat its purpose.
"""

from __future__ import annotations

import numpy as np

from repro.capsnet.ops import im2col
from repro.capsnet.quantized import QuantizedCapsuleNet
from repro.errors import ShapeError
from repro.fixedpoint.arith import requantize, saturate_raw
from repro.fixedpoint.quantize import to_raw
from repro.hw.accelerator import (
    BatchedGemmJob,
    BatchedGemmResult,
    CapsAccAccelerator,
    GroupedGemmJob,
)
from repro.hw.activation import ActivationMode, ActivationUnit, batched_activation_latency
from repro.hw.report import BatchResult, LayerReport, TraceEvent


class LegacyBatchScheduler:
    """The hand-written CapsNet batch lowering (drift reference)."""

    def __init__(
        self,
        qnet: QuantizedCapsuleNet,
        accelerator: CapsAccAccelerator | None = None,
        engine: str = "fast",
    ) -> None:
        self.qnet = qnet
        if accelerator is None:
            accelerator = CapsAccAccelerator(formats=qnet.formats)
        self.accelerator = accelerator
        # Share the quantized model's ROMs so both paths are the same bits.
        self.activation = ActivationUnit(qnet.formats, qnet.luts)
        self.engine = engine
        #: When set (a list), every job/activation is appended in execution
        #: order — the stream pipeline's input.  ``None`` disables tracing.
        self.trace: list[TraceEvent] | None = None

    # ---- bookkeeping ---------------------------------------------------------

    def _record(
        self,
        layers: dict[str, LayerReport],
        name: str,
        result: BatchedGemmResult | None = None,
        activation_cycles: int = 0,
        weight_source: str = "weight_buffer",
    ) -> None:
        report = layers.setdefault(name, LayerReport(name=name))
        if result is not None:
            report.stats = report.stats + result.stats
            report.overlapped_cycles += result.overlapped_cycles
            report.jobs += 1
            if self.trace is not None:
                self.trace.append(
                    TraceEvent(
                        kind="gemm",
                        name=name,
                        plan=result.plan,
                        groups=result.groups,
                        weight_source=weight_source,
                    )
                )
        if activation_cycles:
            report.stats.activation_cycles += activation_cycles
            report.stats.total_cycles += activation_cycles
            report.overlapped_cycles += activation_cycles
            if self.trace is not None:
                self.trace.append(
                    TraceEvent(kind="activation", name=name, cycles=activation_cycles)
                )

    def _activation_cycles(self, mode: ActivationMode, n: int, groups: int) -> int:
        units = self.accelerator.config.cols if mode is ActivationMode.RELU else 1
        return batched_activation_latency(mode, n, groups, units)

    # ---- stages --------------------------------------------------------------

    def _conv_layer(
        self,
        layers: dict[str, LayerReport],
        name: str,
        x_raw: np.ndarray,
        weight_raw: np.ndarray,
        bias_raw: np.ndarray,
        stride: int,
        data_fmt,
        weight_fmt,
        acc_fmt,
    ) -> np.ndarray:
        """Lower one convolution for the whole batch to a single stacked job."""
        kernel_size = weight_raw.shape[2]
        patches = np.stack(
            [im2col(np.asarray(x, dtype=np.int64), kernel_size, stride) for x in x_raw]
        )
        wmat = weight_raw.reshape(weight_raw.shape[0], -1).T  # (K, N)
        job = BatchedGemmJob(name, patches, wmat, data_fmt, weight_fmt, acc_fmt)
        result = self.accelerator.run_batched_gemm(job, engine=self.engine)
        self._record(layers, name, result)
        return saturate_raw(result.acc + bias_raw[np.newaxis, np.newaxis, :], acc_fmt)

    def run_batch(self, images: np.ndarray) -> BatchResult:
        """Execute one batch of ``(B, H, W)`` or ``(B, C, H, W)`` images."""
        qnet = self.qnet
        fmts = qnet.formats
        config = qnet.config
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[:, np.newaxis]
        expected = (config.in_channels, config.image_size, config.image_size)
        if images.ndim != 4 or images.shape[1:] != expected:
            raise ShapeError(f"batch shape {images.shape} != (B,) + {expected}")
        batch = images.shape[0]
        if batch < 1:
            raise ShapeError("batch must contain at least one image")
        layers: dict[str, LayerReport] = {}

        # ---- Conv1: batch-stacked im2col GEMM --------------------------------
        image_raw = to_raw(images, fmts.input)
        conv1_acc_fmt = fmts.acc(fmts.input, fmts.conv1_weight)
        conv1_acc = self._conv_layer(
            layers,
            "conv1",
            image_raw,
            qnet.raw_weights["conv1_w"],
            qnet.raw_weights["conv1_b"],
            config.conv1.stride,
            fmts.input,
            fmts.conv1_weight,
            conv1_acc_fmt,
        )
        conv1_out = self.activation.relu(conv1_acc, conv1_acc_fmt, fmts.conv1_out)
        size = config.conv1_out_size
        self._record(
            layers,
            "conv1",
            activation_cycles=self._activation_cycles(
                ActivationMode.RELU, 1, batch * size**2 * config.conv1.out_channels
            ),
        )
        conv1_raw = conv1_out.transpose(0, 2, 1).reshape(
            batch, config.conv1.out_channels, size, size
        )

        # ---- PrimaryCaps: batch-stacked conv GEMM + squash -------------------
        primary_acc_fmt = fmts.acc(fmts.conv1_out, fmts.primary_weight)
        primary_acc = self._conv_layer(
            layers,
            "primarycaps",
            conv1_raw,
            qnet.raw_weights["primary_w"],
            qnet.raw_weights["primary_b"],
            config.primary.stride,
            fmts.conv1_out,
            fmts.primary_weight,
            primary_acc_fmt,
        )
        preact_flat = requantize(primary_acc, primary_acc_fmt, fmts.primary_preact)
        spec = config.primary
        out_size = config.primary_out_size
        preact = preact_flat.transpose(0, 2, 1).reshape(
            batch, spec.conv_out_channels, out_size, out_size
        )
        grouped = preact.reshape(
            batch, spec.capsule_channels, spec.capsule_dim, out_size, out_size
        )
        capsules = grouped.transpose(0, 3, 4, 1, 2).reshape(batch, -1, spec.capsule_dim)
        primary_raw = self.activation.squash(capsules, fmts.primary_preact)
        self._record(
            layers,
            "primarycaps",
            activation_cycles=self._activation_cycles(
                ActivationMode.SQUASH,
                spec.capsule_dim,
                batch * config.num_primary_capsules,
            ),
        )

        # ---- ClassCaps FC: one batched job per input capsule -----------------
        u_hat_raw = self._classcaps_fc(layers, primary_raw)

        # ---- Routing: grouped per-(image, class) jobs ------------------------
        v_raw, c_raw = self._route(layers, u_hat_raw)
        _, sumsq = self.activation.norm(v_raw, fmts.caps_data)

        return BatchResult(
            batch=batch,
            predictions=np.argmax(sumsq, axis=-1),
            conv1_raw=conv1_raw,
            primary_raw=primary_raw,
            u_hat_raw=u_hat_raw,
            class_caps_raw=v_raw,
            coupling_raw=c_raw,
            length_sumsq_raw=sumsq,
            layers=layers,
        )

    def _classcaps_fc(
        self, layers: dict[str, LayerReport], primary_raw: np.ndarray
    ) -> np.ndarray:
        """Per-capsule weight matrices, each streamed by the whole batch."""
        qnet = self.qnet
        fmts = qnet.formats
        config = qnet.config
        acc_fmt = fmts.acc(fmts.caps_data, fmts.classcaps_weight)
        batch = primary_raw.shape[0]
        num_in = config.num_primary_capsules
        num_out = config.classcaps.num_classes
        out_dim = config.classcaps.out_dim
        w = qnet.raw_weights["classcaps_w"]
        u_hat = np.zeros((batch, num_in, num_out, out_dim), dtype=np.int64)
        for i in range(num_in):
            wmat = w[i].reshape(num_out * out_dim, -1).T  # (K, N)
            job = BatchedGemmJob(
                f"fc_capsule_{i}",
                primary_raw[:, i : i + 1, :],  # (B, 1, in_dim)
                wmat,
                fmts.caps_data,
                fmts.classcaps_weight,
                acc_fmt,
            )
            result = self.accelerator.run_batched_gemm(job, engine=self.engine)
            self._record(layers, "classcaps_fc", result)
            u_hat[:, i] = requantize(result.acc[:, 0], acc_fmt, fmts.caps_data).reshape(
                batch, num_out, out_dim
            )
        return u_hat

    def _route(
        self, layers: dict[str, LayerReport], u_hat_raw: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Quantized routing with grouped GEMM jobs across the batch."""
        qnet = self.qnet
        fmts = qnet.formats
        config = qnet.config
        batch, num_in, num_out, out_dim = u_hat_raw.shape
        iterations = config.classcaps.routing_iterations
        sum_acc_fmt = fmts.acc(fmts.caps_data, fmts.coupling)
        upd_acc_fmt = fmts.acc(fmts.caps_data, fmts.caps_data)
        b_raw = np.zeros((batch, num_in, num_out), dtype=np.int64)

        if qnet.optimized_routing:
            c_raw = np.full(
                (batch, num_in, num_out),
                qnet._uniform_coupling_code(num_out),
                dtype=np.int64,
            )
        else:
            c_raw = self.activation.softmax(b_raw, axis=-1)
            self._record(
                layers,
                "softmax1",
                activation_cycles=self._activation_cycles(
                    ActivationMode.SOFTMAX, num_out, batch * num_in
                ),
            )

        v_raw = np.zeros((batch, num_out, out_dim), dtype=np.int64)
        for iteration in range(1, iterations + 1):
            if iteration > 1:
                c_raw = self.activation.softmax(b_raw, axis=-1)
                self._record(
                    layers,
                    f"softmax{iteration}",
                    activation_cycles=self._activation_cycles(
                        ActivationMode.SOFTMAX, num_out, batch * num_in
                    ),
                )
            # Sum: one GEMM per (image, class); predictions arrive from the
            # data buffer first, from the feedback path afterwards.
            source = "data_buffer" if iteration == 1 else "feedback"
            job = GroupedGemmJob(
                f"sum{iteration}",
                u_hat_raw.transpose(0, 2, 3, 1).reshape(
                    batch * num_out, out_dim, num_in
                ),
                c_raw.transpose(0, 2, 1).reshape(batch * num_out, num_in, 1),
                fmts.caps_data,
                fmts.coupling,
                sum_acc_fmt,
                data_source=source,
                weight_source="routing_buffer",
            )
            result = self.accelerator.run_grouped_gemm(job, engine=self.engine)
            self._record(layers, f"sum{iteration}", result, weight_source="routing_buffer")
            s_raw = requantize(
                result.acc[..., 0], sum_acc_fmt, fmts.primary_preact
            ).reshape(batch, num_out, out_dim)
            v_raw = self.activation.squash(s_raw, fmts.primary_preact)
            self._record(
                layers,
                f"squash{iteration}",
                activation_cycles=self._activation_cycles(
                    ActivationMode.SQUASH, out_dim, batch * num_out
                ),
            )
            if iteration < iterations:
                job = GroupedGemmJob(
                    f"update{iteration}",
                    u_hat_raw.transpose(0, 2, 1, 3).reshape(
                        batch * num_out, num_in, out_dim
                    ),
                    v_raw.reshape(batch * num_out, out_dim, 1),
                    fmts.caps_data,
                    fmts.caps_data,
                    upd_acc_fmt,
                    data_source="feedback",
                    weight_source="routing_buffer",
                )
                result = self.accelerator.run_grouped_gemm(job, engine=self.engine)
                self._record(
                    layers, f"update{iteration}", result, weight_source="routing_buffer"
                )
                delta = requantize(result.acc[..., 0], upd_acc_fmt, fmts.logits)
                delta = delta.reshape(batch, num_out, num_in).transpose(0, 2, 1)
                b_raw = saturate_raw(b_raw + delta, fmts.logits)
        return v_raw, c_raw
