"""The control unit (paper Section IV-D).

At each stage of the inference the control unit generates the signals that
steer the datapath: the two input multiplexers in front of the systolic
array (fresh data from the buffers vs reuse through the feedback path —
Fig 10), the activation-unit output select (Fig 11d), and the buffer
enables.  This module compiles a stage schedule into an explicit
:class:`ControlProgram` and validates the dataflow legality rules that the
paper's scenarios imply:

* the feedback path can only reuse operands that a previous stage actually
  produced at the array/activation outputs;
* the routing buffer is only addressed during ClassCaps stages;
* every stage selects exactly one activation path.

The executable lowering keeps its own (equivalent) sequencing; the control
program is the single place where the signal view of the schedule lives,
and tests assert the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MappingError
from repro.hw.activation import ActivationMode
from repro.mapping.shapes import StageShape


@dataclass(frozen=True)
class ControlStep:
    """Control signals asserted for one stage."""

    stage: str
    #: Data-input multiplexer: ``"buffer"`` or ``"feedback"`` (Fig 10).
    data_mux: str
    #: Weight-input multiplexer: ``"weight_buffer"`` or ``"routing_buffer"``.
    weight_mux: str
    #: Activation output select (Fig 11d).
    activation_select: ActivationMode
    #: Whether the stage's outputs are written back to the routing buffer.
    routing_buffer_write: bool
    #: Whether array/activation outputs remain available on the feedback path.
    exposes_feedback: bool


@dataclass
class ControlProgram:
    """The compiled signal sequence for a full inference."""

    steps: list[ControlStep] = field(default_factory=list)

    def step(self, stage: str) -> ControlStep:
        """Look up the signals of a stage by name."""
        for entry in self.steps:
            if entry.stage == stage:
                return entry
        raise KeyError(stage)


def _stage_activation(stage: StageShape) -> ActivationMode:
    modes = {work.mode for work in stage.activations}
    if len(modes) > 1:
        raise MappingError(f"stage {stage.name!r} selects multiple activation paths")
    if modes:
        return modes.pop()
    return ActivationMode.NONE


def compile_schedule(stages: list[StageShape]) -> ControlProgram:
    """Compile a stage schedule into control signals, validating legality."""
    program = ControlProgram()
    feedback_live = False
    for stage in stages:
        data_sources = {shape.data_source for shape in stage.gemms}
        weight_sources = {shape.weight_source for shape in stage.gemms}
        if len(data_sources) > 1 or len(weight_sources) > 1:
            raise MappingError(
                f"stage {stage.name!r} mixes operand sources within one pass"
            )
        data_source = data_sources.pop() if data_sources else "data_buffer"
        weight_source = weight_sources.pop() if weight_sources else "weight_buffer"

        if data_source == "feedback" and not feedback_live:
            raise MappingError(
                f"stage {stage.name!r} reuses the feedback path before any"
                " stage produced data on it"
            )
        if weight_source == "routing_buffer" and not _is_routing_stage(stage.name):
            raise MappingError(
                f"stage {stage.name!r} addresses the routing buffer outside"
                " the routing loop"
            )

        activation = _stage_activation(stage)
        routing_write = _is_routing_stage(stage.name) or stage.name == "load"
        program.steps.append(
            ControlStep(
                stage=stage.name,
                data_mux="feedback" if data_source == "feedback" else "buffer",
                weight_mux=weight_source,
                activation_select=activation,
                routing_buffer_write=routing_write,
                exposes_feedback=bool(stage.gemms) or stage.name == "classcaps_fc",
            )
        )
        if stage.gemms:
            feedback_live = True
    return program


def _is_routing_stage(name: str) -> bool:
    prefixes = ("softmax", "sum", "squash", "update", "load")
    return name.startswith(prefixes)


def signal_summary(program: ControlProgram) -> list[tuple[str, str, str, str]]:
    """Rows of ``(stage, data mux, weight mux, activation)`` for reports."""
    return [
        (
            step.stage,
            step.data_mux,
            step.weight_mux,
            step.activation_select.value,
        )
        for step in program.steps
    ]
